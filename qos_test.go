package bcclap

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcclap/internal/telemetry"
)

// Acceptance (satellite): a flooding rate-limited tenant must not starve
// a well-behaved one. Tenant "noisy" is flooded from many goroutines
// behind a tight gate; tenant "quiet" keeps solving sequentially on the
// same Service and pool. Quiet's answers must stay bit-identical to its
// unloaded baseline and never see an admission error, while the flood
// piles up rejections on noisy. Run under -race.
func TestQoSNoStarvation(t *testing.T) {
	dNoisy, dQuiet := testFlowNetwork(5, 51), testFlowNetwork(6, 52)
	svc := NewService(WithSeed(9), WithPoolSize(2))
	defer svc.Close()

	noisy, err := svc.Register("noisy", dNoisy,
		WithRateLimit(40, 2), WithMaxInFlight(1), WithQueueDepth(2), WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := svc.Register("quiet", dQuiet, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	base, err := quiet.Solve(ctx, 0, dQuiet.N()-1)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg       sync.WaitGroup
		rejected atomic.Int64
		stop     = make(chan struct{})
	)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := noisy.Solve(ctx, 0, dNoisy.N()-1); err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("flood got a non-admission error: %v", err)
						return
					}
					rejected.Add(1)
				}
			}
		}()
	}

	// On a single-P runtime the channel ping-pong between this goroutine
	// and the pool workers can keep the flood goroutines parked for the
	// entire (short) quiet loop, so wait until the flood is demonstrably
	// engaged — at least one rejection recorded — before measuring.
	for deadline := time.Now().Add(10 * time.Second); rejected.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("flood produced no rejection within 10s; the gate is not limiting")
		}
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < 30; i++ {
		res, err := quiet.Solve(ctx, 0, dQuiet.N()-1)
		if err != nil {
			t.Fatalf("quiet tenant starved at solve %d: %v", i, err)
		}
		if res.Value != base.Value || res.Cost != base.Cost ||
			fmt.Sprint(res.Flows) != fmt.Sprint(base.Flows) {
			t.Fatalf("quiet tenant answer diverged under flood: %+v vs %+v", res, base)
		}
	}
	close(stop)
	wg.Wait()

	if rejected.Load() == 0 {
		t.Fatal("flood saw no ErrOverloaded rejections; the gate is not limiting")
	}
	ad := noisy.Stats().Admission
	if ad.RejectedQueueFull+ad.RejectedDeadline == 0 {
		t.Fatalf("admission stats recorded no rejections: %+v", ad)
	}
	if ad.Admitted == 0 {
		t.Fatalf("admission stats recorded no admissions: %+v", ad)
	}
	if quiet.Stats().Admission.RejectedQueueFull != 0 {
		t.Fatal("quiet tenant's (unlimited) gate rejected work")
	}
}

// Satellite: the queue-full path through NetworkHandle.Solve. With the
// queue disabled (WithQueueDepth(0)) and one in-flight slot held, a
// second solve is rejected immediately with ErrOverloaded — and does
// not match context.DeadlineExceeded (nothing was queued).
func TestQoSQueueFull(t *testing.T) {
	d := testFlowNetwork(5, 53)
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("strict", d,
		WithMaxInFlight(1), WithQueueDepth(0), WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Limits(); got.MaxInFlight != 1 || got.QueueDepth != -1 {
		t.Fatalf("Limits() = %+v, want MaxInFlight 1 with queueing disabled (-1)", got)
	}

	// Hold the single in-flight slot the way a long solve would.
	rel, err := h.gate.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.Solve(context.Background(), 0, d.N()-1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("solve with queue disabled and slot held: %v, want ErrOverloaded", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queue-full rejection must not match DeadlineExceeded: %v", err)
	}
	if !strings.Contains(err.Error(), `network "strict"`) {
		t.Fatalf("rejection does not name the tenant: %v", err)
	}
	rel()

	// Slot released: the same query is admitted and solves.
	if _, err := h.Solve(context.Background(), 0, d.N()-1); err != nil {
		t.Fatalf("solve after release: %v", err)
	}
}

// Satellite: the deadline-expired-while-queued path through Solve. The
// request is accepted into the queue (no service-time history yet, so
// no predictive rejection), then its deadline fires while waiting; the
// error must match BOTH ErrOverloaded and context.DeadlineExceeded so
// callers can branch either way.
func TestQoSDeadlineWhileQueued(t *testing.T) {
	d := testFlowNetwork(5, 54)
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("slow", d,
		WithMaxInFlight(1), WithQueueDepth(4), WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}

	rel, err := h.gate.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = h.Solve(ctx, 0, d.N()-1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued-past-deadline solve: %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued-past-deadline solve must also match DeadlineExceeded: %v", err)
	}
	if waited := time.Since(start); waited < 30*time.Millisecond {
		t.Fatalf("rejected after %v: predictive path fired, want the queued path", waited)
	}
	if got := h.Stats().Admission; got.Queued != 1 || got.RejectedDeadline != 1 {
		t.Fatalf("admission stats %+v, want 1 queued and 1 deadline rejection", got)
	}

	// Plain cancellation while queued is a cancel, not an overload.
	ctx2, cancel2 := context.WithCancel(context.Background())
	go func() { time.Sleep(20 * time.Millisecond); cancel2() }()
	_, err = h.Solve(ctx2, 0, d.N()-1)
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("canceled-while-queued solve: %v, want Canceled and not Overloaded", err)
	}
}

// Register and SetLimits must reject invalid limits before anything is
// journaled or built, with ErrBadLimits.
func TestQoSBadLimits(t *testing.T) {
	d := testFlowNetwork(5, 55)
	svc := NewService(WithSeed(9))
	defer svc.Close()
	if _, err := svc.Register("bad", d, WithRateLimit(-3, 0)); !errors.Is(err, ErrBadLimits) {
		t.Fatalf("negative rate at Register: %v, want ErrBadLimits", err)
	}
	if _, err := svc.Get("bad"); !errors.Is(err, ErrNetworkUnknown) {
		t.Fatal("rejected Register left a registered tenant behind")
	}
	h, err := svc.Register("good", d)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetLimits(Limits{MaxInFlight: -1}); !errors.Is(err, ErrBadLimits) {
		t.Fatalf("negative in-flight at SetLimits: %v, want ErrBadLimits", err)
	}
	if got := h.Limits(); got != (Limits{}) {
		t.Fatalf("rejected SetLimits changed the gate: %+v", got)
	}
}

// Acceptance (satellite): limits set via options and changed at runtime
// via SetLimits are journaled and come back bit-identical after a
// restart from the same data directory.
func TestQoSLimitsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	d := testFlowNetwork(5, 56)

	svc, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	// "opt" keeps its registration-time limits; "patched" is retuned at
	// runtime, including disabling its queue (QueueDepth -1 round-trips).
	if _, err := svc.Register("opt", d,
		WithRateLimit(10, 3), WithMaxInFlight(2), WithQueueDepth(8)); err != nil {
		t.Fatal(err)
	}
	hp, err := svc.Register("patched", d, WithRateLimit(5, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := Limits{RatePerSec: 25, Burst: 5, MaxInFlight: 4, QueueDepth: -1}
	if err := hp.SetLimits(want); err != nil {
		t.Fatal(err)
	}
	if got := hp.Limits(); got != want {
		t.Fatalf("Limits() after SetLimits = %+v, want %+v", got, want)
	}
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	svc2, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	ho, err := svc2.Get("opt")
	if err != nil {
		t.Fatal(err)
	}
	if got := ho.Limits(); got != (Limits{RatePerSec: 10, Burst: 3, MaxInFlight: 2, QueueDepth: 8}) {
		t.Fatalf("registration limits after restart = %+v", got)
	}
	hp2, err := svc2.Get("patched")
	if err != nil {
		t.Fatal(err)
	}
	if got := hp2.Limits(); got != want {
		t.Fatalf("SetLimits limits after restart = %+v, want %+v", got, want)
	}
	// The replayed gate must enforce, not just report: with all four
	// in-flight slots held and the queue disabled, a solve is rejected.
	var rels []func()
	for i := 0; i < want.MaxInFlight; i++ {
		rel, err := hp2.gate.Admit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rel)
	}
	if _, err := hp2.Solve(ctx, 0, d.N()-1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("replayed gate did not enforce: %v", err)
	}
	for _, rel := range rels {
		rel()
	}
}

// WriteMetrics must produce output for every registered tenant and must
// be disabled (with a telling error) under WithTelemetry(false).
func TestQoSWriteMetrics(t *testing.T) {
	d := testFlowNetwork(5, 57)
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("prod", d, WithRateLimit(100, 10))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Solve(context.Background(), 0, d.N()-1); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := svc.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`bcclap_networks 1`,
		`bcclap_admission_admitted_total{tenant="prod"} 1`,
		`bcclap_admission_rate_limit_per_sec{tenant="prod"} 100`,
		`bcclap_pool_submitted_total{tenant="prod"} 1`,
		"# TYPE bcclap_solve_latency_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, out)
		}
	}

	off := NewService(WithSeed(9), WithTelemetry(false))
	defer off.Close()
	if err := off.WriteMetrics(&buf); err == nil ||
		!strings.Contains(err.Error(), "telemetry disabled") {
		t.Fatalf("WriteMetrics with telemetry off: %v, want a disabled error", err)
	}
}

// A solved result must carry the caller's trace ID, and a cache hit must
// carry the *hitting* call's trace, never the filler's.
func TestQoSTraceIDPropagation(t *testing.T) {
	d := testFlowNetwork(5, 58)
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("prod", d)
	if err != nil {
		t.Fatal(err)
	}
	ctxA := telemetry.WithTraceID(context.Background(), "aaaaaaaaaaaaaaaa")
	resA, err := h.Solve(ctxA, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Stats.TraceID != "aaaaaaaaaaaaaaaa" || resA.Stats.CacheHit {
		t.Fatalf("fresh solve stats %+v, want trace a… and no hit", resA.Stats)
	}
	ctxB := telemetry.WithTraceID(context.Background(), "bbbbbbbbbbbbbbbb")
	resB, err := h.Solve(ctxB, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if !resB.Stats.CacheHit || resB.Stats.TraceID != "bbbbbbbbbbbbbbbb" {
		t.Fatalf("cache hit stats %+v, want the hitting call's trace b…", resB.Stats)
	}
	// The first result's trace must not have been clobbered by the hit.
	if resA.Stats.TraceID != "aaaaaaaaaaaaaaaa" {
		t.Fatal("cache hit mutated the original result's trace")
	}
}
