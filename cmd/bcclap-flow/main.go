// Command bcclap-flow solves a minimum-cost maximum-flow instance with the
// paper's BCC pipeline and cross-checks it against the combinatorial
// baseline.
//
// Input (stdin, whitespace separated):
//
//	n m s t
//	from to capacity cost     (m lines)
//
// With -random N it instead generates a random instance on N vertices.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

func main() {
	randomN := flag.Int("random", 0, "generate a random instance on N vertices instead of reading stdin")
	seed := flag.Int64("seed", 1, "random seed")
	backend := flag.String("backend", "", "AᵀDA solve backend: "+strings.Join(bcclap.FlowBackends(), ", ")+" (default: auto — csr-pcg on sparse graphs, else dense)")
	gremban := flag.Bool("gremban", false, "deprecated: same as -backend gremban")
	timeout := flag.Duration("timeout", 0, "abort the solve after this duration (e.g. 30s; 0 = no limit)")
	flag.Parse()
	if *backend == "" && *gremban {
		*backend = "gremban"
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *randomN, *seed, *backend); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "bcclap-flow: solve exceeded -timeout %v: %v\n", *timeout, err)
		} else {
			fmt.Fprintln(os.Stderr, "bcclap-flow:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, randomN int, seed int64, backend string) error {
	var d *graph.Digraph
	var s, t int
	if randomN > 0 {
		rnd := rand.New(rand.NewSource(seed))
		d = graph.RandomFlowNetwork(randomN, 0.3, 3, 3, rnd)
		s, t = 0, randomN-1
		fmt.Printf("random instance: n=%d m=%d s=%d t=%d\n", d.N(), d.M(), s, t)
	} else {
		var err error
		d, s, t, err = readInstance(os.Stdin)
		if err != nil {
			return err
		}
	}
	solver, err := bcclap.NewFlowSolver(d, bcclap.WithSeed(seed), bcclap.WithBackend(backend))
	if err != nil {
		return err
	}
	res, err := solver.Solve(ctx, s, t)
	if err != nil {
		return err
	}
	fmt.Printf("max flow value: %d\n", res.Value)
	fmt.Printf("min cost:       %d\n", res.Cost)
	fmt.Printf("LP path steps:  %d\n", res.PathSteps)
	fmt.Printf("wall time:      %v\n", res.Stats.WallTime.Round(time.Millisecond))
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, s, t)
	if err != nil {
		return err
	}
	fmt.Printf("baseline (SSP): value=%d cost=%d — %s\n", wantV, wantC,
		map[bool]string{true: "MATCH", false: "MISMATCH"}[wantV == res.Value && wantC == res.Cost])
	for i, f := range res.Flows {
		if f > 0 {
			a := d.Arc(i)
			fmt.Printf("  arc %d->%d: flow %d / cap %d (cost %d)\n", a.From, a.To, f, a.Cap, a.Cost)
		}
	}
	return nil
}

func readInstance(f *os.File) (*graph.Digraph, int, int, error) {
	r := bufio.NewReader(f)
	var n, m, s, t int
	if _, err := fmt.Fscan(r, &n, &m, &s, &t); err != nil {
		return nil, 0, 0, fmt.Errorf("read header: %w", err)
	}
	d, err := graph.ReadArcList(r, n, m)
	if err != nil {
		return nil, 0, 0, err
	}
	return d, s, t, nil
}
