// Command bcclap-experiments regenerates every experiment table recorded
// in EXPERIMENTS.md: for each theorem/lemma of the paper it sweeps the
// relevant parameter, measures the bounded quantity (size, stretch,
// rounds, iterations, approximation band), and prints it next to the
// paper's bound so the scaling shape can be inspected directly.
//
// Usage:
//
//	bcclap-experiments            # run everything
//	bcclap-experiments -exp e3    # one experiment
//	bcclap-experiments -quick     # smaller sweeps
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bcclap"
	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/jl"
	"bcclap/internal/lapsolver"
	"bcclap/internal/linalg"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
	"bcclap/internal/spanner"
	"bcclap/internal/sparsify"
	"bcclap/internal/store"
)

// flowBackend is the AᵀDA backend used by the flow-pipeline experiments
// (set by -backend; e15 sweeps all registered backends regardless).
var flowBackend string

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e12, e15, e17, e19, e20, e21, e22 or all)")
	quick := flag.Bool("quick", false, "smaller sweeps")
	backend := flag.String("backend", "", "AᵀDA solve backend for the flow experiments: "+strings.Join(lp.Backends(), ", ")+" (default: auto — csr-pcg on sparse graphs, else dense)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (e.g. 10m; 0 = no limit)")
	flag.Parse()
	flowBackend = *backend
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *exp, *quick); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintf(os.Stderr, "bcclap-experiments: exceeded -timeout %v: %v\n", *timeout, err)
		} else {
			fmt.Fprintln(os.Stderr, "bcclap-experiments:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, exp string, quick bool) error {
	all := map[string]func(context.Context, bool) error{
		"e1": e1, "e2": e2, "e3": e3, "e4": e4, "e5": e5, "e6": e6,
		"e7": e7, "e8": e8, "e9": e9, "e10": e10, "e11": e11, "e12": e12,
		"e15": e15, "e17": e17, "e19": e19, "e20": e20, "e21": e21, "e22": e22,
	}
	if exp == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e15", "e17", "e19", "e20", "e21", "e22"} {
			if err := all[id](ctx, quick); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
		}
		return nil
	}
	f, ok := all[strings.ToLower(exp)]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return f(ctx, quick)
}

func header(id, claim string) {
	fmt.Printf("\n## %s — %s\n\n", strings.ToUpper(id), claim)
}

func bcNet(g *graph.Graph) *sim.Network {
	adj := make([][]int, g.N())
	for v := range adj {
		adj[v] = g.Neighbors(v)
	}
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
	if err != nil {
		panic(err)
	}
	return net
}

// e1: spanner stretch + size vs Lemma 3.1.
func e1(ctx context.Context, quick bool) error {
	header("e1", "Lemma 3.1: stretch ≤ 2k−1, |F⁺| = O(k·n^{1+1/k})")
	ns := []int{16, 32, 48}
	if quick {
		ns = []int{16, 32}
	}
	fmt.Println("| graph | n | k | 2k-1 | stretch | edges | k·n^{1+1/k} |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, n := range ns {
		for _, k := range []int{2, 3} {
			g := graph.Complete(n)
			var worstStretch, avgEdges float64
			const runs = 3
			for seed := int64(0); seed < runs; seed++ {
				res := spanner.Run(g, nil, nil, k, spanner.Options{
					MarkRand: rand.New(rand.NewSource(seed)),
					EdgeRand: rand.New(rand.NewSource(seed + 50)),
				})
				s := g.Subgraph(res.FPlus)
				if st := graph.Stretch(g, s); st > worstStretch {
					worstStretch = st
				}
				avgEdges += float64(len(res.FPlus)) / runs
			}
			bound := float64(k) * math.Pow(float64(n), 1+1/float64(k))
			fmt.Printf("| K%d | %d | %d | %d | %.2f | %.0f | %.0f |\n",
				n, n, k, 2*k-1, worstStretch, avgEdges, bound)
		}
	}
	return nil
}

// e2: spanner rounds vs Lemma 3.2.
func e2(ctx context.Context, quick bool) error {
	header("e2", "Lemma 3.2: rounds O(k·n^{1/k}(log n + log W))")
	ns := []int{16, 32, 64}
	if quick {
		ns = []int{16, 32}
	}
	fmt.Println("| n | k | measured rounds | k·n^{1/k}·log n |")
	fmt.Println("|---|---|---|---|")
	for _, n := range ns {
		k := 3
		g := graph.Complete(n)
		net := bcNet(g)
		spanner.Run(g, nil, nil, k, spanner.Options{
			MarkRand: rand.New(rand.NewSource(1)),
			EdgeRand: rand.New(rand.NewSource(2)),
			Net:      net,
		})
		bound := float64(k) * math.Pow(float64(n), 1/float64(k)) * math.Log2(float64(n))
		fmt.Printf("| %d | %d | %d | %.0f |\n", n, k, net.Rounds(), bound)
	}
	return nil
}

// e3: sparsifier quality/size/rounds vs Theorem 1.2.
func e3(ctx context.Context, quick bool) error {
	header("e3", "Theorem 1.2: (1±ε) quality band, size, BC rounds")
	ns := []int{24, 32, 48}
	if quick {
		ns = []int{24, 32}
	}
	fmt.Println("| n | m | t | kept | band lo | band hi | rounds |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, n := range ns {
		rnd := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(n, 0.6, 3, rnd)
		for _, t := range []int{1, 2, 4} {
			par := sparsify.Params{K: 4, T: t, Iterations: 6}
			net := bcNet(g)
			res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(n*10+t))), net)
			lo, hi := sparsify.Quality(g, res.H, 5, rand.New(rand.NewSource(5)))
			fmt.Printf("| %d | %d | %d | %d | %.3f | %.3f | %d |\n",
				n, g.M(), t, res.H.M(), lo, hi, res.Rounds)
		}
	}
	return nil
}

// e4: Lemma 3.3 distributional equality.
func e4(ctx context.Context, quick bool) error {
	header("e4", "Lemma 3.3: ad-hoc ≡ a-priori output distribution")
	trials := 400
	if quick {
		trials = 100
	}
	g := graph.Cycle(8)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, i+4, 1); err != nil {
			return err
		}
	}
	par := sparsify.Params{K: 2, T: 1, Iterations: 3}
	var sizeA, sizeB float64
	for i := 0; i < trials; i++ {
		ra := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(2*i+1))), nil)
		rb := sparsify.Apriori(g, par, rand.New(rand.NewSource(int64(2*i+2))))
		sizeA += float64(ra.H.M())
		sizeB += float64(rb.H.M())
	}
	fmt.Printf("| algorithm | mean sparsifier size over %d trials |\n|---|---|\n", trials)
	fmt.Printf("| ad-hoc (Alg 5) | %.3f |\n", sizeA/float64(trials))
	fmt.Printf("| a-priori (Alg 4) | %.3f |\n", sizeB/float64(trials))
	return nil
}

// e5: Laplacian solver iterations/rounds vs Theorem 1.3.
func e5(ctx context.Context, quick bool) error {
	header("e5", "Theorem 1.3: O(log 1/ε) iterations; per-instance ≪ preprocessing rounds")
	g := graph.Grid(6, 6)
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBCC})
	if err != nil {
		return err
	}
	s, err := lapsolver.New(g, lapsolver.Config{Rand: rand.New(rand.NewSource(1)), Net: net})
	if err != nil {
		return err
	}
	rnd := rand.New(rand.NewSource(2))
	b := make([]float64, g.N())
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	b = linalg.ProjectOutOnes(b)
	want, err := lapsolver.SolveExact(g, b)
	if err != nil {
		return err
	}
	normX := math.Sqrt(linalg.LaplacianQuadForm(g.WEdges(), want))
	fmt.Printf("preprocessing rounds: %d\n\n", s.PreprocessRounds)
	fmt.Println("| ε | iterations | rounds | ‖x−y‖_L / ‖x‖_L |")
	fmt.Println("|---|---|---|---|")
	epss := []float64{1e-2, 1e-4, 1e-6, 1e-8}
	if quick {
		epss = []float64{1e-2, 1e-6}
	}
	for _, eps := range epss {
		y, st, err := s.SolveCtx(ctx, b, eps)
		if err != nil {
			return err
		}
		rel := lapsolver.ErrorInLNorm(g, want, y) / normX
		fmt.Printf("| %.0e | %d | %d | %.2e |\n", eps, st.Iterations, st.Rounds, rel)
	}
	return nil
}

// e6: leverage scores, JL vs exact.
func e6(ctx context.Context, quick bool) error {
	header("e6", "Lemma 4.5: Kane–Nelson leverage scores within (1±η)")
	rnd := rand.New(rand.NewSource(3))
	m, n := 60, 6
	if quick {
		m = 30
	}
	var ts []linalg.Triple
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ts = append(ts, linalg.Triple{Row: i, Col: j, Val: rnd.NormFloat64()})
		}
	}
	a := linalg.NewCSR(m, n, ts)
	d := linalg.Ones(m)
	mul, mulT := jl.DiagScaledOps(a, d)
	solve, err := jl.DenseGramSolver(a, d)
	if err != nil {
		return err
	}
	exact, err := jl.LeverageScoresExact(mul, mulT, m, n, solve)
	if err != nil {
		return err
	}
	fmt.Println("| sketch dim k | max relative error | solves (vs m exact) |")
	fmt.Println("|---|---|---|")
	for _, k := range []int{8, 16, 32, 64} {
		sk, err := jl.NewKaneNelson(k, m, 0, int64(k))
		if err != nil {
			return err
		}
		approx, err := jl.LeverageScoresApprox(mul, mulT, m, n, solve, sk)
		if err != nil {
			return err
		}
		var worst float64
		for i := range exact {
			if exact[i] < 1e-9 {
				continue
			}
			if r := math.Abs(approx[i]-exact[i]) / exact[i]; r > worst {
				worst = r
			}
		}
		fmt.Printf("| %d | %.3f | %d vs %d |\n", sk.K(), worst, sk.K(), m)
	}
	return nil
}

// e7: mixed-ball projection correctness + round scaling.
func e7(ctx context.Context, quick bool) error {
	header("e7", "Lemma 4.10: projection rounds grow polylog in m")
	ms := []int{64, 256, 1024}
	if quick {
		ms = []int{64, 256}
	}
	fmt.Println("| m | rounds | naive (≈ m) |")
	fmt.Println("|---|---|---|")
	for _, m := range ms {
		rnd := rand.New(rand.NewSource(int64(m)))
		a := make([]float64, m)
		l := make([]float64, m)
		for i := range a {
			a[i] = rnd.NormFloat64()
			l[i] = 0.5 + rnd.Float64()
		}
		net, err := sim.NewNetwork(sim.Config{N: m, Mode: sim.ModeBCC})
		if err != nil {
			return err
		}
		lp.ProjectMixedBall(a, l, net)
		fmt.Printf("| %d | %d | %d |\n", m, net.Rounds(), m)
	}
	return nil
}

// e8: LP path steps ∝ √n.
func e8(ctx context.Context, quick bool) error {
	header("e8", "Theorem 1.4: path steps = Õ(√n·log(U/ε))")
	ns := []int{1, 4, 9, 16}
	if quick {
		ns = []int{1, 4, 9}
	}
	fmt.Println("| n | path steps | steps/√n |")
	fmt.Println("|---|---|---|")
	for _, n := range ns {
		m := 3 * n
		var ts []linalg.Triple
		c := make([]float64, m)
		for blk := 0; blk < n; blk++ {
			for j := 0; j < 3; j++ {
				row := 3*blk + j
				ts = append(ts, linalg.Triple{Row: row, Col: blk, Val: 1})
				c[row] = float64(j + 1)
			}
		}
		prob := &lp.Problem{
			A: linalg.NewCSR(m, n, ts),
			B: linalg.Ones(n),
			C: c,
			L: make([]float64, m),
			U: linalg.Ones(m),
		}
		sol, err := lp.Solve(prob, linalg.Constant(m, 1.0/3), 0.1, lp.Params{Seed: 1})
		if err != nil {
			return err
		}
		fmt.Printf("| %d | %d | %.1f |\n", n, sol.PathSteps, float64(sol.PathSteps)/math.Sqrt(float64(n)))
	}
	return nil
}

// e9: exact min-cost max-flow, LP pipeline vs SSP.
func e9(ctx context.Context, quick bool) error {
	header("e9", "Theorem 1.1: exact MCMF via the LP pipeline (vs SSP baseline)")
	trials := 6
	if quick {
		trials = 3
	}
	fmt.Println("| trial | n | m | value | cost | = baseline | LP path steps |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for trial := 0; trial < trials; trial++ {
		rnd := rand.New(rand.NewSource(int64(trial + 1)))
		d := graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd)
		wantV, wantC, _, err := flow.MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			return err
		}
		res, err := flow.MinCostMaxFlowCtx(ctx, d, 0, d.N()-1, flow.Options{
			Backend: flowBackend,
			Rand:    rand.New(rand.NewSource(int64(trial + 100))),
		})
		if err != nil {
			return err
		}
		match := "yes"
		if res.Value != wantV || res.Cost != wantC {
			match = "NO"
		}
		fmt.Printf("| %d | %d | %d | %d | %d | %s | %d |\n",
			trial, d.N(), d.M(), res.Value, res.Cost, match, res.LPStats.PathSteps)
	}
	return nil
}

// e10: Gremban reduction accuracy.
func e10(ctx context.Context, quick bool) error {
	header("e10", "Lemma 5.1: SDD solving through the 2n-vertex Laplacian reduction")
	ns := []int{8, 16, 32}
	if quick {
		ns = []int{8, 16}
	}
	fmt.Println("| n | relative error vs dense |")
	fmt.Println("|---|---|")
	for _, n := range ns {
		rnd := rand.New(rand.NewSource(int64(n)))
		g := graph.RandomConnected(n, 0.4, 3, rnd)
		m := g.Laplacian().Dense()
		for i := 0; i < n; i++ {
			m.Inc(i, i, 0.5+rnd.Float64())
		}
		y := make([]float64, n)
		for i := range y {
			y[i] = rnd.NormFloat64()
		}
		want, err := m.Solve(y)
		if err != nil {
			return err
		}
		got, _, err := lapsolver.SDDSolve(context.Background(), m, y, lapsolver.CGLapSolve)
		if err != nil {
			return err
		}
		rel := linalg.Norm2(linalg.Sub(got, want)) / (1 + linalg.Norm2(want))
		fmt.Printf("| %d | %.2e |\n", n, rel)
	}
	return nil
}

// e11: bundle size ablation.
func e11(ctx context.Context, quick bool) error {
	header("e11", "Ablation: bundle size t vs sparsifier size and quality")
	rnd := rand.New(rand.NewSource(11))
	n := 40
	if quick {
		n = 28
	}
	g := graph.RandomConnected(n, 0.6, 2, rnd)
	fmt.Println("| t | kept edges | band lo | band hi |")
	fmt.Println("|---|---|---|---|")
	for _, t := range []int{1, 2, 4, 8} {
		par := sparsify.Params{K: 4, T: t, Iterations: 6}
		res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(t))), nil)
		lo, hi := sparsify.Quality(g, res.H, 5, rand.New(rand.NewSource(7)))
		fmt.Printf("| %d | %d | %.3f | %.3f |\n", t, res.H.M(), lo, hi)
	}
	return nil
}

// e15: AᵀDA backend comparison — identical certified flows, wall-clock per
// backend (the table EXPERIMENTS.md records for the LinOp refactor).
func e15(ctx context.Context, quick bool) error {
	header("e15", "Backend registry: identical certified (value, cost), per-backend wall-clock")
	ns := []int{6, 10, 14}
	if quick {
		ns = []int{6, 10}
	}
	fmt.Println("| n | m | backend | value | cost | = baseline | time |")
	fmt.Println("|---|---|---|---|---|---|---|")
	for _, n := range ns {
		rnd := rand.New(rand.NewSource(int64(n)))
		d := graph.RandomFlowNetwork(n, 0.3, 3, 3, rnd)
		wantV, wantC, _, err := flow.MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			return err
		}
		for _, backend := range lp.Backends() {
			start := time.Now()
			res, err := flow.MinCostMaxFlowCtx(ctx, d, 0, d.N()-1, flow.Options{
				Backend: backend,
				Rand:    rand.New(rand.NewSource(int64(n * 100))),
			})
			if err != nil {
				return fmt.Errorf("backend %s: %w", backend, err)
			}
			match := "yes"
			if res.Value != wantV || res.Cost != wantC {
				match = "NO"
			}
			fmt.Printf("| %d | %d | %s | %d | %d | %s | %v |\n",
				d.N(), d.M(), backend, res.Value, res.Cost, match, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// e12: orientation out-degree vs naive globalization.
func e12(ctx context.Context, quick bool) error {
	header("e12", "Theorem 1.2's orientation: globalization rounds = max out-degree")
	ns := []int{24, 40}
	if quick {
		ns = []int{24}
	}
	fmt.Println("| n | sparsifier edges (naive rounds) | max out-degree (oriented rounds) |")
	fmt.Println("|---|---|---|")
	for _, n := range ns {
		g := graph.Complete(n)
		par := sparsify.Params{K: 4, T: 2, Iterations: 6}
		res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(n))), nil)
		fmt.Printf("| %d | %d | %d |\n", n, res.H.M(), res.MaxOutDegree())
	}
	return nil
}

// e17: session amortization — one-shot MinCostMaxFlow vs FlowSolver batch
// with warm starts, per backend (the "Sessions & reuse" table of
// EXPERIMENTS.md; BENCH_session.json snapshots the same comparison).
func e17(ctx context.Context, quick bool) error {
	header("e17", "Session API: batch per-query time vs one-shot, identical certified results")
	batchLen := 6
	if quick {
		batchLen = 4
	}
	rnd := rand.New(rand.NewSource(18))
	d := graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd)
	s, t := 0, d.N()-1
	wantV, wantC, _, err := flow.MinCostMaxFlowSSP(d, s, t)
	if err != nil {
		return err
	}
	fmt.Println("| backend | one-shot | batch/query | speedup | warm | = baseline |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, backend := range lp.Backends() {
		start := time.Now()
		one, err := flow.MinCostMaxFlowCtx(ctx, d, s, t, flow.Options{Backend: backend, Seed: flow.SeedOf(18)})
		if err != nil {
			return fmt.Errorf("backend %s: %w", backend, err)
		}
		oneShot := time.Since(start)
		fs, err := flow.NewSolver(d, flow.Options{Backend: backend, Seed: flow.SeedOf(18)})
		if err != nil {
			return err
		}
		queries := make([]flow.Query, batchLen)
		for i := range queries {
			queries[i] = flow.Query{S: s, T: t}
		}
		start = time.Now()
		results, err := fs.SolveBatch(ctx, queries)
		if err != nil {
			return fmt.Errorf("backend %s batch: %w", backend, err)
		}
		perQuery := time.Since(start) / time.Duration(batchLen)
		warm := 0
		match := "yes"
		for _, r := range results {
			if r.WarmStarted {
				warm++
			}
			if r.Value != wantV || r.Cost != wantC {
				match = "NO"
			}
		}
		if one.Value != wantV || one.Cost != wantC {
			match = "NO"
		}
		fmt.Printf("| %s | %v | %v | %.0fx | %d/%d | %s |\n",
			backend, oneShot.Round(time.Millisecond), perQuery.Round(time.Microsecond),
			float64(oneShot)/float64(max(perQuery, 1)), warm, batchLen, match)
	}
	return nil
}

// e19: combinatorial preconditioning — full certified queries through
// csr-cg (Jacobi only) vs csr-pcg (spanner-built spanning-forest
// incomplete Cholesky, symbolic structure reused across IPM steps and
// queries): total inner CG iterations, preconditioner counters and wall
// clock per query (the table EXPERIMENTS.md §e19 records;
// BENCH_precond.json snapshots the same comparison with its gates).
func e19(ctx context.Context, quick bool) error {
	header("e19", "Combinatorial preconditioning: csr-pcg vs csr-cg inner iterations per query")
	ns := []int{8, 12}
	if quick {
		ns = []int{8}
	}
	fmt.Println("| n | m | backend | cg iters | path steps | builds | refreshes | = baseline | time |")
	fmt.Println("|---|---|---|---|---|---|---|---|---|")
	for _, n := range ns {
		rnd := rand.New(rand.NewSource(int64(n)))
		d := graph.RandomFlowNetwork(n, 0.1, 3, 3, rnd)
		wantV, wantC, _, err := flow.MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			return err
		}
		for _, backend := range []string{"csr-cg", "csr-pcg"} {
			fs, err := flow.NewSolver(d, flow.Options{Backend: backend, Seed: flow.SeedOf(18)})
			if err != nil {
				return err
			}
			start := time.Now()
			res, err := fs.Solve(ctx, 0, d.N()-1)
			if err != nil {
				return fmt.Errorf("backend %s: %w", backend, err)
			}
			match := "yes"
			if res.Value != wantV || res.Cost != wantC {
				match = "NO"
			}
			fmt.Printf("| %d | %d | %s | %d | %d | %d | %d | %s | %v |\n",
				d.N(), d.M(), backend, res.LPStats.CGIterations, res.LPStats.PathSteps,
				res.LPStats.PrecondBuilds, res.LPStats.PrecondRefreshes, match,
				time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// e20: multi-tenant service layer — two named tenants behind one
// bcclap.Service, a repeat-heavy production stream per tenant, and the
// certified-result cache in front of each pooled solver: hit counts,
// per-query wall clock cached vs uncached vs the single-tenant PR-3
// baseline, and the swap-invalidation behavior (the table EXPERIMENTS.md
// §e20 records; TestBenchServiceSnapshot gates it in CI).
func e20(ctx context.Context, quick bool) error {
	header("e20", "Service layer: multi-tenant certified-result cache vs single-tenant baseline")
	repeats := 4
	if quick {
		repeats = 2
	}
	type tenant struct {
		name string
		d    *graph.Digraph
	}
	tenants := []tenant{
		{"tenant-a", graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(19)))},
		{"tenant-b", graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(20)))},
	}
	streams := map[string][]bcclap.FlowQuery{}
	for _, tn := range tenants {
		var pairs []bcclap.FlowQuery
		for s := 0; s < tn.d.N() && len(pairs) < 3; s++ {
			for t := tn.d.N() - 1; t > s && len(pairs) < 3; t-- {
				if v, _, _, err := flow.MinCostMaxFlowSSP(tn.d, s, t); err == nil && v > 0 {
					pairs = append(pairs, bcclap.FlowQuery{S: s, T: t})
				}
			}
		}
		var stream []bcclap.FlowQuery
		for r := 0; r < repeats; r++ {
			stream = append(stream, pairs...)
		}
		streams[tn.name] = stream
	}

	fmt.Println("| tenant | round | queries | hits | per-query | = baseline |")
	fmt.Println("|---|---|---|---|---|---|")
	for _, cached := range []bool{false, true} {
		size := 0
		if cached {
			size = bcclap.DefaultCacheSize
		}
		svc := bcclap.NewService(bcclap.WithSeed(7), bcclap.WithPoolSize(2), bcclap.WithCacheSize(size))
		for _, tn := range tenants {
			h, err := svc.Register(tn.name, tn.d)
			if err != nil {
				return err
			}
			baseline, err := bcclap.NewFlowSolver(tn.d, bcclap.WithSeed(7), bcclap.WithPoolSize(2))
			if err != nil {
				return err
			}
			want, err := baseline.SolveBatch(ctx, streams[tn.name])
			if err != nil {
				return err
			}
			baseline.Close()
			for round := 1; round <= 2; round++ {
				before := h.Stats().Cache.Hits
				start := time.Now()
				got, err := h.SolveBatch(ctx, streams[tn.name])
				if err != nil {
					return err
				}
				perQuery := time.Since(start) / time.Duration(len(got))
				match := "yes"
				for i := range got {
					if got[i].Value != want[i].Value || got[i].Cost != want[i].Cost {
						match = "NO"
					}
				}
				label := fmt.Sprintf("%s (uncached)", tn.name)
				if cached {
					label = fmt.Sprintf("%s (cache %d)", tn.name, size)
				}
				fmt.Printf("| %s | %d | %d | %d | %v | %s |\n",
					label, round, len(got), h.Stats().Cache.Hits-before,
					perQuery.Round(time.Microsecond), match)
			}
		}
		if cached {
			// Demonstrate whole-tenant invalidation: swap tenant-a and show
			// its next round is cold again while tenant-b stays hot.
			a, err := svc.Get("tenant-a")
			if err != nil {
				return err
			}
			if err := a.Swap(graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(21)))); err != nil {
				return err
			}
			st := svc.ServiceStats()
			fmt.Printf("\nafter Swap(tenant-a): version=%d, invalidations=%d, tenant-b entries kept=%d\n",
				st.PerNetwork[0].Version, st.PerNetwork[0].Cache.Invalidations, st.PerNetwork[1].Cache.Entries)
		}
		svc.Close()
	}
	return nil
}

// e21: durable tenant state — the WAL append tax per journaled mutation
// (fsync'd vs buffered), recovery wall-clock against tenant count, and
// the arc-level patch path against the full swap it replaces, with the
// selective cache invalidation it enables (the table EXPERIMENTS.md §e21
// records; TestBenchStoreSnapshot gates it in CI).
func e21(ctx context.Context, quick bool) error {
	header("e21", "Durable store: WAL append tax, recovery scaling, patch vs swap")
	recs := 256
	counts := []int{1, 4, 8}
	if quick {
		recs = 64
		counts = []int{1, 4}
	}
	d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(23)))
	deltas := []bcclap.ArcDelta{{Arc: 0, CapDelta: 1, CostDelta: 1}, {Arc: d.M() - 1, CostDelta: 1}}

	// WAL append tax per record, with and without fsync.
	fmt.Println("| fsync | records | ns/record |")
	fmt.Println("|---|---|---|")
	for _, pol := range []struct {
		name string
		sync store.SyncPolicy
	}{{"always", store.SyncAlways}, {"never", store.SyncNever}} {
		dir, err := os.MkdirTemp("", "bcclap-e21-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		lg, err := store.Open(dir, store.Options{Sync: pol.sync, SnapshotEvery: -1})
		if err != nil {
			return err
		}
		reg := store.Record{
			Type: store.RecRegister, Name: "t", Version: 1,
			Opts: store.TenantOpts{Backend: "dense", Tol: 1e-6}, N: d.N(), Arcs: d.Arcs(),
		}
		if err := lg.Append(reg); err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < recs; i++ {
			rec := store.Record{Type: store.RecPatch, Name: "t", Version: uint64(i) + 2, Deltas: deltas}
			if err := lg.Append(rec); err != nil {
				return err
			}
		}
		perRec := time.Since(start).Nanoseconds() / int64(recs)
		lg.Close()
		fmt.Printf("| %s | %d | %d |\n", pol.name, recs, perRec)
	}

	// Recovery wall-clock vs tenant count.
	fmt.Println("\n| tenants | recovery | per tenant |")
	fmt.Println("|---|---|---|")
	for _, n := range counts {
		dir, err := os.MkdirTemp("", "bcclap-e21-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		svc, err := bcclap.OpenService(bcclap.WithStore(dir), bcclap.WithSeed(7), bcclap.WithPoolSize(1))
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			dt := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(60+int64(i))))
			if _, err := svc.Register(fmt.Sprintf("t%d", i), dt); err != nil {
				return err
			}
		}
		if err := svc.Drain(ctx); err != nil {
			return err
		}
		start := time.Now()
		re, err := bcclap.OpenService(bcclap.WithStore(dir), bcclap.WithSeed(7), bcclap.WithPoolSize(1))
		if err != nil {
			return err
		}
		wall := time.Since(start)
		if got := len(re.Names()); got != n {
			re.Close()
			return fmt.Errorf("recovered %d tenants, want %d", got, n)
		}
		re.Close()
		fmt.Printf("| %d | %v | %v |\n", n, wall.Round(time.Microsecond), (wall / time.Duration(n)).Round(time.Microsecond))
	}

	// Patch vs swap on a live tenant, resolve included, plus the cache
	// behavior the patch path preserves.
	svc := bcclap.NewService(bcclap.WithSeed(7), bcclap.WithPoolSize(1))
	defer svc.Close()
	h, err := svc.Register("prod", d)
	if err != nil {
		return err
	}
	if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
		return err
	}
	start := time.Now()
	if err := h.PatchArcs(deltas); err != nil {
		return err
	}
	res, err := h.Solve(ctx, 0, d.N()-1)
	if err != nil {
		return err
	}
	patchWall := time.Since(start)
	patched := d.Clone()
	if err := patched.ApplyDeltas(deltas); err != nil {
		return err
	}
	start = time.Now()
	if err := h.Swap(patched); err != nil {
		return err
	}
	if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
		return err
	}
	swapWall := time.Since(start)
	fmt.Println("\n| path | mutate+resolve | warm started | path steps |")
	fmt.Println("|---|---|---|---|")
	fmt.Printf("| PatchArcs | %v | %v | %d |\n", patchWall.Round(time.Microsecond), res.Stats.WarmStarted, res.PathSteps)
	fmt.Printf("| Swap | %v | — (cold) | — |\n", swapWall.Round(time.Microsecond))
	fmt.Printf("\npatch speedup vs swap: %.1f×\n", float64(swapWall)/float64(patchWall))
	return nil
}

// e22: per-tenant QoS and telemetry — a flooded, rate-limited tenant
// next to a quiet one on the same service: the quiet tenant's latency
// quantiles with and without the flood, the noisy tenant's goodput vs
// rejection count, and the telemetry tax on the cached hot path (the
// table EXPERIMENTS.md §e22 records; TestBenchQoSSnapshot gates it in
// CI).
func e22(ctx context.Context, quick bool) error {
	header("e22", "QoS: admission gate isolates tenants; telemetry rides the hot path for free")
	solves := 200
	if quick {
		solves = 60
	}
	dQuiet := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(29)))
	dNoisy := graph.RandomFlowNetwork(4, 0.5, 3, 3, rand.New(rand.NewSource(30)))

	svc := bcclap.NewService(bcclap.WithSeed(7), bcclap.WithPoolSize(2))
	defer svc.Close()
	quiet, err := svc.Register("quiet", dQuiet, bcclap.WithCacheSize(0))
	if err != nil {
		return err
	}
	noisy, err := svc.Register("noisy", dNoisy, bcclap.WithCacheSize(0))
	if err != nil {
		return err
	}
	// Warm both pools to steady state, then gate the noisy tenant the way
	// an operator would: at runtime, through SetLimits.
	for i := 0; i < 6; i++ {
		if _, err := quiet.Solve(ctx, 0, dQuiet.N()-1); err != nil {
			return err
		}
		if _, err := noisy.Solve(ctx, 0, dNoisy.N()-1); err != nil {
			return err
		}
	}
	limits := bcclap.Limits{RatePerSec: 5, Burst: 1, MaxInFlight: 1, QueueDepth: 2}
	if err := noisy.SetLimits(limits); err != nil {
		return err
	}

	quantile := func(ds []time.Duration, p float64) time.Duration {
		s := append([]time.Duration(nil), ds...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[int(p*float64(len(s)-1))]
	}
	runQuiet := func() ([]time.Duration, error) {
		lat := make([]time.Duration, solves)
		for i := range lat {
			start := time.Now()
			if _, err := quiet.Solve(ctx, 0, dQuiet.N()-1); err != nil {
				return nil, err
			}
			lat[i] = time.Since(start)
		}
		return lat, nil
	}

	base, err := runQuiet()
	if err != nil {
		return err
	}
	var completed, rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var floodErr atomic.Value
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := noisy.Solve(ctx, 0, dNoisy.N()-1); err != nil {
					if !errors.Is(err, bcclap.ErrOverloaded) {
						floodErr.Store(err)
						return
					}
					rejected.Add(1)
					time.Sleep(2 * time.Millisecond)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	// Wait for the flood to engage (first rejection) before measuring:
	// on a single-P runtime the quiet loop's channel ping-pong with the
	// pool workers can otherwise keep the flood goroutines parked.
	for deadline := time.Now().Add(10 * time.Second); rejected.Load() == 0; {
		if time.Now().After(deadline) {
			return fmt.Errorf("e22: flood produced no rejection within 10s")
		}
		if e := floodErr.Load(); e != nil {
			return fmt.Errorf("e22: flood error: %v", e)
		}
		time.Sleep(time.Millisecond)
	}
	floodStart := time.Now()
	flood, err := runQuiet()
	window := time.Since(floodStart)
	close(stop)
	wg.Wait()
	if err != nil {
		return err
	}
	if e := floodErr.Load(); e != nil {
		return e.(error)
	}

	fmt.Printf("noisy limits (SetLimits at runtime): %+v\n\n", limits)
	fmt.Println("| quiet tenant | p50 | p99 |")
	fmt.Println("|---|---|---|")
	fmt.Printf("| unloaded | %v | %v |\n",
		quantile(base, 0.5).Round(time.Microsecond), quantile(base, 0.99).Round(time.Microsecond))
	fmt.Printf("| 8-goroutine flood on noisy | %v | %v |\n",
		quantile(flood, 0.5).Round(time.Microsecond), quantile(flood, 0.99).Round(time.Microsecond))
	ad := noisy.Stats().Admission
	fmt.Printf("\nnoisy under flood: %d admitted solves (%.1f/s goodput), %d rejected (queue_full=%d deadline=%d), retry-after hint %v\n",
		completed.Load(), float64(completed.Load())/window.Seconds(), rejected.Load(),
		ad.RejectedQueueFull, ad.RejectedDeadline, noisy.RetryAfter().Round(time.Millisecond))

	// Telemetry tax: pure cache hits, registry on vs off.
	fmt.Println("\n| cached hot path | hits/s |")
	fmt.Println("|---|---|")
	for _, on := range []bool{true, false} {
		s := bcclap.NewService(bcclap.WithSeed(7), bcclap.WithPoolSize(1), bcclap.WithTelemetry(on))
		h, err := s.Register("bench", dQuiet)
		if err != nil {
			s.Close()
			return err
		}
		if _, err := h.Solve(ctx, 0, dQuiet.N()-1); err != nil {
			s.Close()
			return err
		}
		const hits = 20000
		best := time.Hour
		for r := 0; r < 5; r++ {
			start := time.Now()
			for i := 0; i < hits; i++ {
				if _, err := h.Solve(ctx, 0, dQuiet.N()-1); err != nil {
					s.Close()
					return err
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		label := "telemetry on"
		if !on {
			label = "telemetry off"
		}
		fmt.Printf("| %s | %.0f |\n", label, float64(hits)/best.Seconds())
		s.Close()
	}
	return nil
}
