// Command bcclap-sparsify computes a spectral sparsifier of a graph with
// the Broadcast CONGEST algorithm (Theorem 1.2) and reports size, round
// cost and the measured spectral band.
//
// Input (stdin): "n m" then m lines "u v w"; or -random N for a random
// connected graph.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"bcclap"
	"bcclap/internal/graph"
	"bcclap/internal/sparsify"
)

func main() {
	randomN := flag.Int("random", 0, "generate a random connected graph on N vertices")
	seed := flag.Int64("seed", 1, "random seed")
	t := flag.Int("t", 2, "bundle size (spanners per bundle)")
	k := flag.Int("k", 4, "spanner stretch parameter (stretch 2k−1)")
	flag.Parse()
	if err := run(*randomN, *seed, *t, *k); err != nil {
		fmt.Fprintln(os.Stderr, "bcclap-sparsify:", err)
		os.Exit(1)
	}
}

func run(randomN int, seed int64, t, k int) error {
	var g *graph.Graph
	if randomN > 0 {
		g = graph.RandomConnected(randomN, 0.5, 4, rand.New(rand.NewSource(seed)))
		fmt.Printf("random instance: n=%d m=%d\n", g.N(), g.M())
	} else {
		var err error
		g, err = readGraph(os.Stdin)
		if err != nil {
			return err
		}
	}
	net, err := bcclap.NewBroadcastCONGESTNetwork(g)
	if err != nil {
		return err
	}
	res, err := bcclap.Sparsify(g, 0.5, bcclap.SparsifyOptions{
		Seed:   seed,
		Net:    net,
		Params: sparsify.Params{K: k, T: t, Iterations: 0},
	})
	if err != nil {
		return err
	}
	lo, hi := bcclap.SparsifierQuality(g, res.H, seed)
	fmt.Printf("kept %d of %d edges (%.1f%%)\n", res.H.M(), g.M(), 100*float64(res.H.M())/float64(g.M()))
	fmt.Printf("spectral band: [%.3f, %.3f]\n", lo, hi)
	fmt.Printf("Broadcast CONGEST rounds: %d\n", res.Rounds)
	fmt.Printf("orientation max out-degree: %d\n", res.MaxOutDegree)
	return nil
}

func readGraph(f *os.File) (*graph.Graph, error) {
	r := bufio.NewReader(f)
	var n, m int
	if _, err := fmt.Fscan(r, &n, &m); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	g := graph.New(n)
	for i := 0; i < m; i++ {
		var u, v int
		var w float64
		if _, err := fmt.Fscan(r, &u, &v, &w); err != nil {
			return nil, fmt.Errorf("read edge %d: %w", i, err)
		}
		if _, err := g.AddEdge(u, v, w); err != nil {
			return nil, err
		}
	}
	return g, nil
}
