package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

// PATCH /v1/networks/{name}/arcs must bump the version, count the patch,
// and change the served answers exactly as an independently patched
// network would.
func TestServePatchArcs(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	deltas := []map[string]any{
		{"arc": 0, "cap_delta": 2, "cost_delta": 1},
		{"arc": d.M() - 1, "cost_delta": 2},
	}
	patched := d.Clone()
	if err := patched.ApplyDeltas([]graph.ArcDelta{
		{Arc: 0, CapDelta: 2, CostDelta: 1},
		{Arc: d.M() - 1, CostDelta: 2},
	}); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(map[string]any{"deltas": deltas})
	resp := doReq(t, http.MethodPatch, ts.URL+"/v1/networks/"+defaultTenant+"/arcs", body)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH: status %d, want 200", resp.StatusCode)
	}
	var nr networkResponse
	if err := json.NewDecoder(resp.Body).Decode(&nr); err != nil {
		t.Fatal(err)
	}
	if nr.Version != 2 || nr.Patches != 1 {
		t.Fatalf("PATCH response %+v, want version 2 with 1 patch", nr)
	}

	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(patched, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	qbody, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1})
	qresp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	var fr flowResponse
	if err := json.NewDecoder(qresp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Value != wantV || fr.Cost != wantC {
		t.Fatalf("post-patch solve (%d, %d), patched baseline (%d, %d)", fr.Value, fr.Cost, wantV, wantC)
	}
}

// Satellite: malformed PUT and PATCH bodies answer 400 with the sentinel
// error's name in the body, so clients can tell a bad request from a
// solver failure without string-scraping free text.
func TestServeMalformedBodies(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	cases := []struct {
		method, url, body, sentinel string
	}{
		{http.MethodPut, "/v1/networks/x", `not json`, "malformed network spec"},
		{http.MethodPut, "/v1/networks/x", `{"n": 3, "arcs": [[0,0,1,1]]}`, "malformed network spec"},
		{http.MethodPatch, "/v1/networks/" + defaultTenant + "/arcs", `not json`, "malformed network spec"},
		{http.MethodPatch, "/v1/networks/" + defaultTenant + "/arcs", `{"deltas": []}`, "bad arc delta"},
		{http.MethodPatch, "/v1/networks/" + defaultTenant + "/arcs", `{"deltas": [{"arc": 9999}]}`, "bad arc delta"},
		{http.MethodPatch, "/v1/networks/" + defaultTenant + "/arcs", `{"deltas": [{"arc": 0, "cap_delta": -100}]}`, "bad arc delta"},
	}
	for _, tc := range cases {
		resp := doReq(t, tc.method, ts.URL+tc.url, []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			resp.Body.Close()
			t.Fatalf("%s %s %q: status %d, want 400", tc.method, tc.url, tc.body, resp.StatusCode)
		}
		var er errorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !strings.Contains(er.Error, tc.sentinel) {
			t.Fatalf("%s %s %q: error %q does not name the sentinel %q", tc.method, tc.url, tc.body, er.Error, tc.sentinel)
		}
	}
	// Patches against an unknown tenant are 404, not 400.
	resp := doReq(t, http.MethodPatch, ts.URL+"/v1/networks/nobody/arcs", []byte(`{"deltas":[{"arc":0}]}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PATCH unknown tenant: status %d, want 404", resp.StatusCode)
	}
}

// Satellite: a tenant rejecting a mutation mid-swap answers 429 with a
// short Retry-After so clients retry instead of treating it as fatal.
func TestServeBusyRetryAfter(t *testing.T) {
	s, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	s.writeError(rec, httptest.NewRequest(http.MethodPost, "/v1/flow", nil),
		fmt.Errorf("wrap: %w", bcclap.ErrNetworkBusy))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("busy error: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("busy error: Retry-After %q, want \"1\"", ra)
	}
}

// Acceptance (tentpole): a daemon backed by -data-dir, killed and
// restarted over the same directory, serves every tenant — registered
// and patched over HTTP — at the same version with bit-identical
// answers, with no re-registration.
func TestServeRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(3)))
	dT := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(17)))

	open := func() (*bcclap.Service, *httptest.Server) {
		t.Helper()
		svc, err := bcclap.OpenService(
			bcclap.WithStore(dir), bcclap.WithSeed(3), bcclap.WithPoolSize(2))
		if err != nil {
			t.Fatal(err)
		}
		return svc, httptest.NewServer(newServer(svc, 5*time.Minute, 7*time.Second, 3).routes())
	}
	solve := func(ts *httptest.Server, tenant string, n int) flowResponse {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"s": 0, "t": n - 1, "include_flows": true})
		resp, err := http.Post(ts.URL+"/v1/networks/"+tenant+"/flow", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flow %s: status %d", tenant, resp.StatusCode)
		}
		var fr flowResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}

	// First life: register default + one tenant over HTTP, patch the
	// tenant, record its answer, then drain (the SIGTERM path).
	svc, ts := open()
	if _, err := svc.Register(defaultTenant, d); err != nil {
		t.Fatal(err)
	}
	resp := doReq(t, http.MethodPut, ts.URL+"/v1/networks/team", specJSON(t, dT, nil))
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT team: status %d", resp.StatusCode)
	}
	pbody, _ := json.Marshal(map[string]any{"deltas": []map[string]any{{"arc": 0, "cap_delta": 1, "cost_delta": 1}}})
	resp = doReq(t, http.MethodPatch, ts.URL+"/v1/networks/team/arcs", pbody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH team: status %d", resp.StatusCode)
	}
	before := solve(ts, "team", dT.N())
	beforeDefault := solve(ts, defaultTenant, d.N())
	ts.Close()
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Second life: same directory, no Register calls for "team".
	svc2, ts2 := open()
	defer ts2.Close()
	defer svc2.Close()
	// main() tolerates ErrNetworkExists for the default tenant on restart
	// (the replayed state wins); mirror that here.
	if _, err := svc2.Register(defaultTenant, d); err != nil && !errors.Is(err, bcclap.ErrNetworkExists) {
		t.Fatal(err)
	}
	h, err := svc2.Get("team")
	if err != nil {
		t.Fatalf("tenant lost across restart: %v", err)
	}
	if st := h.Stats(); st.Version != 2 || st.Patches != 1 {
		t.Fatalf("team recovered at v%d with %d patches, want v2 with 1", st.Version, st.Patches)
	}
	after := solve(ts2, "team", dT.N())
	if after.Value != before.Value || after.Cost != before.Cost ||
		fmt.Sprint(after.Flows) != fmt.Sprint(before.Flows) {
		t.Fatalf("post-restart answer diverged: %+v vs %+v", after, before)
	}
	afterDefault := solve(ts2, defaultTenant, d.N())
	if afterDefault.Value != beforeDefault.Value || afterDefault.Cost != beforeDefault.Cost {
		t.Fatal("default tenant diverged across restart")
	}
}
