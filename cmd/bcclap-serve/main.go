// Command bcclap-serve is an always-on, multi-tenant HTTP/JSON daemon
// serving certified min-cost max-flow queries (Theorem 1.1 as a service).
// One process fronts many named, versioned flow networks through a
// bcclap.Service: each tenant owns a sharded pool of solver sessions plus
// a certified-result cache, networks are registered, swapped and retired
// over REST without restarting the daemon, and repeated queries against
// an unchanged network are answered in O(1) from the cache — bit-identical
// to a fresh solve, because every result is exact and deterministic.
//
// Endpoints:
//
//	PUT    /v1/networks/{name}            register (201) or atomically swap (200)
//	PATCH  /v1/networks/{name}/arcs       incremental arc cap/cost deltas
//	GET    /v1/networks                   list tenants with stats
//	GET    /v1/networks/{name}            one tenant's stats
//	GET    /v1/networks/{name}/stats      alias of the above
//	DELETE /v1/networks/{name}            drain and deregister
//	POST   /v1/networks/{name}/flow       {"s": 0, "t": 5, "include_flows": true}
//	POST   /v1/networks/{name}/flow/batch {"queries": [{"s": 0, "t": 5}, ...]}
//	PATCH  /v1/networks/{name}/limits     change a tenant's QoS limits at runtime
//	POST   /v1/flow                       legacy: routes to the "default" tenant
//	POST   /v1/flow/batch                 legacy: routes to the "default" tenant
//	GET    /v1/stats                      service-wide counters
//	GET    /metrics                       Prometheus text exposition (disable with -metrics=false)
//	GET    /healthz                       readiness probe: 200 only once store replay
//	                                      finished and while not draining, else 503
//
// Per-tenant QoS: -rate-limit/-burst/-max-in-flight/-queue-depth set
// daemon-wide admission defaults, and a PUT spec or a PATCH .../limits
// body overrides them per tenant. A tenant at its limits queues up to the
// admission-queue bound and then rejects with 429; the Retry-After header
// on those responses is computed from the tenant's queue depth and recent
// mean solve latency rather than a constant. Every request is tagged with
// an X-Trace-Id (minted unless the client sent one), echoed in the
// response headers, the structured request log and error bodies, and
// threaded into each solve's Stats.
//
// With -data-dir the daemon is durable: tenant lifecycle mutations
// (register, swap, arc patches, deregister) are journaled to a
// write-ahead log under the directory before they take effect, and a
// restarted daemon replays it — every network comes back at its last
// version with its solver configuration, serving bit-identical results,
// without any re-registration. -fsync and -snapshot-every tune the
// durability/throughput trade-off and the compaction cadence.
//
// PATCH /v1/networks/{name}/arcs takes {"deltas": [{"arc": i,
// "cap_delta": c, "cost_delta": q}, ...]} — additive, all-or-nothing,
// topology-preserving. A patch keeps the tenant's solver pool alive
// (warm-start state included, so the next solve of an affected pair
// re-centers instead of re-running path following) and invalidates only
// the cached results the deltas actually touch. Malformed bodies and
// delta sets are rejected with 400 and a sentinel-bearing error message;
// a patch or swap racing another mutation of the same tenant gets 429
// with a Retry-After hint.
//
// The legacy single-network flags still work: -network FILE ("n m" header
// then m lines "from to capacity cost") or -random N registers the
// "default" tenant at startup, which is what the legacy /v1/flow routes
// answer from. Without either flag the daemon starts empty and tenants
// arrive over PUT. SIGINT/SIGTERM drains gracefully: the listener stops,
// in-flight solves finish (bounded by -drain-timeout), then every tenant
// shuts down; queries arriving during the drain are rejected with 503 and
// a Retry-After header so load balancers back off instead of retrying hot.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bcclap"
	"bcclap/internal/graph"
	"bcclap/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	networkFile := flag.String("network", "", "register a \"default\" network from file: \"n m\" header then m lines \"from to capacity cost\"")
	randomN := flag.Int("random", 0, "register a random \"default\" network on N vertices instead of -network")
	seed := flag.Int64("seed", 1, "random seed (instance generation and perturbations)")
	backend := flag.String("backend", "", "default AᵀDA solve backend: "+strings.Join(bcclap.FlowBackends(), ", ")+" (default: auto — csr-pcg on sparse graphs, else dense)")
	poolSize := flag.Int("pool", 4, "default worker sessions per network")
	shards := flag.Int("shards", 0, "default terminal-pair shards per network (default: pool size)")
	cacheSize := flag.Int("cache", bcclap.DefaultCacheSize, "default certified-result cache entries per network (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solve timeout (0 = no limit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight solves")
	dataDir := flag.String("data-dir", "", "durable tenant store directory (empty = memory-only); a restarted daemon replays it")
	fsync := flag.String("fsync", "always", "WAL fsync policy with -data-dir: always or never")
	snapEvery := flag.Int("snapshot-every", 0, "WAL records between compacted snapshots (0 = store default, negative disables)")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
	rateLimit := flag.Float64("rate-limit", 0, "default per-tenant admission rate in queries/sec (0 = unlimited)")
	burst := flag.Int("burst", 0, "default token-bucket burst with -rate-limit (0 = ceil of the rate)")
	maxInFlight := flag.Int("max-in-flight", 0, "default per-tenant cap on concurrently admitted requests (0 = unlimited)")
	queueDepth := flag.Int("queue-depth", -1, "default admission queue bound once limits are active (-1 = built-in default, 0 = reject instead of queue)")
	flag.Parse()

	if err := run(serveConfig{
		addr: *addr, networkFile: *networkFile, randomN: *randomN, seed: *seed,
		backend: *backend, poolSize: *poolSize, shards: *shards, cacheSize: *cacheSize,
		timeout: *timeout, drainTimeout: *drainTimeout,
		dataDir: *dataDir, fsync: *fsync, snapEvery: *snapEvery,
		metrics: *metrics, rateLimit: *rateLimit, burst: *burst,
		maxInFlight: *maxInFlight, queueDepth: *queueDepth,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bcclap-serve:", err)
		os.Exit(1)
	}
}

// serveConfig bundles the flag values so run stays callable from tests.
type serveConfig struct {
	addr         string
	networkFile  string
	randomN      int
	seed         int64
	backend      string
	poolSize     int
	shards       int
	cacheSize    int
	timeout      time.Duration
	drainTimeout time.Duration
	dataDir      string
	fsync        string
	snapEvery    int
	metrics      bool
	rateLimit    float64
	burst        int
	maxInFlight  int
	queueDepth   int
}

// defaultTenant is the name the legacy -network/-random flags and
// /v1/flow routes operate on.
const defaultTenant = "default"

func run(cfg serveConfig) error {
	if cfg.poolSize < 1 {
		return fmt.Errorf("-pool must be at least 1, got %d", cfg.poolSize)
	}
	opts := []bcclap.Option{
		bcclap.WithSeed(cfg.seed),
		bcclap.WithBackend(cfg.backend),
		bcclap.WithPoolSize(cfg.poolSize),
		bcclap.WithCacheSize(cfg.cacheSize),
		bcclap.WithTelemetry(cfg.metrics),
	}
	if cfg.shards > 0 {
		opts = append(opts, bcclap.WithShards(cfg.shards))
	}
	if cfg.rateLimit > 0 {
		opts = append(opts, bcclap.WithRateLimit(cfg.rateLimit, cfg.burst))
	}
	if cfg.maxInFlight > 0 {
		opts = append(opts, bcclap.WithMaxInFlight(cfg.maxInFlight))
	}
	if cfg.queueDepth >= 0 {
		opts = append(opts, bcclap.WithQueueDepth(cfg.queueDepth))
	}
	if cfg.dataDir != "" {
		switch cfg.fsync {
		case "", "always":
			opts = append(opts, bcclap.WithStoreSync(bcclap.SyncAlways))
		case "never":
			opts = append(opts, bcclap.WithStoreSync(bcclap.SyncNever))
		default:
			return fmt.Errorf("-fsync must be \"always\" or \"never\", got %q", cfg.fsync)
		}
		opts = append(opts, bcclap.WithStore(cfg.dataDir), bcclap.WithSnapshotEvery(cfg.snapEvery))
	}

	// The listener comes up before the (potentially long) store replay so
	// orchestrators see the port and /healthz answers immediately — 503
	// with {"status":"starting"} until the service attaches, 200 after.
	s := newServer(nil, cfg.timeout, cfg.drainTimeout, cfg.seed)
	s.metricsOn = cfg.metrics
	srv := &http.Server{Addr: cfg.addr, Handler: s.routes()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bcclap-serve: listening on %s (pool=%d cache=%d)",
			cfg.addr, cfg.poolSize, cfg.cacheSize)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	svc, err := bcclap.OpenService(opts...)
	if err != nil {
		srv.Close()
		return err
	}
	if replayed := svc.Names(); len(replayed) > 0 {
		log.Printf("bcclap-serve: recovered %d tenants from %s: %s",
			len(replayed), cfg.dataDir, strings.Join(replayed, ", "))
	}
	if cfg.networkFile != "" || cfg.randomN > 0 {
		d, err := loadNetwork(cfg.networkFile, cfg.randomN, cfg.seed)
		if err != nil {
			srv.Close()
			svc.Close()
			return err
		}
		h, err := svc.Register(defaultTenant, d)
		switch {
		case errors.Is(err, bcclap.ErrNetworkExists):
			// The store already replayed the default tenant; the replayed
			// state (version, patches) wins over the startup flags.
			log.Printf("bcclap-serve: %q already recovered from the store; keeping it", defaultTenant)
		case err != nil:
			srv.Close()
			svc.Close()
			return err
		default:
			log.Printf("bcclap-serve: registered %q (n=%d m=%d backend=%s pool=%d)",
				defaultTenant, d.N(), d.M(), h.Backend(), cfg.poolSize)
		}
	}
	s.attach(svc)
	log.Printf("bcclap-serve: ready (tenants=%d)", len(svc.Names()))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	s.draining.Store(true) // /healthz flips to 503 for the whole drain
	log.Printf("bcclap-serve: draining %d tenants (budget %v)", len(svc.Names()), cfg.drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("bcclap-serve: http shutdown: %v", err)
	}
	if err := svc.Drain(shCtx); err != nil {
		log.Printf("bcclap-serve: service drain: %v", err)
		svc.Close()
	}
	log.Printf("bcclap-serve: stopped")
	return nil
}

// loadNetwork reads the instance from a file or generates a random one.
func loadNetwork(networkFile string, randomN int, seed int64) (*graph.Digraph, error) {
	switch {
	case networkFile != "" && randomN > 0:
		return nil, errors.New("-network and -random are mutually exclusive")
	case networkFile != "":
		f, err := os.Open(networkFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readNetwork(f)
	case randomN > 0:
		rnd := rand.New(rand.NewSource(seed))
		return graph.RandomFlowNetwork(randomN, 0.3, 3, 3, rnd), nil
	default:
		return nil, errors.New("one of -network FILE or -random N is required")
	}
}

// readNetwork parses "n m" then the shared arc-list format.
func readNetwork(f *os.File) (*graph.Digraph, error) {
	r := bufio.NewReader(f)
	var n, m int
	if _, err := fmt.Fscan(r, &n, &m); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	return graph.ReadArcList(r, n, m)
}

// server carries the daemon state shared by all request goroutines: the
// multi-tenant service (concurrency-safe, attached once replay finishes)
// and the HTTP-level counters and metrics.
type server struct {
	svc         atomic.Pointer[bcclap.Service] // nil until attach: still replaying
	draining    atomic.Bool
	timeout     time.Duration
	retryAfter  string // Retry-After seconds advertised on 503
	defaultSeed int64  // -seed: instance generation for "random_n" specs
	started     time.Time
	metricsOn   bool

	// httpReg holds the daemon-owned HTTP families, separate from the
	// service registry so both can be concatenated at /metrics.
	httpReg  *telemetry.Registry
	httpReqs *telemetry.CounterVec   // {method, route, code}
	httpDur  *telemetry.HistogramVec // {route}

	requests atomic.Int64 // HTTP requests accepted
	solved   atomic.Int64 // queries answered with a certified flow
	failed   atomic.Int64 // queries that returned an error
}

func newServer(svc *bcclap.Service, timeout, drainTimeout time.Duration, defaultSeed int64) *server {
	retry := int(math.Ceil(drainTimeout.Seconds()))
	if retry < 1 {
		retry = 1
	}
	s := &server{
		timeout:     timeout,
		retryAfter:  strconv.Itoa(retry),
		defaultSeed: defaultSeed,
		started:     time.Now(),
		metricsOn:   true,
		httpReg:     telemetry.NewRegistry(),
	}
	s.httpReqs = s.httpReg.CounterVec("bcclap_http_requests_total",
		"HTTP requests by method, matched route and response code.",
		"method", "route", "code")
	s.httpDur = s.httpReg.HistogramVec("bcclap_http_request_duration_seconds",
		"End-to-end HTTP request duration by matched route.",
		nil, "route")
	if svc != nil {
		s.attach(svc)
	}
	return s
}

// attach publishes the service and flips the daemon ready: until this,
// every route except /healthz and /metrics answers 503.
func (s *server) attach(svc *bcclap.Service) { s.svc.Store(svc) }

// service returns the attached service, or nil while the store replay is
// still running (the readiness middleware keeps handlers from seeing
// that state).
func (s *server) service() *bcclap.Service { return s.svc.Load() }

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/networks/{name}", s.handlePutNetwork)
	mux.HandleFunc("PATCH /v1/networks/{name}/arcs", s.handlePatchArcs)
	mux.HandleFunc("PATCH /v1/networks/{name}/limits", s.handlePatchLimits)
	mux.HandleFunc("GET /v1/networks", s.handleListNetworks)
	mux.HandleFunc("GET /v1/networks/{name}", s.handleNetworkStats)
	mux.HandleFunc("GET /v1/networks/{name}/stats", s.handleNetworkStats)
	mux.HandleFunc("DELETE /v1/networks/{name}", s.handleDeleteNetwork)
	mux.HandleFunc("POST /v1/networks/{name}/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/networks/{name}/flow/batch", s.handleBatch)
	// Legacy single-network surface: thin compatibility routes over the
	// "default" tenant (the one -network/-random registers).
	mux.HandleFunc("POST /v1/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/flow/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	if s.metricsOn {
		mux.HandleFunc("GET /metrics", s.handleMetrics)
	}
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s.middleware(mux)
}

// statusWriter captures the response code for the request log and the
// HTTP metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// middleware wraps the mux with the daemon's cross-cutting concerns:
// readiness gating, per-request trace IDs, the structured request log
// and the HTTP metric families.
func (s *server) middleware(mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		trace := r.Header.Get("X-Trace-Id")
		if trace == "" {
			trace = telemetry.NewTraceID()
		}
		w.Header().Set("X-Trace-Id", trace)
		r = r.WithContext(telemetry.WithTraceID(r.Context(), trace))

		// Readiness gate: while the store replay runs the service pointer
		// is nil, and during drain new work is pointless — both answer 503
		// so load balancers back off. /healthz reports the state itself
		// and /metrics stays scrapeable throughout.
		if path := r.URL.Path; path != "/healthz" && path != "/metrics" {
			if s.service() == nil || s.draining.Load() {
				w.Header().Set("Retry-After", s.retryAfter)
				writeJSON(w, http.StatusServiceUnavailable,
					errorResponse{Error: "service not ready", Trace: trace})
				return
			}
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		mux.ServeHTTP(sw, r)
		dur := time.Since(start)
		// r.Pattern was filled in by the mux match ("" on 404s).
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		s.httpReqs.With(r.Method, route, strconv.Itoa(sw.status)).Inc()
		s.httpDur.With(route).Observe(dur.Seconds())
		logLine, _ := json.Marshal(map[string]any{
			"trace":       trace,
			"method":      r.Method,
			"path":        r.URL.Path,
			"route":       route,
			"status":      sw.status,
			"duration_ms": float64(dur.Microseconds()) / 1000,
		})
		log.Printf("bcclap-serve: request %s", logLine)
	})
}

// tenant resolves the request's target handle: the {name} path segment on
// the /v1/networks routes, the "default" tenant on the legacy ones.
func (s *server) tenant(r *http.Request) (*bcclap.NetworkHandle, error) {
	name := r.PathValue("name")
	if name == "" {
		name = defaultTenant
	}
	return s.service().Get(name)
}

// networkSpec is the PUT /v1/networks/{name} body: the network itself —
// explicit arcs or a seeded random instance — plus per-tenant solver
// overrides layered over the daemon-wide defaults.
type networkSpec struct {
	// N and Arcs define the network: Arcs entries are [from, to,
	// capacity, cost] quadruples.
	N    int        `json:"n"`
	Arcs [][4]int64 `json:"arcs"`
	// RandomN generates a random network instead (mutually exclusive
	// with Arcs), using Seed.
	RandomN int `json:"random_n,omitempty"`
	// Per-tenant overrides; zero values inherit the daemon defaults.
	Seed      *int64  `json:"seed,omitempty"`
	Backend   *string `json:"backend,omitempty"`
	Pool      *int    `json:"pool,omitempty"`
	Shards    *int    `json:"shards,omitempty"`
	CacheSize *int    `json:"cache_size,omitempty"`
	// QoS overrides, option-surface conventions: rate 0 = unlimited,
	// queue_depth 0 = reject instead of queue.
	RatePerSec  *float64 `json:"rate_per_sec,omitempty"`
	Burst       *int     `json:"burst,omitempty"`
	MaxInFlight *int     `json:"max_in_flight,omitempty"`
	QueueDepth  *int     `json:"queue_depth,omitempty"`
}

// digraph materializes the spec's network. Random instances without an
// explicit "seed" inherit the daemon's -seed default, matching the
// legacy -random flag path.
func (spec *networkSpec) digraph(defaultSeed int64) (*graph.Digraph, error) {
	if spec.RandomN > 0 {
		if len(spec.Arcs) > 0 {
			return nil, errors.New("random_n and arcs are mutually exclusive")
		}
		seed := defaultSeed
		if spec.Seed != nil {
			seed = *spec.Seed
		}
		return graph.RandomFlowNetwork(spec.RandomN, 0.3, 3, 3, rand.New(rand.NewSource(seed))), nil
	}
	if spec.N <= 0 || len(spec.Arcs) == 0 {
		return nil, errors.New(`network spec needs "n" and "arcs" (or "random_n")`)
	}
	d := graph.NewDigraph(spec.N)
	for i, a := range spec.Arcs {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			return nil, fmt.Errorf("arc %d: %w", i, err)
		}
	}
	return d, nil
}

// options translates the spec's overrides into session options.
func (spec *networkSpec) options() []bcclap.Option {
	var opts []bcclap.Option
	if spec.Seed != nil {
		opts = append(opts, bcclap.WithSeed(*spec.Seed))
	}
	if spec.Backend != nil {
		opts = append(opts, bcclap.WithBackend(*spec.Backend))
	}
	if spec.Pool != nil {
		opts = append(opts, bcclap.WithPoolSize(*spec.Pool))
	}
	if spec.Shards != nil {
		opts = append(opts, bcclap.WithShards(*spec.Shards))
	}
	if spec.CacheSize != nil {
		opts = append(opts, bcclap.WithCacheSize(*spec.CacheSize))
	}
	if spec.RatePerSec != nil {
		b := 0
		if spec.Burst != nil {
			b = *spec.Burst
		}
		opts = append(opts, bcclap.WithRateLimit(*spec.RatePerSec, b))
	}
	if spec.MaxInFlight != nil {
		opts = append(opts, bcclap.WithMaxInFlight(*spec.MaxInFlight))
	}
	if spec.QueueDepth != nil {
		opts = append(opts, bcclap.WithQueueDepth(*spec.QueueDepth))
	}
	return opts
}

// networkResponse summarizes one tenant for the lifecycle endpoints.
type networkResponse struct {
	Name      string                `json:"name"`
	Version   uint64                `json:"version"`
	Patches   uint64                `json:"patches"`
	N         int                   `json:"n"`
	M         int                   `json:"m"`
	Backend   string                `json:"backend"`
	PoolSize  int                   `json:"pool_size"`
	Cache     bcclap.CacheStats     `json:"cache"`
	Pool      bcclap.PoolStats      `json:"pool"`
	Admission bcclap.AdmissionStats `json:"admission"`
}

func toNetworkResponse(ns bcclap.NetworkStats) networkResponse {
	return networkResponse{
		Name:      ns.Name,
		Version:   ns.Version,
		Patches:   ns.Patches,
		N:         ns.Vertices,
		M:         ns.Arcs,
		Backend:   ns.Backend,
		PoolSize:  ns.PoolSize,
		Cache:     ns.Cache,
		Pool:      ns.Pool,
		Admission: ns.Admission,
	}
}

// handlePutNetwork registers a new tenant (201) or atomically swaps a
// live one to the posted network (200, version bumped, cache flushed) —
// one idempotent PUT vocabulary for both, podman-style.
func (s *server) handlePutNetwork(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	name := r.PathValue("name")
	var spec networkSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: bad request body: %v", bcclap.ErrBadSpec, err))
		return
	}
	d, err := spec.digraph(s.defaultSeed)
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %v", bcclap.ErrBadSpec, err))
		return
	}
	status := http.StatusCreated
	h, err := s.service().Register(name, d, spec.options()...)
	if errors.Is(err, bcclap.ErrNetworkExists) {
		status = http.StatusOK
		if h, err = s.service().Get(name); err == nil {
			err = h.Swap(d, spec.options()...)
		}
	}
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, status, toNetworkResponse(h.Stats()))
}

// patchSpec is the PATCH /v1/networks/{name}/arcs body.
type patchSpec struct {
	Deltas []arcDelta `json:"deltas"`
}

// arcDelta mirrors bcclap.ArcDelta on the wire.
type arcDelta struct {
	Arc       int   `json:"arc"`
	CapDelta  int64 `json:"cap_delta"`
	CostDelta int64 `json:"cost_delta"`
}

// handlePatchArcs applies incremental arc deltas to a live tenant: the
// version bumps, the solver pool (warm-start state included) survives,
// and only the cached results the deltas touch are invalidated. Malformed
// bodies and delta sets get 400 with the sentinel in the message; a patch
// racing another mutation of the same tenant gets 429 + Retry-After.
func (s *server) handlePatchArcs(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var spec patchSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: bad request body: %v", bcclap.ErrBadSpec, err))
		return
	}
	deltas := make([]bcclap.ArcDelta, len(spec.Deltas))
	for i, dl := range spec.Deltas {
		deltas[i] = bcclap.ArcDelta{Arc: dl.Arc, CapDelta: dl.CapDelta, CostDelta: dl.CostDelta}
	}
	if err := h.PatchArcs(deltas); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, toNetworkResponse(h.Stats()))
}

// limitsSpec is the PATCH /v1/networks/{name}/limits body. Every field
// is optional: absent fields keep their current value, so a body like
// {"rate_per_sec": 50} only changes the rate. Fields mirror
// bcclap.Limits (gate conventions: queue_depth 0 = built-in default,
// negative = reject instead of queue).
type limitsSpec struct {
	RatePerSec  *float64 `json:"rate_per_sec,omitempty"`
	Burst       *int     `json:"burst,omitempty"`
	MaxInFlight *int     `json:"max_in_flight,omitempty"`
	QueueDepth  *int     `json:"queue_depth,omitempty"`
}

// handlePatchLimits changes a tenant's QoS limits at runtime. The merge
// is read-modify-write against the current limits; the result is
// journaled on a durable daemon (limits survive restarts) and applies to
// subsequent admissions immediately. Responds with the updated tenant
// stats; invalid limits get 400 with the ErrBadLimits sentinel.
func (s *server) handlePatchLimits(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var spec limitsSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: bad request body: %v", bcclap.ErrBadSpec, err))
		return
	}
	l := h.Limits()
	if spec.RatePerSec != nil {
		l.RatePerSec = *spec.RatePerSec
	}
	if spec.Burst != nil {
		l.Burst = *spec.Burst
	}
	if spec.MaxInFlight != nil {
		l.MaxInFlight = *spec.MaxInFlight
	}
	if spec.QueueDepth != nil {
		l.QueueDepth = *spec.QueueDepth
	}
	if err := h.SetLimits(l); err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, toNetworkResponse(h.Stats()))
}

func (s *server) handleListNetworks(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st := s.service().ServiceStats()
	nets := make([]networkResponse, len(st.PerNetwork))
	for i, ns := range st.PerNetwork {
		nets[i] = toNetworkResponse(ns)
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": nets})
}

func (s *server) handleNetworkStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, toNetworkResponse(h.Stats()))
}

func (s *server) handleDeleteNetwork(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if err := s.service().Deregister(r.PathValue("name")); err != nil {
		s.writeError(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type flowRequest struct {
	S            int  `json:"s"`
	T            int  `json:"t"`
	IncludeFlows bool `json:"include_flows,omitempty"`
}

type batchRequest struct {
	Queries      []flowRequest `json:"queries"`
	IncludeFlows bool          `json:"include_flows,omitempty"`
}

// flowResponse is one certified answer plus its per-solve accountability
// record (the Stats every scaling claim is audited against).
type flowResponse struct {
	S           int     `json:"s"`
	T           int     `json:"t"`
	Value       int64   `json:"value"`
	Cost        int64   `json:"cost"`
	PathSteps   int     `json:"path_steps"`
	CacheHit    bool    `json:"cache_hit"`
	WarmStarted bool    `json:"warm_started"`
	Reused      bool    `json:"reused_preprocessing"`
	WallMS      float64 `json:"wall_ms"`
	Trace       string  `json:"trace,omitempty"`
	Flows       []int64 `json:"flows,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	Trace string `json:"trace,omitempty"`
}

func (s *server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

func (s *server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var req flowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "bad request body: " + err.Error(), Trace: telemetry.TraceID(r.Context())})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	res, err := h.Solve(ctx, req.S, req.T)
	if err != nil {
		s.failed.Add(1)
		s.writeErrorFor(w, r, err, h)
		return
	}
	s.solved.Add(1)
	writeJSON(w, http.StatusOK, response(req, res))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "bad request body: " + err.Error(), Trace: telemetry.TraceID(r.Context())})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{
			Error: "empty batch", Trace: telemetry.TraceID(r.Context())})
		return
	}
	queries := make([]bcclap.FlowQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = bcclap.FlowQuery{S: q.S, T: q.T}
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	results, err := h.SolveBatch(ctx, queries)
	if err != nil {
		s.failed.Add(int64(len(queries)))
		s.writeErrorFor(w, r, err, h)
		return
	}
	s.solved.Add(int64(len(results)))
	out := make([]flowResponse, len(results))
	for i, res := range results {
		q := req.Queries[i]
		q.IncludeFlows = q.IncludeFlows || req.IncludeFlows
		out[i] = response(q, res)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

func response(req flowRequest, res *bcclap.FlowResult) flowResponse {
	resp := flowResponse{
		S:           req.S,
		T:           req.T,
		Value:       res.Value,
		Cost:        res.Cost,
		PathSteps:   res.PathSteps,
		CacheHit:    res.Stats.CacheHit,
		WarmStarted: res.Stats.WarmStarted,
		Reused:      res.Stats.ReusedPreprocessing,
		WallMS:      float64(res.Stats.WallTime.Microseconds()) / 1000,
		Trace:       res.Stats.TraceID,
	}
	if req.IncludeFlows {
		resp.Flows = res.Flows
	}
	return resp
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st := s.service().ServiceStats()
	nets := make([]networkResponse, len(st.PerNetwork))
	for i, ns := range st.PerNetwork {
		nets[i] = toNetworkResponse(ns)
	}
	body := map[string]any{
		"networks":     nets,
		"tenants":      st.Networks,
		"registered":   st.Registered,
		"deregistered": st.Deregistered,
		"swaps":        st.Swaps,
		"patches":      st.Patches,
		"cache":        st.Cache,
		"requests":     s.requests.Load(),
		"solved":       s.solved.Load(),
		"failed":       s.failed.Load(),
		"uptime_ms":    time.Since(s.started).Milliseconds(),
		"timeout_ms":   s.timeout.Milliseconds(),
	}
	if st.Store != nil {
		body["store"] = st.Store
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics serves the Prometheus text exposition: the service
// registry (solve latency plus every family synthesized from the
// service-stats snapshot) followed by the daemon's own HTTP families.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if svc := s.service(); svc != nil {
		if err := svc.WriteMetrics(w); err != nil {
			log.Printf("bcclap-serve: write metrics: %v", err)
			return
		}
	}
	if err := s.httpReg.WritePrometheus(w); err != nil {
		log.Printf("bcclap-serve: write metrics: %v", err)
	}
}

// handleHealthz is the readiness probe: 200 only when the store replay
// has completed and the daemon is not draining — exactly the window in
// which a request would be served rather than 503'd.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		w.Header().Set("Retry-After", s.retryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.service() == nil:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	}
}

// writeError maps a session/service error onto its HTTP status. A 503
// (shutdown in progress) additionally advertises Retry-After sized to the
// drain budget, so load balancers back off instead of hammering a
// draining instance; 429s advertise a Retry-After hint (see
// writeErrorFor for the computed per-tenant variant).
func (s *server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	s.writeErrorFor(w, r, err, nil)
}

// writeErrorFor is writeError with tenant context: a 429 caused by the
// tenant's admission gate advertises a Retry-After computed from its
// queue depth and recent mean solve latency (⌈estimate⌉ seconds, floor
// 1) instead of a constant.
func (s *server) writeErrorFor(w http.ResponseWriter, r *http.Request, err error, h *bcclap.NetworkHandle) {
	status := statusOf(err)
	switch status {
	case http.StatusServiceUnavailable:
		w.Header().Set("Retry-After", s.retryAfter)
	case http.StatusTooManyRequests:
		retry := "1"
		if h != nil {
			if d := h.RetryAfter(); d > 0 {
				retry = strconv.Itoa(int(math.Ceil(d.Seconds())))
			}
		}
		w.Header().Set("Retry-After", retry)
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), Trace: telemetry.TraceID(r.Context())})
}

// statusOf maps the session API's sentinel errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, bcclap.ErrBadQuery),
		errors.Is(err, bcclap.ErrBadSpec),
		errors.Is(err, bcclap.ErrBadLimits),
		errors.Is(err, bcclap.ErrBadPatch):
		return http.StatusBadRequest
	case errors.Is(err, bcclap.ErrNetworkUnknown):
		return http.StatusNotFound
	case errors.Is(err, bcclap.ErrNetworkExists):
		return http.StatusConflict
	// ErrOverloaded outranks the context sentinels: a deadline noticed
	// while queued for admission wraps both, and the useful signal for
	// the client is "back off", not "gateway timeout".
	case errors.Is(err, bcclap.ErrOverloaded),
		errors.Is(err, bcclap.ErrNetworkBusy):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, bcclap.ErrSolverClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("bcclap-serve: write response: %v", err)
	}
}
