// Command bcclap-serve is an always-on HTTP/JSON daemon serving certified
// min-cost max-flow queries over one network (Theorem 1.1 as a service).
// The network is loaded once at startup; queries are answered by a sharded
// pool of solver sessions (-pool worker sessions, -shards terminal-pair
// shards), so concurrent clients never share solver state and repeated
// terminal pairs warm-start inside their shard.
//
// Endpoints:
//
//	POST /v1/flow        {"s": 0, "t": 5, "include_flows": true}
//	POST /v1/flow/batch  {"queries": [{"s": 0, "t": 5}, ...]}
//	GET  /v1/stats       pool and request counters
//	GET  /healthz        liveness probe
//
// The network comes from -network FILE ("n m" header then m lines
// "from to capacity cost") or -random N. SIGINT/SIGTERM drains gracefully:
// the listener stops, in-flight solves finish (bounded by -drain-timeout),
// then the pool shuts down.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	networkFile := flag.String("network", "", "network file: \"n m\" header then m lines \"from to capacity cost\"")
	randomN := flag.Int("random", 0, "serve a random instance on N vertices instead of -network")
	seed := flag.Int64("seed", 1, "random seed (instance generation and perturbations)")
	backend := flag.String("backend", "", "AᵀDA solve backend: "+strings.Join(bcclap.FlowBackends(), ", ")+" (default: auto — csr-pcg on sparse graphs, else dense)")
	poolSize := flag.Int("pool", 4, "worker sessions in the solver pool")
	shards := flag.Int("shards", 0, "terminal-pair shards (default: pool size)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solve timeout (0 = no limit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight solves")
	flag.Parse()

	if err := run(*addr, *networkFile, *randomN, *seed, *backend, *poolSize, *shards, *timeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "bcclap-serve:", err)
		os.Exit(1)
	}
}

func run(addr, networkFile string, randomN int, seed int64, backend string, poolSize, shards int, timeout, drainTimeout time.Duration) error {
	if poolSize < 1 {
		return fmt.Errorf("-pool must be at least 1, got %d", poolSize)
	}
	d, err := loadNetwork(networkFile, randomN, seed)
	if err != nil {
		return err
	}
	opts := []bcclap.Option{bcclap.WithSeed(seed), bcclap.WithBackend(backend), bcclap.WithPoolSize(poolSize)}
	if shards > 0 {
		opts = append(opts, bcclap.WithShards(shards))
	}
	solver, err := bcclap.NewFlowSolver(d, opts...)
	if err != nil {
		return err
	}
	s := newServer(solver, d, backend, timeout)

	srv := &http.Server{Addr: addr, Handler: s.routes()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bcclap-serve: listening on %s (n=%d m=%d pool=%d backend=%s)",
			addr, d.N(), d.M(), solver.PoolSize(), s.backend)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		solver.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("bcclap-serve: draining (budget %v)", drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("bcclap-serve: http shutdown: %v", err)
	}
	if err := solver.Drain(shCtx); err != nil {
		log.Printf("bcclap-serve: pool drain: %v", err)
		solver.Close()
	}
	log.Printf("bcclap-serve: stopped")
	return nil
}

// loadNetwork reads the instance from a file or generates a random one.
func loadNetwork(networkFile string, randomN int, seed int64) (*graph.Digraph, error) {
	switch {
	case networkFile != "" && randomN > 0:
		return nil, errors.New("-network and -random are mutually exclusive")
	case networkFile != "":
		f, err := os.Open(networkFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readNetwork(f)
	case randomN > 0:
		rnd := rand.New(rand.NewSource(seed))
		return graph.RandomFlowNetwork(randomN, 0.3, 3, 3, rnd), nil
	default:
		return nil, errors.New("one of -network FILE or -random N is required")
	}
}

// readNetwork parses "n m" then the shared arc-list format.
func readNetwork(f *os.File) (*graph.Digraph, error) {
	r := bufio.NewReader(f)
	var n, m int
	if _, err := fmt.Fscan(r, &n, &m); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	return graph.ReadArcList(r, n, m)
}

// server carries the daemon state shared by all request goroutines: the
// pooled solver (concurrency-safe), the immutable network, and counters.
type server struct {
	solver  *bcclap.FlowSolver
	d       *graph.Digraph
	backend string
	timeout time.Duration
	started time.Time

	requests atomic.Int64 // HTTP requests accepted
	solved   atomic.Int64 // queries answered with a certified flow
	failed   atomic.Int64 // queries that returned an error
}

func newServer(solver *bcclap.FlowSolver, d *graph.Digraph, backend string, timeout time.Duration) *server {
	if backend == "" {
		// Report the auto-selected backend (csr-pcg on sparse networks,
		// dense otherwise), matching what the worker sessions actually run.
		backend = solver.Backend()
	}
	return &server{solver: solver, d: d, backend: backend, timeout: timeout, started: time.Now()}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/flow/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

type flowRequest struct {
	S            int  `json:"s"`
	T            int  `json:"t"`
	IncludeFlows bool `json:"include_flows,omitempty"`
}

type batchRequest struct {
	Queries      []flowRequest `json:"queries"`
	IncludeFlows bool          `json:"include_flows,omitempty"`
}

// flowResponse is one certified answer plus its per-solve accountability
// record (the Stats every scaling claim is audited against).
type flowResponse struct {
	S           int     `json:"s"`
	T           int     `json:"t"`
	Value       int64   `json:"value"`
	Cost        int64   `json:"cost"`
	PathSteps   int     `json:"path_steps"`
	WarmStarted bool    `json:"warm_started"`
	Reused      bool    `json:"reused_preprocessing"`
	WallMS      float64 `json:"wall_ms"`
	Flows       []int64 `json:"flows,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

func (s *server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req flowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	res, err := s.solver.Solve(ctx, req.S, req.T)
	if err != nil {
		s.failed.Add(1)
		writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
		return
	}
	s.solved.Add(1)
	writeJSON(w, http.StatusOK, s.response(req, res))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	queries := make([]bcclap.FlowQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = bcclap.FlowQuery{S: q.S, T: q.T}
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	results, err := s.solver.SolveBatch(ctx, queries)
	if err != nil {
		s.failed.Add(int64(len(queries)))
		writeJSON(w, statusOf(err), errorResponse{Error: err.Error()})
		return
	}
	s.solved.Add(int64(len(results)))
	out := make([]flowResponse, len(results))
	for i, res := range results {
		q := req.Queries[i]
		q.IncludeFlows = q.IncludeFlows || req.IncludeFlows
		out[i] = s.response(q, res)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

func (s *server) response(req flowRequest, res *bcclap.FlowResult) flowResponse {
	resp := flowResponse{
		S:           req.S,
		T:           req.T,
		Value:       res.Value,
		Cost:        res.Cost,
		PathSteps:   res.PathSteps,
		WarmStarted: res.Stats.WarmStarted,
		Reused:      res.Stats.ReusedPreprocessing,
		WallMS:      float64(res.Stats.WallTime.Microseconds()) / 1000,
	}
	if req.IncludeFlows {
		resp.Flows = res.Flows
	}
	return resp
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	ps := s.solver.PoolStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"network":      map[string]any{"n": s.d.N(), "m": s.d.M()},
		"backend":      s.backend,
		"pool":         ps,
		"requests":     s.requests.Load(),
		"solved":       s.solved.Load(),
		"failed":       s.failed.Load(),
		"uptime_ms":    time.Since(s.started).Milliseconds(),
		"timeout_ms":   s.timeout.Milliseconds(),
		"warm_started": ps.WarmStarted,
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statusOf maps the session API's sentinel errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, bcclap.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, bcclap.ErrSolverClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("bcclap-serve: write response: %v", err)
	}
}
