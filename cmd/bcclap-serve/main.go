// Command bcclap-serve is an always-on, multi-tenant HTTP/JSON daemon
// serving certified min-cost max-flow queries (Theorem 1.1 as a service).
// One process fronts many named, versioned flow networks through a
// bcclap.Service: each tenant owns a sharded pool of solver sessions plus
// a certified-result cache, networks are registered, swapped and retired
// over REST without restarting the daemon, and repeated queries against
// an unchanged network are answered in O(1) from the cache — bit-identical
// to a fresh solve, because every result is exact and deterministic.
//
// Endpoints:
//
//	PUT    /v1/networks/{name}            register (201) or atomically swap (200)
//	GET    /v1/networks                   list tenants with stats
//	GET    /v1/networks/{name}            one tenant's stats
//	GET    /v1/networks/{name}/stats      alias of the above
//	DELETE /v1/networks/{name}            drain and deregister
//	POST   /v1/networks/{name}/flow       {"s": 0, "t": 5, "include_flows": true}
//	POST   /v1/networks/{name}/flow/batch {"queries": [{"s": 0, "t": 5}, ...]}
//	POST   /v1/flow                       legacy: routes to the "default" tenant
//	POST   /v1/flow/batch                 legacy: routes to the "default" tenant
//	GET    /v1/stats                      service-wide counters
//	GET    /healthz                       liveness probe
//
// The legacy single-network flags still work: -network FILE ("n m" header
// then m lines "from to capacity cost") or -random N registers the
// "default" tenant at startup, which is what the legacy /v1/flow routes
// answer from. Without either flag the daemon starts empty and tenants
// arrive over PUT. SIGINT/SIGTERM drains gracefully: the listener stops,
// in-flight solves finish (bounded by -drain-timeout), then every tenant
// shuts down; queries arriving during the drain are rejected with 503 and
// a Retry-After header so load balancers back off instead of retrying hot.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	networkFile := flag.String("network", "", "register a \"default\" network from file: \"n m\" header then m lines \"from to capacity cost\"")
	randomN := flag.Int("random", 0, "register a random \"default\" network on N vertices instead of -network")
	seed := flag.Int64("seed", 1, "random seed (instance generation and perturbations)")
	backend := flag.String("backend", "", "default AᵀDA solve backend: "+strings.Join(bcclap.FlowBackends(), ", ")+" (default: auto — csr-pcg on sparse graphs, else dense)")
	poolSize := flag.Int("pool", 4, "default worker sessions per network")
	shards := flag.Int("shards", 0, "default terminal-pair shards per network (default: pool size)")
	cacheSize := flag.Int("cache", bcclap.DefaultCacheSize, "default certified-result cache entries per network (0 disables)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request solve timeout (0 = no limit)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget for in-flight solves")
	flag.Parse()

	if err := run(*addr, *networkFile, *randomN, *seed, *backend, *poolSize, *shards, *cacheSize, *timeout, *drainTimeout); err != nil {
		fmt.Fprintln(os.Stderr, "bcclap-serve:", err)
		os.Exit(1)
	}
}

// defaultTenant is the name the legacy -network/-random flags and
// /v1/flow routes operate on.
const defaultTenant = "default"

func run(addr, networkFile string, randomN int, seed int64, backend string, poolSize, shards, cacheSize int, timeout, drainTimeout time.Duration) error {
	if poolSize < 1 {
		return fmt.Errorf("-pool must be at least 1, got %d", poolSize)
	}
	opts := []bcclap.Option{
		bcclap.WithSeed(seed),
		bcclap.WithBackend(backend),
		bcclap.WithPoolSize(poolSize),
		bcclap.WithCacheSize(cacheSize),
	}
	if shards > 0 {
		opts = append(opts, bcclap.WithShards(shards))
	}
	svc := bcclap.NewService(opts...)
	if networkFile != "" || randomN > 0 {
		d, err := loadNetwork(networkFile, randomN, seed)
		if err != nil {
			return err
		}
		h, err := svc.Register(defaultTenant, d)
		if err != nil {
			return err
		}
		log.Printf("bcclap-serve: registered %q (n=%d m=%d backend=%s pool=%d)",
			defaultTenant, d.N(), d.M(), h.Backend(), poolSize)
	}
	s := newServer(svc, timeout, drainTimeout, seed)

	srv := &http.Server{Addr: addr, Handler: s.routes()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bcclap-serve: listening on %s (tenants=%d pool=%d cache=%d)",
			addr, len(svc.Names()), poolSize, cacheSize)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	log.Printf("bcclap-serve: draining %d tenants (budget %v)", len(svc.Names()), drainTimeout)
	shCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		log.Printf("bcclap-serve: http shutdown: %v", err)
	}
	if err := svc.Drain(shCtx); err != nil {
		log.Printf("bcclap-serve: service drain: %v", err)
		svc.Close()
	}
	log.Printf("bcclap-serve: stopped")
	return nil
}

// loadNetwork reads the instance from a file or generates a random one.
func loadNetwork(networkFile string, randomN int, seed int64) (*graph.Digraph, error) {
	switch {
	case networkFile != "" && randomN > 0:
		return nil, errors.New("-network and -random are mutually exclusive")
	case networkFile != "":
		f, err := os.Open(networkFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return readNetwork(f)
	case randomN > 0:
		rnd := rand.New(rand.NewSource(seed))
		return graph.RandomFlowNetwork(randomN, 0.3, 3, 3, rnd), nil
	default:
		return nil, errors.New("one of -network FILE or -random N is required")
	}
}

// readNetwork parses "n m" then the shared arc-list format.
func readNetwork(f *os.File) (*graph.Digraph, error) {
	r := bufio.NewReader(f)
	var n, m int
	if _, err := fmt.Fscan(r, &n, &m); err != nil {
		return nil, fmt.Errorf("read header: %w", err)
	}
	return graph.ReadArcList(r, n, m)
}

// server carries the daemon state shared by all request goroutines: the
// multi-tenant service (concurrency-safe) and HTTP-level counters.
type server struct {
	svc         *bcclap.Service
	timeout     time.Duration
	retryAfter  string // Retry-After seconds advertised on 503
	defaultSeed int64  // -seed: instance generation for "random_n" specs
	started     time.Time

	requests atomic.Int64 // HTTP requests accepted
	solved   atomic.Int64 // queries answered with a certified flow
	failed   atomic.Int64 // queries that returned an error
}

func newServer(svc *bcclap.Service, timeout, drainTimeout time.Duration, defaultSeed int64) *server {
	retry := int(math.Ceil(drainTimeout.Seconds()))
	if retry < 1 {
		retry = 1
	}
	return &server{
		svc:         svc,
		timeout:     timeout,
		retryAfter:  strconv.Itoa(retry),
		defaultSeed: defaultSeed,
		started:     time.Now(),
	}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/networks/{name}", s.handlePutNetwork)
	mux.HandleFunc("GET /v1/networks", s.handleListNetworks)
	mux.HandleFunc("GET /v1/networks/{name}", s.handleNetworkStats)
	mux.HandleFunc("GET /v1/networks/{name}/stats", s.handleNetworkStats)
	mux.HandleFunc("DELETE /v1/networks/{name}", s.handleDeleteNetwork)
	mux.HandleFunc("POST /v1/networks/{name}/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/networks/{name}/flow/batch", s.handleBatch)
	// Legacy single-network surface: thin compatibility routes over the
	// "default" tenant (the one -network/-random registers).
	mux.HandleFunc("POST /v1/flow", s.handleFlow)
	mux.HandleFunc("POST /v1/flow/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// tenant resolves the request's target handle: the {name} path segment on
// the /v1/networks routes, the "default" tenant on the legacy ones.
func (s *server) tenant(r *http.Request) (*bcclap.NetworkHandle, error) {
	name := r.PathValue("name")
	if name == "" {
		name = defaultTenant
	}
	return s.svc.Get(name)
}

// networkSpec is the PUT /v1/networks/{name} body: the network itself —
// explicit arcs or a seeded random instance — plus per-tenant solver
// overrides layered over the daemon-wide defaults.
type networkSpec struct {
	// N and Arcs define the network: Arcs entries are [from, to,
	// capacity, cost] quadruples.
	N    int        `json:"n"`
	Arcs [][4]int64 `json:"arcs"`
	// RandomN generates a random network instead (mutually exclusive
	// with Arcs), using Seed.
	RandomN int `json:"random_n,omitempty"`
	// Per-tenant overrides; zero values inherit the daemon defaults.
	Seed      *int64  `json:"seed,omitempty"`
	Backend   *string `json:"backend,omitempty"`
	Pool      *int    `json:"pool,omitempty"`
	Shards    *int    `json:"shards,omitempty"`
	CacheSize *int    `json:"cache_size,omitempty"`
}

// digraph materializes the spec's network. Random instances without an
// explicit "seed" inherit the daemon's -seed default, matching the
// legacy -random flag path.
func (spec *networkSpec) digraph(defaultSeed int64) (*graph.Digraph, error) {
	if spec.RandomN > 0 {
		if len(spec.Arcs) > 0 {
			return nil, errors.New("random_n and arcs are mutually exclusive")
		}
		seed := defaultSeed
		if spec.Seed != nil {
			seed = *spec.Seed
		}
		return graph.RandomFlowNetwork(spec.RandomN, 0.3, 3, 3, rand.New(rand.NewSource(seed))), nil
	}
	if spec.N <= 0 || len(spec.Arcs) == 0 {
		return nil, errors.New(`network spec needs "n" and "arcs" (or "random_n")`)
	}
	d := graph.NewDigraph(spec.N)
	for i, a := range spec.Arcs {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			return nil, fmt.Errorf("arc %d: %w", i, err)
		}
	}
	return d, nil
}

// options translates the spec's overrides into session options.
func (spec *networkSpec) options() []bcclap.Option {
	var opts []bcclap.Option
	if spec.Seed != nil {
		opts = append(opts, bcclap.WithSeed(*spec.Seed))
	}
	if spec.Backend != nil {
		opts = append(opts, bcclap.WithBackend(*spec.Backend))
	}
	if spec.Pool != nil {
		opts = append(opts, bcclap.WithPoolSize(*spec.Pool))
	}
	if spec.Shards != nil {
		opts = append(opts, bcclap.WithShards(*spec.Shards))
	}
	if spec.CacheSize != nil {
		opts = append(opts, bcclap.WithCacheSize(*spec.CacheSize))
	}
	return opts
}

// networkResponse summarizes one tenant for the lifecycle endpoints.
type networkResponse struct {
	Name     string            `json:"name"`
	Version  uint64            `json:"version"`
	N        int               `json:"n"`
	M        int               `json:"m"`
	Backend  string            `json:"backend"`
	PoolSize int               `json:"pool_size"`
	Cache    bcclap.CacheStats `json:"cache"`
	Pool     bcclap.PoolStats  `json:"pool"`
}

func toNetworkResponse(ns bcclap.NetworkStats) networkResponse {
	return networkResponse{
		Name:     ns.Name,
		Version:  ns.Version,
		N:        ns.Vertices,
		M:        ns.Arcs,
		Backend:  ns.Backend,
		PoolSize: ns.PoolSize,
		Cache:    ns.Cache,
		Pool:     ns.Pool,
	}
}

// handlePutNetwork registers a new tenant (201) or atomically swaps a
// live one to the posted network (200, version bumped, cache flushed) —
// one idempotent PUT vocabulary for both, podman-style.
func (s *server) handlePutNetwork(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	name := r.PathValue("name")
	var spec networkSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	d, err := spec.digraph(s.defaultSeed)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	status := http.StatusCreated
	h, err := s.svc.Register(name, d, spec.options()...)
	if errors.Is(err, bcclap.ErrNetworkExists) {
		status = http.StatusOK
		if h, err = s.svc.Get(name); err == nil {
			err = h.Swap(d, spec.options()...)
		}
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, status, toNetworkResponse(h.Stats()))
}

func (s *server) handleListNetworks(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st := s.svc.ServiceStats()
	nets := make([]networkResponse, len(st.PerNetwork))
	for i, ns := range st.PerNetwork {
		nets[i] = toNetworkResponse(ns)
	}
	writeJSON(w, http.StatusOK, map[string]any{"networks": nets})
}

func (s *server) handleNetworkStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toNetworkResponse(h.Stats()))
}

func (s *server) handleDeleteNetwork(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if err := s.svc.Deregister(r.PathValue("name")); err != nil {
		s.writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

type flowRequest struct {
	S            int  `json:"s"`
	T            int  `json:"t"`
	IncludeFlows bool `json:"include_flows,omitempty"`
}

type batchRequest struct {
	Queries      []flowRequest `json:"queries"`
	IncludeFlows bool          `json:"include_flows,omitempty"`
}

// flowResponse is one certified answer plus its per-solve accountability
// record (the Stats every scaling claim is audited against).
type flowResponse struct {
	S           int     `json:"s"`
	T           int     `json:"t"`
	Value       int64   `json:"value"`
	Cost        int64   `json:"cost"`
	PathSteps   int     `json:"path_steps"`
	CacheHit    bool    `json:"cache_hit"`
	WarmStarted bool    `json:"warm_started"`
	Reused      bool    `json:"reused_preprocessing"`
	WallMS      float64 `json:"wall_ms"`
	Flows       []int64 `json:"flows,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *server) solveCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

func (s *server) handleFlow(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req flowRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	res, err := h.Solve(ctx, req.S, req.T)
	if err != nil {
		s.failed.Add(1)
		s.writeError(w, err)
		return
	}
	s.solved.Add(1)
	writeJSON(w, http.StatusOK, response(req, res))
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	h, err := s.tenant(r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty batch"})
		return
	}
	queries := make([]bcclap.FlowQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = bcclap.FlowQuery{S: q.S, T: q.T}
	}
	ctx, cancel := s.solveCtx(r)
	defer cancel()
	results, err := h.SolveBatch(ctx, queries)
	if err != nil {
		s.failed.Add(int64(len(queries)))
		s.writeError(w, err)
		return
	}
	s.solved.Add(int64(len(results)))
	out := make([]flowResponse, len(results))
	for i, res := range results {
		q := req.Queries[i]
		q.IncludeFlows = q.IncludeFlows || req.IncludeFlows
		out[i] = response(q, res)
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

func response(req flowRequest, res *bcclap.FlowResult) flowResponse {
	resp := flowResponse{
		S:           req.S,
		T:           req.T,
		Value:       res.Value,
		Cost:        res.Cost,
		PathSteps:   res.PathSteps,
		CacheHit:    res.Stats.CacheHit,
		WarmStarted: res.Stats.WarmStarted,
		Reused:      res.Stats.ReusedPreprocessing,
		WallMS:      float64(res.Stats.WallTime.Microseconds()) / 1000,
	}
	if req.IncludeFlows {
		resp.Flows = res.Flows
	}
	return resp
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	st := s.svc.ServiceStats()
	nets := make([]networkResponse, len(st.PerNetwork))
	for i, ns := range st.PerNetwork {
		nets[i] = toNetworkResponse(ns)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"networks":     nets,
		"tenants":      st.Networks,
		"registered":   st.Registered,
		"deregistered": st.Deregistered,
		"swaps":        st.Swaps,
		"cache":        st.Cache,
		"requests":     s.requests.Load(),
		"solved":       s.solved.Load(),
		"failed":       s.failed.Load(),
		"uptime_ms":    time.Since(s.started).Milliseconds(),
		"timeout_ms":   s.timeout.Milliseconds(),
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// writeError maps a session/service error onto its HTTP status. A 503
// (shutdown in progress) additionally advertises Retry-After sized to the
// drain budget, so load balancers back off instead of hammering a
// draining instance.
func (s *server) writeError(w http.ResponseWriter, err error) {
	status := statusOf(err)
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfter)
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

// statusOf maps the session API's sentinel errors onto HTTP statuses.
func statusOf(err error) int {
	switch {
	case errors.Is(err, bcclap.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, bcclap.ErrNetworkUnknown):
		return http.StatusNotFound
	case errors.Is(err, bcclap.ErrNetworkExists):
		return http.StatusConflict
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return 499 // client closed request
	case errors.Is(err, bcclap.ErrSolverClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("bcclap-serve: write response: %v", err)
	}
}
