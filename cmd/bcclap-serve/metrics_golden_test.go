package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Satellite (CI gate): the exported metric schema — every family name
// and type — is pinned to testdata/metrics.golden. Renaming, retyping
// or dropping a family breaks downstream dashboards and recording
// rules, so it must show up as a reviewed diff, not a silent change.
// Regenerate with UPDATE_GOLDEN=1 go test -run TestServeMetricsGolden ./cmd/bcclap-serve/.
//
// Only `# TYPE` lines are compared: sample values and label sets vary
// with traffic, but the registry emits HELP/TYPE headers for every
// registered family unconditionally, so the schema is deterministic
// even on an idle daemon.
func TestServeMetricsGolden(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// One solve so the scrape covers a daemon that has done real work —
	// the schema must be identical either way, and the lint below checks
	// the live output, not just its headers.
	qbody, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1})
	resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Format lint over the full scrape: every family declares HELP then
	// TYPE, every type is a known Prometheus type, every sample line
	// belongs to a declared family, and histograms carry +Inf buckets.
	var schema []string
	declared := map[string]string{}
	lastHelp := ""
	for ln, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			name, typ := fields[0], fields[1]
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: family %s has unknown type %q", ln+1, name, typ)
			}
			if lastHelp != name {
				t.Fatalf("line %d: TYPE for %s not preceded by its HELP (last HELP: %q)", ln+1, name, lastHelp)
			}
			if _, dup := declared[name]; dup {
				t.Fatalf("line %d: family %s declared twice", ln+1, name)
			}
			declared[name] = typ
			schema = append(schema, name+" "+typ)
		case line == "" || strings.HasPrefix(line, "#"):
		default:
			name := line
			if i := strings.IndexAny(name, "{ "); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				if cut, ok := strings.CutSuffix(name, suffix); ok && declared[cut] == "histogram" {
					base = cut
					break
				}
			}
			if _, ok := declared[base]; !ok {
				t.Fatalf("line %d: sample %q has no declared family", ln+1, line)
			}
		}
	}
	for name, typ := range declared {
		if typ == "histogram" && !strings.Contains(string(raw), name+`_bucket{`) {
			continue // unexercised vec: headers only, nothing to check
		}
		if typ == "histogram" && !strings.Contains(string(raw), `le="+Inf"`) {
			t.Fatalf("histogram %s lacks a +Inf bucket", name)
		}
	}

	got := strings.Join(schema, "\n") + "\n"
	golden := filepath.Join("testdata", "metrics.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d families)", golden, len(schema))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with UPDATE_GOLDEN=1)", err)
	}
	if got != string(want) {
		t.Fatalf("metric schema drifted from %s — if intentional, regenerate with UPDATE_GOLDEN=1.\n--- want\n%s--- got\n%s",
			golden, want, got)
	}
}
