package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

// Satellite: /healthz is a readiness probe, not a liveness one. It must
// answer 503 before the store replay finishes (no service attached) and
// during drain, 200 only in the window where a request would actually be
// served — while /metrics stays scrapeable throughout.
func TestServeHealthzReadiness(t *testing.T) {
	s := newServer(nil, 5*time.Minute, 7*time.Second, 3)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	get := func(path string) (*http.Response, map[string]string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		raw, _ := io.ReadAll(resp.Body)
		json.Unmarshal(raw, &body)
		return resp, body
	}

	// Starting: replay not finished, nothing attached yet.
	resp, body := get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "starting" {
		t.Fatalf("healthz before attach: %d %v, want 503 starting", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatal("starting healthz must advertise Retry-After 1")
	}
	resp, body = get("/v1/networks")
	if resp.StatusCode != http.StatusServiceUnavailable || body["error"] != "service not ready" {
		t.Fatalf("API route before attach: %d %v, want 503 not-ready", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatalf("not-ready Retry-After %q, want the drain budget 7", resp.Header.Get("Retry-After"))
	}
	if resp, _ := get("/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics before attach: %d, want 200 (scrapeable while starting)", resp.StatusCode)
	}

	// Attach flips ready.
	svc := bcclap.NewService(bcclap.WithSeed(3))
	defer svc.Close()
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(3)))
	if _, err := svc.Register(defaultTenant, d); err != nil {
		t.Fatal(err)
	}
	s.attach(svc)
	if resp, body := get("/healthz"); resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz after attach: %d %v, want 200 ok", resp.StatusCode, body)
	}
	if resp, _ := get("/v1/networks"); resp.StatusCode != http.StatusOK {
		t.Fatalf("API route after attach: %d, want 200", resp.StatusCode)
	}

	// Draining: everything but /healthz and /metrics backs off.
	s.draining.Store(true)
	resp, body = get("/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable || body["status"] != "draining" {
		t.Fatalf("healthz during drain: %d %v, want 503 draining", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "7" {
		t.Fatal("draining healthz must advertise the drain budget")
	}
	if resp, _ := get("/v1/networks"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("API route during drain: %d, want 503", resp.StatusCode)
	}
	if resp, _ := get("/metrics"); resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics during drain: %d, want 200 (scrapeable while draining)", resp.StatusCode)
	}
}

// Satellite: PATCH /v1/networks/{name}/limits merges partial bodies into
// the live limits (absent fields keep their value), rejects invalid
// limits with 400 naming the sentinel, and 404s unknown tenants.
func TestServePatchLimits(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()
	url := ts.URL + "/v1/networks/" + defaultTenant + "/limits"

	resp := doReq(t, http.MethodPatch, url, []byte(`{"rate_per_sec": 50, "burst": 5}`))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH limits: status %d, want 200", resp.StatusCode)
	}
	var nr networkResponse
	if err := json.NewDecoder(resp.Body).Decode(&nr); err != nil {
		t.Fatal(err)
	}
	if l := nr.Admission.Limits; l.RatePerSec != 50 || l.Burst != 5 {
		t.Fatalf("response limits %+v, want rate 50 burst 5", l)
	}

	// Partial body: only max_in_flight changes, the rate survives.
	resp = doReq(t, http.MethodPatch, url, []byte(`{"max_in_flight": 2, "queue_depth": -1}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second PATCH: status %d", resp.StatusCode)
	}
	h, err := s.service().Get(defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	want := bcclap.Limits{RatePerSec: 50, Burst: 5, MaxInFlight: 2, QueueDepth: -1}
	if got := h.Limits(); got != want {
		t.Fatalf("merged limits %+v, want %+v", got, want)
	}

	// Invalid limits: 400 with the sentinel's text.
	resp = doReq(t, http.MethodPatch, url, []byte(`{"rate_per_sec": -1}`))
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(er.Error, "invalid admission limits") {
		t.Fatalf("bad limits: %d %q, want 400 naming ErrBadLimits", resp.StatusCode, er.Error)
	}
	if got := h.Limits(); got != want {
		t.Fatalf("rejected PATCH changed limits to %+v", got)
	}
	// Malformed body: 400, unknown tenant: 404.
	if resp := doReq(t, http.MethodPatch, url, []byte(`nope`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d, want 400", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := doReq(t, http.MethodPatch, ts.URL+"/v1/networks/nobody/limits", []byte(`{}`)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant: %d, want 404", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// Satellite: limits patched over HTTP are journaled — a daemon restarted
// over the same data directory enforces them with no re-configuration.
func TestServePatchLimitsDurable(t *testing.T) {
	dir := t.TempDir()
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(3)))
	want := bcclap.Limits{RatePerSec: 9, Burst: 2, MaxInFlight: 3, QueueDepth: 6}

	svc, err := bcclap.OpenService(bcclap.WithStore(dir), bcclap.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register(defaultTenant, d); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(svc, 5*time.Minute, 7*time.Second, 3).routes())
	body, _ := json.Marshal(map[string]any{
		"rate_per_sec": want.RatePerSec, "burst": want.Burst,
		"max_in_flight": want.MaxInFlight, "queue_depth": want.QueueDepth,
	})
	resp := doReq(t, http.MethodPatch, ts.URL+"/v1/networks/"+defaultTenant+"/limits", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH limits: status %d", resp.StatusCode)
	}
	ts.Close()
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	svc2, err := bcclap.OpenService(bcclap.WithStore(dir), bcclap.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	h, err := svc2.Get(defaultTenant)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Limits(); got != want {
		t.Fatalf("limits after restart %+v, want %+v", got, want)
	}
}

// Satellite: an admission rejection surfaces as 429 with a Retry-After
// computed from the tenant's gate (never absent, never zero), and the
// response carries the request's trace ID.
func TestServeOverloaded429(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	// One token, no refill to speak of, no queue: the first solve drains
	// the bucket, the second is rejected immediately.
	resp := doReq(t, http.MethodPatch, ts.URL+"/v1/networks/"+defaultTenant+"/limits",
		[]byte(`{"rate_per_sec": 0.01, "burst": 1, "queue_depth": -1}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH limits: status %d", resp.StatusCode)
	}
	qbody, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1})
	first, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status %d", first.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/flow", bytes.NewReader(qbody))
	req.Header.Set("X-Trace-Id", "feedfacefeedface")
	second, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second solve: status %d, want 429", second.StatusCode)
	}
	ra, err := strconv.Atoi(second.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("429 Retry-After %q, want an integer ≥ 1", second.Header.Get("Retry-After"))
	}
	// rate 0.01/s with an empty bucket: the computed estimate must be the
	// token wait (~100s), not the constant busy-retry fallback of 1.
	if ra < 10 {
		t.Fatalf("Retry-After %d looks constant, want the gate's computed estimate", ra)
	}
	if got := second.Header.Get("X-Trace-Id"); got != "feedfacefeedface" {
		t.Fatalf("X-Trace-Id not echoed: %q", got)
	}
	var er errorResponse
	if err := json.NewDecoder(second.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Trace != "feedfacefeedface" || !strings.Contains(er.Error, "overloaded") {
		t.Fatalf("429 body %+v, want the trace and the overload sentinel", er)
	}
}

// Satellite: /metrics serves the Prometheus text format with both the
// service families (per-tenant QoS, pool, cache, solve latency) and the
// daemon's own HTTP families, and a minted trace ID reaches the solve
// response when the client sends none.
func TestServeMetricsEndpoint(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	qbody, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1})
	resp, err := http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	var fr flowResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fr.Trace) != 16 {
		t.Fatalf("solve response trace %q, want a minted 16-hex id", fr.Trace)
	}
	if fr.Trace != resp.Header.Get("X-Trace-Id") {
		t.Fatal("body trace and X-Trace-Id header disagree")
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", mresp.StatusCode)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{
		"bcclap_networks 1",
		`bcclap_admission_admitted_total{tenant="` + defaultTenant + `"} 1`,
		"# TYPE bcclap_solve_latency_seconds histogram",
		`bcclap_http_requests_total{method="POST",route="POST /v1/flow",code="200"} 1`,
		"# TYPE bcclap_http_request_duration_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, out)
		}
	}

	// -metrics=false removes the route entirely.
	s.metricsOn = false
	ts2 := httptest.NewServer(s.routes())
	defer ts2.Close()
	off, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	off.Body.Close()
	if off.StatusCode != http.StatusNotFound {
		t.Fatalf("/metrics with -metrics=false: status %d, want 404", off.StatusCode)
	}
}
