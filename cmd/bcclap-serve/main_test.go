package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

// newTestServer builds the daemon handler over a small random instance
// with a 2-worker pool, exactly as main would.
func newTestServer(t *testing.T) (*server, *graph.Digraph) {
	t.Helper()
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(3)))
	solver, err := bcclap.NewFlowSolver(d,
		bcclap.WithSeed(3), bcclap.WithPoolSize(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(solver.Close)
	return newServer(solver, d, "", 30*time.Second), d
}

// End-to-end acceptance: /healthz answers and /v1/flow returns the
// certified (value, cost) the combinatorial baseline computes.
func TestServeFlowEndToEnd(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	st, tt := 0, d.N()-1
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, st, tt)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"s": st, "t": tt, "include_flows": true})
	resp, err = http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/flow: status %d", resp.StatusCode)
	}
	var fr flowResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Value != wantV || fr.Cost != wantC {
		t.Fatalf("served (%d, %d), baseline (%d, %d)", fr.Value, fr.Cost, wantV, wantC)
	}
	if len(fr.Flows) != d.M() {
		t.Fatalf("include_flows: got %d arcs, want %d", len(fr.Flows), d.M())
	}
}

// A batch request must answer every query, warm-starting repeats, and the
// stats endpoint must reflect the pool's work.
func TestServeBatchAndStats(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	st, tt := 0, d.N()-1
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, st, tt)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"queries": []map[string]int{{"s": st, "t": tt}, {"s": st, "t": tt}, {"s": st, "t": tt}},
	})
	resp, err := http.Post(ts.URL+"/v1/flow/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/flow/batch: status %d", resp.StatusCode)
	}
	var br struct {
		Results []flowResponse `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}
	warm := 0
	for i, r := range br.Results {
		if r.Value != wantV || r.Cost != wantC {
			t.Fatalf("batch result %d: (%d, %d) vs baseline (%d, %d)", i, r.Value, r.Cost, wantV, wantC)
		}
		if r.WarmStarted {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no batch repeat warm-started")
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["solved"].(float64); got < 3 {
		t.Fatalf("stats solved=%v, want ≥ 3", got)
	}
	if _, ok := stats["pool"]; !ok {
		t.Fatal("stats missing pool counters")
	}
}

// Malformed queries and bodies must map onto 400, not 500.
func TestServeErrorMapping(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, body := range []string{
		`{"s": 2, "t": 2}`,
		`{"s": -1, "t": 1}`,
		`{"s": 0, "t": ` + jsonInt(d.N()) + `}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
