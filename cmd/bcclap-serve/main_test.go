package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

// newTestServer builds the daemon handler over a service with a "default"
// tenant on a small random instance, exactly as main would with -random.
func newTestServer(t *testing.T) (*server, *graph.Digraph) {
	t.Helper()
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(3)))
	svc := bcclap.NewService(bcclap.WithSeed(3), bcclap.WithPoolSize(2))
	if _, err := svc.Register(defaultTenant, d); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	// Generous solve budget: concurrent solves under -race on a small
	// host can exceed the 30s production default.
	return newServer(svc, 5*time.Minute, 7*time.Second, 3), d
}

// specJSON encodes a digraph as a PUT /v1/networks body.
func specJSON(t *testing.T, d *graph.Digraph, extra map[string]any) []byte {
	t.Helper()
	arcs := make([][4]int64, d.M())
	for i, a := range d.Arcs() {
		arcs[i] = [4]int64{int64(a.From), int64(a.To), a.Cap, a.Cost}
	}
	body := map[string]any{"n": d.N(), "arcs": arcs}
	for k, v := range extra {
		body[k] = v
	}
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func doReq(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// End-to-end acceptance on the legacy compatibility surface: /healthz
// answers and /v1/flow (routed to the "default" tenant) returns the
// certified (value, cost) the combinatorial baseline computes.
func TestServeFlowEndToEnd(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp.Body.Close()

	st, tt := 0, d.N()-1
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, st, tt)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"s": st, "t": tt, "include_flows": true})
	resp, err = http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/flow: status %d", resp.StatusCode)
	}
	var fr flowResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	if fr.Value != wantV || fr.Cost != wantC {
		t.Fatalf("served (%d, %d), baseline (%d, %d)", fr.Value, fr.Cost, wantV, wantC)
	}
	if len(fr.Flows) != d.M() {
		t.Fatalf("include_flows: got %d arcs, want %d", len(fr.Flows), d.M())
	}

	// The same query again must be served from the cache, bit-identically.
	resp, err = http.Post(ts.URL+"/v1/flow", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var again flowResponse
	if err := json.NewDecoder(resp.Body).Decode(&again); err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("repeat query not served from cache")
	}
	if again.Value != fr.Value || again.Cost != fr.Cost || fmt.Sprint(again.Flows) != fmt.Sprint(fr.Flows) {
		t.Fatalf("cached response differs: %+v vs %+v", again, fr)
	}
}

// A batch request must answer every query (cache in front, warm starts
// behind), and the stats endpoint must reflect the service's work.
func TestServeBatchAndStats(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	st, tt := 0, d.N()-1
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, st, tt)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"queries": []map[string]int{{"s": st, "t": tt}, {"s": st, "t": tt}, {"s": st, "t": tt}},
	})
	resp, err := http.Post(ts.URL+"/v1/flow/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/flow/batch: status %d", resp.StatusCode)
	}
	var br struct {
		Results []flowResponse `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("got %d results", len(br.Results))
	}
	warm := 0
	for i, r := range br.Results {
		if r.Value != wantV || r.Cost != wantC {
			t.Fatalf("batch result %d: (%d, %d) vs baseline (%d, %d)", i, r.Value, r.Cost, wantV, wantC)
		}
		if r.WarmStarted {
			warm++
		}
	}
	// This first batch misses the (empty) cache entirely, so its repeats
	// must still warm-start inside the pool exactly as before the
	// service layer existed.
	if warm == 0 {
		t.Fatal("no batch repeat warm-started")
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if got := stats["solved"].(float64); got < 3 {
		t.Fatalf("stats solved=%v, want ≥ 3", got)
	}
	if got := stats["tenants"].(float64); got != 1 {
		t.Fatalf("stats tenants=%v, want 1", got)
	}
	if _, ok := stats["cache"]; !ok {
		t.Fatal("stats missing cache counters")
	}
	if _, ok := stats["networks"]; !ok {
		t.Fatal("stats missing per-network records")
	}
}

// Malformed queries and bodies must map onto 400, not 500.
func TestServeErrorMapping(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	for _, body := range []string{
		`{"s": 2, "t": 2}`,
		`{"s": -1, "t": 1}`,
		`{"s": 0, "t": ` + jsonInt(d.N()) + `}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/flow", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Unknown tenant → 404; flow against it too.
	resp := doReq(t, http.MethodDelete, ts.URL+"/v1/networks/nobody", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d, want 404", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/networks/nobody/flow", "application/json", strings.NewReader(`{"s":0,"t":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("flow on unknown tenant: status %d, want 404", resp.StatusCode)
	}
}

// Acceptance (tentpole): full multi-tenant lifecycle over REST — register
// two tenants, solve on both concurrently, swap one (version bump, cache
// flush, new answers), confirm the other tenant's cache stayed hot, then
// deregister — with every intermediate state visible via the list/stats
// endpoints.
func TestServeMultiTenantLifecycle(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	dA := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(11)))
	dB := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(12)))
	dA2 := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(13)))

	// Register both tenants; 201 and version 1 each.
	for name, d := range map[string]*graph.Digraph{"team-a": dA, "team-b": dB} {
		resp := doReq(t, http.MethodPut, ts.URL+"/v1/networks/"+name, specJSON(t, d, nil))
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("PUT %s: status %d, want 201", name, resp.StatusCode)
		}
		var nr networkResponse
		if err := json.NewDecoder(resp.Body).Decode(&nr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if nr.Name != name || nr.Version != 1 || nr.N != d.N() || nr.M != d.M() {
			t.Fatalf("PUT %s response %+v", name, nr)
		}
	}

	// GET /v1/networks lists default + the two tenants.
	resp, err := http.Get(ts.URL + "/v1/networks")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Networks []networkResponse `json:"networks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Networks) != 3 {
		t.Fatalf("listed %d networks, want 3", len(list.Networks))
	}

	solve := func(tenant string, d *graph.Digraph) flowResponse {
		t.Helper()
		body, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1, "include_flows": true})
		resp, err := http.Post(ts.URL+"/v1/networks/"+tenant+"/flow", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("flow %s: status %d", tenant, resp.StatusCode)
		}
		var fr flowResponse
		if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
			t.Fatal(err)
		}
		return fr
	}
	baseline := func(d *graph.Digraph) (int64, int64) {
		t.Helper()
		v, c, _, err := bcclap.MinCostMaxFlowBaseline(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		return v, c
	}

	// Solve on both tenants concurrently; all answers must match the
	// per-tenant baselines (no cross-tenant bleed).
	wantAV, wantAC := baseline(dA)
	wantBV, wantBC := baseline(dB)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				if fr := solve("team-a", dA); fr.Value != wantAV || fr.Cost != wantAC {
					t.Errorf("team-a: (%d, %d), want (%d, %d)", fr.Value, fr.Cost, wantAV, wantAC)
				}
			} else {
				if fr := solve("team-b", dB); fr.Value != wantBV || fr.Cost != wantBC {
					t.Errorf("team-b: (%d, %d), want (%d, %d)", fr.Value, fr.Cost, wantBV, wantBC)
				}
			}
		}(i)
	}
	wg.Wait()

	// Warm both caches with one more (now repeated) solve each.
	if fr := solve("team-a", dA); !fr.CacheHit {
		t.Fatal("team-a repeat not cached")
	}
	if fr := solve("team-b", dB); !fr.CacheHit {
		t.Fatal("team-b repeat not cached")
	}

	// PUT on the live team-a swaps it: 200, version 2, new network served.
	resp = doReq(t, http.MethodPut, ts.URL+"/v1/networks/team-a", specJSON(t, dA2, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap PUT: status %d, want 200", resp.StatusCode)
	}
	var swapped networkResponse
	if err := json.NewDecoder(resp.Body).Decode(&swapped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if swapped.Version != 2 || swapped.N != dA2.N() || swapped.M != dA2.M() {
		t.Fatalf("swap response %+v, want version 2 over the new network", swapped)
	}

	// Post-swap solves answer the NEW network (cold — the swap flushed
	// team-a's cache) while team-b's cache is still hot.
	wantA2V, wantA2C := baseline(dA2)
	fr := solve("team-a", dA2)
	if fr.CacheHit {
		t.Fatal("post-swap solve served a stale cached entry")
	}
	if fr.Value != wantA2V || fr.Cost != wantA2C {
		t.Fatalf("post-swap: (%d, %d), want (%d, %d)", fr.Value, fr.Cost, wantA2V, wantA2C)
	}
	if fr := solve("team-b", dB); !fr.CacheHit {
		t.Fatal("swap of team-a flushed team-b's cache")
	}

	// Deregister team-a; its routes 404, team-b still serves.
	resp = doReq(t, http.MethodDelete, ts.URL+"/v1/networks/team-a", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d, want 204", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/networks/team-a")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("stats of deregistered tenant: status %d, want 404", resp.StatusCode)
	}
	if fr := solve("team-b", dB); fr.Value != wantBV || fr.Cost != wantBC {
		t.Fatal("team-b broken by team-a's deregistration")
	}

	// Lifecycle counters on /v1/stats.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := stats["swaps"].(float64); got != 1 {
		t.Fatalf("swaps=%v, want 1", got)
	}
	if got := stats["deregistered"].(float64); got != 1 {
		t.Fatalf("deregistered=%v, want 1", got)
	}
}

// Per-tenant solver overrides in the PUT body must take effect.
func TestServeNetworkSpecOverrides(t *testing.T) {
	s, _ := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	resp := doReq(t, http.MethodPut, ts.URL+"/v1/networks/tuned",
		[]byte(`{"random_n": 5, "seed": 9, "backend": "csr-cg", "pool": 3, "cache_size": 0}`))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT: status %d, want 201", resp.StatusCode)
	}
	var nr networkResponse
	if err := json.NewDecoder(resp.Body).Decode(&nr); err != nil {
		t.Fatal(err)
	}
	if nr.Backend != "csr-cg" || nr.PoolSize != 3 || nr.Cache.Capacity != 0 {
		t.Fatalf("overrides not applied: %+v", nr)
	}

	// An unknown backend must fail the registration cleanly.
	resp = doReq(t, http.MethodPut, ts.URL+"/v1/networks/broken",
		[]byte(`{"random_n": 5, "backend": "no-such-backend"}`))
	resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Fatal("unknown backend accepted")
	}
}

// Satellite: once shutdown has begun, queries must answer 503 with a
// Retry-After header — not a generic 500 — so load balancers back off
// during the drain window.
func TestServeShutdownRetryAfter(t *testing.T) {
	s, d := newTestServer(t)
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	if err := s.service().Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{"s": 0, "t": d.N() - 1})
	for _, url := range []string{
		ts.URL + "/v1/flow",
		ts.URL + "/v1/networks/" + defaultTenant + "/flow",
	} {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during shutdown: status %d, want 503", url, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "7" {
			t.Fatalf("%s: Retry-After %q, want %q (the drain budget in seconds)", url, ra, "7")
		}
	}
}

func jsonInt(n int) string {
	b, _ := json.Marshal(n)
	return string(b)
}
