package bcclap_test

import (
	"context"
	"errors"
	"fmt"
	"log"

	"bcclap"
)

// exampleNetwork builds a small fixed transport network: two routes from 0
// to 3 with different costs plus a cross arc.
func exampleNetwork() *bcclap.Digraph {
	d := bcclap.NewDigraph(4)
	for _, a := range []struct {
		from, to  int
		cap, cost int64
	}{
		{0, 1, 2, 1},
		{0, 2, 2, 2},
		{1, 3, 2, 1},
		{2, 3, 1, 1},
		{1, 2, 1, 1},
	} {
		if _, err := d.AddArc(a.from, a.to, a.cap, a.cost); err != nil {
			log.Fatal(err)
		}
	}
	return d
}

// A FlowSolver is constructed once per digraph and serves many queries;
// every answer is certified exact before being returned.
func ExampleNewFlowSolver() {
	d := exampleNetwork()
	solver, err := bcclap.NewFlowSolver(d, bcclap.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.Solve(context.Background(), 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("value=%d cost=%d\n", res.Value, res.Cost)
	// Output:
	// value=3 cost=7
}

// Batch queries amortize the LP formulation; repeated terminal pairs
// warm-start from the previous certified solution and skip path following
// (PathSteps = 0) while staying certified exact.
func ExampleFlowSolver_SolveBatch() {
	d := exampleNetwork()
	solver, err := bcclap.NewFlowSolver(d, bcclap.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	queries := []bcclap.FlowQuery{{S: 0, T: 3}, {S: 0, T: 3}, {S: 0, T: 3}}
	results, err := solver.SolveBatch(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("query %d: value=%d cost=%d warm=%v\n", i, r.Value, r.Cost, r.Stats.WarmStarted)
	}
	// Output:
	// query 0: value=3 cost=7 warm=false
	// query 1: value=3 cost=7 warm=true
	// query 2: value=3 cost=7 warm=true
}

// Every session accepts a context: cancellation aborts within one outer
// iteration with an error satisfying errors.Is(err, context.Canceled),
// and malformed queries fail fast with the sentinel taxonomy.
func ExampleFlowSolver_Solve_cancellation() {
	d := exampleNetwork()
	solver, err := bcclap.NewFlowSolver(d)
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // deadline/cancellation propagates through all four layers
	_, err = solver.Solve(ctx, 0, 3)
	fmt.Println("canceled:", errors.Is(err, context.Canceled))

	_, err = solver.Solve(context.Background(), 0, 0)
	fmt.Println("bad query:", errors.Is(err, bcclap.ErrBadQuery))

	_, err = bcclap.NewFlowSolver(d, bcclap.WithBackend("no-such-backend"))
	fmt.Println("unknown backend:", errors.Is(err, bcclap.ErrBackendUnknown))
	// Output:
	// canceled: true
	// bad query: true
	// unknown backend: true
}

// A Service is the multi-tenant top of the API: one process managing many
// named, versioned networks, each behind a pooled solver and a
// certified-result cache. Results are exact and deterministic, so cached
// answers are bit-identical to fresh ones; Swap atomically replaces a
// tenant's network, bumping its version and invalidating exactly that
// tenant's cache.
func ExampleService() {
	svc := bcclap.NewService(bcclap.WithSeed(7), bcclap.WithCacheSize(64))
	h, err := svc.Register("prod", exampleNetwork())
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	fresh, err := h.Solve(ctx, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	cached, err := h.Solve(ctx, 0, 3) // O(1): served from the cache
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d fresh:  value=%d cost=%d cached=%v\n", h.Version(), fresh.Value, fresh.Cost, fresh.Stats.CacheHit)
	fmt.Printf("v%d repeat: value=%d cost=%d cached=%v\n", h.Version(), cached.Value, cached.Cost, cached.Stats.CacheHit)

	// Swapping the network bumps the version and invalidates the cache.
	if err := h.Swap(exampleNetwork()); err != nil {
		log.Fatal(err)
	}
	after, err := h.Solve(ctx, 0, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d swap:   value=%d cost=%d cached=%v\n", h.Version(), after.Value, after.Cost, after.Stats.CacheHit)

	if err := svc.Drain(ctx); err != nil {
		log.Fatal(err)
	}
	// Output:
	// v1 fresh:  value=3 cost=7 cached=false
	// v1 repeat: value=3 cost=7 cached=true
	// v2 swap:   value=3 cost=7 cached=false
}
