package lp

import (
	"context"
	"math/rand"
	"testing"

	"bcclap/internal/linalg"
)

// incidenceProblem builds a flow-LP-shaped constraint matrix: an incidence
// block over a random connected digraph plus identity rows, so AᵀDA is SDD
// with non-positive off-diagonals and every registered backend (including
// gremban) applies.
func incidenceProblem(n int, rnd *rand.Rand) *linalg.CSR {
	var ts []linalg.Triple
	row := 0
	// Spanning path plus random chords.
	addArc := func(u, v int) {
		ts = append(ts,
			linalg.Triple{Row: row, Col: u, Val: -1},
			linalg.Triple{Row: row, Col: v, Val: 1},
		)
		row++
	}
	for v := 1; v < n; v++ {
		addArc(v-1, v)
	}
	for k := 0; k < 2*n; k++ {
		u, v := rnd.Intn(n), rnd.Intn(n)
		if u != v {
			addArc(u, v)
		}
	}
	for v := 0; v < n; v++ {
		ts = append(ts, linalg.Triple{Row: row, Col: v, Val: 1})
		row++
	}
	return linalg.NewCSR(row, n, ts)
}

func TestRegisteredBackends(t *testing.T) {
	names := Backends()
	want := map[string]bool{"dense": false, "gremban": false, "csr-cg": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("backend %q not registered (have %v)", n, names)
		}
	}
	if _, err := NewBackendSolver("no-such-backend", linalg.NewCSR(1, 1, []linalg.Triple{{Row: 0, Col: 0, Val: 1}})); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// Every backend must solve the same systems to within the IPM's tolerance.
func TestBackendsAgree(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		n := 8 + 4*trial
		a := incidenceProblem(n, rnd)
		m := a.Rows()
		solvers := map[string]ATDASolve{}
		for _, name := range Backends() {
			s, err := NewBackendSolver(name, a)
			if err != nil {
				t.Fatalf("backend %s: %v", name, err)
			}
			solvers[name] = s
		}
		// Several solves per backend instance: factories hoist state, so
		// repeated calls must stay correct (workspace reuse).
		for rep := 0; rep < 3; rep++ {
			d := make([]float64, m)
			for i := range d {
				d[i] = float64(1+rep) * (0.05 + rnd.Float64())
			}
			y := make([]float64, n)
			for i := range y {
				y[i] = rnd.NormFloat64()
			}
			ref, _, err := solvers["dense"](context.Background(), d, y)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			refNorm := 1 + linalg.Norm2(ref)
			for name, solve := range solvers {
				got, _, err := solve(context.Background(), d, y)
				if err != nil {
					t.Fatalf("trial %d rep %d backend %s: %v", trial, rep, name, err)
				}
				if diff := linalg.Norm2(linalg.Sub(got, ref)) / refNorm; diff > 1e-5 {
					t.Fatalf("trial %d rep %d backend %s: relative deviation %g from dense", trial, rep, name, diff)
				}
			}
		}
	}
}

// The csr-cg backend must work inside a full LP solve selected by name.
func TestSolveWithCSRCGBackend(t *testing.T) {
	nBlocks := 3
	m := 3 * nBlocks
	var ts []linalg.Triple
	c := make([]float64, m)
	for blk := 0; blk < nBlocks; blk++ {
		for j := 0; j < 3; j++ {
			row := 3*blk + j
			ts = append(ts, linalg.Triple{Row: row, Col: blk, Val: 1})
			c[row] = float64(j + 1)
		}
	}
	solve := func(backend string) float64 {
		prob := &Problem{
			A:       linalg.NewCSR(m, nBlocks, ts),
			B:       linalg.Ones(nBlocks),
			C:       c,
			L:       make([]float64, m),
			U:       linalg.Ones(m),
			Backend: backend,
		}
		sol, err := Solve(prob, linalg.Constant(m, 1.0/3), 0.05, Params{Seed: 1})
		if err != nil {
			t.Fatalf("backend %s: %v", backend, err)
		}
		return sol.Objective
	}
	dense := solve("dense")
	cg := solve("csr-cg")
	if diff := dense - cg; diff > 0.05 || diff < -0.05 {
		t.Fatalf("objective mismatch: dense %v vs csr-cg %v", dense, cg)
	}
	prob := &Problem{
		A: linalg.NewCSR(m, nBlocks, ts), B: linalg.Ones(nBlocks), C: c,
		L: make([]float64, m), U: linalg.Ones(m), Backend: "no-such-backend",
	}
	if _, err := Solve(prob, linalg.Constant(m, 1.0/3), 0.05, Params{Seed: 1}); err == nil {
		t.Fatal("unknown backend accepted by Solve")
	}
}
