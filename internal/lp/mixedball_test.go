package lp

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/linalg"
	"bcclap/internal/sim"
)

// bruteForceMixedBall grids over the ∞-budget t and all clamp prefixes,
// constructing feasible candidates directly.
func bruteForceMixedBall(a, l []float64, grid int) float64 {
	m := len(a)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	// Sort by ratio descending.
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if math.Abs(a[order[j]])*l[order[i]] > math.Abs(a[order[i]])*l[order[j]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	best := 0.0
	for g := 0; g <= grid; g++ {
		t := float64(g) / float64(grid+1)
		for c := 0; c <= m; c++ {
			x := make([]float64, m)
			var clampNorm2 float64
			for j := 0; j < c; j++ {
				idx := order[j]
				x[idx] = t * l[idx] * sign(a[idx])
				clampNorm2 += x[idx] * x[idx]
			}
			budget := (1 - t) * (1 - t)
			rest := budget - clampNorm2
			if rest < 0 {
				continue
			}
			var restA float64
			for j := c; j < m; j++ {
				restA += a[order[j]] * a[order[j]]
			}
			if restA > 0 {
				lam := math.Sqrt(rest) / math.Sqrt(restA)
				feas := true
				for j := c; j < m; j++ {
					idx := order[j]
					x[idx] = lam * a[idx]
					if math.Abs(x[idx]) > t*l[idx]+1e-12 {
						feas = false
					}
				}
				if !feas {
					continue
				}
			}
			if MixedBallFeasible(x, l, 1e-9) {
				if v := linalg.Dot(a, x); v > best {
					best = v
				}
			}
		}
	}
	return best
}

func TestProjectMixedBallAgainstBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		m := 1 + rnd.Intn(12)
		a := make([]float64, m)
		l := make([]float64, m)
		for i := range a {
			a[i] = rnd.NormFloat64()
			l[i] = 0.1 + 3*rnd.Float64()
		}
		x := ProjectMixedBall(a, l, nil)
		if !MixedBallFeasible(x, l, 1e-9) {
			t.Fatalf("trial %d: infeasible projection", trial)
		}
		got := linalg.Dot(a, x)
		want := bruteForceMixedBall(a, l, 400)
		if got < want-1e-3*(1+math.Abs(want)) {
			t.Fatalf("trial %d: value %v below brute force %v", trial, got, want)
		}
	}
}

func TestProjectMixedBallZeroInput(t *testing.T) {
	x := ProjectMixedBall([]float64{0, 0}, []float64{1, 1}, nil)
	if linalg.Norm2(x) != 0 {
		t.Fatal("zero objective should give zero point")
	}
}

func TestProjectMixedBallSingleCoordinate(t *testing.T) {
	// One coordinate: max a·x s.t. |x|(1 + 1/l) ≤ ... optimum is
	// x = 1/(1 + 1/l) for a > 0.
	a, l := []float64{2.0}, []float64{0.5}
	x := ProjectMixedBall(a, l, nil)
	want := 1 / (1 + 1/l[0])
	if math.Abs(x[0]-want) > 1e-6 {
		t.Fatalf("x = %v, want %v", x[0], want)
	}
}

func TestProjectMixedBallLargeL(t *testing.T) {
	// Huge l makes the ∞ constraint inactive: solution is a/‖a‖.
	a := []float64{3, 4}
	l := []float64{1e9, 1e9}
	x := ProjectMixedBall(a, l, nil)
	if math.Abs(x[0]-0.6) > 1e-6 || math.Abs(x[1]-0.8) > 1e-6 {
		t.Fatalf("x = %v, want (0.6, 0.8)", x)
	}
}

func TestProjectMixedBallChargesRounds(t *testing.T) {
	const m = 2048
	net, err := sim.NewNetwork(sim.Config{N: m, Mode: sim.ModeBCC})
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(9))
	a := make([]float64, m)
	l := make([]float64, m)
	for i := range a {
		a[i] = rnd.NormFloat64()
		l[i] = 0.5 + rnd.Float64()
	}
	ProjectMixedBall(a, l, net)
	if net.Rounds() == 0 {
		t.Fatal("projection charged no rounds")
	}
	// O(log) evaluations of O(1) rounds each: if every coordinate needed
	// its own aggregate phase (the naive approach) we would be at ≥ m
	// rounds.
	if net.Rounds() >= m {
		t.Fatalf("projection charged %d rounds — looks linear in m", net.Rounds())
	}
}
