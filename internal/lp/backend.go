// Backend registry for the normal-equation solves of the interior-point
// method. Every path step of Solve reduces to systems (AᵀDA)x = y with a
// fresh positive diagonal D; how those systems are solved is the single
// biggest performance lever in the pipeline, so the strategy is pluggable:
// callers pick a registered backend by name (Problem.Backend) or inject a
// custom ATDASolve (Problem.Solve).
//
// Built-in backends:
//
//	dense   — assemble AᵀDA densely and factorize (Cholesky with Gaussian
//	          fallback); the exact reference, O(n³) per solve.
//	gremban — assemble AᵀDA, reduce to a Laplacian on 2n vertices via the
//	          Gremban reduction (Lemma 5.1) and solve by preconditioned CG;
//	          requires the SDD structure the flow LP guarantees.
//	csr-cg  — never materialize AᵀDA: apply A, D and Aᵀ as composed linear
//	          operators inside Jacobi-preconditioned CG. O(nnz) per
//	          iteration, and the only backend that scales past tiny n.
//	csr-pcg — csr-cg with a combinatorial preconditioner: a spanning-forest
//	          incomplete Cholesky whose support is extracted once per
//	          session from the constraint matrix with the paper's
//	          spanner/sparsifier machinery and only numerically refreshed
//	          when the IPM reweights D (see precond.go). Fewer CG
//	          iterations per solve on incidence-structured LPs; degrades to
//	          Jacobi on general matrices.
package lp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bcclap/internal/lapsolver"
	"bcclap/internal/linalg"
)

// ErrBackendUnknown is returned (wrapped, with the registered names) when a
// backend name does not resolve in the registry. Callers detect it with
// errors.Is and fail fast before any solve starts.
var ErrBackendUnknown = errors.New("lp: unknown backend")

// BackendFactory builds an ATDASolve bound to a fixed constraint matrix A.
// The returned closure is invoked once per path step with a fresh diagonal;
// factories should hoist all D-independent state (transposes, workspaces,
// symbolic structure) so the per-call cost is pure numerics. The returned
// solver is used sequentially; it need not be safe for concurrent calls.
type BackendFactory func(a *linalg.CSR) (ATDASolve, error)

// PrecondStats counts the combinatorial-preconditioner work of a backend
// instance, cumulative over its lifetime (i.e. over the owning session):
// Builds counts symbolic constructions — subgraph extraction, elimination
// ordering — and Refreshes counts numeric refactorizations, one per
// distinct barrier diagonal. A session whose Builds stays at 1 across
// queries is reusing its symbolic structure, which is the point.
type PrecondStats struct {
	Builds    int
	Refreshes int
}

// statsFactory is a BackendFactory that additionally exposes its
// preconditioner counters; backends without a combinatorial preconditioner
// register a plain BackendFactory and report nil stats.
type statsFactory func(a *linalg.CSR) (ATDASolve, *PrecondStats, error)

type backendEntry struct {
	plain BackendFactory
	stats statsFactory
}

var (
	backendMu sync.RWMutex
	backends  = map[string]backendEntry{}
)

// RegisterBackend makes a named AᵀDA strategy available to Problem.Backend.
// It panics on a duplicate or empty name (registration is an init-time
// programming act, not a runtime input).
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("lp: RegisterBackend with empty name or nil factory")
	}
	registerEntry(name, backendEntry{plain: f})
}

// registerStatsBackend registers a backend that reports PrecondStats.
func registerStatsBackend(name string, f statsFactory) {
	if name == "" || f == nil {
		panic("lp: registerStatsBackend with empty name or nil factory")
	}
	registerEntry(name, backendEntry{stats: f})
}

func registerEntry(name string, e backendEntry) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("lp: backend %q registered twice", name))
	}
	backends[name] = e
}

// Backends returns the sorted names of all registered backends.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewBackendSolver instantiates the named backend for A.
func NewBackendSolver(name string, a *linalg.CSR) (ATDASolve, error) {
	solve, _, err := NewBackendSolverStats(name, a)
	return solve, err
}

// NewBackendSolverStats instantiates the named backend for A and returns
// its preconditioner counters when the backend maintains them (nil for
// backends without a combinatorial preconditioner). The counters are live:
// they advance as the returned solver is used.
func NewBackendSolverStats(name string, a *linalg.CSR) (ATDASolve, *PrecondStats, error) {
	backendMu.RLock()
	e, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w %q (registered: %v)", ErrBackendUnknown, name, Backends())
	}
	if e.stats != nil {
		return e.stats(a)
	}
	solve, err := e.plain(a)
	return solve, nil, err
}

// ValidateBackend reports whether name resolves in the registry without
// instantiating it ("" is valid and selects DefaultBackend). The error
// satisfies errors.Is(err, ErrBackendUnknown) and lists the registered
// names, so API boundaries can reject typos before any work starts.
func ValidateBackend(name string) error {
	if name == "" {
		return nil
	}
	backendMu.RLock()
	_, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return fmt.Errorf("%w %q (registered: %v)", ErrBackendUnknown, name, Backends())
	}
	return nil
}

// DefaultBackend is the name Problem.solver falls back to when neither
// Solve nor Backend is set.
const DefaultBackend = "dense"

func init() {
	RegisterBackend("dense", denseBackend)
	RegisterBackend("gremban", grembanBackend)
	RegisterBackend("csr-cg", csrCGBackend)
	registerStatsBackend("csr-pcg", csrPCGBackend)
}

// denseBackend assembles AᵀDA into a reused n×n buffer and factorizes it
// per call; the reference for tests and small instances.
func denseBackend(a *linalg.CSR) (ATDASolve, error) {
	n := a.Cols()
	gram := linalg.NewDense(n, n)
	return func(_ context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(a, d, y); err != nil {
			return nil, 0, err
		}
		assembleGram(a, d, gram)
		chol, err := gram.Cholesky()
		if err != nil {
			// Fall back to pivoted Gaussian elimination for semidefinite
			// edge cases (e.g. a bound exactly hit by degenerate weights).
			x, err := gram.Solve(y)
			return x, 0, err
		}
		return linalg.CholSolve(chol, y), 0, nil
	}, nil
}

// grembanBackend assembles AᵀDA (reusing the buffer) and routes the solve
// through the Gremban reduction to a 2n-vertex Laplacian handled by
// preconditioned CG — the Lemma 5.1 path. It requires AᵀDA to be SDD with
// non-positive off-diagonals, which holds for incidence-structured A such
// as the flow LP's; other matrices get an ErrNotSDD at solve time.
func grembanBackend(a *linalg.CSR) (ATDASolve, error) {
	n := a.Cols()
	gram := linalg.NewDense(n, n)
	lapSolve := lapsolver.NewCGLapSolver()
	return func(ctx context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(a, d, y); err != nil {
			return nil, 0, err
		}
		assembleGram(a, d, gram)
		return lapsolver.SDDSolve(ctx, gram, y, lapSolve)
	}, nil
}

// mfCore is the state shared by the matrix-free backends (csr-cg and
// csr-pcg): the composed operator op = Aᵀ·diag(dbuf)·A over a reusable
// diagonal buffer, the Gram-diagonal buffer, and the CG workspace. One
// core serves every solve of its backend instance, so the Õ(√n) path
// steps of an IPM run share their buffers.
type mfCore struct {
	a          *linalg.CSR
	op         *linalg.ComposedOp
	ws         *linalg.Workspace
	dbuf, diag []float64
}

func newMFCore(a *linalg.CSR) *mfCore {
	c := &mfCore{
		a:    a,
		ws:   linalg.NewWorkspace(),
		dbuf: make([]float64, a.Rows()),
		diag: make([]float64, a.Cols()),
	}
	c.op = linalg.Compose(c.ws, linalg.TransposeOp{A: a}, linalg.DiagOp{D: c.dbuf}, a)
	return c
}

// load installs a new barrier diagonal: the composed operator tracks it
// through dbuf without reconstruction, and diag becomes diag(AᵀDA).
func (c *mfCore) load(d []float64) {
	copy(c.dbuf, d)
	c.a.GramDiagTo(c.diag, d)
}

// newSolve wires the CG loop shared by the matrix-free backends. refresh
// runs once per call before the solve and is where each backend installs d
// (via load) and updates its preconditioner — csr-pcg additionally skips
// the work when d is unchanged. Tolerance and iteration budget live here,
// in exactly one place, so csr-cg and csr-pcg iteration counts stay
// directly comparable (the invariant the e19 snapshot gate measures).
func (c *mfCore) newSolve(refresh func(d []float64), precondTo func(dst, r []float64)) ATDASolve {
	n := c.a.Cols()
	x := make([]float64, n)
	ax := make([]float64, n)
	return func(ctx context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(c.a, d, y); err != nil {
			return nil, 0, err
		}
		refresh(d)
		// The barrier weights span many orders of magnitude, so aim for a
		// tight residual but accept poly(1/m) precision (all the IPM needs,
		// as in the Gremban route).
		iters, err := linalg.CGTo(ctx, x, c.op, y, 1e-10, 40*n+4000, precondTo, c.ws)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, iters, err
			}
			c.op.MulVecTo(ax, x)
			if linalg.Norm2(linalg.Sub(y, ax)) > 1e-6*(1+linalg.Norm2(y)) {
				return nil, iters, err
			}
		}
		return linalg.Clone(x), iters, nil
	}
}

// csrCGBackend solves (AᵀDA)x = y without ever materializing the Gram
// matrix: A, diag(D) and Aᵀ are applied as one composed LinOp inside
// Jacobi-preconditioned conjugate gradients.
func csrCGBackend(a *linalg.CSR) (ATDASolve, error) {
	core := newMFCore(a)
	jac := linalg.NewJacobiPrecond(a.Cols())
	return core.newSolve(func(d []float64) {
		core.load(d)
		jac.Refresh(core.diag)
	}, jac.ApplyTo), nil
}

// assembleGram writes AᵀDA into gram (resetting it first), visiting each
// row's nonzero pattern once per pair.
func assembleGram(a *linalg.CSR, d []float64, gram *linalg.Dense) {
	n := a.Cols()
	for i := 0; i < n; i++ {
		row := gram.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for r := 0; r < a.Rows(); r++ {
		dr := d[r]
		if dr == 0 {
			continue
		}
		a.VisitRow(r, func(ci int, vi float64) {
			a.VisitRow(r, func(cj int, vj float64) {
				gram.Inc(ci, cj, dr*vi*vj)
			})
		})
	}
}

func checkATDAArgs(a *linalg.CSR, d, y []float64) error {
	if len(d) != a.Rows() {
		return fmt.Errorf("lp: AᵀDA diagonal has %d entries, want %d", len(d), a.Rows())
	}
	if len(y) != a.Cols() {
		return fmt.Errorf("lp: AᵀDA right-hand side has %d entries, want %d", len(y), a.Cols())
	}
	return nil
}
