// Backend registry for the normal-equation solves of the interior-point
// method. Every path step of Solve reduces to systems (AᵀDA)x = y with a
// fresh positive diagonal D; how those systems are solved is the single
// biggest performance lever in the pipeline, so the strategy is pluggable:
// callers pick a registered backend by name (Problem.Backend) or inject a
// custom ATDASolve (Problem.Solve).
//
// Built-in backends:
//
//	dense   — assemble AᵀDA densely and factorize (Cholesky with Gaussian
//	          fallback); the exact reference, O(n³) per solve.
//	gremban — assemble AᵀDA, reduce to a Laplacian on 2n vertices via the
//	          Gremban reduction (Lemma 5.1) and solve by preconditioned CG;
//	          requires the SDD structure the flow LP guarantees.
//	csr-cg  — never materialize AᵀDA: apply A, D and Aᵀ as composed linear
//	          operators inside Jacobi-preconditioned CG. O(nnz) per
//	          iteration, and the only backend that scales past tiny n.
package lp

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"bcclap/internal/lapsolver"
	"bcclap/internal/linalg"
)

// ErrBackendUnknown is returned (wrapped, with the registered names) when a
// backend name does not resolve in the registry. Callers detect it with
// errors.Is and fail fast before any solve starts.
var ErrBackendUnknown = errors.New("lp: unknown backend")

// BackendFactory builds an ATDASolve bound to a fixed constraint matrix A.
// The returned closure is invoked once per path step with a fresh diagonal;
// factories should hoist all D-independent state (transposes, workspaces,
// symbolic structure) so the per-call cost is pure numerics. The returned
// solver is used sequentially; it need not be safe for concurrent calls.
type BackendFactory func(a *linalg.CSR) (ATDASolve, error)

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend makes a named AᵀDA strategy available to Problem.Backend.
// It panics on a duplicate or empty name (registration is an init-time
// programming act, not a runtime input).
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("lp: RegisterBackend with empty name or nil factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("lp: backend %q registered twice", name))
	}
	backends[name] = f
}

// Backends returns the sorted names of all registered backends.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewBackendSolver instantiates the named backend for A.
func NewBackendSolver(name string, a *linalg.CSR) (ATDASolve, error) {
	backendMu.RLock()
	f, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (registered: %v)", ErrBackendUnknown, name, Backends())
	}
	return f(a)
}

// ValidateBackend reports whether name resolves in the registry without
// instantiating it ("" is valid and selects DefaultBackend). The error
// satisfies errors.Is(err, ErrBackendUnknown) and lists the registered
// names, so API boundaries can reject typos before any work starts.
func ValidateBackend(name string) error {
	if name == "" {
		return nil
	}
	backendMu.RLock()
	_, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return fmt.Errorf("%w %q (registered: %v)", ErrBackendUnknown, name, Backends())
	}
	return nil
}

// DefaultBackend is the name Problem.solver falls back to when neither
// Solve nor Backend is set.
const DefaultBackend = "dense"

func init() {
	RegisterBackend("dense", denseBackend)
	RegisterBackend("gremban", grembanBackend)
	RegisterBackend("csr-cg", csrCGBackend)
}

// denseBackend assembles AᵀDA into a reused n×n buffer and factorizes it
// per call; the reference for tests and small instances.
func denseBackend(a *linalg.CSR) (ATDASolve, error) {
	n := a.Cols()
	gram := linalg.NewDense(n, n)
	return func(_ context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(a, d, y); err != nil {
			return nil, 0, err
		}
		assembleGram(a, d, gram)
		chol, err := gram.Cholesky()
		if err != nil {
			// Fall back to pivoted Gaussian elimination for semidefinite
			// edge cases (e.g. a bound exactly hit by degenerate weights).
			x, err := gram.Solve(y)
			return x, 0, err
		}
		return linalg.CholSolve(chol, y), 0, nil
	}, nil
}

// grembanBackend assembles AᵀDA (reusing the buffer) and routes the solve
// through the Gremban reduction to a 2n-vertex Laplacian handled by
// preconditioned CG — the Lemma 5.1 path. It requires AᵀDA to be SDD with
// non-positive off-diagonals, which holds for incidence-structured A such
// as the flow LP's; other matrices get an ErrNotSDD at solve time.
func grembanBackend(a *linalg.CSR) (ATDASolve, error) {
	n := a.Cols()
	gram := linalg.NewDense(n, n)
	lapSolve := lapsolver.NewCGLapSolver()
	return func(ctx context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(a, d, y); err != nil {
			return nil, 0, err
		}
		assembleGram(a, d, gram)
		return lapsolver.SDDSolve(ctx, gram, y, lapSolve)
	}, nil
}

// csrCGBackend solves (AᵀDA)x = y without ever materializing the Gram
// matrix: A, diag(D) and Aᵀ are applied as one composed LinOp inside
// Jacobi-preconditioned conjugate gradients. All vectors live in a
// workspace created once per factory call, so the Õ(√n) path steps of an
// IPM run share their buffers.
func csrCGBackend(a *linalg.CSR) (ATDASolve, error) {
	n := a.Cols()
	// op = Aᵀ · diag(dbuf) · A; dbuf is refreshed per call, so the composed
	// operator tracks the current barrier diagonal without reconstruction.
	dbuf := make([]float64, a.Rows())
	ws := linalg.NewWorkspace()
	op := linalg.Compose(ws, linalg.TransposeOp{A: a}, linalg.DiagOp{D: dbuf}, a)
	diag := make([]float64, n)
	x := make([]float64, n)
	ax := make([]float64, n)
	precondTo := func(dst, r []float64) {
		for i := range r {
			dst[i] = r[i] / diag[i]
		}
	}
	return func(ctx context.Context, d, y []float64) ([]float64, int, error) {
		if err := checkATDAArgs(a, d, y); err != nil {
			return nil, 0, err
		}
		copy(dbuf, d)
		a.GramDiagTo(diag, d)
		for i, v := range diag {
			if v <= 0 {
				diag[i] = 1
			}
		}
		// The barrier weights span many orders of magnitude, so aim for a
		// tight residual but accept poly(1/m) precision (all the IPM needs,
		// as in the Gremban route).
		iters, err := linalg.CGTo(ctx, x, op, y, 1e-10, 40*n+4000, precondTo, ws)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, iters, err
			}
			op.MulVecTo(ax, x)
			if linalg.Norm2(linalg.Sub(y, ax)) > 1e-6*(1+linalg.Norm2(y)) {
				return nil, iters, err
			}
		}
		return linalg.Clone(x), iters, nil
	}, nil
}

// assembleGram writes AᵀDA into gram (resetting it first), visiting each
// row's nonzero pattern once per pair.
func assembleGram(a *linalg.CSR, d []float64, gram *linalg.Dense) {
	n := a.Cols()
	for i := 0; i < n; i++ {
		row := gram.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	for r := 0; r < a.Rows(); r++ {
		dr := d[r]
		if dr == 0 {
			continue
		}
		a.VisitRow(r, func(ci int, vi float64) {
			a.VisitRow(r, func(cj int, vj float64) {
				gram.Inc(ci, cj, dr*vi*vj)
			})
		})
	}
}

func checkATDAArgs(a *linalg.CSR, d, y []float64) error {
	if len(d) != a.Rows() {
		return fmt.Errorf("lp: AᵀDA diagonal has %d entries, want %d", len(d), a.Rows())
	}
	if len(y) != a.Cols() {
		return fmt.Errorf("lp: AᵀDA right-hand side has %d entries, want %d", len(y), a.Cols())
	}
	return nil
}
