// Package lp implements the linear program solver of Section 4 of the
// paper (Theorem 1.4): an interior-point method following the Lee–Sidford
// weighted central path, with regularized Lewis weights (Algorithms 7–8),
// inexact centering steps (Algorithm 11), mixed-norm-ball projections
// (Lemma 4.10) and the two-phase path-following driver (Algorithms 9–10).
//
// The serving unit is Session, which binds one Problem to a linear-solve
// backend and shared IPM scratch: Solve runs the full two-phase path
// following, Polish re-centers a prior certified iterate at t₂ (the
// warm-start shortcut batch flow queries use; its output is only as good
// as the caller's certificate, by design).
//
// The per-step normal equations (AᵀDA)x = y go through a pluggable backend
// registry ("dense", "gremban", "csr-cg", "csr-pcg";
// ValidateBackend/Backends) shared with the flow layer, so the same IPM
// scales from the exact dense reference to matrix-free CG that never
// materializes AᵀDA. The csr-pcg backend adds a combinatorial
// preconditioner on top of the matrix-free path: a spanning-forest
// incomplete Cholesky whose support is extracted once per session from the
// constraint matrix with the paper's own spanner/sparsifier machinery and
// only numerically refreshed when the IPM reweights D (precond.go); its
// build/refresh counters surface in Solution.PrecondBuilds/Refreshes.
//
// Invariants:
//
//   - Confinement: a Session is single-goroutine — its backend workspaces
//     and centering scratch are reused across solves, which is what makes
//     the hot path allocation-free after the first solve. Concurrent
//     serving wraps one Session per worker (internal/pool), never a lock
//     around one Session.
//   - Determinism: results are bit-identical to one-shot solves — every
//     scratch buffer is fully overwritten before it is read, and all
//     randomness (leverage sketching) derives from Params.Seed.
//   - Cancellation: the path-following loop checks its context every
//     iteration and the inner CG every 32 iterations; an aborted solve
//     returns an error satisfying errors.Is(err, ctx.Err()).
//
// Numerical notes. The paper's constants (R, α, t₁, bundle sizes …) are
// chosen for the w.h.p. proofs and are astronomically conservative — with
// them verbatim, a 10-variable LP would take ~10⁹ iterations. This
// implementation keeps every algorithmic *shape* (α ∝ 1/√n path steps,
// barrier + Lewis-weight machinery, projections, Johnson–Lindenstrauss
// leverage scores) and exposes the aggressiveness through Params, so the
// experiments can measure the √n iteration scaling of Theorem 1.4 while
// still converging in float64. Deviations are local and documented at the
// point they occur.
package lp
