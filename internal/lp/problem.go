package lp

import (
	"context"
	"fmt"
	"math"

	"bcclap/internal/linalg"
)

// ATDASolve solves (AᵀDA)x = y for the positive diagonal D (given as a
// vector). Implementations come from the backend registry (see backend.go)
// or from a caller-supplied override on Problem.Solve. The int return is
// the number of inner (CG) iterations spent — 0 for direct methods — which
// the IPM aggregates into Solution.CGIterations. Implementations honor ctx:
// on cancellation they return an error satisfying errors.Is(err, ctx.Err()).
type ATDASolve func(ctx context.Context, d, y []float64) ([]float64, int, error)

// Bind adapts an ATDASolve into a context-free GramSolve (as consumed by
// the leverage-score computations), discarding the iteration count.
func (f ATDASolve) Bind(ctx context.Context) GramSolve {
	return func(d, y []float64) ([]float64, error) {
		x, _, err := f(ctx, d, y)
		return x, err
	}
}

// Problem is the LP  min cᵀx  s.t.  Aᵀx = b,  l ≤ x ≤ u  (Section 4's
// convention: A ∈ R^{m×n} with rank n, so n plays the role of the vertex
// count and m the edge count in flow formulations).
type Problem struct {
	A *linalg.CSR
	B []float64 // demand, length n
	C []float64 // cost, length m
	L []float64 // lower bounds, length m (−Inf allowed)
	U []float64 // upper bounds, length m (+Inf allowed)

	// Backend names a registered AᵀDA strategy ("dense", "gremban",
	// "csr-cg", …); empty selects DefaultBackend.
	Backend string

	// Solve, if non-nil, overrides Backend with a custom (AᵀDA)⁻¹ solver.
	Solve ATDASolve
}

// Validate checks dimensions and bound sanity.
func (p *Problem) Validate() error {
	if p.A == nil {
		return fmt.Errorf("lp: nil constraint matrix")
	}
	m, n := p.A.Rows(), p.A.Cols()
	if len(p.B) != n {
		return fmt.Errorf("lp: b has %d entries, want %d", len(p.B), n)
	}
	if len(p.C) != m {
		return fmt.Errorf("lp: c has %d entries, want %d", len(p.C), m)
	}
	if len(p.L) != m || len(p.U) != m {
		return fmt.Errorf("lp: bounds have %d/%d entries, want %d", len(p.L), len(p.U), m)
	}
	if _, err := NewBarriers(p.L, p.U); err != nil {
		return err
	}
	return nil
}

// M returns the number of variables (rows of A).
func (p *Problem) M() int { return p.A.Rows() }

// N returns the number of equality constraints (columns of A).
func (p *Problem) N() int { return p.A.Cols() }

// solver instantiates the ATDASolve in use: the Solve override when set,
// otherwise the registered backend named by Backend (DefaultBackend when
// empty). The PrecondStats are the live counters of a combinatorial
// preconditioner, nil for overrides and backends without one.
func (p *Problem) solver() (ATDASolve, *PrecondStats, error) {
	if p.Solve != nil {
		return p.Solve, nil, nil
	}
	name := p.Backend
	if name == "" {
		name = DefaultBackend
	}
	return NewBackendSolverStats(name, p.A)
}

// Residual returns ‖Aᵀx − b‖₂, the equality-constraint violation.
func (p *Problem) Residual(x []float64) float64 {
	return linalg.Norm2(linalg.Sub(p.A.MulVecT(x), p.B))
}

// Objective returns cᵀx.
func (p *Problem) Objective(x []float64) float64 { return linalg.Dot(p.C, x) }

// BoundU computes the scale parameter U of Theorem 1.4 for an initial
// point x0: max of ‖1/(u−x0)‖∞, ‖1/(x0−l)‖∞, ‖u−l‖∞ and ‖c‖∞ (infinite
// one-sided terms are skipped, matching the barrier choice).
func (p *Problem) BoundU(x0 []float64) float64 {
	u := linalg.NormInf(p.C)
	for i := range x0 {
		if !math.IsInf(p.U[i], 1) {
			if v := 1 / (p.U[i] - x0[i]); v > u {
				u = v
			}
			if !math.IsInf(p.L[i], -1) {
				if v := p.U[i] - p.L[i]; v > u {
					u = v
				}
			}
		}
		if !math.IsInf(p.L[i], -1) {
			if v := 1 / (x0[i] - p.L[i]); v > u {
				u = v
			}
		}
	}
	if u < 1 {
		u = 1
	}
	return u
}
