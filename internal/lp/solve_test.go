package lp

import (
	"math"
	"testing"

	"bcclap/internal/linalg"
)

// simplexProblem: min cᵀx s.t. Σx_i = 1, 0 ≤ x ≤ 1. OPT = min_i c_i.
func simplexProblem(c []float64) (*Problem, []float64) {
	m := len(c)
	ts := make([]linalg.Triple, m)
	for i := range ts {
		ts[i] = linalg.Triple{Row: i, Col: 0, Val: 1}
	}
	prob := &Problem{
		A: linalg.NewCSR(m, 1, ts),
		B: []float64{1},
		C: append([]float64(nil), c...),
		L: make([]float64, m),
		U: linalg.Ones(m),
	}
	x0 := linalg.Constant(m, 1/float64(m))
	return prob, x0
}

func TestSolveSimplexLP(t *testing.T) {
	c := []float64{3, 1, 4, 1.5, 5}
	prob, x0 := simplexProblem(c)
	sol, err := Solve(prob, x0, 0.05, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	opt := linalg.Min(c)
	if sol.Objective > opt+0.1 {
		t.Fatalf("objective %v, OPT %v", sol.Objective, opt)
	}
	if r := prob.Residual(sol.X); r > 1e-6 {
		t.Fatalf("constraint violation %g", r)
	}
	for i, v := range sol.X {
		if v <= 0 || v >= 1 {
			t.Fatalf("x[%d] = %v outside open box", i, v)
		}
	}
	if sol.PathSteps == 0 || sol.Centerings == 0 {
		t.Fatal("no iterations recorded")
	}
}

func TestSolveTwoVariableLP(t *testing.T) {
	// min x₁ s.t. x₁ + x₂ = 1, 0 ≤ x ≤ 1: OPT = 0 at (0, 1).
	prob := &Problem{
		A: linalg.NewCSR(2, 1, []linalg.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}}),
		B: []float64{1},
		C: []float64{1, 0},
		L: []float64{0, 0},
		U: []float64{1, 1},
	}
	sol, err := Solve(prob, []float64{0.5, 0.5}, 0.02, Params{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > 0.05 {
		t.Fatalf("objective %v, want ≈ 0", sol.Objective)
	}
}

func TestSolveWithOneSidedBounds(t *testing.T) {
	// min x₁ + x₂ s.t. x₁ − x₂ = 0, x ≥ 0.1 (upper side unbounded):
	// OPT = 0.2 at (0.1, 0.1)... x₂ enters with coefficient −1.
	prob := &Problem{
		A: linalg.NewCSR(2, 1, []linalg.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: -1}}),
		B: []float64{0},
		C: []float64{1, 1},
		L: []float64{0.1, 0.1},
		U: []float64{math.Inf(1), math.Inf(1)},
	}
	sol, err := Solve(prob, []float64{1, 1}, 0.02, Params{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-0.2) > 0.05 {
		t.Fatalf("objective %v, want 0.2", sol.Objective)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	prob, x0 := simplexProblem([]float64{1, 2, 3})
	if _, err := Solve(prob, x0, 0, Params{}); err == nil {
		t.Error("eps = 0 accepted")
	}
	if _, err := Solve(prob, []float64{1, 0, 0}, 0.1, Params{}); err == nil {
		t.Error("boundary x0 accepted")
	}
	bad := linalg.Constant(3, 0.5) // violates Σx = 1
	if _, err := Solve(prob, bad, 0.1, Params{}); err == nil {
		t.Error("infeasible x0 accepted")
	}
	if _, err := Solve(prob, []float64{0.3, 0.3}, 0.1, Params{}); err == nil {
		t.Error("wrong-length x0 accepted")
	}
}

func TestPathStepsScaleWithSqrtN(t *testing.T) {
	// Theorem 1.4's headline: path steps grow like √n (here n is the
	// constraint count, 1 for the simplex — instead scale the α the solver
	// derives from n by constructing block problems with growing n).
	steps := func(n int) int {
		// n independent simplex blocks of 3 variables: Aᵀx = 1 per block.
		m := 3 * n
		var ts []linalg.Triple
		c := make([]float64, m)
		l := make([]float64, m)
		u := linalg.Ones(m)
		b := linalg.Ones(n)
		x0 := linalg.Constant(m, 1.0/3)
		for blk := 0; blk < n; blk++ {
			for j := 0; j < 3; j++ {
				row := 3*blk + j
				ts = append(ts, linalg.Triple{Row: row, Col: blk, Val: 1})
				c[row] = float64(j + 1)
			}
		}
		prob := &Problem{A: linalg.NewCSR(m, n, ts), B: b, C: c, L: l, U: u}
		sol, err := Solve(prob, x0, 0.1, Params{Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: per-block optimum is 1.
		if sol.Objective > float64(n)+0.5*float64(n) {
			t.Fatalf("n=%d objective %v too far above OPT %d", n, sol.Objective, n)
		}
		return sol.PathSteps
	}
	s1, s9 := steps(1), steps(9)
	if s9 <= s1 {
		t.Fatalf("path steps did not grow with n: %d vs %d", s1, s9)
	}
	// √9 = 3× plus log factors; must stay well below linear 9×.
	if float64(s9) > 7*float64(s1) {
		t.Fatalf("path-step growth looks linear: %d -> %d", s1, s9)
	}
}
