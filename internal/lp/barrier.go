package lp

import (
	"fmt"
	"math"
)

// Barriers bundles the per-coordinate 1-self-concordant barrier functions
// of Section 4.1: a log barrier for one-sided domains and the trigonometric
// barrier −log cos(a·x + b) for two-sided ones.
type Barriers struct {
	l, u []float64
}

// NewBarriers validates the domains (each coordinate must be bounded on at
// least one side, with l < u).
func NewBarriers(l, u []float64) (*Barriers, error) {
	if len(l) != len(u) {
		return nil, fmt.Errorf("lp: bounds length mismatch %d vs %d", len(l), len(u))
	}
	for i := range l {
		if math.IsInf(l[i], -1) && math.IsInf(u[i], 1) {
			return nil, fmt.Errorf("lp: coordinate %d unbounded on both sides", i)
		}
		if !(l[i] < u[i]) {
			return nil, fmt.Errorf("lp: empty domain [%g, %g] at %d", l[i], u[i], i)
		}
	}
	return &Barriers{l: append([]float64(nil), l...), u: append([]float64(nil), u...)}, nil
}

// M returns the number of coordinates.
func (b *Barriers) M() int { return len(b.l) }

// Interior reports whether x is strictly inside the domain.
func (b *Barriers) Interior(x []float64) bool {
	for i, v := range x {
		if !(v > b.l[i]) && !math.IsInf(b.l[i], -1) {
			return false
		}
		if !(v < b.u[i]) && !math.IsInf(b.u[i], 1) {
			return false
		}
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}

func (b *Barriers) trigParams(i int) (a, off float64) {
	a = math.Pi / (b.u[i] - b.l[i])
	off = -math.Pi / 2 * (b.u[i] + b.l[i]) / (b.u[i] - b.l[i])
	return a, off
}

// Phi returns φ_i(x_i) for every coordinate.
func (b *Barriers) Phi(x []float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		switch {
		case math.IsInf(b.u[i], 1):
			out[i] = -math.Log(v - b.l[i])
		case math.IsInf(b.l[i], -1):
			out[i] = -math.Log(b.u[i] - v)
		default:
			a, off := b.trigParams(i)
			out[i] = -math.Log(math.Cos(a*v + off))
		}
	}
	return out
}

// D1 returns the derivatives φ′_i(x_i).
func (b *Barriers) D1(x []float64) []float64 {
	out := make([]float64, len(x))
	b.D1To(out, x)
	return out
}

// D1To writes the derivatives φ′_i(x_i) into out (allocation-free form).
func (b *Barriers) D1To(out, x []float64) {
	for i, v := range x {
		switch {
		case math.IsInf(b.u[i], 1):
			out[i] = -1 / (v - b.l[i])
		case math.IsInf(b.l[i], -1):
			out[i] = 1 / (b.u[i] - v)
		default:
			a, off := b.trigParams(i)
			out[i] = a * math.Tan(a*v+off)
		}
	}
}

// D2 returns the second derivatives φ″_i(x_i) (always positive on the
// interior).
func (b *Barriers) D2(x []float64) []float64 {
	out := make([]float64, len(x))
	b.D2To(out, x)
	return out
}

// D2To writes the second derivatives φ″_i(x_i) into out (allocation-free
// form).
func (b *Barriers) D2To(out, x []float64) {
	for i, v := range x {
		switch {
		case math.IsInf(b.u[i], 1):
			d := v - b.l[i]
			out[i] = 1 / (d * d)
		case math.IsInf(b.l[i], -1):
			d := b.u[i] - v
			out[i] = 1 / (d * d)
		default:
			a, off := b.trigParams(i)
			t := math.Tan(a*v + off)
			out[i] = a * a * (1 + t*t)
		}
	}
}

// StepToBoundary returns the largest s ∈ (0, 1] such that x + s·dx stays
// strictly interior with the given relative margin; used to safeguard
// Newton steps in floating point.
func (b *Barriers) StepToBoundary(x, dx []float64, margin float64) float64 {
	s := 1.0
	for i := range x {
		if dx[i] > 0 && !math.IsInf(b.u[i], 1) {
			room := (b.u[i] - x[i]) * (1 - margin)
			if dx[i]*s > room {
				s = room / dx[i]
			}
		}
		if dx[i] < 0 && !math.IsInf(b.l[i], -1) {
			room := (x[i] - b.l[i]) * (1 - margin)
			if -dx[i]*s > room {
				s = room / -dx[i]
			}
		}
	}
	if s < 0 {
		s = 0
	}
	return s
}
