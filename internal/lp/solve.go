package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bcclap/internal/linalg"
	"bcclap/internal/sim"
)

// ErrInfeasible is returned (wrapped) when the supplied starting point is
// not strictly feasible for the problem: outside the box interior or
// violating the equality constraints. Callers detect it with errors.Is.
var ErrInfeasible = errors.New("lp: starting point is not strictly feasible")

// Params tunes LPSolve. Zero values select practical defaults that keep
// the paper's asymptotic shapes (see the package comment).
type Params struct {
	// Alpha is the multiplicative t-step (paper: R/(1600√n·log²m); default:
	// 0.4/√n, preserving the Θ(√n·log(U/ε)) path-step count of
	// Theorem 1.4).
	Alpha float64
	// CenterTol is the centrality measure δ below which a t-step is taken;
	// centering repeats (up to MaxInnerSteps) until reached.
	CenterTol float64
	// MaxInnerSteps caps centering repetitions per t-step.
	MaxInnerSteps int
	// FinalCenterings is the number of extra centerings at t_end
	// (paper: 4c_k·log(1/η)).
	FinalCenterings int
	// Lewis tunes the weight computations.
	Lewis LewisParams
	// LeverageEta is the JL distortion for leverage scores.
	LeverageEta float64
	// ExactLeverage disables sketching (small instances / tests).
	ExactLeverage bool
	// Seed feeds the shared Kane–Nelson seeds.
	Seed int64
	// Net, if non-nil, receives round accounting.
	Net *sim.Network
	// MaxPathSteps is a safety cap on total t-steps.
	MaxPathSteps int
	// InitWeightSteps caps the Algorithm 8 homotopy length.
	InitWeightSteps int
	// Progress, if non-nil, is invoked after every path step with the phase
	// (1 = artificial cost, 2 = true cost), the cumulative path-step count
	// and the current path parameter t. Observability only; it must be fast
	// and must not mutate solver state.
	Progress func(phase, step int, t float64)
}

func (p Params) withDefaults(n int) Params {
	if p.Alpha == 0 {
		p.Alpha = 0.4 / math.Sqrt(float64(maxInt(n, 1)))
	}
	if p.CenterTol == 0 {
		p.CenterTol = 0.5
	}
	if p.MaxInnerSteps == 0 {
		p.MaxInnerSteps = 6
	}
	if p.FinalCenterings == 0 {
		p.FinalCenterings = 12
	}
	if p.Lewis == (LewisParams{}) {
		p.Lewis = DefaultLewisParams()
	}
	if p.LeverageEta == 0 {
		p.LeverageEta = 0.5
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.MaxPathSteps == 0 {
		p.MaxPathSteps = 200000
	}
	if p.InitWeightSteps == 0 {
		p.InitWeightSteps = 400
	}
	return p
}

// Solution is the result of Solve.
type Solution struct {
	// X is the final (strictly feasible) iterate.
	X []float64
	// Weights is the final regularized Lewis weight vector; feeding it back
	// through Session.Polish warm-starts a re-solve of the same problem.
	Weights []float64
	// Objective is cᵀX.
	Objective float64
	// PathSteps counts t-updates across both phases (the quantity
	// Theorem 1.4 bounds by Õ(√n·log(U/ε))).
	PathSteps int
	// Centerings counts CenteringInexact invocations.
	Centerings int
	// CGIterations accumulates the inner iterations of the projection
	// (AᵀDA)-solves across all centerings (0 for the dense backend).
	CGIterations int
	// PrecondBuilds and PrecondRefreshes snapshot the backend's
	// combinatorial-preconditioner counters at the end of this solve (0 for
	// backends without one). They are cumulative over the owning session,
	// so a Builds count that stays at 1 across repeated solves is direct
	// evidence the symbolic structure was reused.
	PrecondBuilds    int
	PrecondRefreshes int
	// Rounds is the simulator round count consumed by this solve (0 without
	// a network).
	Rounds int
}

// scratch holds the centering buffers, allocated once per problem shape and
// reused across every path step — and, through a Session, across solves
// (the IPM performs Õ(√n) centerings; per-step allocation was the dominant
// garbage source before the LinOp refactor). Every buffer is fully written
// before it is read in each centering, so reuse never leaks state between
// solves and results stay bit-identical to a fresh allocation.
type scratch struct {
	phi1, phi2, phi2New []float64 // barrier derivatives at x / xNew
	q, pq               []float64 // centrality direction and projection
	dx, xNew            []float64 // Newton step
	base, z, dvec, grad []float64 // weight-update intermediates
	l, wNew             []float64 // mixed-ball radii, next weights
	tmp, rhs, asol      []float64 // applyProjection temporaries
}

// newScratch sizes the reusable centering buffers for an m×n problem.
func newScratch(m, n int) *scratch {
	v := func(k int) []float64 { return make([]float64, k) }
	s := &scratch{}
	s.phi1, s.phi2, s.phi2New = v(m), v(m), v(m)
	s.q, s.pq = v(m), v(m)
	s.dx, s.xNew = v(m), v(m)
	s.base, s.z, s.dvec, s.grad = v(m), v(m), v(m), v(m)
	s.l, s.wNew = v(m), v(m)
	s.tmp, s.asol = v(m), v(m)
	s.rhs = v(n)
	return s
}

// ipm carries one solver run.
type ipm struct {
	ctx    context.Context
	prob   *Problem
	bar    *Barriers
	par    Params
	lev    LeverageFn
	sol    ATDASolve
	pstats *PrecondStats // live backend counters (nil without a preconditioner)
	phase  int           // 1 = artificial cost, 2 = true cost, 3 = polish

	m, n   int
	p      float64 // Lewis exponent 1 − 1/log(4m)
	c0     float64 // weight regularization n/(2m)
	cK     float64
	cNorm  float64
	etaW   float64 // weight-update precision (practical e^R − 1)
	counts Solution

	scr *scratch
}

// Solve runs LPSolve (Algorithm 9) without cancellation; see SolveCtx.
func Solve(prob *Problem, x0 []float64, eps float64, par Params) (*Solution, error) {
	return SolveCtx(context.Background(), prob, x0, eps, par)
}

// SolveCtx runs LPSolve (Algorithm 9): center x0 against the artificial
// cost d = −w·φ′(x0) down to a tiny t₁, then follow the weighted central
// path for the true cost up to t₂ = 2m/ε. The returned point satisfies
// Aᵀx = b, l < x < u and (for converged runs) cᵀx ≤ OPT + O(ε).
//
// ctx is checked at every outer path step and inside the CG/Chebyshev
// kernels of the linear-solve backends; on cancellation or deadline the
// error satisfies errors.Is(err, ctx.Err()). One-shot callers pay the
// backend/scratch construction every call — use a Session to amortize it.
func SolveCtx(ctx context.Context, prob *Problem, x0 []float64, eps float64, par Params) (*Solution, error) {
	sess, err := NewSession(prob)
	if err != nil {
		return nil, err
	}
	return sess.Solve(ctx, x0, eps, par)
}

// pathFollowing implements Algorithm 10: alternate centering and
// multiplicative t-steps clamped by median to t_end, then polish with
// FinalCenterings extra centerings at t_end. The context is polled once
// per outer iteration, so cancellation surfaces within one path step.
func (s *ipm) pathFollowing(x, w []float64, tStart, tEnd float64, c []float64) ([]float64, []float64, error) {
	t := tStart
	var err error
	for t != tEnd {
		if err := s.ctx.Err(); err != nil {
			return x, w, fmt.Errorf("lp: canceled after %d path steps: %w", s.counts.PathSteps, err)
		}
		if s.counts.PathSteps >= s.par.MaxPathSteps {
			return x, w, fmt.Errorf("lp: exceeded %d path steps (t = %g, target %g)", s.par.MaxPathSteps, t, tEnd)
		}
		x, w, err = s.centerLoop(x, w, t, c)
		if err != nil {
			return x, w, err
		}
		t = linalg.Median3((1-s.par.Alpha)*t, tEnd, (1+s.par.Alpha)*t)
		s.counts.PathSteps++
		if s.par.Progress != nil {
			s.par.Progress(s.phase, s.counts.PathSteps, t)
		}
	}
	for i := 0; i < s.par.FinalCenterings; i++ {
		if err := s.ctx.Err(); err != nil {
			return x, w, fmt.Errorf("lp: canceled during final centerings: %w", err)
		}
		x, w, err = s.center(x, w, tEnd, c)
		if err != nil {
			return x, w, err
		}
	}
	return x, w, nil
}

// centerLoop repeats centering until the centrality measure δ is below
// CenterTol (practical safeguard for the aggressive α; with the paper's
// constants a single step maintains the invariant).
func (s *ipm) centerLoop(x, w []float64, t float64, c []float64) ([]float64, []float64, error) {
	var err error
	for inner := 0; inner < s.par.MaxInnerSteps; inner++ {
		var delta float64
		x, w, delta, err = s.centerDelta(x, w, t, c)
		if err != nil {
			return x, w, err
		}
		if delta <= s.par.CenterTol {
			break
		}
	}
	return x, w, nil
}

func (s *ipm) center(x, w []float64, t float64, c []float64) ([]float64, []float64, error) {
	x, w, _, err := s.centerDelta(x, w, t, c)
	return x, w, err
}

// centerDelta implements CenteringInexact (Algorithm 11): one projected
// Newton step on the weighted barrier plus one multiplicative weight update
// toward the fresh approximate Lewis weights, steered through the
// mixed-norm-ball projection.
//
// The returned x and w slices are the reusable scratch buffers (every
// write is elementwise against the same index of the inputs, so aliasing
// across successive calls is safe); Solve clones the final iterate before
// handing it to the caller.
func (s *ipm) centerDelta(x, w []float64, t float64, c []float64) ([]float64, []float64, float64, error) {
	s.counts.Centerings++
	m := s.m
	phi1, phi2 := s.scr.phi1, s.scr.phi2
	s.bar.D1To(phi1, x)
	s.bar.D2To(phi2, x)

	// q = (t·c + w·φ′(x)) / (w·√φ″(x)).
	q := s.scr.q
	for i := 0; i < m; i++ {
		q[i] = (t*c[i] + w[i]*phi1[i]) / (w[i] * math.Sqrt(phi2[i]))
	}
	pq, err := s.applyProjection(q, w, phi2)
	if err != nil {
		return x, w, 0, err
	}
	delta := linalg.NormInf(pq) + s.cNorm*linalg.WeightedNorm(pq, w)

	// Newton step dx = −Φ″^{-1/2}·P_{x,w} q, damped to stay interior.
	dx := s.scr.dx
	for i := 0; i < m; i++ {
		dx[i] = -pq[i] / math.Sqrt(phi2[i])
	}
	step := s.bar.StepToBoundary(x, dx, 0.05)
	if step > 1 {
		step = 1
	}
	xNew := s.scr.xNew
	for i := range xNew {
		xNew[i] = x[i] + 0.99*step*dx[i]
	}
	if !s.bar.Interior(xNew) {
		return x, w, 0, fmt.Errorf("lp: Newton step left the domain")
	}
	if s.par.Net != nil {
		// Two distributed matrix-vector products per centering (A and Aᵀ),
		// one coordinate broadcast each.
		bits := sim.BitsForFloat(1e9, 1e-12)
		for phase := 0; phase < 2; phase++ {
			s.par.Net.BeginPhase()
			for v := 0; v < s.par.Net.N(); v++ {
				s.par.Net.Broadcast(v, bits, nil)
			}
			s.par.Net.EndPhase()
		}
	}

	// Weight update (Algorithm 11 lines 4–6). We compute the fresh
	// regularized Lewis weights at xNew and move log(w) toward them through
	// the mixed-ball projection of the smoothed-potential gradient.
	phi2New := s.scr.phi2New
	s.bar.D2To(phi2New, xNew)
	base := s.scr.base
	for i := range base {
		base[i] = 1 / math.Sqrt(phi2New[i])
	}
	apx, err := ComputeApxWeights(s.lev, base, s.p, w, s.par.Lewis)
	if err != nil {
		return x, w, 0, err
	}
	z := s.scr.z
	for i := range z {
		// Regularize as in the definition of g(x) (Definition 4.3); this
		// also keeps the logs bounded.
		z[i] = math.Log(apx[i] + s.c0)
	}
	dvec := s.scr.dvec
	for i := range dvec {
		dvec[i] = z[i] - math.Log(math.Max(w[i], 1e-300))
	}
	grad := s.scr.grad
	softmaxGradientTo(grad, dvec)
	l := s.scr.l
	for i := range l {
		l[i] = s.cNorm * math.Sqrt(math.Max(w[i], 1e-300))
	}
	proj := ProjectMixedBall(grad, l, s.par.Net)
	scale := (1 - 6/(7*s.cK)) * math.Min(delta, 1)
	wNew := s.scr.wNew
	for i := range wNew {
		u := linalg.Clamp(scale*proj[i], -0.5, 0.5)
		wNew[i] = w[i] * math.Exp(u)
		// Keep weights inside the regularized band [c0/2, 3n/2].
		wNew[i] = linalg.Clamp(wNew[i], s.c0/2, 1.5*float64(s.n)+1)
	}
	return xNew, wNew, delta, nil
}

// applyProjection computes P_{x,w}q = q − W⁻¹A_x(A_xᵀW⁻¹A_x)⁻¹A_xᵀq with
// A_x = Φ″(x)^{−1/2}A, using one (AᵀDA)-solve with D = 1/(w·φ″) through the
// configured backend. The result lands in the reusable scr.pq buffer.
func (s *ipm) applyProjection(q, w, phi2 []float64) ([]float64, error) {
	m := s.m
	// A_xᵀ q = Aᵀ(Φ″^{−1/2} q).
	tmp := s.scr.tmp
	for i := 0; i < m; i++ {
		tmp[i] = q[i] / math.Sqrt(phi2[i])
	}
	s.prob.A.MulVecTTo(s.scr.rhs, tmp)
	// Reuse tmp for the solve diagonal: rhs is already extracted.
	for i := 0; i < m; i++ {
		tmp[i] = 1 / (w[i] * phi2[i])
	}
	sol, iters, err := s.sol(s.ctx, tmp, s.scr.rhs)
	s.counts.CGIterations += iters
	if err != nil {
		return nil, fmt.Errorf("lp: projection solve: %w", err)
	}
	s.prob.A.MulVecTo(s.scr.asol, sol)
	out := s.scr.pq
	for i := 0; i < m; i++ {
		out[i] = q[i] - s.scr.asol[i]/(w[i]*math.Sqrt(phi2[i]))
	}
	return out, nil
}

// softmaxGradientTo writes the normalized gradient of the smoothing
// potential Φ_μ(v) = Σ_i (e^{μv_i} + e^{−μv_i}) used by Algorithm 11 into
// out. The projection is invariant under positive scaling of its input, so
// the gradient is normalized (and μ chosen to avoid overflow).
func softmaxGradientTo(out, v []float64) {
	maxAbs := linalg.NormInf(v)
	mu := 1.0
	if maxAbs > 0 {
		mu = math.Min(8, 30/maxAbs)
	}
	for i, d := range v {
		out[i] = math.Exp(mu*d) - math.Exp(-mu*d)
	}
	if n := linalg.Norm2(out); n > 0 {
		linalg.Scale(1/n, out)
	}
}
