package lp

import (
	"math"
	"testing"
)

func TestBarrierValidation(t *testing.T) {
	if _, err := NewBarriers([]float64{math.Inf(-1)}, []float64{math.Inf(1)}); err == nil {
		t.Error("doubly unbounded accepted")
	}
	if _, err := NewBarriers([]float64{1}, []float64{1}); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := NewBarriers([]float64{0, math.Inf(-1), 0}, []float64{1, 5, math.Inf(1)}); err != nil {
		t.Errorf("valid domains rejected: %v", err)
	}
}

// finite-difference check of φ′ and φ″ for all three barrier types.
func TestBarrierDerivatives(t *testing.T) {
	b, err := NewBarriers(
		[]float64{0, math.Inf(-1), -1},
		[]float64{math.Inf(1), 2, 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.7, 0.3, 1.1}
	h := 1e-6
	phi1 := b.D1(x)
	phi2 := b.D2(x)
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		d1 := (b.Phi(xp)[i] - b.Phi(xm)[i]) / (2 * h)
		if math.Abs(d1-phi1[i]) > 1e-4*(1+math.Abs(phi1[i])) {
			t.Errorf("coord %d: φ′ = %v, finite diff %v", i, phi1[i], d1)
		}
		d2 := (b.D1(xp)[i] - b.D1(xm)[i]) / (2 * h)
		if math.Abs(d2-phi2[i]) > 1e-4*(1+math.Abs(phi2[i])) {
			t.Errorf("coord %d: φ″ = %v, finite diff %v", i, phi2[i], d2)
		}
		if phi2[i] <= 0 {
			t.Errorf("coord %d: φ″ = %v not positive", i, phi2[i])
		}
	}
}

func TestBarrierBlowsUpAtBoundary(t *testing.T) {
	b, err := NewBarriers([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	mid := b.Phi([]float64{0.5})[0]
	near := b.Phi([]float64{1e-9})[0]
	if near < mid+10 {
		t.Fatalf("barrier near boundary %v not ≫ center %v", near, mid)
	}
}

func TestInterior(t *testing.T) {
	b, err := NewBarriers([]float64{0, 0}, []float64{1, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Interior([]float64{0.5, 100}) {
		t.Error("interior point rejected")
	}
	if b.Interior([]float64{0, 1}) {
		t.Error("boundary point accepted")
	}
	if b.Interior([]float64{0.5, math.NaN()}) {
		t.Error("NaN accepted")
	}
}

func TestStepToBoundary(t *testing.T) {
	b, err := NewBarriers([]float64{0}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// From 0.5 stepping +1: room is 0.5·(1−margin).
	s := b.StepToBoundary([]float64{0.5}, []float64{1}, 0.1)
	if math.Abs(s-0.45) > 1e-12 {
		t.Fatalf("s = %v, want 0.45", s)
	}
	// Step within the domain: full step.
	if s := b.StepToBoundary([]float64{0.5}, []float64{0.1}, 0.1); s != 1 {
		t.Fatalf("full step clipped: %v", s)
	}
}
