package lp

import (
	"fmt"
	"math"

	"bcclap/internal/jl"
	"bcclap/internal/linalg"
)

// LeverageFn returns approximate leverage scores σ(diag(d)·A) for the
// problem's constraint matrix A. Implementations use either the exact
// per-row formula or Algorithm 6's Johnson–Lindenstrauss sketching with a
// shared Kane–Nelson seed.
type LeverageFn func(d []float64) ([]float64, error)

// GramSolve answers (AᵀDA)x = y. The leverage computations receive it as a
// context-free closure; callers bind their context (and iteration
// accounting) with ATDASolve.Bind.
type GramSolve func(d, y []float64) ([]float64, error)

// NewLeverageFn builds a LeverageFn over A. When exact is false it uses a
// Kane–Nelson sketch of dimension Θ(log(m)/η²) with a fresh seed per call
// (in the BCC the leader broadcasts O(log²m) seed bits once per call, as in
// Algorithm 6). solve answers (AᵀDA)x = y.
func NewLeverageFn(a *linalg.CSR, solve GramSolve, exact bool, eta float64, seed int64) LeverageFn {
	m, n := a.Rows(), a.Cols()
	counter := seed
	return func(d []float64) ([]float64, error) {
		if len(d) != m {
			return nil, fmt.Errorf("lp: leverage scaling has %d entries, want %d", len(d), m)
		}
		d2 := make([]float64, m)
		for i, v := range d {
			d2[i] = v * v
		}
		gram := func(y []float64) ([]float64, error) { return solve(d2, y) }
		mul, mulT := jl.DiagScaledOps(a, d)
		k := jl.SketchDim(m, eta/4)
		// Sketching only pays off when k < m solves; for tiny instances the
		// exact per-row computation is cheaper and exact.
		if exact || k >= m {
			return jl.LeverageScoresExact(mul, mulT, m, n, gram)
		}
		counter++
		sk, err := jl.NewKaneNelson(k, m, 0, counter)
		if err != nil {
			return nil, err
		}
		return jl.LeverageScoresApprox(mul, mulT, m, n, gram, sk)
	}
}

// LewisParams tunes the Lewis-weight iterations. The paper's Algorithm 7
// uses L = max(4, 8/p), a clamp band r = p²(4−p)/2²⁰ and
// T = Θ((p + 1/p)·log(pn/η)) iterations — r is tiny because the proof
// tracks a local contraction; in float64 practice a wide band with a few
// damped fixed-point steps reaches the same fixed point. Defaults keep the
// paper's L and iteration shape with a practical band.
type LewisParams struct {
	// R is the multiplicative clamp band around w0 (paper: p²(4−p)/2²⁰).
	R float64
	// MaxIters caps the iteration count T.
	MaxIters int
	// WMin floors the weights for numerical safety.
	WMin float64
}

// DefaultLewisParams returns practical defaults.
func DefaultLewisParams() LewisParams {
	return LewisParams{R: 0.9, MaxIters: 8, WMin: 1e-10}
}

// ComputeApxWeights implements Algorithm 7: approximate the ℓ_p Lewis
// weights w_p(diag(base)·A) starting from w0, by damped fixed-point steps
//
//	w ← median((1−r)w0, w − (1/L)(w0 − (w0/w)·σ(W^{1/2−1/p}·diag(base)·A)), (1+r)w0).
//
// The fixed point satisfies w = σ(W^{1/2−1/p}M), the defining equation of
// Definition 4.3.
func ComputeApxWeights(lev LeverageFn, base []float64, p float64, w0 []float64, par LewisParams) ([]float64, error) {
	if p <= 0 {
		return nil, fmt.Errorf("lp: lewis p = %g must be positive", p)
	}
	m := len(w0)
	bigL := math.Max(4, 8/p)
	w := linalg.Clone(w0)
	exp := 0.5 - 1/p
	d := make([]float64, m)
	for iter := 0; iter < par.MaxIters; iter++ {
		for i := range d {
			wi := math.Max(w[i], par.WMin)
			d[i] = math.Pow(wi, exp) * base[i]
		}
		sigma, err := lev(d)
		if err != nil {
			return nil, fmt.Errorf("lp: lewis iteration %d: %w", iter, err)
		}
		for i := range w {
			wi := math.Max(w[i], par.WMin)
			target := wi - (1/bigL)*(w0[i]-(w0[i]/wi)*sigma[i])
			w[i] = linalg.Median3((1-par.R)*w0[i], target, (1+par.R)*w0[i])
			if w[i] < par.WMin {
				w[i] = par.WMin
			}
		}
	}
	return w, nil
}

// ComputeInitialWeights implements Algorithm 8: homotopy from p = 2 (where
// Lewis weights are plain leverage scores) to pTarget, shrinking p by
// h = min{2,p}·r/(√n·log(m·e²/n)) per step — the √n·log(m) step count is
// exactly the initialization cost in Lemma 4.6. Returns the weights for
// pTarget to the accuracy of the final ComputeApxWeights call.
func ComputeInitialWeights(lev LeverageFn, base []float64, pTarget float64, n, m int, par LewisParams, maxSteps int) ([]float64, int, error) {
	cK := 2 * math.Log(4*float64(m))
	w := linalg.Constant(m, 1/(2*cK))
	p := 2.0
	steps := 0
	denom := math.Sqrt(float64(n))*math.Log(float64(m)*math.E*math.E/math.Max(1, float64(n))) + 1
	for p != pTarget && steps < maxSteps {
		h := math.Min(2, p) * par.R / denom
		pNew := linalg.Median3(p-h, pTarget, p+h)
		w0 := make([]float64, m)
		for i := range w {
			w0[i] = math.Pow(math.Max(w[i], par.WMin), pNew/p)
		}
		var err error
		coarse := par
		coarse.MaxIters = maxInt(2, par.MaxIters/2)
		w, err = ComputeApxWeights(lev, base, pNew, w0, coarse)
		if err != nil {
			return nil, steps, err
		}
		p = pNew
		steps++
	}
	w, err := ComputeApxWeights(lev, base, pTarget, w, par)
	return w, steps, err
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
