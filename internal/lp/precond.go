// The csr-pcg backend: matrix-free CG over the composed AᵀDA operator (as
// csr-cg) preconditioned by a combinatorial, fill-free incomplete Cholesky
// whose support is extracted from the constraint matrix with the paper's
// own spanner/sparsifier machinery.
//
// The flow LP's constraint matrix is incidence-structured: every row has
// at most two nonzeros, so AᵀDA = (graph Laplacian over the two-nonzero
// rows) + (diagonal from the one-nonzero rows). That graph is exactly the
// flow network on the non-source vertices, and a combinatorial
// preconditioner is a sparse subgraph of it. The factory runs once per
// constraint matrix (i.e. once per session, shared by every IPM step and
// every query on the session):
//
//  1. classify rows (symbolic; rejects non-incidence matrices, which fall
//     back to pure Jacobi),
//  2. extract the preconditioning subgraph — a Baswana–Sen spanner
//     (internal/spanner) of the support graph, preceded by one cheap
//     ad-hoc sparsification round (internal/sparsify) when the support is
//     dense — and complete it to a spanning forest,
//  3. build the fill-free elimination structure (linalg.TreeCholPrecond).
//
// Per ATDA call the backend only refreshes numerics — and only when the
// IPM actually reweighted D: the leverage-score sketches issue many solves
// against one diagonal, which all reuse the previous factorization.
package lp

import (
	"math"
	"math/rand"
	"sort"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
	"bcclap/internal/spanner"
	"bcclap/internal/sparsify"
)

// pcgSeed fixes the subgraph-extraction randomness: the preconditioner only
// steers iteration counts, never results, but sessions must stay
// deterministic (bit-identical re-runs), so the spanner/sparsifier streams
// derive from a constant rather than ambient state.
const pcgSeed = 0x9e3779b9

// pcgStructure is the symbolic half of the csr-pcg preconditioner, built
// once per constraint matrix and shared by every numeric refresh.
type pcgStructure struct {
	// tree is the fill-free factorization over the extracted forest; nil
	// when A is not incidence-structured (some row has ≥ 3 nonzeros), in
	// which case the backend degrades to Jacobi — still correct, just
	// without the combinatorial boost.
	tree *linalg.TreeCholPrecond
	// Off-diagonal assembly: forest edge t sums d[offRow[k]]·offCoef[k]
	// over k in [offPtr[t], offPtr[t+1]) — the rows (parallel arcs) whose
	// support is exactly that vertex pair.
	offPtr  []int
	offRow  []int
	offCoef []float64
}

// pcgPair is a distinct unordered column pair carrying at least one
// two-nonzero row.
type pcgPair struct {
	u, v int
	rows []int
	coef []float64 // product of the two row values, aligned with rows
}

// buildPCGStructure runs the symbolic analysis (steps 1–3 above).
func buildPCGStructure(a *linalg.CSR) *pcgStructure {
	n := a.Cols()
	pairs, structured := collectPairs(a)
	if !structured || n == 0 {
		return &pcgStructure{}
	}
	// Support graph: one edge per distinct pair. The spanner prefers light
	// edges, so weight = 1/(1+multiplicity) steers high-multiplicity pairs
	// (parallel arcs, the strongest couplings) into the subgraph.
	g := graph.New(n)
	for _, p := range pairs {
		if _, err := g.AddEdge(p.u, p.v, 1/(1+float64(len(p.rows)))); err != nil {
			return &pcgStructure{}
		}
	}
	k := int(math.Ceil(math.Log2(float64(max(n, 4)))))
	alive := make([]bool, g.M())
	for e := range alive {
		alive[e] = true
	}
	// Dense support (beyond ~n·log n pairs): one cheap ad-hoc
	// sparsification pass first, so the spanner walks a subgraph whose
	// size already matches the target.
	if len(pairs) > 4*n*k {
		rnd := rand.New(rand.NewSource(pcgSeed))
		res := sparsify.Adhoc(g, sparsify.Params{K: k, T: 1, Iterations: 3}, rnd, nil)
		for e := range alive {
			alive[e] = false
		}
		for _, e := range res.KeptEdges {
			alive[e] = true
		}
	}
	sp := spanner.Run(g, alive, nil, k, spanner.Options{
		MarkRand: rand.New(rand.NewSource(pcgSeed + 1)),
		EdgeRand: rand.New(rand.NewSource(pcgSeed + 2)),
	})
	// Spanning forest of the spanner, completed against the full pair set
	// (the spanner preserves connectivity, but the completion sweep makes
	// the forest spanning regardless of sampling accidents).
	uf := graph.NewUnionFind(n)
	var forest []int // indices into pairs
	addAcyclic := func(e int) {
		ed := g.Edge(e)
		if uf.Union(ed.U, ed.V) {
			forest = append(forest, e)
		}
	}
	for _, e := range sp.FPlus {
		addAcyclic(e)
	}
	for e := 0; e < g.M(); e++ {
		addAcyclic(e)
	}
	edges := make([]linalg.TreeEdge, len(forest))
	st := &pcgStructure{offPtr: make([]int, len(forest)+1)}
	for i, e := range forest {
		p := pairs[e]
		edges[i] = linalg.TreeEdge{U: p.u, V: p.v}
		st.offRow = append(st.offRow, p.rows...)
		st.offCoef = append(st.offCoef, p.coef...)
		st.offPtr[i+1] = len(st.offRow)
	}
	tree, err := linalg.NewTreeCholPrecond(n, edges)
	if err != nil {
		// The forest came from a union-find, so this is unreachable; degrade
		// to Jacobi rather than fail the solve if it ever trips.
		return &pcgStructure{}
	}
	st.tree = tree
	return st
}

// collectPairs classifies every row of A: one-nonzero rows contribute only
// to the diagonal, two-nonzero rows are graph edges. A row with three or
// more nonzeros makes the matrix non-incidence-structured and the caller
// falls back to Jacobi.
func collectPairs(a *linalg.CSR) ([]*pcgPair, bool) {
	type key struct{ u, v int }
	byPair := map[key]*pcgPair{}
	var cols [3]int
	var vals [3]float64
	for r := 0; r < a.Rows(); r++ {
		nnz := a.RowNNZ(r)
		if nnz <= 1 {
			continue
		}
		if nnz > 2 {
			return nil, false
		}
		k := 0
		a.VisitRow(r, func(c int, v float64) {
			cols[k], vals[k] = c, v
			k++
		})
		u, v := cols[0], cols[1]
		if u > v {
			u, v = v, u
		}
		p := byPair[key{u, v}]
		if p == nil {
			p = &pcgPair{u: u, v: v}
			byPair[key{u, v}] = p
		}
		p.rows = append(p.rows, r)
		p.coef = append(p.coef, vals[0]*vals[1])
	}
	pairs := make([]*pcgPair, 0, len(byPair))
	for _, p := range byPair {
		pairs = append(pairs, p)
	}
	// Deterministic edge order (maps iterate randomly): sort by (u, v).
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].u != pairs[j].u {
			return pairs[i].u < pairs[j].u
		}
		return pairs[i].v < pairs[j].v
	})
	return pairs, true
}

// csrPCGBackend builds the ATDASolve of the csr-pcg backend over the
// matrix-free CG core shared with csr-cg (same operator, tolerance and
// iteration budget — only the preconditioner differs, which is what keeps
// the e19 iteration comparison meaningful). Symbolic work — structure
// analysis, subgraph extraction, elimination ordering — happens here,
// once; the per-call refresh only rewrites numerics, and only when the
// diagonal actually changed since the previous call.
func csrPCGBackend(a *linalg.CSR) (ATDASolve, *PrecondStats, error) {
	stats := &PrecondStats{}
	st := buildPCGStructure(a)
	if st.tree != nil {
		// Only a real combinatorial build counts: on non-incidence
		// matrices the backend degrades to plain Jacobi and Builds stays 0,
		// so the counter distinguishes the two — a formulation change that
		// silently loses the preconditioner shows up as PrecondBuilds = 0.
		stats.Builds++
	}
	core := newMFCore(a)
	dPrev := make([]float64, a.Rows())
	havePrev := false
	var off []float64
	var precondTo func(dst, r []float64)
	var jac *linalg.JacobiPrecond
	if st.tree != nil {
		off = make([]float64, len(st.offPtr)-1)
		precondTo = st.tree.ApplyTo
	} else {
		jac = linalg.NewJacobiPrecond(a.Cols())
		precondTo = jac.ApplyTo
	}
	refresh := func(d []float64) {
		if havePrev && floatsEqual(dPrev, d) {
			return
		}
		copy(dPrev, d)
		havePrev = true
		core.load(d)
		if st.tree != nil {
			// Guard numerically degenerate columns (as the Jacobi path does
			// inside Refresh) so the factor diagonal stays meaningful.
			for i, v := range core.diag {
				if v <= 0 {
					core.diag[i] = 1
				}
			}
			for t := 0; t < len(off); t++ {
				var s float64
				for k := st.offPtr[t]; k < st.offPtr[t+1]; k++ {
					s += d[st.offRow[k]] * st.offCoef[k]
				}
				off[t] = s
			}
			st.tree.Refresh(core.diag, off)
		} else {
			jac.Refresh(core.diag)
		}
		stats.Refreshes++
	}
	return core.newSolve(refresh, precondTo), stats, nil
}

// floatsEqual reports bitwise equality of two equal-length vectors — the
// refresh guard. An O(m) compare is noise next to the O(nnz·iters) solve
// it saves when the leverage sketches re-solve against an unchanged D.
func floatsEqual(a, b []float64) bool {
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
