package lp

import (
	"math"
	"sort"

	"bcclap/internal/linalg"
	"bcclap/internal/sim"
)

// ProjectMixedBall solves
//
//	argmax_{‖x‖₂ + ‖l⁻¹x‖∞ ≤ 1} aᵀx
//
// following Lemma 4.10. Splitting the unit budget into an ∞-part t and a
// 2-part 1−t, the inner optimum for fixed t clamps the coordinates with the
// largest |a_i|/l_i at t·l_i·sign(a_i) and spends the remaining 2-norm
// budget proportionally to a; the split index is found by a binary search
// over the (implicitly sorted) ratio order using three prefix sums
// Σ|a_k|l_k, Σl_k², Σa_k² — each evaluation is one aggregate broadcast
// phase in the BCC (charged to net when provided). The outer value
//
//	g(t) = t·Σ_{k∈[i_t]}|a_k|l_k + √((1−t)² − t²Σ_{k∈[i_t]}l_k²)·√(‖a‖² − Σ_{k∈[i_t]}a_k²)
//
// is concave (it is the partial maximization of a linear function over the
// convex set {(x,t) : ‖x‖₂ ≤ 1−t, |x_i| ≤ t·l_i}), so a golden-section
// search over t needs O(log(1/precision)) evaluations, matching the
// paper's Õ(log²(U/ε))-round bound.
//
// All l_i must be positive.
func ProjectMixedBall(a, l []float64, net *sim.Network) []float64 {
	m := len(a)
	x := make([]float64, m)
	if m == 0 || linalg.Norm2(a) == 0 {
		return x
	}
	// Sort indices by |a_i|/l_i descending — the clamp priority order. (In
	// the BCC the order is never materialized; the binary search below
	// queries ratio thresholds, which is how the paper sidesteps sorting.)
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(p, q int) bool {
		ip, iq := order[p], order[q]
		return math.Abs(a[ip])*l[iq] > math.Abs(a[iq])*l[ip]
	})
	// Prefix sums over the sorted order: P1 = Σ|a|l, P2 = Σl², P3 = Σa².
	p1 := make([]float64, m+1)
	p2 := make([]float64, m+1)
	p3 := make([]float64, m+1)
	for j, idx := range order {
		p1[j+1] = p1[j] + math.Abs(a[idx])*l[idx]
		p2[j+1] = p2[j] + l[idx]*l[idx]
		p3[j+1] = p3[j] + a[idx]*a[idx]
	}
	normA2 := p3[m]

	charge := func() {
		if net == nil {
			return
		}
		// One aggregate phase: every vertex broadcasts its three partial
		// sums with O(log(mU/ε)) bits each.
		net.BeginPhase()
		bits := 3 * sim.BitsForFloat(1e6, 1e-9)
		for v := 0; v < net.N(); v++ {
			net.Broadcast(v, bits, nil)
		}
		net.EndPhase()
	}

	// split returns, for the normalized inner problem at ∞-budget τ =
	// t/(1−t), the clamp count c and the proportional coefficient μ such
	// that x_j = sign(a_j)·min(μ|a_j|, τ·l_j) has unit 2-norm.
	muFor := func(c int, tau float64) float64 {
		rest := normA2 - p3[c]
		budget := 1 - tau*tau*p2[c]
		if rest <= 1e-300 {
			return 0
		}
		if budget <= 0 {
			return 0
		}
		return math.Sqrt(budget / rest)
	}
	split := func(tau float64) (int, float64) {
		charge()
		// Binary search for the largest c with every clamped coordinate
		// consistent: μ_c·|a_{σ(c)}| ≥ τ·l_{σ(c)} and budget ≥ 0.
		lo, hi := 0, m
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if 1-tau*tau*p2[mid] < 0 {
				hi = mid - 1
				continue
			}
			idx := order[mid-1]
			mu := muFor(mid, tau)
			if mu*math.Abs(a[idx]) >= tau*l[idx] || muFor(mid-1, tau)*math.Abs(a[idx]) > tau*l[idx] {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		return lo, muFor(lo, tau)
	}
	value := func(t float64) float64 {
		if t >= 1 {
			return 0
		}
		tau := t / (1 - t)
		c, mu := split(tau)
		inner := tau*p1[c] + mu*(normA2-p3[c])
		return (1 - t) * inner
	}
	// Golden-section search over the concave value(t).
	lo, hi := 0.0, 1.0
	const phi = 0.6180339887498949
	t1 := hi - phi*(hi-lo)
	t2 := lo + phi*(hi-lo)
	v1, v2 := value(t1), value(t2)
	for it := 0; it < 48; it++ {
		if v1 < v2 {
			lo = t1
			t1, v1 = t2, v2
			t2 = lo + phi*(hi-lo)
			v2 = value(t2)
		} else {
			hi = t2
			t2, v2 = t1, v1
			t1 = hi - phi*(hi-lo)
			v1 = value(t1)
		}
	}
	t := (lo + hi) / 2
	if v0 := value(0); v0 > value(t) {
		t = 0
	}
	tau := t / (1 - t)
	c, mu := split(tau)
	for j, idx := range order {
		if j < c {
			// Clamped coordinates sit exactly on their ∞-budget.
			x[idx] = (1 - t) * tau * l[idx] * sign(a[idx])
		} else {
			x[idx] = (1 - t) * sign(a[idx]) * math.Min(mu*math.Abs(a[idx]), tau*l[idx])
		}
	}
	return x
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	if v > 0 {
		return 1
	}
	return 0
}

// MixedBallValue evaluates aᵀx.
func MixedBallValue(a, x []float64) float64 { return linalg.Dot(a, x) }

// MixedBallFeasible reports whether ‖x‖₂ + ‖l⁻¹x‖∞ ≤ 1 + tol.
func MixedBallFeasible(x, l []float64, tol float64) bool {
	infPart := 0.0
	for i := range x {
		if v := math.Abs(x[i]) / l[i]; v > infPart {
			infPart = v
		}
	}
	return linalg.Norm2(x)+infPart <= 1+tol
}
