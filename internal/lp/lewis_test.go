package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/linalg"
)

func tallMatrix(m, n int, rnd *rand.Rand) *linalg.CSR {
	var ts []linalg.Triple
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ts = append(ts, linalg.Triple{Row: i, Col: j, Val: rnd.NormFloat64()})
		}
	}
	return linalg.NewCSR(m, n, ts)
}

func TestLewisWeightsPTwoAreLeverageScores(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	m, n := 20, 4
	a := tallMatrix(m, n, rnd)
	prob := &Problem{A: a}
	sol, _, err := prob.solver()
	if err != nil {
		t.Fatal(err)
	}
	lev := NewLeverageFn(a, sol.Bind(context.Background()), true, 0, 1)
	base := linalg.Ones(m)
	// For p = 2, W^{1/2−1/p} = W⁰ = I, so the fixed point is σ(A) itself.
	sigma, err := lev(base)
	if err != nil {
		t.Fatal(err)
	}
	par := DefaultLewisParams()
	par.MaxIters = 30
	w, err := ComputeApxWeights(lev, base, 2, sigma, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w {
		if math.Abs(w[i]-sigma[i]) > 0.05*(sigma[i]+0.01) {
			t.Fatalf("w[%d] = %v, σ = %v", i, w[i], sigma[i])
		}
	}
}

func TestLewisFixedPoint(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	m, n := 24, 4
	a := tallMatrix(m, n, rnd)
	prob := &Problem{A: a}
	sol, _, err := prob.solver()
	if err != nil {
		t.Fatal(err)
	}
	lev := NewLeverageFn(a, sol.Bind(context.Background()), true, 0, 1)
	base := linalg.Ones(m)
	p := 1.2
	par := DefaultLewisParams()
	par.MaxIters = 60
	w, _, err := ComputeInitialWeights(lev, base, p, n, m, par, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the defining equation w = σ(W^{1/2−1/p}A) approximately.
	d := make([]float64, m)
	for i := range d {
		d[i] = math.Pow(math.Max(w[i], 1e-12), 0.5-1/p)
	}
	sigma, err := lev(d)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range w {
		rel := math.Abs(w[i]-sigma[i]) / (sigma[i] + 0.02)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.35 {
		t.Fatalf("Lewis fixed-point residual %v too large", worst)
	}
	// Lewis weights sum to ≈ n.
	if s := linalg.Sum(w); math.Abs(s-float64(n)) > 1 {
		t.Fatalf("Σw = %v, want ≈ %d", s, n)
	}
}

func TestComputeInitialWeightsStepCountScales(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	steps := func(n int) int {
		m := 3 * n
		a := tallMatrix(m, n, rnd)
		prob := &Problem{A: a}
		sol, _, err := prob.solver()
		if err != nil {
			t.Fatal(err)
		}
		lev := NewLeverageFn(a, sol.Bind(context.Background()), true, 0, 1)
		par := DefaultLewisParams()
		par.MaxIters = 2
		_, st, err := ComputeInitialWeights(lev, linalg.Ones(m), 1-1/math.Log(4*float64(m)), n, m, par, 10000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	s4, s16 := steps(4), steps(16)
	if s16 <= s4 {
		t.Fatalf("homotopy steps did not grow with √n: %d vs %d", s4, s16)
	}
	// Lemma 4.6: Õ(√n) — quadrupling n should roughly double the steps,
	// certainly not more than quadruple them.
	if float64(s16) > 4.5*float64(s4) {
		t.Fatalf("homotopy growth superlinear in √n: %d -> %d", s4, s16)
	}
}

func TestComputeApxWeightsRejectsBadP(t *testing.T) {
	if _, err := ComputeApxWeights(nil, nil, 0, nil, DefaultLewisParams()); err == nil {
		t.Fatal("p = 0 accepted")
	}
}
