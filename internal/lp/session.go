package lp

import (
	"context"
	"fmt"
	"math"

	"bcclap/internal/linalg"
)

// Session is a reusable solver handle for one Problem: the linear-solve
// backend (with its factorization buffers and CG workspaces) and the IPM
// centering scratch are built once and shared by every Solve/Polish call,
// so repeated solves of the same problem shape stop allocating after the
// first. Results are bit-identical to one-shot SolveCtx calls — every
// scratch buffer is fully overwritten before it is read.
//
// A Session is not safe for concurrent use; it serves a sequential query
// stream, matching the model (one network, one round structure).
type Session struct {
	prob  *Problem
	bar   *Barriers
	solve ATDASolve
	// pstats are the live preconditioner counters of the backend (nil for
	// backends without a combinatorial preconditioner); cumulative over
	// the session, snapshotted into every Solution.
	pstats *PrecondStats
	scr    *scratch
}

// NewSession validates prob, instantiates its linear-solve backend (an
// unknown Problem.Backend fails here with ErrBackendUnknown, before any
// solve starts) and allocates the shared scratch.
func NewSession(prob *Problem) (*Session, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	bar, err := NewBarriers(prob.L, prob.U)
	if err != nil {
		return nil, err
	}
	solve, pstats, err := prob.solver()
	if err != nil {
		return nil, err
	}
	return &Session{prob: prob, bar: bar, solve: solve, pstats: pstats, scr: newScratch(prob.M(), prob.N())}, nil
}

// newIPM builds the per-call solver state over the session's shared
// backend and scratch.
func (sess *Session) newIPM(ctx context.Context, par Params) *ipm {
	m, n := sess.prob.M(), sess.prob.N()
	par = par.withDefaults(n)
	s := &ipm{
		ctx: ctx, prob: sess.prob, bar: sess.bar, par: par,
		m: m, n: n,
		p:      1 - 1/math.Log(4*float64(m)),
		c0:     float64(n) / (2 * float64(m)),
		cK:     2 * math.Log(4*float64(m)),
		sol:    sess.solve,
		pstats: sess.pstats,
		scr:    sess.scr,
	}
	s.cNorm = 24 * math.Sqrt(4*s.cK)
	s.etaW = 0.1
	s.lev = NewLeverageFn(sess.prob.A, s.sol.Bind(ctx), par.ExactLeverage, par.LeverageEta, par.Seed)
	return s
}

// checkStart verifies that x0 is a strictly feasible starting point.
func (sess *Session) checkStart(x0 []float64) error {
	if len(x0) != sess.prob.M() {
		return fmt.Errorf("lp: x0 has %d entries, want %d", len(x0), sess.prob.M())
	}
	if !sess.bar.Interior(x0) {
		return fmt.Errorf("%w: x0 is not strictly interior", ErrInfeasible)
	}
	if r := sess.prob.Residual(x0); r > 1e-6*(1+linalg.Norm2(sess.prob.B)) {
		return fmt.Errorf("%w: x0 violates Aᵀx = b by %g", ErrInfeasible, r)
	}
	return nil
}

// repairFeasibility pulls x back onto the affine manifold Aᵀx = b with the
// least-squares correction x ← x − A(AᵀA)⁻¹(Aᵀx − b), absorbing the
// constraint drift that inexact projection solves accumulate. Best-effort:
// on solver failure x is left unchanged and the caller's feasibility check
// decides.
func (sess *Session) repairFeasibility(ctx context.Context, x []float64) {
	m, n := sess.prob.M(), sess.prob.N()
	r := make([]float64, n)
	sess.prob.A.MulVecTTo(r, x)
	for i, bi := range sess.prob.B {
		r[i] -= bi
	}
	if linalg.Norm2(r) == 0 {
		return
	}
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	z, _, err := sess.solve(ctx, ones, r)
	if err != nil {
		return
	}
	az := make([]float64, m)
	sess.prob.A.MulVecTo(az, z)
	for i := range x {
		x[i] -= az[i]
	}
}

// initialWeights computes the regularized Lewis weights at x (Algorithm 9
// line 1).
func (s *ipm) initialWeights(x []float64) ([]float64, error) {
	m := s.m
	base := make([]float64, m)
	phi2 := s.bar.D2(x)
	for i := range base {
		base[i] = 1 / math.Sqrt(phi2[i])
	}
	w, _, err := ComputeInitialWeights(s.lev, base, s.p, s.n, m, s.par.Lewis, s.par.InitWeightSteps)
	if err != nil {
		return nil, fmt.Errorf("lp: initial weights: %w", err)
	}
	for i := range w {
		w[i] += s.c0
	}
	return w, nil
}

// finish clones the iterate and weights into an owned Solution.
func (s *ipm) finish(x, w []float64, startRounds int) *Solution {
	s.counts.X = linalg.Clone(x)
	s.counts.Weights = linalg.Clone(w)
	s.counts.Objective = s.prob.Objective(x)
	if s.par.Net != nil {
		s.counts.Rounds = s.par.Net.Rounds() - startRounds
	}
	if s.pstats != nil {
		s.counts.PrecondBuilds = s.pstats.Builds
		s.counts.PrecondRefreshes = s.pstats.Refreshes
	}
	out := s.counts
	return &out
}

// Solve runs the full two-phase path following (Algorithm 9) from the
// strictly feasible x0, reusing the session's backend and scratch. See
// SolveCtx for semantics.
func (sess *Session) Solve(ctx context.Context, x0 []float64, eps float64, par Params) (*Solution, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("lp: eps must be positive, got %g", eps)
	}
	if err := sess.checkStart(x0); err != nil {
		return nil, err
	}
	s := sess.newIPM(ctx, par)
	m := s.m
	startRounds := 0
	if s.par.Net != nil {
		startRounds = s.par.Net.Rounds()
	}

	w, err := s.initialWeights(x0)
	if err != nil {
		return nil, err
	}

	// Artificial centering cost: with d = −w·φ′(x0) the point x0 is exactly
	// central at t = 1 (the gradient t·d + w·φ′ vanishes).
	d := make([]float64, m)
	phi1 := s.bar.D1(x0)
	for i := range d {
		d[i] = -w[i] * phi1[i]
	}
	bigU := sess.prob.BoundU(x0)
	t1 := 1 / (16 * math.Pow(float64(m), 1.5) * bigU * bigU)
	t2 := 2 * float64(m) / eps

	x := linalg.Clone(x0)
	s.phase = 1
	x, w, err = s.pathFollowing(x, w, 1, t1, d)
	if err != nil {
		return nil, fmt.Errorf("lp: phase 1: %w", err)
	}
	s.phase = 2
	x, w, err = s.pathFollowing(x, w, t1, t2, sess.prob.C)
	if err != nil {
		return nil, fmt.Errorf("lp: phase 2: %w", err)
	}
	return s.finish(x, w, startRounds), nil
}

// Polish re-centers a previously computed iterate at the final path
// parameter t₂ = 2m/ε with FinalCenterings centerings — the warm-start
// path for repeated solves of an unchanged problem (e.g. batch flow
// queries on the same terminals). x0 is typically a prior Solution.X and
// w0 its Weights; a nil (or wrongly sized) w0 recomputes initial weights
// at x0. The polished point is NOT guaranteed optimal unless x0 was
// already near the central path at t₂ — callers must certify the result
// (as the flow pipeline does) and fall back to a full Solve on failure.
func (sess *Session) Polish(ctx context.Context, x0, w0 []float64, eps float64, par Params) (*Solution, error) {
	if eps <= 0 {
		return nil, fmt.Errorf("lp: eps must be positive, got %g", eps)
	}
	if len(x0) != sess.prob.M() {
		return nil, fmt.Errorf("lp: x0 has %d entries, want %d", len(x0), sess.prob.M())
	}
	// Inexact (CG-based) projection backends let a long path following
	// drift off the constraint manifold by poly(1/m); pull the prior
	// iterate back with one least-squares correction before re-centering,
	// so the strict feasibility check below keeps its tight tolerance.
	x0 = linalg.Clone(x0)
	sess.repairFeasibility(ctx, x0)
	if err := sess.checkStart(x0); err != nil {
		return nil, err
	}
	s := sess.newIPM(ctx, par)
	s.phase = 3
	startRounds := 0
	if s.par.Net != nil {
		startRounds = s.par.Net.Rounds()
	}
	var w []float64
	if len(w0) == s.m {
		w = linalg.Clone(w0)
	} else {
		var err error
		w, err = s.initialWeights(x0)
		if err != nil {
			return nil, err
		}
	}
	x := linalg.Clone(x0)
	t2 := 2 * float64(s.m) / eps
	var err error
	for i := 0; i < s.par.FinalCenterings; i++ {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, fmt.Errorf("lp: polish canceled: %w", ctxErr)
		}
		x, w, err = s.center(x, w, t2, sess.prob.C)
		if err != nil {
			return nil, fmt.Errorf("lp: polish: %w", err)
		}
		if s.par.Progress != nil {
			s.par.Progress(s.phase, i+1, t2)
		}
	}
	return s.finish(x, w, startRounds), nil
}
