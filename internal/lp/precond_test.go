package lp

import (
	"context"
	"math/rand"
	"testing"

	"bcclap/internal/linalg"
)

// incidenceCSR builds a flow-LP-shaped constraint matrix over an explicit
// arc list: one ±1 incidence row per arc plus one identity row per vertex
// (the diagonal block the y/z slack rows of the Section 5 formulation
// contribute).
func incidenceCSR(n int, arcs [][2]int) *linalg.CSR {
	var ts []linalg.Triple
	row := 0
	for _, a := range arcs {
		ts = append(ts,
			linalg.Triple{Row: row, Col: a[0], Val: -1},
			linalg.Triple{Row: row, Col: a[1], Val: 1},
		)
		row++
	}
	for v := 0; v < n; v++ {
		ts = append(ts, linalg.Triple{Row: row, Col: v, Val: 1})
		row++
	}
	return linalg.NewCSR(row, n, ts)
}

func pathArcs(n int) (arcs [][2]int) {
	for v := 0; v+1 < n; v++ {
		arcs = append(arcs, [2]int{v, v + 1})
	}
	return arcs
}

func gridArcs(rows, cols int) (arcs [][2]int) {
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				arcs = append(arcs, [2]int{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				arcs = append(arcs, [2]int{id(r, c), id(r+1, c)})
			}
		}
	}
	return arcs
}

func randomArcs(n, m int, rnd *rand.Rand) (arcs [][2]int) {
	for v := 1; v < n; v++ {
		arcs = append(arcs, [2]int{rnd.Intn(v), v})
	}
	for len(arcs) < m {
		u, v := rnd.Intn(n), rnd.Intn(n)
		if u != v {
			arcs = append(arcs, [2]int{u, v})
		}
	}
	return arcs
}

// The csr-pcg backend must agree with the dense reference within the IPM's
// certificate tolerance on the graph families the flow pipeline produces —
// including the barrier-diagonal spreads of a real interior-point run,
// where entries span many orders of magnitude.
func TestCSRPCGAgreesWithDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	cases := map[string]*linalg.CSR{
		"path":   incidenceCSR(16, pathArcs(16)),
		"grid":   incidenceCSR(20, gridArcs(4, 5)),
		"random": incidenceCSR(18, randomArcs(18, 40, rnd)),
	}
	for name, a := range cases {
		ref, err := NewBackendSolver("dense", a)
		if err != nil {
			t.Fatal(err)
		}
		pcg, err := NewBackendSolver("csr-pcg", a)
		if err != nil {
			t.Fatal(err)
		}
		m, n := a.Rows(), a.Cols()
		for rep := 0; rep < 4; rep++ {
			d := make([]float64, m)
			for i := range d {
				// IPM-like spread: weights across ~8 orders of magnitude.
				d[i] = 1e-4 * (1 + 1e8*rnd.Float64()*rnd.Float64()*rnd.Float64())
			}
			y := make([]float64, n)
			for i := range y {
				y[i] = rnd.NormFloat64()
			}
			want, _, err := ref(context.Background(), d, y)
			if err != nil {
				t.Fatalf("%s rep %d dense: %v", name, rep, err)
			}
			got, _, err := pcg(context.Background(), d, y)
			if err != nil {
				t.Fatalf("%s rep %d csr-pcg: %v", name, rep, err)
			}
			if diff := linalg.Norm2(linalg.Sub(got, want)) / (1 + linalg.Norm2(want)); diff > 1e-5 {
				t.Fatalf("%s rep %d: csr-pcg deviates from dense by %g", name, rep, diff)
			}
		}
	}
}

// A matrix with a row of three nonzeros is not incidence-structured: the
// backend must degrade to its Jacobi fallback and still solve correctly.
func TestCSRPCGNonIncidenceFallback(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	n := 10
	var ts []linalg.Triple
	row := 0
	for r := 0; r < 20; r++ {
		for k := 0; k < 3; k++ {
			ts = append(ts, linalg.Triple{Row: row, Col: rnd.Intn(n), Val: rnd.NormFloat64()})
		}
		row++
	}
	for v := 0; v < n; v++ {
		ts = append(ts, linalg.Triple{Row: row, Col: v, Val: 1})
		row++
	}
	a := linalg.NewCSR(row, n, ts)
	ref, err := NewBackendSolver("dense", a)
	if err != nil {
		t.Fatal(err)
	}
	pcg, stats, err := NewBackendSolverStats("csr-pcg", a)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Builds != 0 {
		t.Fatalf("Builds = %d on a non-incidence matrix, want 0 (degraded to Jacobi)", stats.Builds)
	}
	d := make([]float64, a.Rows())
	for i := range d {
		d[i] = 0.1 + rnd.Float64()
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	want, _, err := ref(context.Background(), d, y)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := pcg(context.Background(), d, y)
	if err != nil {
		t.Fatal(err)
	}
	if diff := linalg.Norm2(linalg.Sub(got, want)) / (1 + linalg.Norm2(want)); diff > 1e-5 {
		t.Fatalf("fallback deviates from dense by %g", diff)
	}
}

// The symbolic structure is built once per backend instance and only
// numerically refreshed — and only when the diagonal actually changes:
// repeated solves against one diagonal (the leverage-sketch pattern) must
// not refactorize.
func TestCSRPCGSymbolicReuseAndRefreshDedup(t *testing.T) {
	rnd := rand.New(rand.NewSource(13))
	a := incidenceCSR(16, pathArcs(16))
	solve, stats, err := NewBackendSolverStats("csr-pcg", a)
	if err != nil {
		t.Fatal(err)
	}
	if stats == nil {
		t.Fatal("csr-pcg reports no PrecondStats")
	}
	if stats.Builds != 1 {
		t.Fatalf("Builds = %d after construction, want 1", stats.Builds)
	}
	m, n := a.Rows(), a.Cols()
	d := make([]float64, m)
	for i := range d {
		d[i] = 0.1 + rnd.Float64()
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	for rep := 0; rep < 5; rep++ {
		if _, _, err := solve(context.Background(), d, y); err != nil {
			t.Fatal(err)
		}
	}
	if stats.Refreshes != 1 {
		t.Fatalf("Refreshes = %d after 5 solves against one diagonal, want 1", stats.Refreshes)
	}
	d[0] *= 2
	if _, _, err := solve(context.Background(), d, y); err != nil {
		t.Fatal(err)
	}
	if stats.Refreshes != 2 {
		t.Fatalf("Refreshes = %d after reweight, want 2", stats.Refreshes)
	}
	if stats.Builds != 1 {
		t.Fatalf("Builds = %d after reweight, want 1 (symbolic structure must be reused)", stats.Builds)
	}
}

// Refreshing across reweights must be equivalent to a from-scratch build:
// a fresh backend instance fed the same diagonal must produce bit-identical
// solutions to one that lived through other diagonals first.
func TestCSRPCGRefreshEquivalentToRebuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(14))
	a := incidenceCSR(14, randomArcs(14, 30, rnd))
	lived, err := NewBackendSolver("csr-pcg", a)
	if err != nil {
		t.Fatal(err)
	}
	m, n := a.Rows(), a.Cols()
	y := make([]float64, n)
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	draw := func(seed int64) []float64 {
		r := rand.New(rand.NewSource(seed))
		d := make([]float64, m)
		for i := range d {
			d[i] = 0.05 + r.Float64()
		}
		return d
	}
	// Walk the lived instance through several reweights.
	for seed := int64(1); seed <= 4; seed++ {
		if _, _, err := lived(context.Background(), draw(seed), y); err != nil {
			t.Fatal(err)
		}
	}
	final := draw(5)
	got, _, err := lived(context.Background(), final, y)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewBackendSolver("csr-pcg", a)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := fresh(context.Background(), final, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d: lived %v vs fresh %v (refresh not equivalent to rebuild)", i, got[i], want[i])
		}
	}
}

// The preconditioner must actually earn its keep: on a weighted path LP
// (condition number Θ(n²)) csr-pcg needs strictly fewer CG iterations than
// csr-cg for the same right-hand side and tolerance.
func TestCSRPCGFewerIterationsThanCSRCG(t *testing.T) {
	rnd := rand.New(rand.NewSource(15))
	a := incidenceCSR(64, pathArcs(64))
	cg, err := NewBackendSolver("csr-cg", a)
	if err != nil {
		t.Fatal(err)
	}
	pcg, err := NewBackendSolver("csr-pcg", a)
	if err != nil {
		t.Fatal(err)
	}
	m, n := a.Rows(), a.Cols()
	d := make([]float64, m)
	for i := range d {
		d[i] = 0.5 + rnd.Float64()
		if i >= m-n {
			d[i] *= 1e-6 // weak diagonal rows: the path coupling dominates
		}
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	_, plain, err := cg(context.Background(), d, y)
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := pcg(context.Background(), d, y)
	if err != nil {
		t.Fatal(err)
	}
	if pre >= plain {
		t.Fatalf("csr-pcg took %d iterations, csr-cg %d — no reduction", pre, plain)
	}
}
