package flow

import (
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
)

// Every registered AᵀDA backend must produce the identical certified
// (value, cost) on random digraphs — the certificate is combinatorial and
// exact, so agreement means each backend solved the LP to rounding
// precision.
func TestBackendsProduceIdenticalCertifiedFlows(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	backends := lp.Backends()
	if len(backends) < 3 {
		t.Fatalf("expected at least 3 registered backends, have %v", backends)
	}
	for trial := 0; trial < 2; trial++ {
		d := graph.RandomFlowNetwork(6+trial, 0.3, 3, 3, rnd)
		wantV, wantC, _, err := MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range backends {
			res, err := MinCostMaxFlow(d, 0, d.N()-1, Options{
				Backend: backend,
				Rand:    rand.New(rand.NewSource(int64(100*trial + 7))),
			})
			if err != nil {
				t.Fatalf("trial %d backend %s: %v", trial, backend, err)
			}
			if res.Value != wantV || res.Cost != wantC {
				t.Fatalf("trial %d backend %s: (value, cost) = (%d, %d), SSP baseline (%d, %d)",
					trial, backend, res.Value, res.Cost, wantV, wantC)
			}
			if err := CertifyOptimal(d, 0, d.N()-1, res.Flows); err != nil {
				t.Fatalf("trial %d backend %s: certificate: %v", trial, backend, err)
			}
		}
	}
}

func TestSolverModeBackendNames(t *testing.T) {
	cases := map[SolverMode]string{
		SolverDense:   "dense",
		SolverGremban: "gremban",
		SolverCSRCG:   "csr-cg",
		SolverMode(0): "dense",
	}
	for mode, want := range cases {
		if got := mode.BackendName(); got != want {
			t.Fatalf("mode %d: backend %q, want %q", mode, got, want)
		}
	}
}

func TestConfigureRejectsUnknownBackend(t *testing.T) {
	d := diamond(t)
	form, err := NewLPForm(d, 0, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := form.Configure("no-such-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := form.Configure(""); err != nil {
		t.Fatalf("empty backend (default) rejected: %v", err)
	}
	if _, err := MinCostMaxFlow(d, 0, 3, Options{Backend: "no-such-backend"}); err == nil {
		t.Fatal("MinCostMaxFlow accepted unknown backend")
	}
}
