package flow

import (
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
)

// Every registered AᵀDA backend must produce the identical certified
// (value, cost) on random digraphs — the certificate is combinatorial and
// exact, so agreement means each backend solved the LP to rounding
// precision.
func TestBackendsProduceIdenticalCertifiedFlows(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	backends := lp.Backends()
	if len(backends) < 3 {
		t.Fatalf("expected at least 3 registered backends, have %v", backends)
	}
	for trial := 0; trial < 2; trial++ {
		d := graph.RandomFlowNetwork(6+trial, 0.3, 3, 3, rnd)
		wantV, wantC, _, err := MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		for _, backend := range backends {
			res, err := MinCostMaxFlow(d, 0, d.N()-1, Options{
				Backend: backend,
				Rand:    rand.New(rand.NewSource(int64(100*trial + 7))),
			})
			if err != nil {
				t.Fatalf("trial %d backend %s: %v", trial, backend, err)
			}
			if res.Value != wantV || res.Cost != wantC {
				t.Fatalf("trial %d backend %s: (value, cost) = (%d, %d), SSP baseline (%d, %d)",
					trial, backend, res.Value, res.Cost, wantV, wantC)
			}
			if err := CertifyOptimal(d, 0, d.N()-1, res.Flows); err != nil {
				t.Fatalf("trial %d backend %s: certificate: %v", trial, backend, err)
			}
		}
	}
}

func TestSolverModeBackendNames(t *testing.T) {
	cases := map[SolverMode]string{
		SolverDense:   "dense",
		SolverGremban: "gremban",
		SolverCSRCG:   "csr-cg",
		SolverMode(0): "dense",
	}
	for mode, want := range cases {
		if got := mode.BackendName(); got != want {
			t.Fatalf("mode %d: backend %q, want %q", mode, got, want)
		}
	}
}

// pathDigraph is an s→t chain; gridDigraph a rows×cols mesh with rightward
// and downward arcs — the structured families the csr-pcg preconditioner
// extracts its forest from.
func pathDigraph(n int, rnd *rand.Rand) *graph.Digraph {
	d := graph.NewDigraph(n)
	for v := 0; v+1 < n; v++ {
		if _, err := d.AddArc(v, v+1, 1+rnd.Int63n(3), rnd.Int63n(4)); err != nil {
			panic(err)
		}
	}
	return d
}

func gridDigraph(rows, cols int, rnd *rand.Rand) *graph.Digraph {
	d := graph.NewDigraph(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	add := func(u, v int) {
		if _, err := d.AddArc(u, v, 1+rnd.Int63n(3), rnd.Int63n(4)); err != nil {
			panic(err)
		}
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				add(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				add(id(r, c), id(r+1, c))
			}
		}
	}
	return d
}

// csr-pcg must produce the same certified flows as the dense reference on
// the path, grid and random families, and its session must build the
// combinatorial preconditioner exactly once while refreshing it across
// every IPM step and query (the cross-step, cross-query reuse the backend
// exists for).
func TestCSRPCGCertifiedFlowsAndReuse(t *testing.T) {
	rnd := rand.New(rand.NewSource(43))
	cases := map[string]*graph.Digraph{
		"path":   pathDigraph(7, rnd),
		"grid":   gridDigraph(2, 3, rnd),
		"random": graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd),
	}
	for name, d := range cases {
		s, tt := 0, d.N()-1
		wantV, wantC, _, err := MinCostMaxFlowSSP(d, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := NewSolver(d, Options{Backend: "csr-pcg"})
		if err != nil {
			t.Fatal(err)
		}
		var prevRefreshes int
		for q := 0; q < 2; q++ {
			res, err := fs.Solve(t.Context(), s, tt)
			if err != nil {
				t.Fatalf("%s query %d: %v", name, q, err)
			}
			if res.Value != wantV || res.Cost != wantC {
				t.Fatalf("%s query %d: (%d, %d) vs baseline (%d, %d)", name, q, res.Value, res.Cost, wantV, wantC)
			}
			if res.LPStats.PrecondBuilds != 1 {
				t.Fatalf("%s query %d: PrecondBuilds = %d, want 1 (symbolic structure reused across queries)",
					name, q, res.LPStats.PrecondBuilds)
			}
			if res.LPStats.PrecondRefreshes <= prevRefreshes {
				t.Fatalf("%s query %d: PrecondRefreshes = %d did not advance past %d",
					name, q, res.LPStats.PrecondRefreshes, prevRefreshes)
			}
			prevRefreshes = res.LPStats.PrecondRefreshes
		}
	}
}

// With no backend named, sessions auto-select: csr-pcg on big sparse
// graphs, the dense reference on tiny or near-complete ones; the
// deprecated Solver enum still wins over the auto rule.
func TestDefaultBackendAutoSelection(t *testing.T) {
	rnd := rand.New(rand.NewSource(44))
	sparse := pathDigraph(64, rnd)
	if got := DefaultBackendFor(sparse); got != "csr-pcg" {
		t.Fatalf("sparse n=64 graph auto-selected %q, want csr-pcg", got)
	}
	tiny := pathDigraph(6, rnd)
	if got := DefaultBackendFor(tiny); got != "dense" {
		t.Fatalf("tiny graph auto-selected %q, want dense", got)
	}
	densegraph := graph.RandomFlowNetwork(40, 0.9, 3, 3, rnd)
	if got := DefaultBackendFor(densegraph); got != "dense" {
		t.Fatalf("near-complete graph auto-selected %q, want dense", got)
	}
	fs, err := NewSolver(sparse, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Backend() != "csr-pcg" {
		t.Fatalf("session backend %q, want auto-selected csr-pcg", fs.Backend())
	}
	fs, err = NewSolver(sparse, Options{Solver: SolverGremban})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Backend() != "gremban" {
		t.Fatalf("Solver enum overridden by auto rule: backend %q", fs.Backend())
	}
	fs, err = NewSolver(sparse, Options{Backend: "dense"})
	if err != nil {
		t.Fatal(err)
	}
	if fs.Backend() != "dense" {
		t.Fatalf("explicit backend overridden: %q", fs.Backend())
	}
}

func TestConfigureRejectsUnknownBackend(t *testing.T) {
	d := diamond(t)
	form, err := NewLPForm(d, 0, 3, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := form.Configure("no-such-backend"); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if err := form.Configure(""); err != nil {
		t.Fatalf("empty backend (default) rejected: %v", err)
	}
	if _, err := MinCostMaxFlow(d, 0, 3, Options{Backend: "no-such-backend"}); err == nil {
		t.Fatal("MinCostMaxFlow accepted unknown backend")
	}
}
