// Package flow implements minimum-cost maximum-flow (Section 5 of the
// paper, Theorem 1.1):
//
//   - the paper's pipeline: the auxiliary LP with slack variables y, z and
//     flow variable F, Daitch–Spielman cost perturbation for uniqueness,
//     the Lee–Sidford solver with (AᵀDA)-solves routed through a pluggable
//     backend (dense factorization, the Gremban reduction to Laplacian
//     systems of Lemma 5.1, or matrix-free CG — plain, or preconditioned
//     by the spanner-built forest of the csr-pcg backend, which
//     DefaultBackendFor auto-selects on sparse networks), and rounding
//     back to an exact integral flow;
//   - classic combinatorial baselines (Dinic's max-flow and successive
//     shortest paths with potentials) that the experiments compare
//     against; and
//   - an exactness certificate (no augmenting path + no negative residual
//     cycle) used both by the retry loop and the tests.
//
// The serving unit is Solver, a session over one digraph: each queried
// terminal pair lazily builds — then caches — the Section 5 LP
// formulation, its CSR constraint matrix, the backend workspaces and the
// last certified solution (the warm-start state batch queries re-center
// instead of re-running path following).
//
// Invariants:
//
//   - Determinism: with Options.Rand nil, every query draws a fresh
//     perturbation stream from Options.Seed, so session queries are
//     bit-identical to one-shot calls and independent of the order in
//     which *other* terminal pairs are queried. Only the per-pair solve
//     sequence matters (warm starts), which is what internal/pool's
//     pair-pinned routing preserves.
//   - Exactness: every returned flow passed CertifyOptimal — warm starts
//     and perturbation shortcuts are certificate-gated, never trusted.
//   - Confinement: a Solver's solve methods are single-goroutine (the
//     cached workspaces make the hot path allocation-free); only the
//     read-only Validate may be called concurrently. Concurrency lives one
//     layer up, in internal/pool, which gives each worker its own Solver.
//   - Cancellation: the solve context is polled once per retry attempt,
//     per path-following iteration, and every 32 inner CG/Chebyshev
//     iterations, so cancellation aborts within one outer iteration
//     without slowing the allocation-free kernels.
package flow
