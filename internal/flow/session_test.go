package flow

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
)

// Malformed queries must surface ErrBadQuery at the API boundary, not a
// panic or an LP-level failure.
func TestBadQueryValidation(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	d := graph.RandomFlowNetwork(5, 0.4, 3, 3, rnd)
	cases := []struct{ s, t int }{
		{-1, 2}, {0, d.N()}, {d.N() + 3, 0}, {2, 2},
	}
	for _, c := range cases {
		if _, err := MinCostMaxFlow(d, c.s, c.t, Options{}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("s=%d t=%d: got %v, want ErrBadQuery", c.s, c.t, err)
		}
	}
	empty := graph.NewDigraph(4) // vertices but no arcs
	if _, err := MinCostMaxFlow(empty, 0, 1, Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty digraph: got %v, want ErrBadQuery", err)
	}
	if _, err := NewSolver(graph.NewDigraph(0), Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatal("zero-vertex digraph accepted by NewSolver")
	}
	fs, err := NewSolver(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.SolveBatch(context.Background(), []Query{{S: 0, T: 1}, {S: 3, T: 3}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("batch with bad query: got %v, want ErrBadQuery", err)
	}
}

// An unknown backend must fail at construction with lp.ErrBackendUnknown,
// before any solve starts.
func TestSolverUnknownBackendFailsFast(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	d := graph.RandomFlowNetwork(5, 0.4, 3, 3, rnd)
	_, err := NewSolver(d, Options{Backend: "no-such-backend"})
	if !errors.Is(err, lp.ErrBackendUnknown) {
		t.Fatalf("got %v, want lp.ErrBackendUnknown", err)
	}
}

// N sequential Solve calls on one Solver must produce bit-identical
// results to N fresh one-shot calls with the same options.
func TestSolverSessionDeterminism(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rnd)
	opts := Options{Seed: SeedOf(77)}
	fs, err := NewSolver(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const n = 3
	for i := 0; i < n; i++ {
		got, err := fs.Solve(ctx, 0, d.N()-1)
		if err != nil {
			t.Fatalf("session solve %d: %v", i, err)
		}
		want, err := MinCostMaxFlow(d, 0, d.N()-1, opts)
		if err != nil {
			t.Fatalf("one-shot solve %d: %v", i, err)
		}
		if got.Value != want.Value || got.Cost != want.Cost ||
			got.Attempts != want.Attempts ||
			got.LPStats.PathSteps != want.LPStats.PathSteps ||
			got.LPStats.Centerings != want.LPStats.Centerings ||
			got.LPStats.CGIterations != want.LPStats.CGIterations ||
			!reflect.DeepEqual(got.Flows, want.Flows) {
			t.Fatalf("solve %d diverged from one-shot:\nsession %+v\noneshot %+v", i, got, want)
		}
		if !reflect.DeepEqual(got.LPStats.X, want.LPStats.X) {
			t.Fatalf("solve %d: LP iterates differ", i)
		}
		if i > 0 && !got.ReusedForm {
			t.Fatalf("solve %d did not reuse the cached formulation", i)
		}
	}
}

// Batch warm starts must keep every answer certified-exact against the SSP
// baseline while skipping path following on repeats.
func TestSolveBatchWarmStart(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rnd)
	s, tt := 0, d.N()-1
	wantV, wantC, _, err := MinCostMaxFlowSSP(d, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewSolver(d, Options{Seed: SeedOf(9)})
	if err != nil {
		t.Fatal(err)
	}
	queries := []Query{{s, tt}, {s, tt}, {s, tt}, {s, tt}}
	results, err := fs.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for i, res := range results {
		if res.Value != wantV || res.Cost != wantC {
			t.Fatalf("query %d: (%d, %d) vs SSP (%d, %d)", i, res.Value, res.Cost, wantV, wantC)
		}
		if err := CertifyOptimal(d, s, tt, res.Flows); err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if res.WarmStarted {
			warm++
			if res.LPStats.PathSteps != 0 {
				t.Fatalf("query %d warm-started but took %d path steps", i, res.LPStats.PathSteps)
			}
		}
	}
	if warm == 0 {
		t.Fatal("no query warm-started")
	}
	if results[0].WarmStarted {
		t.Fatal("first query cannot warm-start")
	}
}

// A canceled context must abort the retry loop and the path following on
// every registered backend with an error satisfying errors.Is.
func TestSolverCancellationAllBackends(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rnd)
	for _, backend := range lp.Backends() {
		// Pre-canceled: aborts before the first attempt.
		fs, err := NewSolver(d, Options{Backend: backend})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := fs.Solve(ctx, 0, d.N()-1); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s pre-canceled: got %v", backend, err)
		}
		// Mid-solve: cancel after a few path steps via the progress hook.
		ctx2, cancel2 := context.WithCancel(context.Background())
		fs2, err := NewSolver(d, Options{
			Backend: backend,
			LP: lp.Params{Progress: func(phase, step int, tpar float64) {
				if step == 3 {
					cancel2()
				}
			}},
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if _, err := fs2.Solve(ctx2, 0, d.N()-1); !errors.Is(err, context.Canceled) {
			t.Fatalf("%s mid-solve: got %v", backend, err)
		}
		cancel2()
	}
}

// Arcless digraphs stay valid inputs for the combinatorial baselines (max
// flow trivially zero); only the LP pipeline rejects them as ErrBadQuery.
func TestBaselinesAcceptArclessDigraph(t *testing.T) {
	empty := graph.NewDigraph(3)
	v, c, flows, err := MinCostMaxFlowSSP(empty, 0, 2)
	if err != nil || v != 0 || c != 0 || len(flows) != 0 {
		t.Fatalf("SSP on arcless digraph: v=%d c=%d flows=%v err=%v", v, c, flows, err)
	}
	if vMax, _, err := MaxFlow(empty, 0, 2); err != nil || vMax != 0 {
		t.Fatalf("Dinic on arcless digraph: v=%d err=%v", vMax, err)
	}
}
