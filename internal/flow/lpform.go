package flow

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/lapsolver"
	"bcclap/internal/linalg"
	"bcclap/internal/lp"
)

// LPForm is the auxiliary linear program of Section 5 for a min-cost
// max-flow instance: variables (x ∈ R^m, y, z ∈ R^{n'}, F ∈ R) with
// n' = |V|−1 (the source row of the incidence matrix is omitted),
// constraints Bx + y − z − F·e_t = 0, box bounds, and objective
// q̃ᵀx + λ(1ᵀy + 1ᵀz) − flowBonus·F.
type LPForm struct {
	D    *graph.Digraph
	S, T int

	Prob *lp.Problem
	X0   []float64

	// Perturbed integer costs q̃ (Daitch–Spielman), and the scale by which
	// original costs were multiplied before perturbing.
	QTilde    []int64
	CostScale int64

	// Index layout inside the variable vector.
	NPrime int // |V|−1
	OffY   int
	OffZ   int
	OffF   int

	// Big-M constants actually used (see the comment in NewLPForm).
	Lambda    float64
	FlowBonus float64
}

// vertexIndex maps original vertex ids to LP row ids, skipping the source.
func vertexIndex(n, s int) (idx []int) {
	idx = make([]int, n)
	j := 0
	for v := 0; v < n; v++ {
		if v == s {
			idx[v] = -1
			continue
		}
		idx[v] = j
		j++
	}
	return idx
}

// NewLPForm builds the LP. The Daitch–Spielman perturbation multiplies all
// costs by 4m²M² and adds an independent uniform integer from [1, 2mM] to
// each arc, which makes the optimum unique with probability ≥ 1/2; rnd
// drives the perturbation (callers retry with fresh randomness on
// certification failure, the boosting of the paper's footnote 7).
//
// Big-M constants: the paper's λ = 440m⁴M̃²M³ and flow bonus 2n·M̃ certify
// exactness in exact arithmetic but overflow float64's 53-bit mantissa for
// any interesting instance. We use the smallest constants with the same
// one-way domination chain (flowBonus > any achievable routing cost,
// λ > flowBonus's worth of slack), which preserves the argument: slack is
// never worth buying, and flow units always are.
func NewLPForm(d *graph.Digraph, s, t int, rnd *rand.Rand) (*LPForm, error) {
	form, err := NewLPFormStructure(d, s, t)
	if err != nil {
		return nil, err
	}
	form.Perturb(rnd)
	return form, nil
}

// NewLPFormStructure builds everything about the LP that does not depend
// on the cost perturbation: the constraint matrix, box bounds and interior
// starting point are functions of (d, s, t) only. A session caches this
// structure per terminal pair and calls Perturb once per solve attempt, so
// repeated queries skip the O(m) formulation rebuild (and the backend
// bound to the matrix stays valid across attempts).
func NewLPFormStructure(d *graph.Digraph, s, t int) (*LPForm, error) {
	if err := checkNonEmpty(d); err != nil {
		return nil, err
	}
	if err := checkST(d, s, t); err != nil {
		return nil, err
	}
	n, m := d.N(), d.M()
	nPrime := n - 1
	bigM := formBigM(d)
	fMax := 2 * float64(n) * float64(bigM) * float64(m)
	yMax := 4 * (fMax + float64(m)*float64(bigM) + 1)

	vidx := vertexIndex(n, s)
	mPrime := m + 2*nPrime + 1
	offY, offZ, offF := m, m+nPrime, m+2*nPrime

	var ts []linalg.Triple
	for i := 0; i < m; i++ {
		a := d.Arc(i)
		if j := vidx[a.To]; j >= 0 {
			ts = append(ts, linalg.Triple{Row: i, Col: j, Val: 1})
		}
		if j := vidx[a.From]; j >= 0 {
			ts = append(ts, linalg.Triple{Row: i, Col: j, Val: -1})
		}
	}
	for j := 0; j < nPrime; j++ {
		ts = append(ts,
			linalg.Triple{Row: offY + j, Col: j, Val: 1},
			linalg.Triple{Row: offZ + j, Col: j, Val: -1},
		)
	}
	tIdx := vidx[t]
	ts = append(ts, linalg.Triple{Row: offF, Col: tIdx, Val: -1})

	a := linalg.NewCSR(mPrime, nPrime, ts)
	c := make([]float64, mPrime)
	l := make([]float64, mPrime)
	u := make([]float64, mPrime)
	for i := 0; i < m; i++ {
		u[i] = float64(d.Arc(i).Cap)
	}
	for j := 0; j < nPrime; j++ {
		u[offY+j] = yMax
		u[offZ+j] = yMax
	}
	u[offF] = fMax

	prob := &lp.Problem{A: a, B: make([]float64, nPrime), C: c, L: l, U: u}

	// Interior starting point: x = c/2, F = fMax/2, and y, z split the
	// imbalance r = F·e_t − B(c/2) symmetrically around yMax/2.
	x0 := make([]float64, mPrime)
	for i := 0; i < m; i++ {
		x0[i] = float64(d.Arc(i).Cap) / 2
	}
	f0 := fMax / 2
	x0[offF] = f0
	r := make([]float64, nPrime)
	for i := 0; i < m; i++ {
		arc := d.Arc(i)
		if j := vidx[arc.To]; j >= 0 {
			r[j] -= x0[i]
		}
		if j := vidx[arc.From]; j >= 0 {
			r[j] += x0[i]
		}
	}
	r[tIdx] += f0
	for j := 0; j < nPrime; j++ {
		x0[offY+j] = yMax/2 + r[j]/2
		x0[offZ+j] = yMax/2 - r[j]/2
		if x0[offY+j] <= 0 || x0[offY+j] >= yMax || x0[offZ+j] <= 0 || x0[offZ+j] >= yMax {
			return nil, fmt.Errorf("flow: interior point construction failed at row %d", j)
		}
	}
	form := &LPForm{
		D: d, S: s, T: t, Prob: prob, X0: x0,
		NPrime: nPrime, OffY: offY, OffZ: offZ, OffF: offF,
	}
	return form, nil
}

// formBigM is the scale parameter M = max(capacity, |cost|, 1) of Section 5.
func formBigM(d *graph.Digraph) int64 {
	bigM := d.MaxCap()
	if c := d.MaxAbsCost(); c > bigM {
		bigM = c
	}
	if bigM < 1 {
		bigM = 1
	}
	return bigM
}

// Perturb draws a fresh Daitch–Spielman cost perturbation and writes the
// resulting objective into the LP (only the cost vector changes; matrix,
// bounds and starting point are perturbation-independent). Consuming
// exactly m draws from rnd, it matches NewLPForm's stream so session
// re-perturbation is bit-identical to rebuilding the form.
func (f *LPForm) Perturb(rnd *rand.Rand) {
	d, m := f.D, f.D.M()
	bigM := formBigM(d)
	scale := 4 * int64(m) * int64(m) * bigM * bigM
	q := make([]int64, m)
	for i := 0; i < m; i++ {
		q[i] = d.Arc(i).Cost*scale + 1 + rnd.Int63n(2*int64(m)*bigM)
	}
	// Capacity-weighted worst routing cost, then the domination chain.
	var worstCost float64
	for i := 0; i < m; i++ {
		worstCost += float64(abs64(q[i])) * float64(d.Arc(i).Cap)
	}
	flowBonus := 4*worstCost + 1
	lambda := 8 * flowBonus

	c := f.Prob.C
	for i := 0; i < m; i++ {
		c[i] = float64(q[i])
	}
	for j := 0; j < f.NPrime; j++ {
		c[f.OffY+j] = lambda
		c[f.OffZ+j] = lambda
	}
	c[f.OffF] = -flowBonus
	f.QTilde, f.CostScale = q, scale
	f.Lambda, f.FlowBonus = lambda, flowBonus
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// SolverMode selects how the LP's (AᵀDA)-solves are performed. It is a thin
// veneer over the lp backend registry kept for API compatibility; new code
// should address backends by name (Options.Backend, lp.Backends()).
type SolverMode int

const (
	// SolverDense assembles AᵀDA and factorizes it (reference).
	SolverDense SolverMode = iota + 1
	// SolverGremban routes every solve through the Gremban reduction to a
	// Laplacian system solved by conjugate gradients — the structure
	// Lemma 5.1 exploits.
	SolverGremban
	// SolverCSRCG applies A, D, Aᵀ as composed linear operators inside
	// conjugate gradients, never materializing AᵀDA.
	SolverCSRCG
)

// BackendName maps the mode to its lp registry name.
func (m SolverMode) BackendName() string {
	switch m {
	case SolverGremban:
		return "gremban"
	case SolverCSRCG:
		return "csr-cg"
	default:
		return "dense"
	}
}

// Configure points the LP at the named AᵀDA backend. For "gremban" it
// installs the flow-structured fast path (assembling the SDD matrix
// directly from arcs instead of generic Gram assembly); every other name is
// resolved through the lp registry, erroring on unknown backends before the
// IPM starts.
func (f *LPForm) Configure(backend string) error {
	if backend == "" {
		backend = lp.DefaultBackend
	}
	if backend == "gremban" {
		gram := linalg.NewDense(f.NPrime, f.NPrime)
		lapSolve := lapsolver.NewCGLapSolver()
		f.Prob.Backend = ""
		f.Prob.Solve = func(ctx context.Context, dvec, y []float64) ([]float64, int, error) {
			f.assembleATDAInto(dvec, gram)
			return lapsolver.SDDSolve(ctx, gram, y, lapSolve)
		}
		return nil
	}
	// Validate the name up front (before the IPM starts) but let the lp
	// session instantiate the backend: the session then owns the solver's
	// preconditioner counters and surfaces them in every Solution.
	if err := lp.ValidateBackend(backend); err != nil {
		return err
	}
	f.Prob.Solve = nil
	f.Prob.Backend = backend
	return nil
}

// ATDASolver returns the lp.ATDASolve for the requested mode, resolving
// non-gremban modes through the registry so every enum value reaches the
// backend it names (a nil return means "let lp.Problem use its default",
// which is only correct for SolverDense).
//
// Deprecated: use Configure / Options.Backend; kept for callers that still
// pass SolverMode values around.
func (f *LPForm) ATDASolver(mode SolverMode) lp.ATDASolve {
	if mode == SolverGremban {
		lapSolve := lapsolver.NewCGLapSolver()
		return func(ctx context.Context, dvec, y []float64) ([]float64, int, error) {
			m := f.assembleATDA(dvec)
			return lapsolver.SDDSolve(ctx, m, y, lapSolve)
		}
	}
	if name := mode.BackendName(); name != lp.DefaultBackend {
		if sol, err := lp.NewBackendSolver(name, f.Prob.A); err == nil {
			return sol
		}
	}
	return nil // dense: lp.Problem's default backend
}

// assembleATDA builds AᵀDA = BᵀD₁B + D₂ + D₃ + d_F·e_t e_tᵀ densely (the
// matrix is (|V|−1)×(|V|−1), tiny compared to the LP).
func (f *LPForm) assembleATDA(dvec []float64) *linalg.Dense {
	out := linalg.NewDense(f.NPrime, f.NPrime)
	f.assembleATDAInto(dvec, out)
	return out
}

// assembleATDAInto writes AᵀDA into a caller-owned (reused) buffer.
func (f *LPForm) assembleATDAInto(dvec []float64, out *linalg.Dense) {
	n := f.NPrime
	for i := 0; i < n; i++ {
		row := out.Row(i)
		for j := range row {
			row[j] = 0
		}
	}
	vidx := vertexIndex(f.D.N(), f.S)
	for i := 0; i < f.D.M(); i++ {
		a := f.D.Arc(i)
		ji, jj := vidx[a.From], vidx[a.To]
		w := dvec[i]
		if ji >= 0 {
			out.Inc(ji, ji, w)
		}
		if jj >= 0 {
			out.Inc(jj, jj, w)
		}
		if ji >= 0 && jj >= 0 {
			out.Inc(ji, jj, -w)
			out.Inc(jj, ji, -w)
		}
	}
	for j := 0; j < n; j++ {
		out.Inc(j, j, dvec[f.OffY+j]+dvec[f.OffZ+j])
	}
	tIdx := vidx[f.T]
	out.Inc(tIdx, tIdx, dvec[f.OffF])
}

// RoundFlow converts an approximate LP point into integral per-arc flows:
// x̃ = (1−ε)x rounded to the nearest integers, as in Section 5 (with the
// unique perturbed optimum, every x_e is within 1/6 of its integral
// value).
func (f *LPForm) RoundFlow(x []float64) []int64 {
	m := f.D.M()
	eps := 1.0 / (40 * float64(m) * float64(m))
	out := make([]int64, m)
	for i := 0; i < m; i++ {
		v := (1 - eps) * x[i]
		r := math.Round(v)
		if r < 0 {
			r = 0
		}
		if c := float64(f.D.Arc(i).Cap); r > c {
			r = c
		}
		out[i] = int64(r)
	}
	return out
}
