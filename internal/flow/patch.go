package flow

import (
	"fmt"
	"math"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
)

// ApplyArcDeltas applies an all-or-nothing set of capacity/cost deltas to
// the session's digraph and rebinds every cached per-pair LP form to the
// new numbers. Topology is immutable (deltas never add or remove arcs), so
// the CSR constraint structure each form carries stays valid; what changes
// are the box bounds (capacities) and the cost vector, and lp.Session
// bakes the former into its barriers at construction — hence the rebuild
// rather than an in-place bound mutation.
//
// The previous certified iterate of each pair is carried into the new form
// (clamped back into the shrunken box when a capacity decreased) and
// flagged costs-stale: the next warm-start query re-perturbs the new costs
// and polishes from the carried basis — a handful of centerings at t₂
// instead of full path following — falling back to a cold solve whenever
// the exactness certificate rejects the shortcut. Cold queries are
// untouched: they behave exactly as on a fresh solver over the patched
// digraph.
//
// Like the solve methods, ApplyArcDeltas must not run concurrently with
// them; the pool layer serializes it onto each worker's queue. Errors wrap
// graph.ErrBadDelta and leave the solver unchanged.
func (fs *Solver) ApplyArcDeltas(deltas []graph.ArcDelta) error {
	if len(deltas) == 0 {
		return fmt.Errorf("%w: empty delta set", graph.ErrBadDelta)
	}
	if err := fs.d.ApplyDeltas(deltas); err != nil {
		return err
	}
	for q, st := range fs.forms {
		ns, err := fs.rebindForm(q, st)
		if err != nil {
			// Unreachable for pure cap/cost deltas (the formulation depends
			// only on topology), but never serve a stale form: drop it and
			// let the next query rebuild lazily.
			delete(fs.forms, q)
			continue
		}
		fs.forms[q] = ns
	}
	return nil
}

// rebindForm rebuilds one pair's LP form and session over the patched
// digraph, carrying the warm-start state across.
func (fs *Solver) rebindForm(q Query, old *formState) (*formState, error) {
	form, err := NewLPFormStructure(fs.d, q.S, q.T)
	if err != nil {
		return nil, err
	}
	if err := form.Configure(fs.backend); err != nil {
		return nil, err
	}
	sess, err := lp.NewSession(form.Prob)
	if err != nil {
		return nil, err
	}
	st := &formState{form: form, sess: sess, used: old.used}
	if old.warmX != nil {
		st.warmX = clampInterior(old.warmX, form.Prob.L, form.Prob.U)
		st.warmW = old.warmW
		st.costsStale = true
	}
	return st, nil
}

// clampInterior pulls x strictly inside the box [l, u] coordinate-wise —
// a capacity decrease can leave the previous optimum outside the new
// bounds, and Polish requires a strictly interior start. The relative
// margin errs on the safe side; the warm blend toward X0 and the
// feasibility repair inside Polish absorb the perturbation.
func clampInterior(x, l, u []float64) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		lo, hi, v := l[i], u[i], x[i]
		switch {
		case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
			m := 1e-3 * (hi - lo)
			if v < lo+m {
				v = lo + m
			}
			if v > hi-m {
				v = hi - m
			}
		case !math.IsInf(lo, -1) && v < lo+1e-9:
			v = lo + 1e-9
		case !math.IsInf(hi, 1) && v > hi-1e-9:
			v = hi - 1e-9
		}
		out[i] = v
	}
	return out
}
