package flow

import (
	"fmt"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
)

// Options configures the LP-based min-cost max-flow pipeline.
type Options struct {
	// Eps is the LP target accuracy relative to the (scaled) objective;
	// the default drives t₂ high enough for exact rounding on the
	// perturbed LP.
	Eps float64
	// Retries is the number of perturbation attempts (each succeeds with
	// probability ≥ 1/2 per Daitch–Spielman; footnote 7's boosting).
	Retries int
	// Backend names the (AᵀDA) strategy from the lp backend registry
	// ("dense", "gremban", "csr-cg", …); empty falls back to Solver, then
	// to the dense reference.
	Backend string
	// Solver picks the (AᵀDA) strategy by enum.
	//
	// Deprecated: set Backend; Solver is kept as an alias for existing
	// callers and is ignored when Backend is non-empty.
	Solver SolverMode
	// LP forwards interior-point parameters.
	LP lp.Params
	// Rand drives the perturbations; nil seeds a default.
	Rand *rand.Rand
	// Net, if non-nil, receives round accounting.
	Net *sim.Network
}

// Result is the output of MinCostMaxFlow.
type Result struct {
	// Value is the maximum flow value, Cost its minimum cost.
	Value, Cost int64
	// Flows is the exact integral per-arc flow.
	Flows []int64
	// Attempts is the number of perturbations tried.
	Attempts int
	// LPStats carries the interior-point statistics of the successful
	// attempt.
	LPStats lp.Solution
	// Rounds is the simulator round count (0 without a network).
	Rounds int
}

// MinCostMaxFlow computes an exact minimum-cost maximum s-t flow through
// the paper's pipeline (Theorem 1.1): perturb costs for uniqueness, solve
// the Section 5 LP with the Lee–Sidford interior-point method (Laplacian
// solves via the Gremban reduction), round to integers, and certify; on a
// failed certificate, retry with fresh perturbation randomness.
func MinCostMaxFlow(d *graph.Digraph, s, t int, opts Options) (*Result, error) {
	if opts.Eps == 0 {
		opts.Eps = 0.25
	}
	if opts.Retries == 0 {
		opts.Retries = 5
	}
	backend := opts.Backend
	if backend == "" {
		mode := opts.Solver
		if mode == 0 {
			mode = SolverDense
		}
		backend = mode.BackendName()
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = rand.New(rand.NewSource(2022))
	}
	var lastErr error
	for attempt := 1; attempt <= opts.Retries; attempt++ {
		form, err := NewLPForm(d, s, t, rnd)
		if err != nil {
			return nil, err
		}
		if err := form.Configure(backend); err != nil {
			return nil, err
		}
		par := opts.LP
		par.Net = opts.Net
		if par.Seed == 0 {
			par.Seed = int64(attempt)
		}
		sol, err := lp.Solve(form.Prob, form.X0, opts.Eps, par)
		if err != nil {
			lastErr = fmt.Errorf("flow: LP attempt %d: %w", attempt, err)
			continue
		}
		flows := form.RoundFlow(sol.X)
		if err := CertifyOptimal(d, s, t, flows); err != nil {
			lastErr = fmt.Errorf("flow: attempt %d certificate: %w", attempt, err)
			continue
		}
		res := &Result{
			Value:    FlowValue(d, s, flows),
			Cost:     FlowCost(d, flows),
			Flows:    flows,
			Attempts: attempt,
			LPStats:  *sol,
		}
		if opts.Net != nil {
			res.Rounds = opts.Net.Rounds()
		}
		return res, nil
	}
	return nil, fmt.Errorf("flow: all %d attempts failed: %w", opts.Retries, lastErr)
}
