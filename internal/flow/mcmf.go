package flow

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"bcclap/internal/graph"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
)

// Options configures the LP-based min-cost max-flow pipeline.
type Options struct {
	// Eps is the LP target accuracy relative to the (scaled) objective;
	// the default drives t₂ high enough for exact rounding on the
	// perturbed LP.
	Eps float64
	// Retries is the number of perturbation attempts (each succeeds with
	// probability ≥ 1/2 per Daitch–Spielman; footnote 7's boosting).
	Retries int
	// Backend names the (AᵀDA) strategy from the lp backend registry
	// ("dense", "gremban", "csr-cg", "csr-pcg", …); empty falls back to
	// Solver, then to the graph-dependent auto-selection of
	// DefaultBackendFor. Unknown names fail fast with lp.ErrBackendUnknown
	// when the solver is constructed.
	Backend string
	// Solver picks the (AᵀDA) strategy by enum.
	//
	// Deprecated: set Backend; Solver is kept as an alias for existing
	// callers and is ignored when Backend is non-empty.
	Solver SolverMode
	// LP forwards interior-point parameters.
	LP lp.Params
	// Rand drives the perturbations. When non-nil it is consumed as a
	// shared stream (successive Solver queries advance it); when nil each
	// query draws from a fresh stream seeded by Seed, which makes session
	// queries bit-identical to one-shot calls.
	Rand *rand.Rand
	// Seed seeds the per-query perturbation stream when Rand is nil; nil
	// selects the historical default 2022. It is a pointer so that every
	// int64 value — including 0 — names a distinct stream.
	Seed *int64
	// Net, if non-nil, receives round accounting.
	Net *sim.Network
	// Progress, if non-nil, is invoked at the start of every perturbation
	// attempt. Observability only.
	Progress func(attempt int)
}

// withDefaults fills the zero values.
func (o Options) withDefaults() Options {
	if o.Eps == 0 {
		o.Eps = 0.25
	}
	if o.Retries == 0 {
		o.Retries = 5
	}
	return o
}

// autoBackendMinVerts and autoBackendDensity gate the auto-selection of
// DefaultBackendFor: below ~32 vertices the dense reference wins outright
// (assembling the tiny AᵀDA is cheaper than any iteration), and above it
// the preconditioned matrix-free pipeline wins exactly when the network is
// sparse — fewer than n²/8 arcs, i.e. well away from a complete digraph
// where the Gram matrix is dense anyway.
const (
	autoBackendMinVerts = 32
	autoBackendDensity  = 8
)

// DefaultBackendFor returns the AᵀDA backend auto-selected for d when the
// caller names none: "csr-pcg" — matrix-free CG with the spanner-built
// combinatorial preconditioner — when the graph is sparse (n ≥ 32 and
// m ≤ n²/8), the exact dense reference otherwise.
func DefaultBackendFor(d *graph.Digraph) string {
	n, m := d.N(), d.M()
	if n >= autoBackendMinVerts && m*autoBackendDensity <= n*n {
		return "csr-pcg"
	}
	return "dense"
}

// ResolveBackend folds the deprecated Solver enum and the empty default
// into a single registry name, and validates it against the registry —
// the one place the legacy knobs are translated, shared with the public
// layer so Stats.Backend always names what the sessions actually run.
// With neither Backend nor Solver set, the backend is auto-selected per
// DefaultBackendFor. Unknown names fail here, before any solve starts,
// with an error satisfying errors.Is(err, lp.ErrBackendUnknown).
func (o Options) ResolveBackend(d *graph.Digraph) (string, error) {
	backend := o.Backend
	if backend == "" {
		if o.Solver != 0 {
			backend = o.Solver.BackendName()
		} else {
			backend = DefaultBackendFor(d)
		}
	}
	if err := lp.ValidateBackend(backend); err != nil {
		return "", err
	}
	return backend, nil
}

// Result is the output of a min-cost max-flow solve.
type Result struct {
	// Value is the maximum flow value, Cost its minimum cost.
	Value, Cost int64
	// Flows is the exact integral per-arc flow.
	Flows []int64
	// Attempts is the number of fresh perturbations tried (0 for a
	// successful warm-started batch solve, which reuses the previous
	// certified perturbation).
	Attempts int
	// LPStats carries the interior-point statistics of the successful
	// attempt (path steps, centerings, inner CG iterations).
	LPStats lp.Solution
	// Rounds is the simulator round count consumed by this solve (0
	// without a network).
	Rounds int
	// WallTime is the measured duration of this solve.
	WallTime time.Duration
	// ReusedForm reports that the LP formulation, CSR structure and
	// backend workspaces were reused from an earlier query on the same
	// terminals (session amortization).
	ReusedForm bool
	// WarmStarted reports that the solve skipped path following entirely,
	// re-centering the previous certified solution at t₂ (batch mode).
	WarmStarted bool
}

// Query is a terminal pair for Solver.SolveBatch.
type Query struct {
	S, T int
}

// formState is the per-terminal-pair cache of a Solver: the LP structure,
// the lp session bound to it (backend + scratch), and the last certified
// solution for warm starts.
type formState struct {
	form *LPForm
	sess *lp.Session
	used bool
	// warmX/warmW are the LP iterate and Lewis weights of the last
	// certified solve, valid for the perturbation currently written in
	// form (Perturb invalidates them implicitly: the cold path never reads
	// them, and the warm path is only taken when no re-perturbation
	// happened since they were stored).
	warmX, warmW []float64
	// costsStale marks a form rebuilt by ApplyArcDeltas: warmX was
	// certified against the pre-patch costs, so the warm path must redraw
	// the perturbation over the new costs before polishing.
	costsStale bool
}

// Solver is a reusable min-cost max-flow session over one digraph
// (Theorem 1.1 as a service): construction validates the options, and each
// queried terminal pair lazily builds — then caches — the Section 5 LP
// formulation, its CSR constraint matrix and the linear-solve backend
// workspaces, so repeated and batched queries skip everything that is
// query-independent. A Solver is not safe for concurrent use.
type Solver struct {
	d       *graph.Digraph
	opts    Options
	backend string
	forms   map[Query]*formState
}

// NewSolver builds a session over d. It fails fast — before any query —
// on an empty digraph (ErrBadQuery) or an unknown backend name
// (lp.ErrBackendUnknown, listing the registered backends).
func NewSolver(d *graph.Digraph, opts Options) (*Solver, error) {
	if err := checkNonEmpty(d); err != nil {
		return nil, err
	}
	backend, err := opts.ResolveBackend(d)
	if err != nil {
		return nil, err
	}
	return &Solver{d: d, opts: opts.withDefaults(), backend: backend, forms: map[Query]*formState{}}, nil
}

// Backend returns the resolved AᵀDA backend name this session solves
// with — the explicit Options choice, or the DefaultBackendFor
// auto-selection when none was named.
func (fs *Solver) Backend() string { return fs.backend }

// formFor returns the cached per-terminal state, building it on first use.
func (fs *Solver) formFor(q Query) (*formState, error) {
	if st, ok := fs.forms[q]; ok {
		return st, nil
	}
	form, err := NewLPFormStructure(fs.d, q.S, q.T)
	if err != nil {
		return nil, err
	}
	if err := form.Configure(fs.backend); err != nil {
		return nil, err
	}
	sess, err := lp.NewSession(form.Prob)
	if err != nil {
		return nil, err
	}
	st := &formState{form: form, sess: sess}
	fs.forms[q] = st
	return st, nil
}

// queryRand returns the perturbation stream for one query.
func (fs *Solver) queryRand() *rand.Rand {
	if fs.opts.Rand != nil {
		return fs.opts.Rand
	}
	seed := int64(2022)
	if fs.opts.Seed != nil {
		seed = *fs.opts.Seed
	}
	return rand.New(rand.NewSource(seed))
}

// SeedOf is a convenience for composing Options literals: Seed: SeedOf(7).
func SeedOf(seed int64) *int64 { return &seed }

// lpParams prepares the interior-point parameters for one attempt.
func (fs *Solver) lpParams(attempt int64) lp.Params {
	par := fs.opts.LP
	par.Net = fs.opts.Net
	if par.Seed == 0 {
		par.Seed = attempt
	}
	return par
}

// Solve answers one (s, t) query: perturb costs for uniqueness, solve the
// Section 5 LP with the Lee–Sidford interior-point method, round to
// integers and certify; on a failed certificate, retry with fresh
// perturbation randomness. Results are bit-identical to a one-shot
// MinCostMaxFlowCtx call with the same Options (when Options.Rand is nil).
// ctx cancellation aborts within one path-following iteration with an
// error satisfying errors.Is(err, ctx.Err()).
func (fs *Solver) Solve(ctx context.Context, s, t int) (*Result, error) {
	return fs.solve(ctx, Query{S: s, T: t}, false)
}

// Validate checks one terminal pair against the session's digraph without
// doing any solve work, reporting the same ErrBadQuery conditions Solve
// would. Unlike the solve methods it only reads the immutable digraph, so
// it is safe to call concurrently with a solve running on this session
// (the pool layer uses it to pre-validate batches).
func (fs *Solver) Validate(q Query) error { return checkST(fs.d, q.S, q.T) }

// SolveWarm answers one query with batch semantics: a repeat of a terminal
// pair already certified on this session warm-starts from the previous
// solution (re-centering at t₂ instead of re-running path following),
// falling back to a cold solve whenever the exactness certificate rejects
// the shortcut. It is the single-query unit SolveBatch — and the worker
// sessions of internal/pool — are built from. Like Solve, it must only be
// called from one goroutine at a time.
func (fs *Solver) SolveWarm(ctx context.Context, q Query) (*Result, error) {
	if err := checkST(fs.d, q.S, q.T); err != nil {
		return nil, err
	}
	return fs.solve(ctx, q, true)
}

// SolveBatch answers a sequence of queries, validating every terminal pair
// up front (a malformed query fails the whole batch before any work
// starts). Repeated terminal pairs are warm-started: the solver re-centers
// the previous certified solution at the final path parameter instead of
// re-running path following, falling back to a cold solve whenever the
// exactness certificate rejects the shortcut — so every returned flow is
// certified optimal regardless of how it was obtained.
func (fs *Solver) SolveBatch(ctx context.Context, queries []Query) ([]*Result, error) {
	for i, q := range queries {
		if err := checkST(fs.d, q.S, q.T); err != nil {
			return nil, fmt.Errorf("flow: batch query %d: %w", i, err)
		}
	}
	out := make([]*Result, len(queries))
	for i, q := range queries {
		res, err := fs.solve(ctx, q, true)
		if err != nil {
			return nil, fmt.Errorf("flow: batch query %d (s=%d, t=%d): %w", i, q.S, q.T, err)
		}
		out[i] = res
	}
	return out, nil
}

func (fs *Solver) solve(ctx context.Context, q Query, tryWarm bool) (*Result, error) {
	start := time.Now()
	st, err := fs.formFor(q)
	if err != nil {
		return nil, err
	}
	startRounds := 0
	if fs.opts.Net != nil {
		startRounds = fs.opts.Net.Rounds()
	}
	reused := st.used
	st.used = true

	if tryWarm && st.warmX != nil {
		// The LP — including its perturbed costs — is unchanged since the
		// last certified solve of this query: a handful of centerings at t₂
		// from the previous optimum replaces the whole Õ(√n)-step path
		// following. The previous optimum hugs the box boundary, so blend a
		// small step toward the cold interior point first (a shifted warm
		// start) — the margin it regains must dominate the feasibility
		// repair Polish applies, and the rounding margin (1/6 of a flow
		// unit) absorbs the shift. The certificate below keeps this exact.
		const warmBlend = 0.05
		if st.costsStale {
			// The arcs were patched since this basis was certified: redraw
			// the uniqueness perturbation over the new costs first. The
			// stream matches a cold attempt's first draw, so a certificate
			// failure below falls back to the exact cold solve a fresh
			// session would run.
			st.form.Perturb(fs.queryRand())
			st.costsStale = false
		}
		x := make([]float64, len(st.warmX))
		for i := range x {
			x[i] = (1-warmBlend)*st.warmX[i] + warmBlend*st.form.X0[i]
		}
		sol, err := st.sess.Polish(ctx, x, st.warmW, fs.opts.Eps, fs.lpParams(1))
		if err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("flow: warm solve: %w", err)
			}
		} else {
			flows := st.form.RoundFlow(sol.X)
			if CertifyOptimal(fs.d, q.S, q.T, flows) == nil {
				st.warmX, st.warmW = sol.X, sol.Weights
				return fs.newResult(q, flows, 0, sol, startRounds, start, reused, true), nil
			}
		}
		// Certificate (or polish) rejected the shortcut; run cold.
	}

	rnd := fs.queryRand()
	var lastErr error
	for attempt := 1; attempt <= fs.opts.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("flow: canceled before attempt %d: %w", attempt, err)
		}
		if fs.opts.Progress != nil {
			fs.opts.Progress(attempt)
		}
		st.form.Perturb(rnd)
		st.warmX, st.warmW = nil, nil // costs changed; prior optimum is stale
		sol, err := st.sess.Solve(ctx, st.form.X0, fs.opts.Eps, fs.lpParams(int64(attempt)))
		if err != nil {
			lastErr = fmt.Errorf("flow: LP attempt %d: %w", attempt, err)
			if ctx.Err() != nil {
				return nil, lastErr
			}
			continue
		}
		flows := st.form.RoundFlow(sol.X)
		if err := CertifyOptimal(fs.d, q.S, q.T, flows); err != nil {
			lastErr = fmt.Errorf("flow: attempt %d certificate: %w", attempt, err)
			continue
		}
		st.warmX, st.warmW = sol.X, sol.Weights
		return fs.newResult(q, flows, attempt, sol, startRounds, start, reused, false), nil
	}
	return nil, fmt.Errorf("flow: all %d attempts failed: %w", fs.opts.Retries, lastErr)
}

func (fs *Solver) newResult(q Query, flows []int64, attempts int, sol *lp.Solution, startRounds int, start time.Time, reused, warm bool) *Result {
	res := &Result{
		Value:       FlowValue(fs.d, q.S, flows),
		Cost:        FlowCost(fs.d, flows),
		Flows:       flows,
		Attempts:    attempts,
		LPStats:     *sol,
		WallTime:    time.Since(start),
		ReusedForm:  reused,
		WarmStarted: warm,
	}
	if fs.opts.Net != nil {
		res.Rounds = fs.opts.Net.Rounds() - startRounds
	}
	return res
}

// MinCostMaxFlow computes an exact minimum-cost maximum s-t flow through
// the paper's pipeline (Theorem 1.1); see MinCostMaxFlowCtx.
func MinCostMaxFlow(d *graph.Digraph, s, t int, opts Options) (*Result, error) {
	return MinCostMaxFlowCtx(context.Background(), d, s, t, opts)
}

// MinCostMaxFlowCtx is the one-shot form of Solver: it builds a session,
// answers the single query under ctx and discards the session. Callers
// with more than one query per digraph should hold a Solver instead.
func MinCostMaxFlowCtx(ctx context.Context, d *graph.Digraph, s, t int, opts Options) (*Result, error) {
	fs, err := NewSolver(d, opts)
	if err != nil {
		return nil, err
	}
	return fs.Solve(ctx, s, t)
}
