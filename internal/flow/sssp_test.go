package flow

import (
	"errors"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
)

func TestShortestPathViaFlowMatchesDijkstra(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 3; trial++ {
		d := graph.RandomFlowNetwork(5, 0.3, 2, 4, rnd)
		want, err := DijkstraCost(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ShortestPathViaFlow(d, 0, d.N()-1, Options{
			Rand: rand.New(rand.NewSource(int64(trial + 5))),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: flow-based %d vs Dijkstra %d", trial, got, want)
		}
	}
}

func TestShortestPathViaFlowRejectsNegativeCosts(t *testing.T) {
	d := graph.NewDigraph(3)
	if _, err := d.AddArc(0, 1, 1, -1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddArc(1, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ShortestPathViaFlow(d, 0, 2, Options{}); err == nil {
		t.Fatal("negative costs accepted")
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	d := graph.NewDigraph(4)
	if _, err := d.AddArc(0, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddArc(3, 2, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := DijkstraCost(d, 0, 2); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("Dijkstra: want ErrUnreachable, got %v", err)
	}
}

func TestDijkstraCostKnown(t *testing.T) {
	d := graph.NewDigraph(4)
	arcs := [][4]int64{{0, 1, 1, 1}, {1, 3, 1, 1}, {0, 2, 1, 5}, {2, 3, 1, 1}, {0, 3, 1, 9}}
	for _, a := range arcs {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DijkstraCost(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("shortest path cost %d, want 2", got)
	}
}
