package flow

import (
	"math/rand"
	"testing"

	"bcclap/internal/graph"
)

func diamond(t *testing.T) *graph.Digraph {
	t.Helper()
	// s=0, t=3; two parallel routes with different costs.
	d := graph.NewDigraph(4)
	add := func(u, v int, c, q int64) {
		if _, err := d.AddArc(u, v, c, q); err != nil {
			t.Fatal(err)
		}
	}
	add(0, 1, 3, 1)
	add(0, 2, 2, 4)
	add(1, 3, 2, 1)
	add(2, 3, 2, 1)
	add(1, 2, 1, 1)
	return d
}

func TestMaxFlowDiamond(t *testing.T) {
	d := diamond(t)
	v, flows, err := MaxFlow(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("max flow %d, want 4", v)
	}
	if err := Feasible(d, 0, 3, flows); err != nil {
		t.Fatal(err)
	}
	if FlowValue(d, 0, flows) != 4 {
		t.Fatal("flow value mismatch")
	}
}

func TestSSPDiamond(t *testing.T) {
	d := diamond(t)
	v, c, flows, err := MinCostMaxFlowSSP(d, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 4 {
		t.Fatalf("value %d, want 4", v)
	}
	// Cheapest routing of 4 units: 2 via 0-1-3 (cost 2 each), 1 via the
	// shortcut 0-1-2-3 (cost 3) and 1 via 0-2-3 (cost 5): total 12.
	// Ignoring the shortcut would cost 2·2 + 2·5 = 14.
	if c != 12 {
		t.Fatalf("cost %d, want 12", c)
	}
	if err := CertifyOptimal(d, 0, 3, flows); err != nil {
		t.Fatal(err)
	}
}

func TestSSPMatchesMaxFlowValueRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		d := graph.RandomFlowNetwork(8, 0.25, 5, 4, rnd)
		vMax, _, err := MaxFlow(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		vSSP, _, flows, err := MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		if vMax != vSSP {
			t.Fatalf("trial %d: SSP value %d vs Dinic %d", trial, vSSP, vMax)
		}
		if err := CertifyOptimal(d, 0, d.N()-1, flows); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestCertifyRejectsSuboptimal(t *testing.T) {
	d := diamond(t)
	// Zero flow: feasible but not maximum.
	zero := make([]int64, d.M())
	if err := CertifyOptimal(d, 0, 3, zero); err == nil {
		t.Fatal("zero flow certified")
	}
	// Max-flow but not min-cost: route around the shortcut.
	flows := []int64{2, 2, 2, 2, 0}
	if err := Feasible(d, 0, 3, flows); err != nil {
		t.Fatal(err)
	}
	if err := CertifyOptimal(d, 0, 3, flows); err == nil {
		t.Fatal("suboptimal-cost flow certified")
	}
	// Infeasible: capacity violation.
	bad := []int64{3, 2, 2, 2, 1}
	if err := CertifyOptimal(d, 0, 3, bad); err == nil {
		t.Fatal("infeasible flow certified")
	}
}

func TestLPFormStructure(t *testing.T) {
	d := diamond(t)
	rnd := rand.New(rand.NewSource(7))
	form, err := NewLPForm(d, 0, 3, rnd)
	if err != nil {
		t.Fatal(err)
	}
	if form.NPrime != 3 {
		t.Fatalf("NPrime = %d", form.NPrime)
	}
	wantRows := d.M() + 2*form.NPrime + 1
	if form.Prob.A.Rows() != wantRows || form.Prob.A.Cols() != form.NPrime {
		t.Fatalf("A is %dx%d, want %dx%d", form.Prob.A.Rows(), form.Prob.A.Cols(), wantRows, form.NPrime)
	}
	if err := form.Prob.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := form.Prob.Residual(form.X0); r > 1e-9 {
		t.Fatalf("interior point violates constraints by %g", r)
	}
	for i, v := range form.X0 {
		if v <= form.Prob.L[i] || v >= form.Prob.U[i] {
			t.Fatalf("x0[%d] = %v not strictly inside [%v, %v]", i, v, form.Prob.L[i], form.Prob.U[i])
		}
	}
	// Perturbed costs preserve the original ordering scale-wise.
	for i := range form.QTilde {
		lo := d.Arc(i).Cost * form.CostScale
		if form.QTilde[i] <= lo || form.QTilde[i] > lo+2*int64(d.M())*form.CostScale {
			t.Fatalf("perturbation out of range on arc %d", i)
		}
	}
}

func TestAssembleATDAIsSDD(t *testing.T) {
	d := diamond(t)
	rnd := rand.New(rand.NewSource(8))
	form, err := NewLPForm(d, 0, 3, rnd)
	if err != nil {
		t.Fatal(err)
	}
	dvec := make([]float64, form.Prob.M())
	for i := range dvec {
		dvec[i] = 0.1 + rnd.Float64()
	}
	m := form.assembleATDA(dvec)
	n := m.Rows()
	// Compare against the definition AᵀDA computed from the CSR matrix.
	for i := 0; i < n; i++ {
		ei := make([]float64, n)
		ei[i] = 1
		aei := form.Prob.A.MulVec(ei)
		for r := range aei {
			aei[r] *= dvec[r]
		}
		col := form.Prob.A.MulVecT(aei)
		for j := 0; j < n; j++ {
			if diff := m.At(i, j) - col[j]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("AᵀDA mismatch at (%d,%d): %v vs %v", i, j, m.At(i, j), col[j])
			}
		}
	}
}

func TestMinCostMaxFlowLPPipelineDiamond(t *testing.T) {
	d := diamond(t)
	res, err := MinCostMaxFlow(d, 0, 3, Options{Rand: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 || res.Cost != 12 {
		t.Fatalf("LP pipeline: value %d cost %d, want 4 and 12", res.Value, res.Cost)
	}
	if err := CertifyOptimal(d, 0, 3, res.Flows); err != nil {
		t.Fatal(err)
	}
	if res.LPStats.PathSteps == 0 {
		t.Fatal("no LP iterations recorded")
	}
}

func TestMinCostMaxFlowLPPipelineGremban(t *testing.T) {
	d := diamond(t)
	res, err := MinCostMaxFlow(d, 0, 3, Options{
		Solver: SolverGremban,
		Rand:   rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 || res.Cost != 12 {
		t.Fatalf("Gremban pipeline: value %d cost %d, want 4 and 12", res.Value, res.Cost)
	}
}

func TestMinCostMaxFlowMatchesSSPRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 4; trial++ {
		d := graph.RandomFlowNetwork(6, 0.25, 3, 3, rnd)
		wantV, wantC, _, err := MinCostMaxFlowSSP(d, 0, d.N()-1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := MinCostMaxFlow(d, 0, d.N()-1, Options{Rand: rand.New(rand.NewSource(int64(trial + 10)))})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Value != wantV || res.Cost != wantC {
			t.Fatalf("trial %d: LP (%d, %d) vs SSP (%d, %d)", trial, res.Value, res.Cost, wantV, wantC)
		}
	}
}

func TestBadTerminals(t *testing.T) {
	d := diamond(t)
	if _, _, err := MaxFlow(d, 0, 0); err == nil {
		t.Fatal("s == t accepted")
	}
	if _, _, _, err := MinCostMaxFlowSSP(d, -1, 3); err == nil {
		t.Fatal("negative s accepted")
	}
}
