package flow

import (
	"fmt"
	"math"

	"bcclap/internal/graph"
)

// ShortestPathViaFlow computes the cost of a shortest s→t path by the
// reduction the paper's introduction uses to motivate Theorem 1.1: the
// single-source shortest path problem is the special case of min-cost flow
// with one unit of demand. A super-source with a single unit-capacity arc
// to s forces flow value 1, whose minimum cost is d(s, t). Costs must be
// non-negative. Returns ErrUnreachable when t is not reachable from s.
func ShortestPathViaFlow(d *graph.Digraph, s, t int, opts Options) (int64, error) {
	if err := checkST(d, s, t); err != nil {
		return 0, err
	}
	for i := 0; i < d.M(); i++ {
		if d.Arc(i).Cost < 0 {
			return 0, fmt.Errorf("flow: shortest path reduction needs non-negative costs")
		}
	}
	// Rebuild with a super-source (vertex n) feeding s through one
	// unit-capacity zero-cost arc.
	n := d.N()
	aug := graph.NewDigraph(n + 1)
	for i := 0; i < d.M(); i++ {
		a := d.Arc(i)
		// Unit capacities suffice (one unit ever flows) and keep the LP
		// small.
		if _, err := aug.AddArc(a.From, a.To, 1, a.Cost); err != nil {
			return 0, err
		}
	}
	if _, err := aug.AddArc(n, s, 1, 0); err != nil {
		return 0, err
	}
	res, err := MinCostMaxFlow(aug, n, t, opts)
	if err != nil {
		return 0, err
	}
	if res.Value == 0 {
		return 0, ErrUnreachable
	}
	return res.Cost, nil
}

// ErrUnreachable is returned when no s→t path exists.
var ErrUnreachable = fmt.Errorf("flow: target unreachable")

// DijkstraCost is the centralized reference for ShortestPathViaFlow.
func DijkstraCost(d *graph.Digraph, s, t int) (int64, error) {
	const inf = math.MaxInt64 / 4
	dist := make([]int64, d.N())
	for i := range dist {
		dist[i] = inf
	}
	dist[s] = 0
	// Simple O(n²) Dijkstra (costs ≥ 0) — reference only.
	done := make([]bool, d.N())
	for {
		v, best := -1, int64(inf)
		for u := 0; u < d.N(); u++ {
			if !done[u] && dist[u] < best {
				v, best = u, dist[u]
			}
		}
		if v < 0 {
			break
		}
		done[v] = true
		for _, ai := range d.Out(v) {
			a := d.Arc(ai)
			if nd := dist[v] + a.Cost; nd < dist[a.To] {
				dist[a.To] = nd
			}
		}
	}
	if dist[t] >= inf {
		return 0, ErrUnreachable
	}
	return dist[t], nil
}
