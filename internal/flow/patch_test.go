package flow

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
)

// patchDeltas is a small deterministic delta set for a RandomFlowNetwork:
// widen one backbone arc and reprice another.
func patchDeltas(d *graph.Digraph) []graph.ArcDelta {
	return []graph.ArcDelta{
		{Arc: 0, CapDelta: 2, CostDelta: 1},
		{Arc: d.M() - 1, CostDelta: 2},
	}
}

// Malformed delta sets must fail with ErrBadDelta before any state
// changes, and a later solve must behave as if the call never happened.
func TestApplyArcDeltasValidation(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rnd)
	fs, err := NewSolver(d, Options{Seed: SeedOf(9)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before, err := fs.Solve(ctx, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range [][]graph.ArcDelta{
		nil,
		{},
		{{Arc: d.M()}},
		{{Arc: 0, CapDelta: -100}},
	} {
		if err := fs.ApplyArcDeltas(ds); !errors.Is(err, graph.ErrBadDelta) {
			t.Fatalf("deltas %v: err = %v, want ErrBadDelta", ds, err)
		}
	}
	after, err := fs.Solve(ctx, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if before.Value != after.Value || before.Cost != after.Cost {
		t.Fatal("failed ApplyArcDeltas mutated the solver")
	}
}

// After a patch, solves must be exact on the patched network: value and
// cost must match the SSP baseline run against an independently patched
// digraph, and the flow must certify.
func TestPatchedSolveMatchesBaseline(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rnd := rand.New(rand.NewSource(40 + seed))
		d := graph.RandomFlowNetwork(7, 0.35, 3, 3, rnd)
		fs, err := NewSolver(d, Options{Seed: SeedOf(5 + seed)})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		s, tt := 0, d.N()-1
		// Solve once pre-patch so the pair holds warm-start state.
		if _, err := fs.Solve(ctx, s, tt); err != nil {
			t.Fatalf("seed %d pre-patch: %v", seed, err)
		}
		// Build the expected patched graph from a clone first: the solver
		// shares (and mutates) d itself at this layer.
		ds := patchDeltas(d)
		patched := d.Clone()
		if err := patched.ApplyDeltas(ds); err != nil {
			t.Fatal(err)
		}
		if err := fs.ApplyArcDeltas(ds); err != nil {
			t.Fatalf("seed %d patch: %v", seed, err)
		}
		res, err := fs.SolveWarm(ctx, Query{S: s, T: tt})
		if err != nil {
			t.Fatalf("seed %d post-patch: %v", seed, err)
		}
		wantValue, wantCost, _, err := MinCostMaxFlowSSP(patched, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != wantValue || res.Cost != wantCost {
			t.Fatalf("seed %d: post-patch (value %d cost %d), baseline (value %d cost %d)",
				seed, res.Value, res.Cost, wantValue, wantCost)
		}
		if err := CertifyOptimal(patched, s, tt, res.Flows); err != nil {
			t.Fatalf("seed %d: post-patch flow fails certification: %v", seed, err)
		}
	}
}

// A patched session must answer exactly like a fresh solver built on the
// patched digraph (cold path): the patch may keep warm-start state, but
// correctness never depends on it.
func TestPatchedColdSolveEquivalence(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	d := graph.RandomFlowNetwork(6, 0.4, 3, 3, rnd)
	fs, err := NewSolver(d, Options{Seed: SeedOf(21)})
	if err != nil {
		t.Fatal(err)
	}
	// Clone before patching the solver: it shares d at this layer.
	ds := patchDeltas(d)
	patched := d.Clone()
	if err := patched.ApplyDeltas(ds); err != nil {
		t.Fatal(err)
	}
	if err := fs.ApplyArcDeltas(ds); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSolver(patched, Options{Seed: SeedOf(21)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	got, err := fs.Solve(ctx, 0, d.N()-1) // cold: the pair was never solved
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Solve(ctx, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Cost != want.Cost {
		t.Fatalf("patched session (value %d cost %d) diverged from fresh solver (value %d cost %d)",
			got.Value, got.Cost, want.Value, want.Cost)
	}
}
