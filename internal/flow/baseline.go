package flow

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"bcclap/internal/graph"
)

// residual arc representation shared by the combinatorial algorithms: arc
// 2i is the forward copy of input arc i, arc 2i+1 its reverse.
type resGraph struct {
	n     int
	head  []int
	cap   []int64
	cost  []int64
	first [][]int // per-vertex arc indices
}

func newResGraph(d *graph.Digraph) *resGraph {
	n := d.N()
	r := &resGraph{n: n, first: make([][]int, n)}
	for i := 0; i < d.M(); i++ {
		a := d.Arc(i)
		r.head = append(r.head, a.To, a.From)
		r.cap = append(r.cap, a.Cap, 0)
		r.cost = append(r.cost, a.Cost, -a.Cost)
		r.first[a.From] = append(r.first[a.From], 2*i)
		r.first[a.To] = append(r.first[a.To], 2*i+1)
	}
	return r
}

// flows returns the per-input-arc flow implied by the residual capacities.
func (r *resGraph) flows(d *graph.Digraph) []int64 {
	out := make([]int64, d.M())
	for i := 0; i < d.M(); i++ {
		out[i] = r.cap[2*i+1]
	}
	return out
}

// MaxFlow computes a maximum s-t flow with Dinic's algorithm. It returns
// the flow value and per-arc flows.
func MaxFlow(d *graph.Digraph, s, t int) (int64, []int64, error) {
	if err := checkST(d, s, t); err != nil {
		return 0, nil, err
	}
	r := newResGraph(d)
	var total int64
	level := make([]int, r.n)
	iter := make([]int, r.n)
	for {
		// BFS levels on the residual graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range r.first[v] {
				if r.cap[ai] > 0 && level[r.head[ai]] < 0 {
					level[r.head[ai]] = level[v] + 1
					queue = append(queue, r.head[ai])
				}
			}
		}
		if level[t] < 0 {
			break
		}
		for i := range iter {
			iter[i] = 0
		}
		var dfs func(v int, f int64) int64
		dfs = func(v int, f int64) int64 {
			if v == t {
				return f
			}
			for ; iter[v] < len(r.first[v]); iter[v]++ {
				ai := r.first[v][iter[v]]
				u := r.head[ai]
				if r.cap[ai] <= 0 || level[u] != level[v]+1 {
					continue
				}
				pushed := f
				if r.cap[ai] < pushed {
					pushed = r.cap[ai]
				}
				if got := dfs(u, pushed); got > 0 {
					r.cap[ai] -= got
					r.cap[ai^1] += got
					return got
				}
			}
			return 0
		}
		for {
			f := dfs(s, math.MaxInt64)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total, r.flows(d), nil
}

type fpqItem struct {
	v    int
	dist int64
}
type fpq []fpqItem

func (q fpq) Len() int            { return len(q) }
func (q fpq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q fpq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *fpq) Push(x interface{}) { *q = append(*q, x.(fpqItem)) }
func (q *fpq) Pop() interface{} {
	old := *q
	it := old[len(old)-1]
	*q = old[:len(old)-1]
	return it
}

// MinCostMaxFlowSSP computes an exact minimum-cost maximum s-t flow by
// successive shortest paths with Johnson potentials. Costs may be negative
// as long as the input has no negative-cost *cycle* consisting of forward
// arcs (Bellman–Ford initializes the potentials).
func MinCostMaxFlowSSP(d *graph.Digraph, s, t int) (value, cost int64, flows []int64, err error) {
	if err := checkST(d, s, t); err != nil {
		return 0, 0, nil, err
	}
	r := newResGraph(d)
	n := r.n
	const inf = math.MaxInt64 / 4

	// Bellman–Ford for initial potentials (handles negative arc costs).
	pot := make([]int64, n)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[s] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			if dist[v] >= inf {
				continue
			}
			for _, ai := range r.first[v] {
				if r.cap[ai] <= 0 {
					continue
				}
				u := r.head[ai]
				if nd := dist[v] + r.cost[ai]; nd < dist[u] {
					dist[u] = nd
					changed = true
					if round == n-1 {
						return 0, 0, nil, fmt.Errorf("flow: negative-cost cycle detected")
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	for v := 0; v < n; v++ {
		if dist[v] < inf {
			pot[v] = dist[v]
		}
	}

	prevArc := make([]int, n)
	for {
		// Dijkstra with reduced costs.
		for i := range dist {
			dist[i] = inf
			prevArc[i] = -1
		}
		dist[s] = 0
		q := &fpq{{v: s}}
		for q.Len() > 0 {
			it := heap.Pop(q).(fpqItem)
			if it.dist > dist[it.v] {
				continue
			}
			for _, ai := range r.first[it.v] {
				if r.cap[ai] <= 0 {
					continue
				}
				u := r.head[ai]
				rc := r.cost[ai] + pot[it.v] - pot[u]
				if nd := it.dist + rc; nd < dist[u] {
					dist[u] = nd
					prevArc[u] = ai
					heap.Push(q, fpqItem{v: u, dist: nd})
				}
			}
		}
		if dist[t] >= inf {
			break
		}
		for v := 0; v < n; v++ {
			if dist[v] < inf {
				pot[v] += dist[v]
			}
		}
		// Bottleneck along the path.
		push := int64(inf)
		for v := t; v != s; {
			ai := prevArc[v]
			if r.cap[ai] < push {
				push = r.cap[ai]
			}
			v = r.head[ai^1]
		}
		for v := t; v != s; {
			ai := prevArc[v]
			r.cap[ai] -= push
			r.cap[ai^1] += push
			v = r.head[ai^1]
		}
		value += push
	}
	flows = r.flows(d)
	for i, f := range flows {
		cost += f * d.Arc(i).Cost
	}
	return value, cost, flows, nil
}

// ErrBadQuery is returned (wrapped, with detail) when a flow query is
// malformed: terminals out of range, s == t, or — for the LP pipeline —
// an empty digraph. It is raised at the API boundary, before any LP
// formulation work starts, and is detected with errors.Is.
var ErrBadQuery = errors.New("flow: bad query")

func checkST(d *graph.Digraph, s, t int) error {
	if s < 0 || s >= d.N() || t < 0 || t >= d.N() || s == t {
		return fmt.Errorf("%w: terminals s=%d t=%d for %d vertices", ErrBadQuery, s, t, d.N())
	}
	return nil
}

// checkNonEmpty guards the LP pipeline, which cannot formulate an LP over
// zero arcs. The combinatorial baselines accept arcless digraphs (their
// maximum flow is trivially zero), so this check is not part of checkST.
func checkNonEmpty(d *graph.Digraph) error {
	if d == nil || d.N() == 0 || d.M() == 0 {
		n, m := 0, 0
		if d != nil {
			n, m = d.N(), d.M()
		}
		return fmt.Errorf("%w: empty digraph (%d vertices, %d arcs)", ErrBadQuery, n, m)
	}
	return nil
}

// FlowValue returns the net flow out of s.
func FlowValue(d *graph.Digraph, s int, flows []int64) int64 {
	var v int64
	for i := 0; i < d.M(); i++ {
		a := d.Arc(i)
		if a.From == s {
			v += flows[i]
		}
		if a.To == s {
			v -= flows[i]
		}
	}
	return v
}

// FlowCost returns Σ q_e f_e.
func FlowCost(d *graph.Digraph, flows []int64) int64 {
	var c int64
	for i := 0; i < d.M(); i++ {
		c += flows[i] * d.Arc(i).Cost
	}
	return c
}

// Feasible checks capacity and conservation constraints of an s-t flow.
func Feasible(d *graph.Digraph, s, t int, flows []int64) error {
	if len(flows) != d.M() {
		return fmt.Errorf("flow: %d flows for %d arcs", len(flows), d.M())
	}
	excess := make([]int64, d.N())
	for i := 0; i < d.M(); i++ {
		a := d.Arc(i)
		f := flows[i]
		if f < 0 || f > a.Cap {
			return fmt.Errorf("flow: arc %d flow %d outside [0, %d]", i, f, a.Cap)
		}
		excess[a.From] -= f
		excess[a.To] += f
	}
	for v := range excess {
		if v == s || v == t {
			continue
		}
		if excess[v] != 0 {
			return fmt.Errorf("flow: conservation violated at %d by %d", v, excess[v])
		}
	}
	if excess[t] != -excess[s] {
		return fmt.Errorf("flow: source/sink imbalance")
	}
	return nil
}

// CertifyOptimal checks that flows is an exact minimum-cost maximum flow:
// feasibility, no residual augmenting s-t path (maximality) and no
// negative-cost residual cycle (cost optimality). This is the internal
// verification the BCC pipeline uses before accepting a rounded LP
// solution.
func CertifyOptimal(d *graph.Digraph, s, t int, flows []int64) error {
	if err := Feasible(d, s, t, flows); err != nil {
		return err
	}
	r := newResGraph(d)
	for i := 0; i < d.M(); i++ {
		r.cap[2*i] = d.Arc(i).Cap - flows[i]
		r.cap[2*i+1] = flows[i]
	}
	// Maximality: BFS in the residual graph.
	seen := make([]bool, r.n)
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ai := range r.first[v] {
			if r.cap[ai] > 0 && !seen[r.head[ai]] {
				seen[r.head[ai]] = true
				queue = append(queue, r.head[ai])
			}
		}
	}
	if seen[t] {
		return fmt.Errorf("flow: augmenting path exists — not a maximum flow")
	}
	// Optimality: Bellman–Ford from a virtual super-source over residual
	// arcs; relaxation after n−1 rounds ⇒ negative cycle.
	const inf = math.MaxInt64 / 4
	dist := make([]int64, r.n)
	for round := 0; round < r.n; round++ {
		changed := false
		for v := 0; v < r.n; v++ {
			for _, ai := range r.first[v] {
				if r.cap[ai] <= 0 {
					continue
				}
				u := r.head[ai]
				if nd := dist[v] + r.cost[ai]; nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			return nil
		}
		_ = inf
	}
	return fmt.Errorf("flow: negative-cost residual cycle — not minimum cost")
}
