package sim

import "testing"

func newBCC(t *testing.T, n int) *Network {
	t.Helper()
	net, err := NewNetwork(Config{N: n, Mode: ModeBCC})
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewNetwork(Config{N: 0, Mode: ModeBCC}); err == nil {
		t.Error("zero vertices accepted")
	}
	if _, err := NewNetwork(Config{N: 3, Mode: Mode(99)}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewNetwork(Config{N: 3, Mode: ModeBroadcastCONGEST}); err == nil {
		t.Error("missing adjacency accepted")
	}
}

func TestBCCDelivery(t *testing.T) {
	net := newBCC(t, 4)
	net.BeginPhase()
	net.Broadcast(1, 8, "hello")
	rounds := net.EndPhase()
	if rounds != 1 {
		t.Fatalf("rounds = %d, want 1", rounds)
	}
	for v := 0; v < 4; v++ {
		in := net.Inbox(v)
		if v == 1 {
			if len(in) != 0 {
				t.Fatalf("sender received own message")
			}
			continue
		}
		if len(in) != 1 || in[0].From != 1 || in[0].Payload.(string) != "hello" {
			t.Fatalf("vertex %d inbox = %v", v, in)
		}
	}
}

func TestCONGESTDeliveryRestrictedToNeighbors(t *testing.T) {
	adj := [][]int{{1}, {0, 2}, {1}}
	net, err := NewNetwork(Config{N: 3, Mode: ModeBroadcastCONGEST, Adjacency: adj})
	if err != nil {
		t.Fatal(err)
	}
	net.BeginPhase()
	net.Broadcast(0, 4, 7)
	net.EndPhase()
	if len(net.Inbox(1)) != 1 {
		t.Fatal("neighbor did not receive")
	}
	if len(net.Inbox(2)) != 0 {
		t.Fatal("non-neighbor received")
	}
}

func TestRoundChargingIsMaxOverVertices(t *testing.T) {
	net, err := NewNetwork(Config{N: 3, Mode: ModeBCC, BandwidthBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	net.BeginPhase()
	net.Broadcast(0, 25, nil) // 3 rounds for vertex 0
	net.Broadcast(1, 10, nil) // 1 round for vertex 1
	net.Broadcast(1, 10, nil) // 2 rounds total for vertex 1
	rounds := net.EndPhase()
	if rounds != 3 {
		t.Fatalf("phase rounds = %d, want 3 (max over vertices)", rounds)
	}
	if net.Rounds() != 3 {
		t.Fatalf("total rounds = %d", net.Rounds())
	}
	st := net.Stats()
	if st.Messages != 3 || st.Bits != 45 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInboxReplacedEachPhase(t *testing.T) {
	net := newBCC(t, 2)
	net.BeginPhase()
	net.Broadcast(0, 1, "a")
	net.EndPhase()
	net.BeginPhase()
	net.EndPhase()
	if len(net.Inbox(1)) != 0 {
		t.Fatal("stale inbox")
	}
}

func TestChargeRoundsAndReset(t *testing.T) {
	net := newBCC(t, 2)
	net.ChargeRounds(5)
	if net.Rounds() != 5 {
		t.Fatal("ChargeRounds not counted")
	}
	net.ResetCounters()
	if net.Rounds() != 0 || net.Stats().Bits != 0 {
		t.Fatal("ResetCounters incomplete")
	}
}

func TestPhaseDiscipline(t *testing.T) {
	net := newBCC(t, 2)
	mustPanic(t, func() { net.Broadcast(0, 1, nil) })
	mustPanic(t, func() { net.EndPhase() })
	net.BeginPhase()
	mustPanic(t, func() { net.BeginPhase() })
	net.EndPhase()
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestBitHelpers(t *testing.T) {
	if BitsForID(1) != 1 || BitsForID(2) != 1 || BitsForID(1024) != 10 || BitsForID(1025) != 11 {
		t.Fatal("BitsForID wrong")
	}
	if BitsForInt(1) != 1 || BitsForInt(255) != 8 {
		t.Fatalf("BitsForInt wrong: %d", BitsForInt(255))
	}
	if BitsForFloat(1024, 1.0/1024) < 20 {
		t.Fatal("BitsForFloat too small")
	}
	if BitsForFloat(0, 0) <= 0 {
		t.Fatal("BitsForFloat should default sanely")
	}
}

func TestModeString(t *testing.T) {
	if ModeBCC.String() == "" || ModeBroadcastCONGEST.String() == "" {
		t.Fatal("empty mode strings")
	}
}
