package sim

import (
	"fmt"
	"math"
)

// Mode selects the communication model.
type Mode int

const (
	// ModeBroadcastCONGEST restricts delivery to graph neighbors.
	ModeBroadcastCONGEST Mode = iota + 1
	// ModeBCC delivers every broadcast to every vertex (shared blackboard).
	ModeBCC
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeBroadcastCONGEST:
		return "Broadcast CONGEST"
	case ModeBCC:
		return "Broadcast Congested Clique"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Message is a broadcast with a declared size in bits. Payload is opaque to
// the simulator.
type Message struct {
	From    int
	Bits    int
	Payload interface{}
}

// Config configures a Network.
type Config struct {
	// N is the number of vertices.
	N int
	// Mode is the communication model.
	Mode Mode
	// BandwidthBits is B, the per-round message size. Zero means the
	// standard B = 4·⌈log₂ N⌉ (the Θ(log n) of the model with a concrete
	// constant; IDs, weights and float mantissa chunks all fit in O(1)
	// messages).
	BandwidthBits int
	// Adjacency gives, for ModeBroadcastCONGEST, the neighbor lists. It is
	// ignored in ModeBCC.
	Adjacency [][]int
}

// Network is a synchronous broadcast network with round accounting.
type Network struct {
	n         int
	mode      Mode
	bandwidth int
	adj       [][]int

	rounds   int
	messages int64
	bits     int64

	inPhase bool
	pending [][]Message // per-sender queue for the current phase
	inbox   [][]Message // per-receiver messages from the last phase
}

// NewNetwork creates a network from cfg.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("sim: need at least one vertex, got %d", cfg.N)
	}
	if cfg.Mode != ModeBCC && cfg.Mode != ModeBroadcastCONGEST {
		return nil, fmt.Errorf("sim: unknown mode %d", cfg.Mode)
	}
	bw := cfg.BandwidthBits
	if bw == 0 {
		bw = 4 * BitsForID(cfg.N)
	}
	if bw <= 0 {
		return nil, fmt.Errorf("sim: non-positive bandwidth %d", bw)
	}
	var adj [][]int
	if cfg.Mode == ModeBroadcastCONGEST {
		if len(cfg.Adjacency) != cfg.N {
			return nil, fmt.Errorf("sim: adjacency has %d entries, want %d", len(cfg.Adjacency), cfg.N)
		}
		adj = make([][]int, cfg.N)
		for v, ns := range cfg.Adjacency {
			adj[v] = append([]int(nil), ns...)
		}
	}
	return &Network{
		n:         cfg.N,
		mode:      cfg.Mode,
		bandwidth: bw,
		adj:       adj,
		pending:   make([][]Message, cfg.N),
		inbox:     make([][]Message, cfg.N),
	}, nil
}

// N returns the number of vertices.
func (net *Network) N() int { return net.n }

// Mode returns the communication model.
func (net *Network) Mode() Mode { return net.mode }

// Bandwidth returns B in bits.
func (net *Network) Bandwidth() int { return net.bandwidth }

// BeginPhase starts a communication phase. Phases must not nest.
func (net *Network) BeginPhase() {
	if net.inPhase {
		panic("sim: BeginPhase inside a phase")
	}
	net.inPhase = true
	for v := range net.pending {
		net.pending[v] = nil
	}
}

// Broadcast queues a broadcast by vertex from of the given size. It must be
// called between BeginPhase and EndPhase.
func (net *Network) Broadcast(from, bits int, payload interface{}) {
	if !net.inPhase {
		panic("sim: Broadcast outside a phase")
	}
	if from < 0 || from >= net.n {
		panic(fmt.Sprintf("sim: sender %d out of range", from))
	}
	if bits <= 0 {
		bits = 1
	}
	net.pending[from] = append(net.pending[from], Message{From: from, Bits: bits, Payload: payload})
}

// EndPhase closes the phase: it charges max_v ⌈bits_v/B⌉ rounds, delivers
// all queued messages to the receivers' inboxes (replacing the previous
// phase's inboxes) and returns the number of rounds charged.
func (net *Network) EndPhase() int {
	if !net.inPhase {
		panic("sim: EndPhase outside a phase")
	}
	net.inPhase = false
	maxRounds := 0
	for v := range net.inbox {
		net.inbox[v] = nil
	}
	for v, msgs := range net.pending {
		var vbits int
		for _, m := range msgs {
			vbits += m.Bits
			net.messages++
			net.bits += int64(m.Bits)
		}
		if r := (vbits + net.bandwidth - 1) / net.bandwidth; r > maxRounds {
			maxRounds = r
		}
		for _, m := range msgs {
			net.deliver(v, m)
		}
	}
	net.rounds += maxRounds
	return maxRounds
}

func (net *Network) deliver(from int, m Message) {
	switch net.mode {
	case ModeBCC:
		for u := 0; u < net.n; u++ {
			if u != from {
				net.inbox[u] = append(net.inbox[u], m)
			}
		}
	case ModeBroadcastCONGEST:
		for _, u := range net.adj[from] {
			net.inbox[u] = append(net.inbox[u], m)
		}
	}
}

// Inbox returns the messages vertex v received in the last completed phase.
// The returned slice must not be modified.
func (net *Network) Inbox(v int) []Message { return net.inbox[v] }

// ChargeRounds adds k rounds for a step whose communication is accounted
// analytically (e.g. propagating a mark down a depth-k cluster tree, where
// building the explicit per-hop messages adds nothing to the measurement).
func (net *Network) ChargeRounds(k int) {
	if k < 0 {
		panic("sim: negative round charge")
	}
	net.rounds += k
}

// Rounds returns the total rounds charged so far.
func (net *Network) Rounds() int { return net.rounds }

// Stats summarizes the traffic so far.
type Stats struct {
	Rounds   int
	Messages int64
	Bits     int64
}

// Stats returns a snapshot of the accounting counters.
func (net *Network) Stats() Stats {
	return Stats{Rounds: net.rounds, Messages: net.messages, Bits: net.bits}
}

// ResetCounters zeroes rounds/messages/bits (e.g. to separate preprocessing
// from per-instance costs as in Theorem 1.3).
func (net *Network) ResetCounters() {
	net.rounds = 0
	net.messages = 0
	net.bits = 0
}

// BitsForID returns the bits needed to name one of n items: ⌈log₂ n⌉,
// at least 1.
func BitsForID(n int) int {
	if n <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// BitsForInt returns the bits for a non-negative integer bounded by maxVal.
func BitsForInt(maxVal int64) int {
	if maxVal <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(maxVal + 1))))
}

// BitsForFloat returns the message size used for a real value communicated
// with relative precision eps and magnitude bound u: O(log(u/eps)) bits
// (Theorem 1.3 charges O(log(nU/ε)) bits per vector coordinate).
func BitsForFloat(u, eps float64) int {
	if u <= 0 {
		u = 1
	}
	if eps <= 0 || eps >= 1 {
		eps = 1e-9
	}
	return int(math.Ceil(math.Log2(u/eps))) + 2
}
