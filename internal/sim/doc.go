// Package sim provides a deterministic synchronous round simulator for
// the two message-passing models of the paper (Section 2.1):
//
//   - Broadcast CONGEST: each vertex sends one B-bit message per round
//     that all of its *graph neighbors* receive.
//   - Broadcast Congested Clique (BCC): each vertex sends one B-bit
//     message per round that *every* vertex receives (equivalently,
//     appends to a shared blackboard).
//
// Algorithms interact with the simulator in communication phases: between
// BeginPhase and EndPhase every vertex queues the broadcasts it wants to
// make; EndPhase charges the phase max_v ⌈(bits queued by v)/B⌉ rounds —
// vertices send in parallel, and a vertex with k·B bits to broadcast
// needs k rounds — and delivers the messages to the receivers' inboxes.
// Local computation is free, exactly as in the model.
//
// The simulator is an accounting device, not an enforcement sandbox: the
// algorithms in this repository are written so that a vertex only acts on
// its own state plus received messages, and the tests verify knowledge
// consistency (e.g. both endpoints of an edge reach the same conclusion
// from broadcasts alone).
//
// Invariants:
//
//   - Determinism: round counts are a pure function of the queued
//     broadcasts — no wall-clock, no goroutines — so every experiment's
//     measured-vs-claimed table is reproducible.
//   - One Network serves one solver session at a time: the phase state is
//     unsynchronized by design (one network, one round structure).
//     Attaching a network to a pooled solver would interleave round
//     accounting, so the session layer rejects WithNetwork together with
//     WithPoolSize at construction.
package sim
