package spanner

import "bcclap/internal/graph"

// BundleResult is the output of Bundle (Algorithm 3).
type BundleResult struct {
	// B is the t-bundle: the union of the spanner edge sets F⁺_1..F⁺_t.
	B []int
	// C is the union of the deleted edge sets F⁻_1..F⁻_t.
	C []int
	// OutDeg accumulates the per-vertex spanner orientation counts.
	OutDeg []int
	// Layers holds the per-iteration Spanner results, in order.
	Layers []*Result
}

// Bundle implements BundleSpanner(V, E, w, p, k, t) (Algorithm 3): t
// successive Spanner runs, each on the still-undecided edges of the
// previous one. By Lemma 3.1 the union B is a t-bundle of (2k−1)-spanners
// with |B| = O(t·k·n^{1+1/k}) edges in expectation, computed in
// O(t·k·n^{1/k}(log n + log W)) rounds (Lemma 3.2 applied t times).
//
// alive masks which of g's edges participate (nil means all); it is not
// modified. p gives per-edge existence probabilities (nil means all 1).
func Bundle(g *graph.Graph, alive []bool, p []float64, k, t int, opts Options) *BundleResult {
	m := g.M()
	cur := make([]bool, m)
	if alive == nil {
		for e := range cur {
			cur[e] = true
		}
	} else {
		copy(cur, alive)
	}
	out := &BundleResult{OutDeg: make([]int, g.N())}
	for i := 0; i < t; i++ {
		res := Run(g, cur, p, k, opts)
		out.Layers = append(out.Layers, res)
		out.B = append(out.B, res.FPlus...)
		out.C = append(out.C, res.FMinus...)
		for v, d := range res.OutDeg {
			out.OutDeg[v] += d
		}
		for _, e := range res.FPlus {
			cur[e] = false
		}
		for _, e := range res.FMinus {
			cur[e] = false
		}
	}
	return out
}
