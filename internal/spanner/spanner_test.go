package spanner

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
)

func optsWithSeeds(mark, edge int64) Options {
	return Options{
		MarkRand: rand.New(rand.NewSource(mark)),
		EdgeRand: rand.New(rand.NewSource(edge)),
	}
}

func allOnes(m int) []float64 {
	p := make([]float64, m)
	for i := range p {
		p[i] = 1
	}
	return p
}

// TestDeterministicStretch verifies Lemma 3.1's stretch bound in the
// deterministic case p ≡ 1, where the algorithm must behave as Baswana–Sen:
// the output F⁺ is a (2k−1)-spanner of the whole input graph (F⁻ = ∅).
func TestDeterministicStretch(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	graphs := map[string]*graph.Graph{
		"grid":     graph.Grid(5, 5),
		"complete": graph.Complete(12),
		"random":   graph.RandomConnected(20, 0.3, 6, rnd),
		"cycle":    graph.Cycle(14),
	}
	for name, g := range graphs {
		for _, k := range []int{1, 2, 3} {
			for seed := int64(0); seed < 3; seed++ {
				res := Run(g, nil, nil, k, optsWithSeeds(seed, seed+100))
				if len(res.FMinus) != 0 {
					t.Fatalf("%s k=%d: p=1 produced F⁻ of size %d", name, k, len(res.FMinus))
				}
				s := g.Subgraph(res.FPlus)
				if st := graph.Stretch(g, s); st > float64(2*k-1)+1e-9 {
					t.Fatalf("%s k=%d seed=%d: stretch %v > %d", name, k, seed, st, 2*k-1)
				}
			}
		}
	}
}

// TestPartitionInvariant: F⁺ and F⁻ are disjoint and cover exactly the
// decided edges.
func TestPartitionInvariant(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	g := graph.RandomConnected(24, 0.3, 4, rnd)
	p := make([]float64, g.M())
	for i := range p {
		p[i] = 0.5
	}
	res := Run(g, nil, p, 3, optsWithSeeds(1, 2))
	seen := make(map[int]string)
	for _, e := range res.FPlus {
		seen[e] = "+"
	}
	for _, e := range res.FMinus {
		if seen[e] == "+" {
			t.Fatalf("edge %d in both F⁺ and F⁻", e)
		}
		seen[e] = "-"
	}
}

// TestImplicitDeductionConsistency verifies the paper's core communication
// claim: the per-vertex sets built only from local decisions plus broadcast
// deductions agree across endpoints — u ∈ F_v ⟺ (u,v) ∈ F for all u, v.
func TestImplicitDeductionConsistency(t *testing.T) {
	rnd := rand.New(rand.NewSource(29))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomConnected(18, 0.35, 5, rnd)
		p := make([]float64, g.M())
		for i := range p {
			p[i] = []float64{0.25, 0.5, 0.9}[trial%3]
		}
		res := Run(g, nil, p, 2+trial%3, optsWithSeeds(int64(trial), int64(trial)+50))
		inPlus := make(map[int]bool)
		for _, e := range res.FPlus {
			inPlus[e] = true
		}
		inMinus := make(map[int]bool)
		for _, e := range res.FMinus {
			inMinus[e] = true
		}
		for e := 0; e < g.M(); e++ {
			ed := g.Edge(e)
			pu, pv := res.FPlusV[ed.U][e], res.FPlusV[ed.V][e]
			mu, mv := res.FMinusV[ed.U][e], res.FMinusV[ed.V][e]
			if (pu || pv) != inPlus[e] {
				t.Fatalf("trial %d edge %d: endpoint F⁺ views (%v,%v) vs truth %v", trial, e, pu, pv, inPlus[e])
			}
			if mu != inMinus[e] || mv != inMinus[e] {
				t.Fatalf("trial %d edge %d: endpoint F⁻ views (%v,%v) vs truth %v", trial, e, mu, mv, inMinus[e])
			}
			if inPlus[e] && !(pu && pv) {
				t.Fatalf("trial %d edge %d: F⁺ not known to both endpoints", trial, e)
			}
		}
	}
}

// TestCouplingLemma31 replays the proof of Lemma 3.1: running the algorithm
// again with p ≡ 1 on F⁺ ∪ E″ (same cluster-marking randomness) reproduces
// exactly F⁺ with an empty F⁻.
func TestCouplingLemma31(t *testing.T) {
	rnd := rand.New(rand.NewSource(31))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomConnected(16, 0.4, 3, rnd)
		m := g.M()
		p := make([]float64, m)
		for i := range p {
			p[i] = 0.4
		}
		k := 2 + trial%2
		markSeed := int64(1000 + trial)
		resA := Run(g, nil, p, k, optsWithSeeds(markSeed, int64(trial)))

		decided := make(map[int]bool)
		inPlus := make(map[int]bool)
		for _, e := range resA.FPlus {
			decided[e] = true
			inPlus[e] = true
		}
		for _, e := range resA.FMinus {
			decided[e] = true
		}
		// E″: random subset of the undecided edges.
		alive := make([]bool, m)
		for e := 0; e < m; e++ {
			switch {
			case inPlus[e]:
				alive[e] = true
			case decided[e]:
				alive[e] = false
			default:
				alive[e] = rnd.Float64() < 0.5
			}
		}
		resB := Run(g, alive, nil, k, optsWithSeeds(markSeed, int64(trial)+7))
		if len(resB.FMinus) != 0 {
			t.Fatalf("trial %d: coupled rerun deleted edges", trial)
		}
		gotPlus := make(map[int]bool)
		for _, e := range resB.FPlus {
			gotPlus[e] = true
		}
		if len(gotPlus) != len(inPlus) {
			t.Fatalf("trial %d: |F⁺| differs: %d vs %d", trial, len(gotPlus), len(inPlus))
		}
		for e := range inPlus {
			if !gotPlus[e] {
				t.Fatalf("trial %d: edge %d in A's F⁺ but not B's", trial, e)
			}
		}
	}
}

// TestProbabilisticStretch verifies Lemma 3.1's statement for p < 1:
// S = (V, F⁺) is a (2k−1)-spanner of (V, F⁺ ∪ E″) for random E″ ⊆ E∖F.
func TestProbabilisticStretch(t *testing.T) {
	rnd := rand.New(rand.NewSource(37))
	for trial := 0; trial < 6; trial++ {
		g := graph.RandomConnected(15, 0.4, 4, rnd)
		p := make([]float64, g.M())
		for i := range p {
			p[i] = 0.5
		}
		k := 2
		res := Run(g, nil, p, k, optsWithSeeds(int64(trial), int64(trial*3)))
		decided := make(map[int]bool)
		for _, e := range res.FPlus {
			decided[e] = true
		}
		for _, e := range res.FMinus {
			decided[e] = true
		}
		var union []int
		union = append(union, res.FPlus...)
		for e := 0; e < g.M(); e++ {
			if !decided[e] && rnd.Float64() < 0.5 {
				union = append(union, e)
			}
		}
		whole := g.Subgraph(union)
		span := g.Subgraph(res.FPlus)
		if st := graph.Stretch(whole, span); st > float64(2*k-1)+1e-9 {
			t.Fatalf("trial %d: stretch %v > %d", trial, st, 2*k-1)
		}
	}
}

// TestSingleEdgeAcceptanceRate: on a single probabilistic edge the decided
// outcome must be F⁺ with probability p (the heart of the sampling
// correctness).
func TestSingleEdgeAcceptanceRate(t *testing.T) {
	g := graph.New(2)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	const pEdge = 0.3
	const trials = 4000
	accepted := 0
	for i := 0; i < trials; i++ {
		res := Run(g, nil, []float64{pEdge}, 1, optsWithSeeds(int64(i), int64(i)+9999))
		switch {
		case len(res.FPlus) == 1 && len(res.FMinus) == 0:
			accepted++
		case len(res.FPlus) == 0 && len(res.FMinus) == 1:
		default:
			t.Fatalf("edge left undecided or double-decided: +%d -%d", len(res.FPlus), len(res.FMinus))
		}
	}
	rate := float64(accepted) / trials
	if math.Abs(rate-pEdge) > 0.03 {
		t.Fatalf("acceptance rate %v, want ≈ %v", rate, pEdge)
	}
}

// TestSpannerSizeBound checks |F⁺| = O(k·n^{1+1/k}) with a generous
// constant on a dense graph.
func TestSpannerSizeBound(t *testing.T) {
	g := graph.Complete(40)
	k := 3
	var total float64
	const runs = 5
	for seed := int64(0); seed < runs; seed++ {
		res := Run(g, nil, nil, k, optsWithSeeds(seed, seed))
		total += float64(len(res.FPlus))
	}
	avg := total / runs
	n := float64(g.N())
	bound := 8 * float64(k) * math.Pow(n, 1+1/float64(k))
	if avg > bound {
		t.Fatalf("average spanner size %v exceeds O(k n^{1+1/k}) bound %v", avg, bound)
	}
	if avg >= float64(g.M()) {
		t.Fatalf("spanner did not compress K40 at all: %v edges of %d", avg, g.M())
	}
}

// TestRoundAccounting: the simulator must charge rounds, and the charge
// should scale with k·n^{1/k} structure rather than m (Lemma 3.2).
func TestRoundAccounting(t *testing.T) {
	g := graph.Complete(24)
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
	if err != nil {
		t.Fatal(err)
	}
	opts := optsWithSeeds(3, 4)
	opts.Net = net
	res := Run(g, nil, nil, 3, opts)
	if net.Rounds() == 0 {
		t.Fatal("no rounds charged")
	}
	if len(res.FPlus) == 0 {
		t.Fatal("empty spanner")
	}
	// The spanner of a connected graph must keep it connected.
	if !g.Subgraph(res.FPlus).Connected() {
		t.Fatal("spanner disconnected the graph")
	}
}

// TestBundleDisjointLayers: every edge decided by layer i is excluded from
// later layers, and B is a union of spanners each of stretch 2k−1 in the
// residual graph.
func TestBundleDisjointLayers(t *testing.T) {
	rnd := rand.New(rand.NewSource(41))
	g := graph.RandomConnected(20, 0.5, 3, rnd)
	res := Bundle(g, nil, nil, 2, 3, optsWithSeeds(5, 6))
	if len(res.Layers) != 3 {
		t.Fatalf("layers = %d", len(res.Layers))
	}
	seen := make(map[int]int)
	for li, layer := range res.Layers {
		for _, e := range append(append([]int{}, layer.FPlus...), layer.FMinus...) {
			if prev, ok := seen[e]; ok {
				t.Fatalf("edge %d decided in layers %d and %d", e, prev, li)
			}
			seen[e] = li
		}
	}
	if len(res.B) == 0 {
		t.Fatal("empty bundle")
	}
}

// TestOutDegreeOrientation: Lemma 3.1 gives an orientation with expected
// out-degree O(k·n^{1/k}); check the max out-degree is far below the max
// degree on a complete graph.
func TestOutDegreeOrientation(t *testing.T) {
	g := graph.Complete(30)
	res := Run(g, nil, nil, 3, optsWithSeeds(7, 8))
	sum := 0
	maxOut := 0
	for _, d := range res.OutDeg {
		sum += d
		if d > maxOut {
			maxOut = d
		}
	}
	if sum != len(res.FPlus) {
		t.Fatalf("orientation covers %d, |F⁺| = %d", sum, len(res.FPlus))
	}
	if maxOut > g.N()/2 {
		t.Fatalf("max out-degree %d suspiciously high", maxOut)
	}
}

func TestKOneReturnsWholeGraph(t *testing.T) {
	g := graph.Grid(3, 4)
	res := Run(g, nil, nil, 1, optsWithSeeds(1, 1))
	if len(res.FPlus) != g.M() {
		t.Fatalf("k=1 spanner has %d edges, want all %d", len(res.FPlus), g.M())
	}
}
