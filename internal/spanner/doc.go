// Package spanner implements the spanner algorithms of the paper:
//
//   - the classic Baswana–Sen (2k−1)-spanner in the formulation of
//     Becker et al. (Appendix A of the paper), and
//   - the paper's novel Spanner(V, E, w, p, k) for graphs with
//     *probabilistic edges* (Section 3.1), where each edge e exists with
//     probability p_e, existence is sampled on the fly by exactly one
//     endpoint inside the Connect procedure, and the other endpoint
//     deduces the outcome implicitly from the broadcast — the key trick
//     that makes spectral sparsification possible in the Broadcast
//     CONGEST model.
//
// The output is a partition of the decided edges F = F⁺ ⊎ F⁻ such that
// every e ∈ F landed in F⁺ independently with probability p_e, and
// S = (V, F⁺) is a (2k−1)-spanner of (V, F⁺ ∪ E″) for every E″ ⊆ E \ F
// (Lemma 3.1).
//
// Invariants:
//
//   - Knowledge consistency: both endpoints of an edge reach the same
//     existence decision from broadcasts alone (tested); no hidden shared
//     state exists outside the simulator's message log.
//   - Determinism in the supplied rand streams: MarkRand and EdgeRand
//     fully determine the run, so experiments replay bit for bit.
package spanner
