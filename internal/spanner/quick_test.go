package spanner

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bcclap/internal/graph"
)

// Property-based test over random (graph, p, k, seed) tuples: every run
// must satisfy the structural invariants of Lemma 3.1 —
//  1. F⁺ ∩ F⁻ = ∅,
//  2. both endpoints agree on every edge's fate,
//  3. the orientation covers F⁺ exactly,
//  4. with p ≡ 1, nothing is ever deleted.
func TestSpannerInvariantsQuick(t *testing.T) {
	prop := func(seed int64, pTenths uint8, kRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 6 + rnd.Intn(10)
		g := graph.RandomConnected(n, 0.4, 3, rnd)
		k := 1 + int(kRaw)%3
		pVal := float64(pTenths%11) / 10
		var p []float64
		if pVal < 1 {
			p = make([]float64, g.M())
			for i := range p {
				p[i] = pVal
			}
		}
		res := Run(g, nil, p, k, Options{
			MarkRand: rand.New(rand.NewSource(seed + 1)),
			EdgeRand: rand.New(rand.NewSource(seed + 2)),
		})
		inPlus := make(map[int]bool)
		for _, e := range res.FPlus {
			inPlus[e] = true
		}
		for _, e := range res.FMinus {
			if inPlus[e] {
				return false // (1)
			}
		}
		if p == nil && len(res.FMinus) != 0 {
			return false // (4)
		}
		orient := 0
		for _, d := range res.OutDeg {
			orient += d
		}
		if orient != len(res.FPlus) {
			return false // (3)
		}
		inMinus := make(map[int]bool)
		for _, e := range res.FMinus {
			inMinus[e] = true
		}
		for e := 0; e < g.M(); e++ {
			ed := g.Edge(e)
			if res.FMinusV[ed.U][e] != inMinus[e] || res.FMinusV[ed.V][e] != inMinus[e] {
				return false // (2)
			}
			if inPlus[e] && !(res.FPlusV[ed.U][e] && res.FPlusV[ed.V][e]) {
				return false // (2)
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the spanner of a connected input is connected whenever p ≡ 1
// (a (2k−1)-spanner preserves all distances up to a factor, hence
// connectivity).
func TestSpannerConnectivityQuick(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 5 + rnd.Intn(12)
		g := graph.RandomConnected(n, 0.5, 2, rnd)
		k := 1 + int(kRaw)%4
		res := Run(g, nil, nil, k, Options{
			MarkRand: rand.New(rand.NewSource(seed * 3)),
			EdgeRand: rand.New(rand.NewSource(seed*3 + 1)),
		})
		return g.Subgraph(res.FPlus).Connected()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Bundle layers never re-decide an edge and their union is
// exactly B ∪ C.
func TestBundleInvariantsQuick(t *testing.T) {
	prop := func(seed int64, tRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 6 + rnd.Intn(8)
		g := graph.RandomConnected(n, 0.5, 2, rnd)
		tb := 1 + int(tRaw)%3
		res := Bundle(g, nil, nil, 2, tb, Options{
			MarkRand: rand.New(rand.NewSource(seed + 9)),
			EdgeRand: rand.New(rand.NewSource(seed + 10)),
		})
		seen := make(map[int]bool)
		total := 0
		for _, layer := range res.Layers {
			for _, e := range append(append([]int{}, layer.FPlus...), layer.FMinus...) {
				if seen[e] {
					return false
				}
				seen[e] = true
				total++
			}
		}
		return total == len(res.B)+len(res.C)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
