package spanner

import (
	"math"
	"math/rand"
	"sort"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
)

// Options configures a Spanner run.
type Options struct {
	// MarkRand supplies the cluster-marking coin flips (Step 1). Keeping it
	// separate from EdgeRand lets tests couple the marking randomness across
	// runs, exactly as the proof of Lemma 3.1 does ("our assumption is that
	// these random bits are the same for both algorithms").
	MarkRand *rand.Rand
	// EdgeRand supplies the edge-existence samples inside Connect.
	EdgeRand *rand.Rand
	// Net, if non-nil, receives the round accounting (Broadcast CONGEST or
	// BCC). Nil runs the algorithm without accounting.
	Net *sim.Network
}

// Result is the output of a Spanner run.
type Result struct {
	// FPlus are the edge indices placed in F⁺ (the spanner edges; they
	// exist).
	FPlus []int
	// FMinus are the edge indices placed in F⁻ (sampled non-existent).
	FMinus []int
	// OutDeg[v] counts spanner edges oriented out of v (Lemma 3.1's
	// orientation: the vertex whose Connect call added the edge).
	OutDeg []int
	// FPlusV and FMinusV are the per-vertex views built *only* from local
	// decisions and broadcast deductions; tests verify they are consistent
	// across endpoints (the paper's "implicitly learning" claim).
	FPlusV  []map[int]bool
	FMinusV []map[int]bool
}

// run carries the mutable state of one Spanner execution.
type run struct {
	g     *graph.Graph
	p     []float64
	k     int
	opts  Options
	n     int
	wBits int
	idB   int
	eidB  int

	alive     []bool // edge considered at all (input subgraph mask)
	added     []bool // edge ∈ F⁺
	deleted   []bool // edge ∈ F⁻
	clusterOf []int  // center vertex of v's current cluster, or -1
	joins     []int  // pending cluster joins, applied at end of phase
	// wThresh[v] is the lexicographic (weight, neighbor ID, edge) key of
	// the edge v used to join a marked cluster in Step 2 of the current
	// phase; Step 3 only considers candidates strictly below it, matching
	// Baswana–Sen's "all edges lighter than the joining edge, ties broken
	// by neighbor identifiers".
	wThresh []candidate

	res *Result
}

// broadcastMsg is the payload of the connect broadcasts. In the paper the
// message is (ID(X), u, w(u,v)) or (ID(X), ⊥); we additionally carry the
// edge index to disambiguate parallel edges in multigraphs (log m extra
// bits, charged).
type broadcastMsg struct {
	from      int
	targetID  int // cluster ID the broadcast refers to (-1 in step 2)
	accepted  int // accepted edge index, or -1 for ⊥
	acceptedU int
	w         float64
	wlimit    float64 // W^(i)_v, piggybacked in step 2
}

// Run executes Spanner(V, E|alive, w, p, k). alive masks the edge set (nil
// means all edges); p gives per-edge existence probabilities (nil means all
// 1, which reduces the algorithm to Baswana–Sen). k ≥ 1 yields stretch
// 2k−1.
func Run(g *graph.Graph, alive []bool, p []float64, k int, opts Options) *Result {
	if k < 1 {
		panic("spanner: k must be >= 1")
	}
	if opts.MarkRand == nil {
		opts.MarkRand = rand.New(rand.NewSource(1))
	}
	if opts.EdgeRand == nil {
		opts.EdgeRand = rand.New(rand.NewSource(2))
	}
	n, m := g.N(), g.M()
	r := &run{
		g: g, p: p, k: k, opts: opts, n: n,
		alive:     make([]bool, m),
		added:     make([]bool, m),
		deleted:   make([]bool, m),
		clusterOf: make([]int, n),
		joins:     make([]int, n),
		wThresh:   make([]candidate, n),
		res: &Result{
			OutDeg:  make([]int, n),
			FPlusV:  make([]map[int]bool, n),
			FMinusV: make([]map[int]bool, n),
		},
	}
	for v := 0; v < n; v++ {
		r.clusterOf[v] = v
		r.res.FPlusV[v] = make(map[int]bool)
		r.res.FMinusV[v] = make(map[int]bool)
	}
	if alive == nil {
		for e := range r.alive {
			r.alive[e] = true
		}
	} else {
		copy(r.alive, alive)
	}
	r.idB = sim.BitsForID(n)
	r.eidB = sim.BitsForID(m + 1)
	maxW := g.MaxWeight()
	r.wBits = sim.BitsForInt(int64(math.Ceil(maxW)))

	markProb := math.Pow(float64(n), -1/float64(k))

	marked := make(map[int]bool)
	active := make(map[int]bool, n) // centers of R_i
	for v := 0; v < n; v++ {
		active[v] = true
	}

	for phase := 1; phase <= k-1; phase++ {
		// Step 1: each active cluster center marks itself with probability
		// n^(-1/k) and floods the result down its cluster tree (depth ≤
		// phase, charged analytically).
		marked = make(map[int]bool)
		centers := sortedKeys(active)
		for _, c := range centers {
			if r.opts.MarkRand.Float64() < markProb {
				marked[c] = true
			}
		}
		if r.opts.Net != nil {
			r.opts.Net.ChargeRounds(phase)
		}

		// Step 2: vertices in unmarked clusters try to connect to a marked
		// cluster; one broadcast each, carrying W^(i)_v.
		for v := range r.wThresh {
			r.wThresh[v] = infCandidate()
		}
		for v := range r.joins {
			r.joins[v] = -1
		}
		r.step2(marked)

		// Step 3: connections between unmarked clusters, split by cluster
		// ID so no edge has two simultaneous deciders.
		r.step3(marked, true)  // 3.1: targets with smaller ID
		r.step3(marked, false) // 3.2: targets with bigger ID

		// End of phase: apply joins; vertices of unmarked clusters that did
		// not join become unclustered.
		for v := 0; v < n; v++ {
			switch {
			case r.joins[v] >= 0:
				r.clusterOf[v] = r.joins[v]
			case r.clusterOf[v] >= 0 && !marked[r.clusterOf[v]]:
				r.clusterOf[v] = -1
			}
		}
		active = marked
	}

	// Step 4: connect everything to the remaining clusters R_k.
	r.step4(active)

	for e := 0; e < m; e++ {
		if r.added[e] {
			r.res.FPlus = append(r.res.FPlus, e)
		}
		if r.deleted[e] {
			r.res.FMinus = append(r.res.FMinus, e)
		}
	}
	return r.res
}

// pEff is the effective existence probability of an edge: 1 once it has
// been added to F⁺ (its existence is decided), p_e otherwise.
func (r *run) pEff(e int) float64 {
	if r.added[e] {
		return 1
	}
	if r.p == nil {
		return 1
	}
	return r.p[e]
}

// candidate orders edges the way Connect sorts them: ascending weight,
// ties by neighbor ID, then edge index (the extra tiebreak handles parallel
// edges).
type candidate struct {
	e, u int
	w    float64
}

func (c candidate) less(d candidate) bool {
	if c.w != d.w {
		return c.w < d.w
	}
	if c.u != d.u {
		return c.u < d.u
	}
	return c.e < d.e
}

// infCandidate is the threshold used when a vertex joined no marked cluster
// (W^(i)_v = ∞): every candidate passes the Step 3 filter.
func infCandidate() candidate {
	return candidate{e: math.MaxInt32, u: math.MaxInt32, w: math.Inf(1)}
}

// connect is the Connect procedure (Algorithm 2): walk the sorted
// candidates, sample each, accept the first that exists.
func (r *run) connect(cands []candidate) (acc candidate, ok bool, rejected []candidate) {
	sort.Slice(cands, func(i, j int) bool { return cands[i].less(cands[j]) })
	for _, c := range cands {
		if r.opts.EdgeRand.Float64() <= r.pEff(c.e) {
			return c, true, rejected
		}
		rejected = append(rejected, c)
	}
	return candidate{}, false, rejected
}

// decide applies the decider-side outcome of a Connect call by vertex v.
func (r *run) decide(v int, acc candidate, ok bool, rejected []candidate) {
	for _, c := range rejected {
		r.deleted[c.e] = true
		r.res.FMinusV[v][c.e] = true
	}
	if ok {
		if !r.added[acc.e] {
			r.added[acc.e] = true
			r.res.OutDeg[v]++
		}
		r.res.FPlusV[v][acc.e] = true
	}
}

// deduce applies the neighbor-side rules: x, holding candidate c toward the
// decider msg.from, concludes from the broadcast alone whether its edge was
// accepted, rejected, or untouched (the three rules under Step 2/3 in the
// paper, with the edge-index tiebreak).
func (r *run) deduce(x int, c candidate, msg broadcastMsg) {
	if msg.accepted < 0 {
		// Rule 1: the decider broadcast ⊥ — every candidate was rejected.
		r.res.FMinusV[x][c.e] = true
		return
	}
	if msg.accepted == c.e {
		r.res.FPlusV[x][c.e] = true
		return
	}
	accepted := candidate{e: msg.accepted, u: msg.acceptedU, w: msg.w}
	// The decider's view of the accepted candidate names the *other*
	// endpoint; from x's side the comparison key for its own edge uses x's
	// ID, and for the accepted edge the broadcast neighbor ID.
	if c.less(accepted) {
		// Rules 2–3: x's edge precedes the accepted one in Connect's order,
		// so it must have been sampled and rejected.
		r.res.FMinusV[x][c.e] = true
	}
}

// broadcastCost returns the bit size of a connect broadcast.
func (r *run) broadcastCost(bot bool) int {
	if bot {
		return r.idB + 1 + r.wBits
	}
	return 2*r.idB + r.eidB + r.wBits
}

// step2 implements Step 2 of each phase: vertices in unmarked clusters
// connect to marked clusters.
func (r *run) step2(marked map[int]bool) {
	n := r.n
	if r.opts.Net != nil {
		r.opts.Net.BeginPhase()
	}
	type decision struct {
		v    int
		msg  broadcastMsg
		acc  candidate
		ok   bool
		rejs []candidate
	}
	var decisions []decision
	// Candidate sets are evaluated against the state at the start of the
	// synchronous step.
	liveAtStart := make([]bool, r.g.M())
	for e := range liveAtStart {
		liveAtStart[e] = r.alive[e] && !r.deleted[e]
	}
	for v := 0; v < n; v++ {
		cv := r.clusterOf[v]
		if cv < 0 || marked[cv] {
			continue
		}
		// N: undeleted incident edges whose other endpoint lies in a marked
		// cluster.
		var cands []candidate
		for _, e := range r.g.IncidentEdges(v) {
			if !liveAtStart[e] {
				continue
			}
			u := r.g.Other(e, v)
			cu := r.clusterOf[u]
			if cu >= 0 && marked[cu] {
				cands = append(cands, candidate{e: e, u: u, w: r.g.Edge(e).W})
			}
		}
		acc, ok, rejs := r.connect(cands)
		msg := broadcastMsg{from: v, targetID: -1, accepted: -1, wlimit: math.Inf(1)}
		if ok {
			msg.accepted = acc.e
			msg.acceptedU = acc.u
			msg.w = acc.w
			msg.wlimit = acc.w
			r.joins[v] = r.clusterOf[acc.u]
		}
		if ok {
			r.wThresh[v] = acc
		} else {
			r.wThresh[v] = infCandidate()
		}
		decisions = append(decisions, decision{v: v, msg: msg, acc: acc, ok: ok, rejs: rejs})
		if r.opts.Net != nil {
			r.opts.Net.Broadcast(v, r.broadcastCost(!ok), msg)
		}
	}
	if r.opts.Net != nil {
		r.opts.Net.EndPhase()
	}
	// Apply decisions and neighbor deductions synchronously.
	for _, d := range decisions {
		r.decide(d.v, d.acc, d.ok, d.rejs)
	}
	for _, d := range decisions {
		v := d.v
		for _, e := range r.g.IncidentEdges(v) {
			if !liveAtStart[e] {
				continue
			}
			u := r.g.Other(e, v)
			cu := r.clusterOf[u]
			if cu < 0 || !marked[cu] {
				continue
			}
			r.deduce(u, candidate{e: e, u: u, w: r.g.Edge(e).W}, d.msg)
		}
	}
}

// step3 implements Steps 3.1 (smallerID=true) and 3.2 (smallerID=false):
// vertices in unmarked clusters connect to neighboring unmarked clusters,
// restricted to edges with weight ≤ W^(i)_v.
func (r *run) step3(marked map[int]bool, smallerID bool) {
	r.clusterConnectStep(
		func(v int) (bool, int) { // decider: vertex in an unmarked cluster
			cv := r.clusterOf[v]
			if cv < 0 || marked[cv] {
				return false, 0
			}
			return true, cv
		},
		func(v, cu int) bool { // target filter: unmarked neighbor clusters by ID side
			cv := r.clusterOf[v]
			if cu < 0 || marked[cu] || cu == cv {
				return false
			}
			if smallerID {
				return cu < cv
			}
			return cu > cv
		},
		true, // apply the W^(i)_v filter
	)
}

// step4 implements Step 4: after the k−1 phases, connect every vertex to
// each neighboring remaining cluster in R_k, in three conflict-free
// substeps.
func (r *run) step4(active map[int]bool) {
	// 4.1: unclustered vertices connect to every neighboring remaining
	// cluster.
	r.clusterConnectStep(
		func(v int) (bool, int) { return r.clusterOf[v] < 0, -1 },
		func(v, cu int) bool { return cu >= 0 && active[cu] },
		false,
	)
	// 4.2: clustered vertices toward remaining clusters with smaller ID.
	r.clusterConnectStep(
		func(v int) (bool, int) {
			cv := r.clusterOf[v]
			return cv >= 0 && active[cv], cv
		},
		func(v, cu int) bool {
			cv := r.clusterOf[v]
			return cu >= 0 && active[cu] && cu < cv
		},
		false,
	)
	// 4.3: clustered vertices toward remaining clusters with bigger ID.
	r.clusterConnectStep(
		func(v int) (bool, int) {
			cv := r.clusterOf[v]
			return cv >= 0 && active[cv], cv
		},
		func(v, cu int) bool {
			cv := r.clusterOf[v]
			return cu >= 0 && active[cu] && cu > cv
		},
		false,
	)
}

// clusterConnectStep runs one synchronous substep in which each decider
// vertex v runs Connect once per eligible target cluster, broadcasts the
// outcome, and neighbors deduce their edges' fates.
func (r *run) clusterConnectStep(isDecider func(int) (bool, int), isTarget func(v, cu int) bool, wFilter bool) {
	n := r.n
	if r.opts.Net != nil {
		r.opts.Net.BeginPhase()
	}
	type decision struct {
		v    int
		msg  broadcastMsg
		acc  candidate
		ok   bool
		rejs []candidate
	}
	var decisions []decision
	// Candidate sets are computed against the state at the start of the
	// substep (synchronous model): snapshot deletions.
	liveAtStart := make([]bool, r.g.M())
	for e := range liveAtStart {
		liveAtStart[e] = r.alive[e] && !r.deleted[e]
	}
	for v := 0; v < n; v++ {
		dec, _ := isDecider(v)
		if !dec {
			continue
		}
		// Group live incident edges by target cluster.
		byCluster := make(map[int][]candidate)
		for _, e := range r.g.IncidentEdges(v) {
			if !liveAtStart[e] {
				continue
			}
			u := r.g.Other(e, v)
			cu := r.clusterOf[u]
			if !isTarget(v, cu) {
				continue
			}
			c := candidate{e: e, u: u, w: r.g.Edge(e).W}
			if wFilter && !c.less(r.wThresh[v]) {
				continue
			}
			byCluster[cu] = append(byCluster[cu], c)
		}
		for _, cu := range sortedKeys2(byCluster) {
			cands := byCluster[cu]
			acc, ok, rejs := r.connect(cands)
			msg := broadcastMsg{from: v, targetID: cu, accepted: -1}
			if ok {
				msg.accepted = acc.e
				msg.acceptedU = acc.u
				msg.w = acc.w
			}
			decisions = append(decisions, decision{v: v, msg: msg, acc: acc, ok: ok, rejs: rejs})
			if r.opts.Net != nil {
				r.opts.Net.Broadcast(v, r.broadcastCost(!ok), msg)
			}
		}
	}
	if r.opts.Net != nil {
		r.opts.Net.EndPhase()
	}
	for _, d := range decisions {
		r.decide(d.v, d.acc, d.ok, d.rejs)
	}
	for _, d := range decisions {
		v := d.v
		for _, e := range r.g.IncidentEdges(v) {
			if !liveAtStart[e] {
				continue
			}
			u := r.g.Other(e, v)
			if r.clusterOf[u] != d.msg.targetID {
				continue
			}
			c := candidate{e: e, u: u, w: r.g.Edge(e).W}
			if wFilter && !c.less(r.wThresh[v]) {
				continue
			}
			r.deduce(u, c, d.msg)
		}
	}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedKeys2(m map[int][]candidate) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
