package lapsolver

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bcclap/internal/linalg"
)

// ErrNotSDD is returned when the Gremban reduction is given a matrix that
// is not symmetric diagonally dominant with non-positive off-diagonals.
var ErrNotSDD = errors.New("lapsolver: matrix is not SDD with non-positive off-diagonals")

// GrembanLaplacian builds the Laplacian reduction of Lemma 5.1 / Gremban:
// given a symmetric diagonally dominant n×n matrix M with non-positive
// off-diagonal entries (the AᵀDA of the flow LP has this form, since
// M_p = 0), it returns the edge list of a connected Laplacian on 2n
// vertices such that solving L[x₁;x₂] = [y;−y] yields M x = y with
// x = (x₁−x₂)/2.
//
// The virtual graph: the two copies u and u+n carry the edges of M's
// off-diagonal support with weight |M(u,v)|, and each vertex is tied to its
// mirror by an edge of weight C₂(u,u)/2, where C₂ = diag(M) − C₁ is the
// diagonal excess and C₁(u,u) = Σ_{v≠u} |M(u,v)|.
func GrembanLaplacian(m *linalg.Dense) ([]linalg.WEdge, error) {
	n := m.Rows()
	if m.Cols() != n {
		return nil, linalg.ErrDimension
	}
	var edges []linalg.WEdge
	for u := 0; u < n; u++ {
		var offAbs float64
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			muv := m.At(u, v)
			if muv > 1e-12 {
				return nil, fmt.Errorf("%w: positive off-diagonal M[%d][%d] = %g", ErrNotSDD, u, v, muv)
			}
			if math.Abs(muv-m.At(v, u)) > 1e-9*(1+math.Abs(muv)) {
				return nil, fmt.Errorf("%w: not symmetric at (%d,%d)", ErrNotSDD, u, v)
			}
			offAbs += math.Abs(muv)
			if v > u && muv < 0 {
				w := -muv
				edges = append(edges,
					linalg.WEdge{U: u, V: v, W: w},
					linalg.WEdge{U: u + n, V: v + n, W: w},
				)
			}
		}
		c2 := m.At(u, u) - offAbs
		if c2 < -1e-9*(1+math.Abs(m.At(u, u))) {
			return nil, fmt.Errorf("%w: row %d not diagonally dominant (excess %g)", ErrNotSDD, u, c2)
		}
		if c2 > 0 {
			edges = append(edges, linalg.WEdge{U: u, V: u + n, W: c2 / 2})
		}
	}
	return edges, nil
}

// LapSolveFunc solves a Laplacian system over an explicit edge list; it
// reports the inner iteration count so callers can aggregate per-solve
// statistics, and honors ctx for cancellation.
type LapSolveFunc func(ctx context.Context, edges []linalg.WEdge, nn int, b []float64) ([]float64, int, error)

// SDDSolve solves M x = y via the Gremban reduction, delegating the
// 2n-vertex Laplacian solve to lapSolve (for example CG, or the full
// Theorem 1.3 BCC solver — the paper simulates the doubled network by
// letting vertex i play both virtual vertices i and i+n, doubling the round
// count). The int return is the inner iteration count of the delegated
// solve.
func SDDSolve(ctx context.Context, m *linalg.Dense, y []float64, lapSolve LapSolveFunc) ([]float64, int, error) {
	n := m.Rows()
	if len(y) != n {
		return nil, 0, linalg.ErrDimension
	}
	edges, err := GrembanLaplacian(m)
	if err != nil {
		return nil, 0, err
	}
	b := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		b[i] = y[i]
		b[i+n] = -y[i]
	}
	sol, iters, err := lapSolve(ctx, edges, 2*n, b)
	if err != nil {
		return nil, iters, err
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = (sol[i] - sol[i+n]) / 2
	}
	return x, iters, nil
}

// NewCGLapSolver returns a lapSolve callback for SDDSolve: Jacobi-
// preconditioned conjugate gradients on the reduction Laplacian. The
// barrier-weighted matrices of the LP solver span many orders of magnitude,
// so diagonal preconditioning and a relaxed acceptance threshold (the IPM
// only needs poly(1/m) precision per the paper) keep the solves robust.
// The returned closure owns a workspace reused across calls (one closure
// per sequential solve stream; not safe for concurrent use).
func NewCGLapSolver() LapSolveFunc {
	ws := linalg.NewWorkspace()
	return func(ctx context.Context, edges []linalg.WEdge, nn int, b []float64) ([]float64, int, error) {
		lap := linalg.LaplacianOp{N: nn, Edges: edges}
		diag := ws.Get(nn)
		pb := ws.Get(nn)
		tmp := ws.Get(nn)
		x := ws.Get(nn)
		defer func() {
			ws.Put(diag)
			ws.Put(pb)
			ws.Put(tmp)
			ws.Put(x)
		}()
		for i := range diag {
			diag[i] = 0
		}
		for _, e := range edges {
			diag[e.U] += e.W
			diag[e.V] += e.W
		}
		for i, v := range diag {
			if v <= 0 {
				diag[i] = 1
			}
		}
		copy(pb, b)
		linalg.ProjectOutOnesInPlace(pb)
		op := linalg.FuncOp{R: nn, C: nn, Apply: func(dst, v []float64) {
			copy(tmp, v)
			linalg.ProjectOutOnesInPlace(tmp)
			lap.MulVecTo(dst, tmp)
			linalg.ProjectOutOnesInPlace(dst)
		}}
		precondTo := func(dst, r []float64) {
			for i := range r {
				dst[i] = r[i] / diag[i]
			}
			linalg.ProjectOutOnesInPlace(dst)
		}
		iters, err := linalg.CGTo(ctx, x, op, pb, 1e-10, 40*nn+4000, precondTo, ws)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, iters, err
			}
			// Accept the best iterate when it is precise enough for the IPM.
			ax := ws.Get(nn)
			op.MulVecTo(ax, x)
			res := linalg.Norm2(linalg.Sub(pb, ax))
			ws.Put(ax)
			if res > 1e-6*(1+linalg.Norm2(pb)) {
				return nil, iters, err
			}
		}
		// x is workspace-owned; hand the caller a fresh projected copy.
		return linalg.ProjectOutOnes(x), iters, nil
	}
}

// CGLapSolve is the one-shot form of NewCGLapSolver for callers outside a
// solve loop.
func CGLapSolve(ctx context.Context, edges []linalg.WEdge, nn int, b []float64) ([]float64, int, error) {
	return NewCGLapSolver()(ctx, edges, nn, b)
}
