package lapsolver

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
	"bcclap/internal/sim"
	"bcclap/internal/sparsify"
)

func randB(n int, rnd *rand.Rand) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	return linalg.ProjectOutOnes(b)
}

func TestSolveMeetsEpsilonGuarantee(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	graphs := []*graph.Graph{
		graph.Grid(5, 5),
		graph.RandomConnected(30, 0.2, 5, rnd),
		graph.Barbell(8),
	}
	for gi, g := range graphs {
		s, err := New(g, Config{Rand: rand.New(rand.NewSource(int64(gi)))})
		if err != nil {
			t.Fatal(err)
		}
		b := randB(g.N(), rnd)
		want, err := SolveExact(g, b)
		if err != nil {
			t.Fatal(err)
		}
		normX := math.Sqrt(linalg.LaplacianQuadForm(g.WEdges(), want))
		for _, eps := range []float64{0.5, 1e-2, 1e-6} {
			got, _, err := s.Solve(b, eps)
			if err != nil {
				t.Fatal(err)
			}
			if e := ErrorInLNorm(g, want, got); e > eps*normX*1.5 {
				t.Fatalf("graph %d eps %g: error %g > %g", gi, eps, e, eps*normX)
			}
		}
	}
}

func TestIterationsScaleWithLogEps(t *testing.T) {
	g := graph.Grid(4, 6)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	b := randB(g.N(), rand.New(rand.NewSource(2)))
	_, st1, err := s.Solve(b, 1e-2)
	if err != nil {
		t.Fatal(err)
	}
	_, st2, err := s.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Iterations <= st1.Iterations {
		t.Fatalf("iterations did not grow with precision: %d vs %d", st1.Iterations, st2.Iterations)
	}
	// O(√κ log(1/ε)) with κ=3: the ratio of iteration counts should be
	// roughly log(1e8)/log(1e2) = 4, certainly below 8.
	if float64(st2.Iterations) > 8*float64(st1.Iterations) {
		t.Fatalf("iteration growth %d -> %d superlogarithmic", st1.Iterations, st2.Iterations)
	}
}

func TestPreprocessingVsPerInstanceRounds(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(20, 0.3, 3, rnd)
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBCC})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, Config{Rand: rnd, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	if s.PreprocessRounds <= 0 {
		t.Fatal("no preprocessing rounds recorded")
	}
	b := randB(g.N(), rnd)
	_, st, err := s.Solve(b, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds <= 0 {
		t.Fatal("no per-instance rounds recorded")
	}
	// Theorem 1.3's point: per-instance cost is much smaller than
	// preprocessing.
	if st.Rounds >= s.PreprocessRounds {
		t.Fatalf("instance rounds %d not below preprocessing %d", st.Rounds, s.PreprocessRounds)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	g := graph.Path(4)
	s, err := New(g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve([]float64{1, 2}, 0.1); err == nil {
		t.Error("wrong-length b accepted")
	}
	if _, _, err := s.Solve(make([]float64, 4), 0.9); err == nil {
		t.Error("eps > 1/2 accepted")
	}
	if _, _, err := s.Solve(make([]float64, 4), 0); err == nil {
		t.Error("eps = 0 accepted")
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	if _, err := g.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, Config{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestSolverWithExplicitSparsifyParams(t *testing.T) {
	g := graph.Complete(20)
	s, err := New(g, Config{
		Sparsify: sparsify.Params{K: 3, T: 2, Iterations: 4},
		Rand:     rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Sparsifier().M() >= g.M() {
		t.Log("sparsifier did not compress (allowed, but unexpected on K20)")
	}
	b := randB(g.N(), rand.New(rand.NewSource(10)))
	want, err := SolveExact(g, b)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := s.Solve(b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	normX := math.Sqrt(linalg.LaplacianQuadForm(g.WEdges(), want))
	if e := ErrorInLNorm(g, want, got); e > 1e-5*normX {
		t.Fatalf("error %g", e)
	}
}

func TestGrembanLaplacianStructure(t *testing.T) {
	// M = Laplacian of a triangle + diag(1, 2, 3) — SDD with excess.
	lap := linalg.LaplacianCSR(3, []linalg.WEdge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3}}).Dense()
	for i := 0; i < 3; i++ {
		lap.Inc(i, i, float64(i+1))
	}
	edges, err := GrembanLaplacian(lap)
	if err != nil {
		t.Fatal(err)
	}
	// 3 original edges duplicated + 3 mirror ties = 9 edges.
	if len(edges) != 9 {
		t.Fatalf("got %d reduction edges, want 9", len(edges))
	}
	l := linalg.LaplacianCSR(6, edges)
	if nrm := linalg.Norm2(l.MulVec(linalg.Ones(6))); nrm > 1e-10 {
		t.Fatalf("reduction is not a Laplacian: L·1 = %g", nrm)
	}
}

func TestGrembanRejectsNonSDD(t *testing.T) {
	m := linalg.NewDenseFromRows([][]float64{{1, 0.5}, {0.5, 1}})
	if _, err := GrembanLaplacian(m); err == nil {
		t.Fatal("positive off-diagonal accepted")
	}
	m2 := linalg.NewDenseFromRows([][]float64{{1, -2}, {-2, 1}})
	if _, err := GrembanLaplacian(m2); err == nil {
		t.Fatal("non-dominant matrix accepted")
	}
}

func TestSDDSolveMatchesDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		n := 3 + rnd.Intn(8)
		// Random SDD: Laplacian of a random connected graph + positive diag.
		g := graph.RandomConnected(n, 0.5, 3, rnd)
		m := g.Laplacian().Dense()
		for i := 0; i < n; i++ {
			m.Inc(i, i, 0.1+rnd.Float64())
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		y := m.MulVec(want)
		got, _, err := SDDSolve(context.Background(), m, y, CGLapSolve)
		if err != nil {
			t.Fatal(err)
		}
		if d := linalg.Norm2(linalg.Sub(got, want)); d > 1e-6*(1+linalg.Norm2(want)) {
			t.Fatalf("trial %d: error %g", trial, d)
		}
	}
}

// A canceled context must abort a Laplacian solve with an error satisfying
// errors.Is(err, context.Canceled), and the solver must stay usable.
func TestSolveCtxCancellation(t *testing.T) {
	g := graph.Grid(5, 5)
	s, err := New(g, Config{Rand: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, g.N())
	rnd := rand.New(rand.NewSource(4))
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.SolveCtx(ctx, b, 1e-6); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled solve returned %v", err)
	}
	// The same solver must still answer fresh instances correctly.
	y, st, err := s.SolveCtx(context.Background(), b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Iterations == 0 || len(y) != g.N() {
		t.Fatalf("post-cancel solve broken: %+v", st)
	}
}
