// Package lapsolver implements Laplacian and SDD solving in the Broadcast
// Congested Clique (Sections 2.3, 3.3 and Lemma 5.1 of the paper):
//
//   - Solver: the Theorem 1.3 pipeline — preprocess a (1±1/2) spectral
//     sparsifier H of G (which every vertex then knows), then answer each
//     (b, ε) instance with preconditioned Chebyshev iteration
//     (Theorem 2.3 / Corollary 2.4) in O(log(1/ε)) iterations, each
//     costing one distributed multiplication by L_G plus a free internal
//     solve in L_H.
//   - SDDSolve: the Gremban reduction from symmetric diagonally dominant
//     systems to a Laplacian system on twice as many vertices (Lemma 5.1),
//     which the min-cost-flow LP needs for its AᵀDA solves.
//
// Invariants:
//
//   - The sparsifier is built once per Solver; every SolveCtx reuses it
//     together with the iteration workspaces, so repeated right-hand
//     sides allocate nothing on the hot path.
//   - Determinism: preprocessing consumes only the Config.Rand stream;
//     the iteration itself is deterministic, so equal (b, ε) inputs
//     reproduce equal outputs bit for bit.
//   - Cancellation: SolveCtx polls its context between Chebyshev
//     iterations (every 32 inner iterations in the safeguard CG), so a
//     solve aborts within one iteration of cancellation.
package lapsolver
