package lapsolver

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
	"bcclap/internal/sim"
	"bcclap/internal/sparsify"
)

// ErrDisconnected is returned when the input graph is not connected (the
// Laplacian system then decomposes and a single solve is ill-posed).
var ErrDisconnected = errors.New("lapsolver: graph is not connected")

// Solver answers Laplacian systems L_G x = b to high precision after a
// one-time sparsifier preprocessing (Theorem 1.3).
type Solver struct {
	g   *graph.Graph
	h   *graph.Graph
	lg  *linalg.CSR
	net *sim.Network

	chol *linalg.Dense // Cholesky factor of L_H + (c/n)·11ᵀ
	c    float64       // rank-correction coefficient

	// hiScale and kappa describe the measured pencil bounds
	// lo·L_H ≼ L_G ≼ hi·L_H: the solver preconditions with B := hiScale·L_H
	// so that A ≼ B ≼ κA with κ = hi/lo. For a true (1±1/2) sparsifier
	// this reduces to the paper's κ = 3; for weaker sparsifiers (smaller
	// practical bundle sizes) the estimate keeps Chebyshev convergent.
	hiScale float64
	kappa   float64

	// PreprocessRounds is the simulator round cost of building H and making
	// it global knowledge.
	PreprocessRounds int
	floatBits        int

	// Per-instance solve state, allocated once and reused across Solve
	// calls (a Solver is not safe for concurrent use, matching the model:
	// one network, one sequential round structure).
	ws    *linalg.Workspace
	mulA  linalg.LinOp // L_G with distributed-round accounting
	pb    []float64    // projected right-hand side
	y     []float64    // Chebyshev iterate
	resid []float64    // residual scratch for the CG safeguard
}

// Config tunes the solver.
type Config struct {
	// Sparsify gives the sparsifier parameters; the zero value selects
	// PracticalParams(n, m, 1/2) as in the proof of Theorem 1.3 (a
	// (1±1/2) sparsifier suffices, giving κ = 3).
	Sparsify sparsify.Params
	// Rand supplies randomness; nil seeds a default.
	Rand *rand.Rand
	// Net, if non-nil, receives round accounting.
	Net *sim.Network
}

// New builds the solver: it runs the Broadcast CONGEST sparsifier on g and
// factorizes the (rank-corrected) sparsifier Laplacian internally — after
// the algorithm every vertex knows H, so this factorization is free in the
// model.
func New(g *graph.Graph, cfg Config) (*Solver, error) {
	if !g.Connected() {
		return nil, ErrDisconnected
	}
	rnd := cfg.Rand
	if rnd == nil {
		rnd = rand.New(rand.NewSource(42))
	}
	par := cfg.Sparsify
	if par.K == 0 {
		par = sparsify.PracticalParams(g.N(), g.M(), 0.5)
	}
	startRounds := 0
	if cfg.Net != nil {
		startRounds = cfg.Net.Rounds()
	}
	sp := sparsify.Adhoc(g, par, rnd, cfg.Net)
	h := sp.H
	if !h.Connected() {
		// A too-aggressive practical bundle size can disconnect tiny
		// graphs; fall back to the trivial sparsifier H = G, which is
		// always valid (and what the paper's parameters would produce).
		h = g.Clone()
	}
	s := &Solver{g: g, h: h, lg: g.Laplacian(), net: cfg.Net}
	if cfg.Net != nil {
		s.PreprocessRounds = cfg.Net.Rounds() - startRounds
	}
	// Factorize L_H + (c/n)·11ᵀ. For b ⊥ 1 the solution of the corrected
	// PD system coincides with the pseudo-inverse action of L_H.
	n := g.N()
	s.c = h.TotalWeight() / float64(n)
	if s.c <= 0 {
		s.c = 1
	}
	lh := h.Laplacian().Dense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			lh.Inc(i, j, s.c/float64(n))
		}
	}
	chol, err := lh.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("lapsolver: factorize sparsifier: %w", err)
	}
	s.chol = chol
	s.floatBits = sim.BitsForFloat(g.MaxWeight()*float64(n), 1e-12)

	// Estimate the pencil range lo ≤ xᵀL_G x / xᵀL_H x ≤ hi. This is
	// internal computation (both G's own rows and all of H are known to
	// every vertex after preprocessing), so it costs no rounds.
	probe := rand.New(rand.NewSource(123))
	solveH := func(b []float64) []float64 {
		return linalg.ProjectOutOnes(linalg.CholSolve(s.chol, linalg.ProjectOutOnes(b)))
	}
	lo, hi := linalg.PencilBounds(g.WEdges(), h.WEdges(), n, solveH, 4, 16, probe.Float64)
	if !(lo > 0) || math.IsInf(hi, 1) || math.IsNaN(hi) {
		lo, hi = 0.5, 1.5 // paper's nominal (1±1/2) band
	}
	// Safety margins: power iteration gives inner estimates of the range.
	hi *= 1.25
	lo /= 1.25
	s.hiScale = hi
	s.kappa = hi / lo
	if s.kappa < 3 {
		s.kappa = 3
	}
	// One-time solve state: the CSR of L_G doubles as the LinOp applied at
	// every iteration (wrapped for round accounting), and all iterate
	// vectors live in a reusable workspace.
	s.ws = linalg.NewWorkspace()
	s.pb = make([]float64, n)
	s.y = make([]float64, n)
	s.resid = make([]float64, n)
	s.mulA = linalg.FuncOp{R: n, C: n, Apply: func(dst, x []float64) {
		if s.net != nil {
			// One distributed matrix-vector product: every vertex
			// broadcasts its coordinate with O(log(nU/ε)) bits.
			s.net.BeginPhase()
			for v := 0; v < n; v++ {
				s.net.Broadcast(v, s.floatBits, nil)
			}
			s.net.EndPhase()
		}
		s.lg.MulVecTo(dst, x)
	}}
	return s, nil
}

// Sparsifier returns the sparsifier H the solver preconditions with.
func (s *Solver) Sparsifier() *graph.Graph { return s.h }

// Stats reports what a Solve did.
type Stats struct {
	// Iterations is the number of Chebyshev iterations (Corollary 2.4
	// predicts O(log(1/ε)) since κ = 3).
	Iterations int
	// Rounds is the simulator round cost of this instance (0 without a
	// network): each iteration broadcasts one vector coordinate per vertex,
	// costing ⌈O(log(nU/ε))/B⌉ rounds.
	Rounds int
	// ResidualNorm is ‖b − L_G y‖₂ at termination.
	ResidualNorm float64
}

// Solve returns y with ‖x − y‖_{L_G} ≤ ε‖x‖_{L_G} for the (mean-zero)
// solution x of L_G x = b. It is SolveCtx without cancellation.
func (s *Solver) Solve(b []float64, eps float64) ([]float64, Stats, error) {
	return s.SolveCtx(context.Background(), b, eps)
}

// SolveCtx is Solve under a context: the Chebyshev/CG inner loops poll ctx
// and return an error satisfying errors.Is(err, ctx.Err()) on cancellation
// or deadline, leaving the solver reusable for the next instance. b is
// projected orthogonal to the all-ones nullspace first, as in the model
// every vertex holds one coordinate and the projection is a single
// aggregate broadcast.
func (s *Solver) SolveCtx(ctx context.Context, b []float64, eps float64) ([]float64, Stats, error) {
	if len(b) != s.g.N() {
		return nil, Stats{}, fmt.Errorf("lapsolver: b has %d entries, want %d", len(b), s.g.N())
	}
	if eps <= 0 || eps > 0.5 {
		return nil, Stats{}, fmt.Errorf("lapsolver: eps %g outside (0, 1/2]", eps)
	}
	copy(s.pb, b)
	linalg.ProjectOutOnesInPlace(s.pb)
	startRounds := 0
	if s.net != nil {
		startRounds = s.net.Rounds()
	}
	// B := hi·L_H, the measured analogue of Corollary 2.4's (1+1/2)·L_H;
	// solving in B is internal computation (H is global knowledge). The
	// Cholesky factor was computed once in New and is reused verbatim here.
	solveBTo := func(dst, r []float64) {
		copy(dst, r)
		linalg.ProjectOutOnesInPlace(dst)
		linalg.CholSolveInPlace(s.chol, dst)
		linalg.Scale(1/s.hiScale, dst)
		linalg.ProjectOutOnesInPlace(dst)
	}
	chres, err := linalg.PreconditionedChebyshevTo(ctx, s.y, s.mulA, solveBTo, s.pb, s.kappa, eps, s.ws)
	st := Stats{Iterations: chres.Iterations, ResidualNorm: chres.ResidualNorm}
	if err != nil {
		if s.net != nil {
			st.Rounds = s.net.Rounds() - startRounds
		}
		return nil, st, fmt.Errorf("lapsolver: %w", err)
	}
	if bn := linalg.Norm2(s.pb); chres.ResidualNorm > eps*bn {
		// Safeguard for sparsifiers whose measured pencil band was an
		// underestimate: finish with preconditioned CG using the same
		// preconditioner. Same per-iteration communication cost.
		extraTol := eps * 1e-2
		y2 := s.ws.Get(len(s.pb))
		cgIters, err := linalg.CGTo(ctx, y2, s.mulA, s.pb, extraTol, 6*s.g.N()+200, solveBTo, s.ws)
		st.Iterations += cgIters
		// A canceled CG aborts the instance (err then wraps ctx.Err()); a
		// cancellation arriving only after CG converged does not discard
		// the finished solution.
		if err != nil && ctx.Err() != nil {
			s.ws.Put(y2)
			if s.net != nil {
				st.Rounds = s.net.Rounds() - startRounds
			}
			return nil, st, fmt.Errorf("lapsolver: %w", err)
		}
		if err == nil {
			copy(s.y, y2)
			s.lg.MulVecTo(s.resid, s.y)
			for i := range s.resid {
				s.resid[i] = s.pb[i] - s.resid[i]
			}
			st.ResidualNorm = linalg.Norm2(s.resid)
		}
		s.ws.Put(y2)
	}
	if s.net != nil {
		st.Rounds = s.net.Rounds() - startRounds
	}
	return linalg.ProjectOutOnes(s.y), st, nil
}

// SolveExact solves L_G x = b (b ⊥ 1 enforced) by conjugate gradients to
// near machine precision; the reference the tests compare against.
func SolveExact(g *graph.Graph, b []float64) ([]float64, error) {
	return linalg.CGLaplacian(g.Laplacian(), b, 1e-12, 20*g.N()+1000)
}

// ErrorInLNorm returns ‖x − y‖_{L} for the Laplacian of g: the error
// metric of Theorem 1.3.
func ErrorInLNorm(g *graph.Graph, x, y []float64) float64 {
	d := linalg.Sub(x, y)
	return math.Sqrt(linalg.LaplacianQuadForm(g.WEdges(), d))
}
