package jl

import (
	"fmt"

	"bcclap/internal/linalg"
)

// GramSolver solves (MᵀM)x = y for the current matrix M. Implementations
// range from dense Cholesky (tests) to the paper's Laplacian-based solver
// for flow constraint matrices.
type GramSolver func(y []float64) ([]float64, error)

// LeverageScoresExact computes σ(M) = diag(M(MᵀM)⁻¹Mᵀ) exactly with one
// solve per row — the expensive reference Algorithm 6 avoids.
func LeverageScoresExact(mul, mulT func([]float64) []float64, m, n int, solve GramSolver) ([]float64, error) {
	sigma := make([]float64, m)
	for i := 0; i < m; i++ {
		ei := make([]float64, m)
		ei[i] = 1
		t := mulT(ei)
		s, err := solve(t)
		if err != nil {
			return nil, fmt.Errorf("jl: exact leverage row %d: %w", i, err)
		}
		p := mul(s)
		sigma[i] = p[i]
	}
	return sigma, nil
}

// LeverageScoresApprox implements ComputeLeverageScores (Algorithm 6):
// σ_apx = Σ_j (M(MᵀM)⁻¹Mᵀ Q⁽ʲ⁾)², using the rows of a shared-seed sketch.
// By Lemma 4.5 the result is within (1±η) of σ(M) w.h.p. when the sketch
// dimension is Θ(log(m)/η²).
func LeverageScoresApprox(mul, mulT func([]float64) []float64, m, n int, solve GramSolver, sk Sketch) ([]float64, error) {
	if sk.M() != m {
		return nil, fmt.Errorf("jl: sketch is %d-dimensional, matrix has %d rows", sk.M(), m)
	}
	sigma := make([]float64, m)
	for j := 0; j < sk.K(); j++ {
		q := sk.Row(j)
		t := mulT(q)
		s, err := solve(t)
		if err != nil {
			return nil, fmt.Errorf("jl: approx leverage sketch row %d: %w", j, err)
		}
		p := mul(s)
		for i := range sigma {
			sigma[i] += p[i] * p[i]
		}
	}
	// Leverage scores lie in [0, 1]; clamp numerical noise.
	for i := range sigma {
		sigma[i] = linalg.Clamp(sigma[i], 0, 1)
	}
	return sigma, nil
}

// DiagScaledOps returns mul/mulT closures for M = diag(d)·A with A in CSR
// form — the shape every leverage-score call in the LP solver has
// (M = W^{1/2−1/p}A or M = Φ″(x)^{−1/2}A).
func DiagScaledOps(a *linalg.CSR, d []float64) (mul, mulT func([]float64) []float64) {
	mul = func(x []float64) []float64 {
		out := a.MulVec(x)
		for i := range out {
			out[i] *= d[i]
		}
		return out
	}
	mulT = func(y []float64) []float64 {
		scaled := make([]float64, len(y))
		for i := range y {
			scaled[i] = d[i] * y[i]
		}
		return a.MulVecT(scaled)
	}
	return mul, mulT
}

// DenseGramSolver builds a GramSolver for M = diag(d)·A by assembling and
// factorizing AᵀD²A densely (for tests and small instances).
func DenseGramSolver(a *linalg.CSR, d []float64) (GramSolver, error) {
	n := a.Cols()
	gram := linalg.NewDense(n, n)
	ad := a.Dense()
	for r := 0; r < a.Rows(); r++ {
		dr := d[r] * d[r]
		if dr == 0 {
			continue
		}
		row := ad.Row(r)
		for i := 0; i < n; i++ {
			if row[i] == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				gram.Inc(i, j, dr*row[i]*row[j])
			}
		}
	}
	chol, err := gram.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("jl: gram factorization: %w", err)
	}
	return func(y []float64) ([]float64, error) {
		return linalg.CholSolve(chol, y), nil
	}, nil
}
