package jl

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/linalg"
)

func TestAchlioptasNormPreservation(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	m := 200
	k := SketchDim(m, 0.3)
	sk := NewAchlioptas(k, m, rnd)
	good := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		x := make([]float64, m)
		for j := range x {
			x[j] = rnd.NormFloat64()
		}
		r := linalg.Norm2(sk.Apply(x)) / linalg.Norm2(x)
		if r > 0.7 && r < 1.3 {
			good++
		}
	}
	if good < trials-2 {
		t.Fatalf("only %d/%d vectors within distortion band", good, trials)
	}
}

func TestKaneNelsonNormPreservation(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	m := 200
	k := SketchDim(m, 0.3)
	sk, err := NewKaneNelson(k, m, 0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	good := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		x := make([]float64, m)
		for j := range x {
			x[j] = rnd.NormFloat64()
		}
		r := linalg.Norm2(sk.Apply(x)) / linalg.Norm2(x)
		if r > 0.6 && r < 1.4 {
			good++
		}
	}
	if good < trials-2 {
		t.Fatalf("only %d/%d vectors within distortion band", good, trials)
	}
}

func TestKaneNelsonDeterministicFromSeed(t *testing.T) {
	a, err := NewKaneNelson(16, 50, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewKaneNelson(16, 50, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 50)
	for i := range x {
		x[i] = float64(i) - 20
	}
	ya, yb := a.Apply(x), b.Apply(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatal("same seed produced different sketches — the shared-seed broadcast argument breaks")
		}
	}
	c, err := NewKaneNelson(16, 50, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	yc := c.Apply(x)
	same := true
	for i := range ya {
		if ya[i] != yc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sketches")
	}
}

func TestKaneNelsonRowMatchesApply(t *testing.T) {
	sk, err := NewKaneNelson(12, 30, 3, 99)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(3))
	x := make([]float64, 30)
	for i := range x {
		x[i] = rnd.NormFloat64()
	}
	y := sk.Apply(x)
	for j := 0; j < sk.K(); j++ {
		if got := linalg.Dot(sk.Row(j), x); math.Abs(got-y[j]) > 1e-12 {
			t.Fatalf("row %d: %v vs %v", j, got, y[j])
		}
	}
}

func TestKaneNelsonSparsityPerColumn(t *testing.T) {
	sk, err := NewKaneNelson(12, 20, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for col := 0; col < 20; col++ {
		nz := 0
		for j := 0; j < sk.K(); j++ {
			if sk.Row(j)[col] != 0 {
				nz++
			}
		}
		if nz > 3 {
			t.Fatalf("column %d has %d nonzeros, want ≤ 3 (hash collisions within a block can only reduce)", col, nz)
		}
	}
}

func TestMulMod61(t *testing.T) {
	// Cross-check against big-integer-free small cases.
	cases := [][3]uint64{
		{0, 5, 0},
		{1, _mersenne61 - 1, _mersenne61 - 1},
		{2, 1 << 60, (1 << 61) % _mersenne61},
		{123456789, 987654321, (123456789 * 987654321) % _mersenne61},
	}
	for _, c := range cases {
		if got := mulmod61(c[0], c[1]); got != c[2] {
			t.Fatalf("mulmod61(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
	// Large values: verify via the identity a·b mod p computed with
	// float-free doubling.
	rnd := rand.New(rand.NewSource(4))
	slowMul := func(a, b uint64) uint64 {
		var acc uint64
		a %= _mersenne61
		for b > 0 {
			if b&1 == 1 {
				acc = add61(acc, a)
			}
			a = add61(a, a)
			b >>= 1
		}
		return acc
	}
	for i := 0; i < 200; i++ {
		a := rnd.Uint64() % _mersenne61
		b := rnd.Uint64() % _mersenne61
		if got, want := mulmod61(a, b), slowMul(a, b); got != want {
			t.Fatalf("mulmod61(%d,%d) = %d, want %d", a, b, got, want)
		}
	}
}

func buildTallMatrix(m, n int, rnd *rand.Rand) *linalg.CSR {
	var ts []linalg.Triple
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rnd.Float64() < 0.6 {
				ts = append(ts, linalg.Triple{Row: i, Col: j, Val: rnd.NormFloat64()})
			}
		}
		// Guarantee no zero row.
		ts = append(ts, linalg.Triple{Row: i, Col: i % n, Val: 1 + rnd.Float64()})
	}
	return linalg.NewCSR(m, n, ts)
}

func TestLeverageScoresExactProperties(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	m, n := 30, 6
	a := buildTallMatrix(m, n, rnd)
	d := make([]float64, m)
	for i := range d {
		d[i] = 0.5 + rnd.Float64()
	}
	mul, mulT := DiagScaledOps(a, d)
	solve, err := DenseGramSolver(a, d)
	if err != nil {
		t.Fatal(err)
	}
	sigma, err := LeverageScoresExact(mul, mulT, m, n, solve)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for i, s := range sigma {
		if s < -1e-9 || s > 1+1e-9 {
			t.Fatalf("leverage score %d = %v outside [0,1]", i, s)
		}
		sum += s
	}
	// Σσ = rank(M) = n.
	if math.Abs(sum-float64(n)) > 1e-6 {
		t.Fatalf("Σσ = %v, want %d", sum, n)
	}
}

func TestLeverageScoresApproxVsExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	m, n := 40, 5
	a := buildTallMatrix(m, n, rnd)
	d := make([]float64, m)
	for i := range d {
		d[i] = 0.5 + rnd.Float64()
	}
	mul, mulT := DiagScaledOps(a, d)
	solve, err := DenseGramSolver(a, d)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := LeverageScoresExact(mul, mulT, m, n, solve)
	if err != nil {
		t.Fatal(err)
	}
	eta := 0.5
	sk, err := NewKaneNelson(SketchDim(m, eta/4), m, 0, 2024)
	if err != nil {
		t.Fatal(err)
	}
	approx, err := LeverageScoresApprox(mul, mulT, m, n, solve, sk)
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for i := range exact {
		if exact[i] < 1e-6 {
			continue
		}
		r := approx[i] / exact[i]
		if r < 1-eta || r > 1+eta {
			bad++
		}
	}
	if bad > m/10 {
		t.Fatalf("%d/%d leverage scores outside (1±%v)", bad, m, eta)
	}
}

func TestDiagScaledOpsAgainstDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	a := buildTallMatrix(8, 4, rnd)
	d := []float64{1, 2, 0.5, 3, 1, 1, 2, 0.25}
	mul, mulT := DiagScaledOps(a, d)
	x := []float64{1, -1, 2, 0.5}
	got := mul(x)
	ax := a.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-d[i]*ax[i]) > 1e-12 {
			t.Fatal("mul mismatch")
		}
	}
	y := make([]float64, 8)
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	gotT := mulT(y)
	dy := make([]float64, 8)
	for i := range dy {
		dy[i] = d[i] * y[i]
	}
	wantT := a.MulVecT(dy)
	for i := range gotT {
		if math.Abs(gotT[i]-wantT[i]) > 1e-12 {
			t.Fatal("mulT mismatch")
		}
	}
}

func TestSketchDim(t *testing.T) {
	if SketchDim(100, 0.5) < 4 {
		t.Fatal("sketch dim too small")
	}
	if SketchDim(100, 0.1) <= SketchDim(100, 0.5) {
		t.Fatal("sketch dim should grow as eta shrinks")
	}
}
