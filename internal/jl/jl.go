package jl

import (
	"fmt"
	"math"
	"math/rand"
)

// Sketch is a k×m matrix Q with the JL property
// (1−η)‖x‖₂ ≤ ‖Qx‖₂ ≤ (1+η)‖x‖₂ w.h.p.
type Sketch interface {
	// Apply returns Q·x.
	Apply(x []float64) []float64
	// Row returns row j of Q as a dense m-vector.
	Row(j int) []float64
	// K returns the sketch dimension (number of rows).
	K() int
	// M returns the input dimension (number of columns).
	M() int
}

// Achlioptas is the dense ±1/√k sketch. Each entry needs its own coin flip.
type Achlioptas struct {
	k, m int
	rows [][]float64
}

var _ Sketch = (*Achlioptas)(nil)

// NewAchlioptas samples a k×m dense sign sketch.
func NewAchlioptas(k, m int, rnd *rand.Rand) *Achlioptas {
	s := &Achlioptas{k: k, m: m, rows: make([][]float64, k)}
	inv := 1 / math.Sqrt(float64(k))
	for j := range s.rows {
		row := make([]float64, m)
		for i := range row {
			if rnd.Intn(2) == 0 {
				row[i] = inv
			} else {
				row[i] = -inv
			}
		}
		s.rows[j] = row
	}
	return s
}

// Apply returns Q·x.
func (s *Achlioptas) Apply(x []float64) []float64 {
	out := make([]float64, s.k)
	for j, row := range s.rows {
		var v float64
		for i, r := range row {
			v += r * x[i]
		}
		out[j] = v
	}
	return out
}

// Row returns row j (a copy).
func (s *Achlioptas) Row(j int) []float64 {
	out := make([]float64, s.m)
	copy(out, s.rows[j])
	return out
}

// K returns the sketch dimension.
func (s *Achlioptas) K() int { return s.k }

// M returns the input dimension.
func (s *Achlioptas) M() int { return s.m }

// polyHash is a degree-3 polynomial hash over the Mersenne prime 2⁶¹−1,
// giving 4-wise independence from four 61-bit coefficients — the limited-
// randomness primitive Kane–Nelson style constructions are built from.
type polyHash struct {
	coeffs [4]uint64
}

const _mersenne61 = (1 << 61) - 1

func (h polyHash) eval(x uint64) uint64 {
	x %= _mersenne61
	var acc uint64
	for _, c := range h.coeffs {
		acc = mulmod61(acc, x) + c
		if acc >= _mersenne61 {
			acc -= _mersenne61
		}
	}
	return acc
}

// mulmod61 multiplies modulo 2⁶¹−1 using 128-bit arithmetic via math/bits-
// style decomposition (hand-rolled to stay dependency-free).
func mulmod61(a, b uint64) uint64 {
	// Split a into high/low 32-bit halves; (aH·2³² + aL)·b mod p.
	aH, aL := a>>32, a&0xffffffff
	bH, bL := b>>32, b&0xffffffff
	// a·b = aH·bH·2⁶⁴ + (aH·bL + aL·bH)·2³² + aL·bL.
	hi := aH * bH
	mid1 := aH * bL
	mid2 := aL * bH
	lo := aL * bL
	// Accumulate modulo 2⁶¹−1 using 2⁶¹ ≡ 1: x·2⁶⁴ ≡ x·8, x·2³² folding.
	res := reduce61(lo)
	res = add61(res, reduce61(shl61(mid1, 32)))
	res = add61(res, reduce61(shl61(mid2, 32)))
	res = add61(res, reduce61(shl61(hi, 64%61)))
	// hi·2⁶⁴ = hi·2⁶¹·2³ ≡ hi·8: shl61(hi, 3) — handled above with 64%61=3.
	return res
}

func reduce61(x uint64) uint64 {
	x = (x >> 61) + (x & _mersenne61)
	if x >= _mersenne61 {
		x -= _mersenne61
	}
	return x
}

func add61(a, b uint64) uint64 {
	s := a + b
	if s >= _mersenne61 {
		s -= _mersenne61
	}
	return s
}

// shl61 computes (x << s) mod 2⁶¹−1 for s < 61 without overflow by
// rotating within 61 bits (2⁶¹ ≡ 1 mod p makes shifts rotations).
func shl61(x uint64, s uint64) uint64 {
	x = reduce61(x)
	s %= 61
	hi := x >> (61 - s)
	lo := (x << s) & _mersenne61
	return add61(hi, lo)
}

// KaneNelson is the sparse JL transform: k rows split into s blocks; every
// column has exactly one ±1/√s entry per block, with the row-within-block
// and the sign chosen by 4-wise independent hashes expanded from a short
// shared seed.
type KaneNelson struct {
	k, m, s   int
	blockSize int
	rowHash   []polyHash
	signHash  []polyHash
}

var _ Sketch = (*KaneNelson)(nil)

// SeedBits returns the number of random bits a NewKaneNelson(k, m) sketch
// consumes: Θ(s·log m) = O(log(1/δ)·log m) as in Theorem 4.4.
func SeedBits(s int) int { return s * 2 * 4 * 61 }

// NewKaneNelson builds the sketch from a seed. The seed models the
// O(log²m) shared random bits broadcast by the leader in Algorithm 6: all
// vertices expand the same seed into the same Q. s (non-zeros per column)
// defaults to ⌈k/4⌉ when 0.
func NewKaneNelson(k, m, s int, seed int64) (*KaneNelson, error) {
	if k <= 0 || m <= 0 {
		return nil, fmt.Errorf("jl: bad dimensions k=%d m=%d", k, m)
	}
	if s <= 0 {
		s = (k + 3) / 4
	}
	if s > k {
		s = k
	}
	// Round k up so blocks divide evenly.
	blockSize := (k + s - 1) / s
	k = blockSize * s
	kn := &KaneNelson{k: k, m: m, s: s, blockSize: blockSize,
		rowHash: make([]polyHash, s), signHash: make([]polyHash, s)}
	// Expand the seed with a splitmix-style generator; the seed itself is
	// the short broadcast randomness.
	state := uint64(seed)
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < s; i++ {
		for c := 0; c < 4; c++ {
			kn.rowHash[i].coeffs[c] = next() % _mersenne61
			kn.signHash[i].coeffs[c] = next() % _mersenne61
		}
	}
	return kn, nil
}

// entries returns, for column col, the s (row, value) pairs.
func (s *KaneNelson) entries(col int) []struct {
	row int
	val float64
} {
	out := make([]struct {
		row int
		val float64
	}, s.s)
	inv := 1 / math.Sqrt(float64(s.s))
	for b := 0; b < s.s; b++ {
		r := int(s.rowHash[b].eval(uint64(col)+1) % uint64(s.blockSize))
		sign := inv
		if s.signHash[b].eval(uint64(col)+1)&1 == 1 {
			sign = -inv
		}
		out[b].row = b*s.blockSize + r
		out[b].val = sign
	}
	return out
}

// Apply returns Q·x.
func (s *KaneNelson) Apply(x []float64) []float64 {
	out := make([]float64, s.k)
	for col, xv := range x {
		if xv == 0 {
			continue
		}
		for _, e := range s.entries(col) {
			out[e.row] += e.val * xv
		}
	}
	return out
}

// Row returns row j of Q as a dense vector.
func (s *KaneNelson) Row(j int) []float64 {
	out := make([]float64, s.m)
	for col := 0; col < s.m; col++ {
		for _, e := range s.entries(col) {
			if e.row == j {
				out[col] = e.val
			}
		}
	}
	return out
}

// K returns the (possibly rounded-up) sketch dimension.
func (s *KaneNelson) K() int { return s.k }

// M returns the input dimension.
func (s *KaneNelson) M() int { return s.m }

// SketchDim returns the standard k = Θ(log(m)/η²) sketch dimension for
// target distortion η on m-dimensional inputs.
func SketchDim(m int, eta float64) int {
	k := int(math.Ceil(4 * math.Log(float64(m)+2) / (eta * eta)))
	if k < 4 {
		k = 4
	}
	return k
}
