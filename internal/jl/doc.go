// Package jl implements the Johnson–Lindenstrauss machinery of Section
// 4.1 of the paper:
//
//   - the classical Achlioptas dense ±1 sketch, which needs Θ(k·m) random
//     bits and is therefore *not* implementable in the Broadcast Congested
//     Clique (one endpoint cannot tell the other its coin flips), and
//   - the Kane–Nelson sparse sketch built from O(log(1/δ)·log m) shared
//     random bits: a leader broadcasts a short seed, and every vertex
//     expands it *deterministically* into the same sketch matrix via
//     k-wise independent polynomial hash functions.
//
// On top of the sketches, the package provides approximate leverage scores
// (Algorithm 6, Lemma 4.5): σ(M) = diag(M(MᵀM)⁻¹Mᵀ) approximated by k
// regression solves, which the LP solver's Lewis-weight updates consume.
//
// Invariants:
//
//   - Shared-seed determinism is the point: expanding the same broadcast
//     seed on every vertex yields the same sketch, so a sketch never needs
//     to be communicated — only its seed.
//   - Sketch application is matrix-free: only Mul/MulT closures over the
//     constraint matrix are required, matching the operator discipline of
//     internal/linalg.
package jl
