// Package admission implements the per-tenant QoS gate that fronts
// every NetworkHandle: a token-bucket rate limit (queries per second
// plus burst), a cap on concurrently in-flight solves, and a bounded
// FIFO admission queue with deadline-aware backpressure.
//
// A Gate admits a request when the tenant is under its rate and
// in-flight limits; otherwise the request queues (FIFO, bounded by
// QueueDepth) until capacity frees up or its context ends. Requests
// are rejected with ErrOverloaded without queueing when the queue is
// full, or when the gate estimates — from the queue length, the token
// refill rate and an exponentially weighted mean of recent service
// times — that the request's context deadline would expire before it
// could be admitted. The same estimate backs RetryAfter, which the
// daemon surfaces as the Retry-After header on 429 responses.
//
// An unlimited gate (the default: all Limits fields zero) stays on a
// lock-free fast path of two atomic operations per request, so the
// cached solve hot path is unaffected for tenants with no configured
// limits. Limits are mutable at runtime via SetLimits; loosening to
// unlimited releases every queued waiter.
package admission
