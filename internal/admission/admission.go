package admission

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Admit when a request cannot be accepted:
// the admission queue is full, or the request's context deadline would
// expire (or did expire) before the gate could admit it. Callers map it
// to 429 Too Many Requests with a Retry-After computed from
// Gate.RetryAfter.
var ErrOverloaded = errors.New("tenant overloaded")

// ErrBadLimits is returned when a Limits value is invalid (negative
// rate, or burst/in-flight/queue fields below their minimum).
var ErrBadLimits = errors.New("invalid admission limits")

// DefaultQueueDepth is the admission queue bound used when limits are
// active but QueueDepth is zero.
const DefaultQueueDepth = 16

// Limits configures a tenant's QoS gate. The zero value means
// unlimited: no rate limit, no in-flight cap, and (vacuously) no queue.
type Limits struct {
	// RatePerSec is the sustained admission rate in queries per second.
	// 0 means no rate limit.
	RatePerSec float64
	// Burst is the token-bucket depth: how many queries may be admitted
	// back-to-back after an idle period. 0 means max(1, ⌈RatePerSec⌉).
	// Ignored when RatePerSec is 0.
	Burst int
	// MaxInFlight caps concurrently admitted requests (a SolveBatch
	// counts as one request; its internal concurrency is already
	// bounded by the tenant's pool size). 0 means no cap.
	MaxInFlight int
	// QueueDepth bounds how many requests may wait for admission when
	// the tenant is at its rate or in-flight limit. 0 means
	// DefaultQueueDepth; negative disables queueing (saturated
	// requests are rejected immediately).
	QueueDepth int
}

// Validate reports whether l is a well-formed limit set.
func (l Limits) Validate() error {
	if l.RatePerSec < 0 || math.IsNaN(l.RatePerSec) || math.IsInf(l.RatePerSec, 0) {
		return fmt.Errorf("%w: rate %v", ErrBadLimits, l.RatePerSec)
	}
	if l.Burst < 0 {
		return fmt.Errorf("%w: burst %d", ErrBadLimits, l.Burst)
	}
	if l.MaxInFlight < 0 {
		return fmt.Errorf("%w: max in-flight %d", ErrBadLimits, l.MaxInFlight)
	}
	return nil
}

// active reports whether any limit is configured. An inactive gate
// serves the lock-free fast path.
func (l Limits) active() bool {
	return l.RatePerSec > 0 || l.MaxInFlight > 0
}

// burst returns the effective token-bucket depth.
func (l Limits) burst() int {
	if l.Burst > 0 {
		return l.Burst
	}
	return int(math.Max(1, math.Ceil(l.RatePerSec)))
}

// queueDepth returns the effective admission queue bound.
func (l Limits) queueDepth() int {
	switch {
	case l.QueueDepth > 0:
		return l.QueueDepth
	case l.QueueDepth < 0:
		return 0
	}
	return DefaultQueueDepth
}

// Stats is a point-in-time snapshot of a gate's accounting.
type Stats struct {
	// Limits is the currently configured limit set.
	Limits Limits
	// Admitted counts queries admitted since the gate was created
	// (a batch of k counts k).
	Admitted int64
	// Queued counts requests that had to wait in the admission queue.
	Queued int64
	// RejectedQueueFull counts requests rejected because the queue was
	// at QueueDepth.
	RejectedQueueFull int64
	// RejectedDeadline counts requests rejected because their context
	// deadline would have expired (or expired) while queued.
	RejectedDeadline int64
	// Canceled counts requests whose context was canceled while queued.
	Canceled int64
	// InFlight is the number of currently admitted, unreleased requests.
	InFlight int
	// QueueDepth is the number of requests currently waiting.
	QueueDepth int
	// QueueWait is the cumulative time requests have spent waiting in
	// the admission queue.
	QueueWait time.Duration
	// MeanServiceTime is the exponentially weighted mean of recent
	// per-query service times recorded via RecordServiceTime.
	MeanServiceTime time.Duration
}

// A Gate is one tenant's admission controller. The zero value is not
// usable; call NewGate.
type Gate struct {
	// limited mirrors lim.active() for the lock-free fast path.
	limited atomic.Bool
	// inFast counts in-flight requests admitted on the fast path.
	inFast atomic.Int64

	mu       sync.Mutex
	lim      Limits
	tokens   float64 // may go negative when a batch borrows beyond burst
	last     time.Time
	inFlight int
	waiters  []*waiter
	timer    *time.Timer

	relFast, relSlow func()

	meanNS      atomic.Int64
	admitted    atomic.Int64
	queued      atomic.Int64
	rejFull     atomic.Int64
	rejDeadline atomic.Int64
	canceled    atomic.Int64
	queueWaitNS atomic.Int64
}

// waiter is one queued admission request.
type waiter struct {
	n        int // tokens wanted
	ready    chan struct{}
	admitted bool
}

// NewGate returns a gate enforcing l. An all-zero l is valid and means
// unlimited.
func NewGate(l Limits) (*Gate, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	g := &Gate{lim: l}
	g.relFast = func() {
		g.inFast.Add(-1)
		if g.limited.Load() {
			g.mu.Lock()
			g.wakeLocked(time.Now())
			g.mu.Unlock()
		}
	}
	g.relSlow = func() {
		g.mu.Lock()
		g.inFlight--
		g.wakeLocked(time.Now())
		g.mu.Unlock()
	}
	if l.active() {
		g.tokens = float64(l.burst())
		g.last = time.Now()
		g.limited.Store(true)
	}
	return g, nil
}

// Admit asks the gate to admit one query. It returns a release function
// that must be called exactly once, when the query's solve completes
// (success or failure). It blocks while the request is queued; it
// returns ErrOverloaded (possibly wrapping ctx.Err) on rejection, or
// ctx.Err if ctx was canceled while queued.
func (g *Gate) Admit(ctx context.Context) (release func(), err error) {
	return g.AdmitN(ctx, 1)
}

// AdmitN admits a batch of n queries as a single request: it consumes n
// rate tokens but one in-flight slot (the batch's internal concurrency
// is bounded elsewhere, by the tenant's worker pool).
func (g *Gate) AdmitN(ctx context.Context, n int) (release func(), err error) {
	if n < 1 {
		n = 1
	}
	if !g.limited.Load() {
		g.inFast.Add(1)
		g.admitted.Add(int64(n))
		return g.relFast, nil
	}

	now := time.Now()
	g.mu.Lock()
	if !g.lim.active() {
		// Raced with SetLimits loosening to unlimited.
		g.inFlight++
		g.admitted.Add(int64(n))
		g.mu.Unlock()
		return g.relSlow, nil
	}
	g.refillLocked(now)
	if len(g.waiters) == 0 && g.tryTakeLocked(n) {
		g.admitted.Add(int64(n))
		g.mu.Unlock()
		return g.relSlow, nil
	}
	if qd := g.lim.queueDepth(); len(g.waiters) >= qd {
		g.rejFull.Add(1)
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: admission queue full (%d waiting)", ErrOverloaded, qd)
	}
	if dl, ok := ctx.Deadline(); ok {
		if est := g.estimateLocked(len(g.waiters), n); est > 0 && now.Add(est).After(dl) {
			g.rejDeadline.Add(1)
			g.mu.Unlock()
			return nil, fmt.Errorf("%w: deadline in %s but estimated admission wait is %s",
				ErrOverloaded, time.Until(dl).Round(time.Millisecond), est.Round(time.Millisecond))
		}
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.queued.Add(1)
	g.armTimerLocked()
	g.mu.Unlock()

	select {
	case <-w.ready:
		g.queueWaitNS.Add(int64(time.Since(now)))
		g.admitted.Add(int64(n))
		return g.relSlow, nil
	case <-ctx.Done():
		g.mu.Lock()
		if w.admitted {
			// Lost the race: wakeLocked admitted us before the cancel
			// was observed. Give the slot back and report the cancel.
			g.inFlight--
			g.wakeLocked(time.Now())
		} else {
			g.removeWaiterLocked(w)
		}
		g.mu.Unlock()
		g.queueWaitNS.Add(int64(time.Since(now)))
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			g.rejDeadline.Add(1)
			return nil, fmt.Errorf("%w: %w while queued for admission", ErrOverloaded, ctx.Err())
		}
		g.canceled.Add(1)
		return nil, ctx.Err()
	}
}

// refillLocked credits tokens for the time elapsed since the last
// refill, capping at the burst depth.
func (g *Gate) refillLocked(now time.Time) {
	if g.lim.RatePerSec <= 0 {
		return
	}
	if dt := now.Sub(g.last); dt > 0 {
		g.tokens = math.Min(g.tokens+dt.Seconds()*g.lim.RatePerSec, float64(g.lim.burst()))
	}
	g.last = now
}

// tryTakeLocked takes n tokens and one in-flight slot if available. A
// batch larger than the burst depth may borrow: it is admitted once the
// bucket is full, driving the balance negative so subsequent requests
// wait for the debt to repay. Without borrowing it could never run.
func (g *Gate) tryTakeLocked(n int) bool {
	if g.lim.MaxInFlight > 0 && g.inFlight+int(g.inFast.Load()) >= g.lim.MaxInFlight {
		return false
	}
	if g.lim.RatePerSec > 0 {
		need := math.Min(float64(n), float64(g.lim.burst()))
		if g.tokens < need {
			return false
		}
		g.tokens -= float64(n)
	}
	g.inFlight++
	return true
}

// wakeLocked admits queued waiters in FIFO order while capacity lasts,
// then re-arms the refill timer for the head waiter if it is blocked
// on tokens alone.
func (g *Gate) wakeLocked(now time.Time) {
	if !g.lim.active() {
		for _, w := range g.waiters {
			w.admitted = true
			g.inFlight++
			close(w.ready)
		}
		g.waiters = nil
		return
	}
	g.refillLocked(now)
	for len(g.waiters) > 0 {
		w := g.waiters[0]
		if !g.tryTakeLocked(w.n) {
			break
		}
		g.waiters = g.waiters[1:]
		w.admitted = true
		close(w.ready)
	}
	g.armTimerLocked()
}

// armTimerLocked schedules a wake-up when the head waiter is blocked
// only on token refill; releases wake the queue when it is blocked on
// in-flight capacity.
func (g *Gate) armTimerLocked() {
	if len(g.waiters) == 0 || g.lim.RatePerSec <= 0 {
		return
	}
	if g.lim.MaxInFlight > 0 && g.inFlight+int(g.inFast.Load()) >= g.lim.MaxInFlight {
		return // a release will wake us; a timer would fire uselessly
	}
	need := math.Min(float64(g.waiters[0].n), float64(g.lim.burst()))
	deficit := need - g.tokens
	if deficit <= 0 {
		deficit = 0.001 // immediate re-check
	}
	d := time.Duration(deficit / g.lim.RatePerSec * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	if g.timer == nil {
		g.timer = time.AfterFunc(d, func() {
			g.mu.Lock()
			g.wakeLocked(time.Now())
			g.mu.Unlock()
		})
	} else {
		g.timer.Reset(d)
	}
}

func (g *Gate) removeWaiterLocked(w *waiter) {
	for i, x := range g.waiters {
		if x == w {
			g.waiters = append(g.waiters[:i], g.waiters[i+1:]...)
			return
		}
	}
}

// estimateLocked predicts how long a request joining the queue at
// position pos (0 = next after current waiters) and wanting n tokens
// would wait: the larger of the token-refill time for everything ahead
// of it and a service-time estimate from the in-flight cap and the
// recent mean service time. 0 means no basis for an estimate.
func (g *Gate) estimateLocked(pos, n int) time.Duration {
	var est time.Duration
	if g.lim.RatePerSec > 0 {
		ahead := 0.0
		for _, w := range g.waiters {
			ahead += float64(w.n)
		}
		need := ahead + math.Min(float64(n), float64(g.lim.burst())) - g.tokens
		if need > 0 {
			est = time.Duration(need / g.lim.RatePerSec * float64(time.Second))
		}
	}
	if mean := g.meanNS.Load(); mean > 0 && g.lim.MaxInFlight > 0 {
		slots := g.lim.MaxInFlight
		t := time.Duration((int64(pos) + 1) * mean / int64(slots))
		if t > est {
			est = t
		}
	}
	return est
}

// RecordServiceTime feeds one fresh solve's wall time into the
// exponentially weighted mean backing deadline estimates and
// RetryAfter. Cache hits should not be recorded.
func (g *Gate) RecordServiceTime(d time.Duration) {
	if d <= 0 {
		return
	}
	for {
		old := g.meanNS.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/8
		}
		if g.meanNS.CompareAndSwap(old, nw) {
			return
		}
	}
}

// RetryAfter estimates how long a rejected client should wait before
// retrying: the predicted admission wait for a request joining the
// back of the queue now. It returns 0 when the gate has no basis for
// an estimate.
func (g *Gate) RetryAfter() time.Duration {
	if !g.limited.Load() {
		return 0
	}
	now := time.Now()
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.lim.active() {
		return 0
	}
	g.refillLocked(now)
	return g.estimateLocked(len(g.waiters), 1)
}

// Limits returns the currently configured limit set.
func (g *Gate) Limits() Limits {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.lim
}

// SetLimits replaces the gate's limits at runtime. Tightening applies
// to subsequent admissions (in-flight requests are never revoked);
// loosening to unlimited admits every queued waiter immediately.
func (g *Gate) SetLimits(l Limits) error {
	if err := l.Validate(); err != nil {
		return err
	}
	g.mu.Lock()
	wasActive := g.lim.active()
	g.lim = l
	if l.active() {
		if !wasActive {
			g.tokens = float64(l.burst())
			g.last = time.Now()
		} else {
			g.tokens = math.Min(g.tokens, float64(l.burst()))
		}
		g.limited.Store(true)
		g.wakeLocked(time.Now())
	} else {
		g.limited.Store(false)
		g.wakeLocked(time.Now()) // releases every waiter
	}
	g.mu.Unlock()
	return nil
}

// Stats returns a point-in-time snapshot of the gate's accounting.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	s := Stats{
		Limits:     g.lim,
		InFlight:   g.inFlight + int(g.inFast.Load()),
		QueueDepth: len(g.waiters),
	}
	g.mu.Unlock()
	s.Admitted = g.admitted.Load()
	s.Queued = g.queued.Load()
	s.RejectedQueueFull = g.rejFull.Load()
	s.RejectedDeadline = g.rejDeadline.Load()
	s.Canceled = g.canceled.Load()
	s.QueueWait = time.Duration(g.queueWaitNS.Load())
	s.MeanServiceTime = time.Duration(g.meanNS.Load())
	return s
}
