package admission

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustGate(t *testing.T, l Limits) *Gate {
	t.Helper()
	g, err := NewGate(l)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestUnlimitedFastPath(t *testing.T) {
	g := mustGate(t, Limits{})
	for i := 0; i < 100; i++ {
		rel, err := g.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	s := g.Stats()
	if s.Admitted != 100 || s.Queued != 0 || s.InFlight != 0 {
		t.Fatalf("stats = %+v", s)
	}
	if got := g.RetryAfter(); got != 0 {
		t.Fatalf("RetryAfter on unlimited gate = %v, want 0", got)
	}
}

func TestBadLimits(t *testing.T) {
	for _, l := range []Limits{
		{RatePerSec: -1},
		{Burst: -1},
		{MaxInFlight: -2},
	} {
		if _, err := NewGate(l); !errors.Is(err, ErrBadLimits) {
			t.Errorf("NewGate(%+v) err = %v, want ErrBadLimits", l, err)
		}
	}
	g := mustGate(t, Limits{})
	if err := g.SetLimits(Limits{RatePerSec: -3}); !errors.Is(err, ErrBadLimits) {
		t.Errorf("SetLimits err = %v, want ErrBadLimits", err)
	}
}

func TestRateLimitPacing(t *testing.T) {
	g := mustGate(t, Limits{RatePerSec: 100, Burst: 1})
	start := time.Now()
	for i := 0; i < 5; i++ {
		rel, err := g.Admit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	// First admit rides the initial token; the remaining 4 must wait for
	// refill at 100/s. Theory: 40ms; allow generous scheduling slack.
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("5 admits at 100 qps with burst 1 took %v, want >= 30ms", elapsed)
	}
	if s := g.Stats(); s.Queued == 0 {
		t.Fatalf("expected queued requests, stats = %+v", s)
	}
}

func TestMaxInFlight(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 2})
	rel1, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	admitted := make(chan struct{})
	go func() {
		rel3, err := g.Admit(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		rel3()
	}()

	select {
	case <-admitted:
		t.Fatal("third request admitted past MaxInFlight=2")
	case <-time.After(50 * time.Millisecond):
	}
	if s := g.Stats(); s.InFlight != 2 || s.QueueDepth != 1 {
		t.Fatalf("stats = %+v, want 2 in flight, 1 queued", s)
	}

	rel1()
	select {
	case <-admitted:
	case <-time.After(2 * time.Second):
		t.Fatal("queued request not admitted after release")
	}
	rel2()
	if s := g.Stats(); s.QueueWait <= 0 {
		t.Fatalf("queue wait not recorded: %+v", s)
	}
}

func TestQueueFullRejection(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1, QueueDepth: 1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		rel2, err := g.Admit(ctx)
		if err == nil {
			rel2()
		}
		errc <- err
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth == 1 })

	_, err = g.Admit(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s := g.Stats(); s.RejectedQueueFull != 1 {
		t.Fatalf("RejectedQueueFull = %d, want 1", s.RejectedQueueFull)
	}
	cancel()
	if err := <-errc; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("queued admit err = %v", err)
	}
}

func TestNoQueueRejectsImmediately(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1, QueueDepth: -1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := g.Admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("QueueDepth<0 rejection blocked")
	}
}

func TestPredictiveDeadlineRejection(t *testing.T) {
	// Drain the single token; the next request would wait ~1s for
	// refill, far past its 50ms deadline: reject up front, without
	// queueing.
	g := mustGate(t, Limits{RatePerSec: 1, Burst: 1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = g.Admit(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("predictive rejection should not wrap ctx error, got %v", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatal("predictive rejection waited instead of rejecting up front")
	}
	if s := g.Stats(); s.RejectedDeadline != 1 || s.Queued != 0 {
		t.Fatalf("stats = %+v, want 1 deadline rejection and no queueing", s)
	}
}

func TestDeadlineExpiresWhileQueued(t *testing.T) {
	// One slot held forever, no rate limit: the gate has no estimate
	// (no service-time history), so the request queues — then its
	// deadline fires while it waits.
	g := mustGate(t, Limits{MaxInFlight: 1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err = g.Admit(ctx)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to also match context.DeadlineExceeded", err)
	}
	s := g.Stats()
	if s.RejectedDeadline != 1 || s.Queued != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCancelWhileQueued(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx)
		errc <- err
	}()
	waitFor(t, func() bool { return g.Stats().QueueDepth == 1 })
	cancel()
	err = <-errc
	if !errors.Is(err, context.Canceled) || errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want bare context.Canceled", err)
	}
	if s := g.Stats(); s.Canceled != 1 || s.QueueDepth != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSetLimitsLoosenReleasesWaiters(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1})
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	const waiters = 3
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rel, err := g.Admit(context.Background())
			if err != nil {
				t.Error(err)
				return
			}
			rel()
		}()
	}
	waitFor(t, func() bool { return g.Stats().QueueDepth == waiters })
	if err := g.SetLimits(Limits{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiters not released after SetLimits to unlimited")
	}
}

func TestBatchBorrowsBeyondBurst(t *testing.T) {
	g := mustGate(t, Limits{RatePerSec: 1000, Burst: 2})
	rel, err := g.AdmitN(context.Background(), 10) // > burst: admitted on a full bucket
	if err != nil {
		t.Fatal(err)
	}
	rel()
	// The bucket is now in debt; a follow-up must wait for repayment.
	start := time.Now()
	rel, err = g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("post-batch admit took %v, expected to wait for token debt", elapsed)
	}
}

func TestRetryAfterEstimate(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1, QueueDepth: 4})
	g.RecordServiceTime(100 * time.Millisecond)
	rel, err := g.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	// One slot busy, none queued: a new arrival would wait about one
	// mean service time.
	ra := g.RetryAfter()
	if ra < 50*time.Millisecond || ra > time.Second {
		t.Fatalf("RetryAfter = %v, want around 100ms", ra)
	}
}

func TestRecordServiceTimeEWMA(t *testing.T) {
	g := mustGate(t, Limits{MaxInFlight: 1})
	g.RecordServiceTime(80 * time.Millisecond)
	if got := g.Stats().MeanServiceTime; got != 80*time.Millisecond {
		t.Fatalf("first observation mean = %v, want 80ms", got)
	}
	for i := 0; i < 64; i++ {
		g.RecordServiceTime(160 * time.Millisecond)
	}
	got := g.Stats().MeanServiceTime
	if got < 140*time.Millisecond || got > 160*time.Millisecond {
		t.Fatalf("EWMA after drift = %v, want near 160ms", got)
	}
}

func TestHammerConcurrent(t *testing.T) {
	g := mustGate(t, Limits{RatePerSec: 5000, Burst: 50, MaxInFlight: 4, QueueDepth: 32})

	var running, peak atomic.Int64
	var admitted, rejected atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ctx := context.Background()
				if i%4 == 0 {
					c, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
					defer cancel()
					ctx = c
				}
				rel, err := g.Admit(ctx)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.DeadlineExceeded) {
						t.Errorf("unexpected admit error: %v", err)
					}
					rejected.Add(1)
					continue
				}
				n := running.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Duration(w%3) * 100 * time.Microsecond)
				g.RecordServiceTime(200 * time.Microsecond)
				running.Add(-1)
				rel()
				admitted.Add(1)
			}
		}(w)
	}

	// Concurrent control-plane churn between limited shapes.
	stop := make(chan struct{})
	var cwg sync.WaitGroup
	cwg.Add(1)
	go func() {
		defer cwg.Done()
		shapes := []Limits{
			{RatePerSec: 5000, Burst: 50, MaxInFlight: 4, QueueDepth: 32},
			{RatePerSec: 8000, Burst: 100, MaxInFlight: 3, QueueDepth: 16},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := g.SetLimits(shapes[i%len(shapes)]); err != nil {
				t.Error(err)
				return
			}
			_ = g.Stats()
			_ = g.RetryAfter()
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	cwg.Wait()

	if peak.Load() > 4 {
		t.Fatalf("observed %d concurrent admissions, cap was 4", peak.Load())
	}
	s := g.Stats()
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Fatalf("gate not drained: %+v", s)
	}
	if admitted.Load()+rejected.Load() != 16*50 {
		t.Fatalf("admitted %d + rejected %d != 800", admitted.Load(), rejected.Load())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
