package cache

import (
	"fmt"
	"sync"
	"testing"
)

// A nil cache (capacity 0) must be a safe disabled cache: every operation
// is a no-op and Stats stays zero.
func TestDisabledCache(t *testing.T) {
	c := New[int](0)
	if c != nil {
		t.Fatal("New(0) must return the nil disabled cache")
	}
	c.Put(Key{1, 0, 1}, 42)
	if _, ok := c.Get(Key{1, 0, 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
	c.Flush()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("disabled cache stats %+v, want zero", st)
	}
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Fatal("disabled cache has size")
	}
}

// Basic hit/miss behavior and counter accounting.
func TestGetPutCounters(t *testing.T) {
	c := New[string](16)
	k := Key{Version: 3, S: 0, T: 5}
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "res")
	v, ok := c.Get(k)
	if !ok || v != "res" {
		t.Fatalf("got (%q, %v), want (res, true)", v, ok)
	}
	// A different version of the same pair must miss.
	if _, ok := c.Get(Key{Version: 4, S: 0, T: 5}); ok {
		t.Fatal("version 4 hit a version 3 entry")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 || st.Capacity != 16 {
		t.Fatalf("stats %+v, want 1 hit / 2 misses / 1 entry / cap 16", st)
	}
}

// The budget must hold under overflow, evicting least-recently-used
// entries per shard, and recently touched entries must survive.
func TestLRUEviction(t *testing.T) {
	// Single-shard cache (capacity below shardCount) so global LRU order
	// is exact.
	c := New[int](4)
	for i := 0; i < 4; i++ {
		c.Put(Key{Version: 1, S: i, T: 99}, i)
	}
	// Touch entry 0 so entry 1 is now the LRU victim.
	if _, ok := c.Get(Key{Version: 1, S: 0, T: 99}); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	c.Put(Key{Version: 1, S: 4, T: 99}, 4)
	if c.Len() != 4 {
		t.Fatalf("len %d, want 4 (budget held)", c.Len())
	}
	if _, ok := c.Get(Key{Version: 1, S: 1, T: 99}); ok {
		t.Fatal("LRU entry 1 survived overflow")
	}
	if _, ok := c.Get(Key{Version: 1, S: 0, T: 99}); !ok {
		t.Fatal("recently used entry 0 evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions %d, want 1", st.Evictions)
	}
}

// Re-putting an existing key must refresh the value without growing.
func TestPutRefresh(t *testing.T) {
	c := New[int](8)
	k := Key{Version: 1, S: 2, T: 3}
	c.Put(k, 10)
	c.Put(k, 20)
	if v, _ := c.Get(k); v != 20 {
		t.Fatalf("got %d, want refreshed 20", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
}

// Flush must drop everything, count invalidations (not evictions), and
// leave the cache usable.
func TestFlush(t *testing.T) {
	c := New[int](64)
	for i := 0; i < 10; i++ {
		c.Put(Key{Version: 1, S: i, T: i + 1}, i)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("len %d after flush", c.Len())
	}
	st := c.Stats()
	if st.Invalidations != 10 || st.Evictions != 0 {
		t.Fatalf("stats %+v, want 10 invalidations, 0 evictions", st)
	}
	c.Put(Key{Version: 2, S: 0, T: 1}, 7)
	if v, ok := c.Get(Key{Version: 2, S: 0, T: 1}); !ok || v != 7 {
		t.Fatal("cache unusable after flush")
	}
}

// The budget must be exact across shards: capacity splits over shards and
// the total never exceeds it.
func TestShardedBudget(t *testing.T) {
	const capacity = 50
	c := New[int](capacity)
	for i := 0; i < 10*capacity; i++ {
		c.Put(Key{Version: uint64(i % 7), S: i, T: i * 31}, i)
	}
	if got := c.Len(); got > capacity {
		t.Fatalf("len %d exceeds budget %d", got, capacity)
	}
	if got := c.Capacity(); got != capacity {
		t.Fatalf("capacity %d, want %d", got, capacity)
	}
}

// Concurrent Get/Put/Flush/Stats from many goroutines; run under -race.
func TestConcurrentAccess(t *testing.T) {
	c := New[int](128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := Key{Version: uint64(g % 3), S: i % 37, T: (i * 13) % 41}
				switch i % 5 {
				case 0:
					c.Put(k, g*1000+i)
				case 4:
					if g == 0 && i%125 == 0 {
						c.Flush()
					}
					c.Stats()
				default:
					if v, ok := c.Get(k); ok && v < 0 {
						t.Errorf("corrupt value %d", v)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses == 0 {
		t.Fatal("no gets recorded")
	}
	if st.Entries > 128 {
		t.Fatalf("budget exceeded: %d entries", st.Entries)
	}
}

// A rebuilt cache (budget change) must keep the cumulative counters
// monotonic via CarryCounters.
func TestCarryCounters(t *testing.T) {
	old := New[int](8)
	old.Put(Key{Version: 1, S: 0, T: 1}, 1)
	old.Get(Key{Version: 1, S: 0, T: 1})
	old.Get(Key{Version: 1, S: 9, T: 9})
	old.Flush()
	next := New[int](16)
	next.CarryCounters(old)
	st := next.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Invalidations != 1 {
		t.Fatalf("carried stats %+v, want 1 hit / 1 miss / 1 invalidation", st)
	}
	if st.Entries != 0 || st.Capacity != 16 {
		t.Fatalf("carried stats %+v: entries/capacity must be the new cache's", st)
	}
	// Nil on either side is a no-op.
	next.CarryCounters(nil)
	New[int](0).CarryCounters(next)
}

// Aggregation across tenant snapshots must sum every counter.
func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Evictions: 3, Invalidations: 4, Entries: 5, Capacity: 6}
	b := Stats{Hits: 10, Misses: 20, Evictions: 30, Invalidations: 40, Entries: 50, Capacity: 60}
	got := a.Add(b)
	want := Stats{Hits: 11, Misses: 22, Evictions: 33, Invalidations: 44, Entries: 55, Capacity: 66}
	if got != want {
		t.Fatalf("Add: %+v, want %+v", got, want)
	}
}

// Values are stored by reference: the same pointer comes back (the
// service layer clones flows itself; the cache must not).
func TestByReference(t *testing.T) {
	type res struct{ flows []int64 }
	c := New[*res](8)
	in := &res{flows: []int64{1, 2, 3}}
	k := Key{Version: 1, S: 0, T: 1}
	c.Put(k, in)
	out, ok := c.Get(k)
	if !ok || out != in {
		t.Fatalf("got %p, want the stored pointer %p", out, in)
	}
}

func TestCounters(t *testing.T) {
	c := New[int](2)
	c.Put(Key{Version: 1, S: 0, T: 1}, 1)
	c.Put(Key{Version: 1, S: 1, T: 2}, 2)
	c.Get(Key{Version: 1, S: 0, T: 1})
	c.Get(Key{Version: 1, S: 9, T: 9})
	c.Put(Key{Version: 1, S: 2, T: 3}, 3) // evicts under budget 2 (same shard set)
	c.Flush()

	full, quick := c.Stats(), c.Counters()
	if quick.Hits != full.Hits || quick.Misses != full.Misses ||
		quick.Evictions != full.Evictions || quick.Invalidations != full.Invalidations {
		t.Fatalf("Counters() = %+v disagrees with Stats() = %+v", quick, full)
	}
	if quick.Entries != 0 || quick.Capacity != 0 {
		t.Fatalf("Counters() must leave Entries/Capacity zero, got %+v", quick)
	}

	var nilCache *Cache[int]
	if got := nilCache.Counters(); got != (Stats{}) {
		t.Fatalf("nil cache Counters() = %+v, want zero", got)
	}
}

func BenchmarkCacheGetHit(b *testing.B) {
	c := New[int](1024)
	keys := make([]Key, 256)
	for i := range keys {
		keys[i] = Key{Version: 1, S: i, T: i + 1}
		c.Put(keys[i], i)
	}
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			c.Get(keys[i%len(keys)])
			i++
		}
	})
	b.ReportMetric(float64(c.Stats().Hits)/float64(b.N), "hit_frac")
}

func ExampleCache() {
	c := New[string](4)
	c.Put(Key{Version: 1, S: 0, T: 3}, "certified")
	v, ok := c.Get(Key{Version: 1, S: 0, T: 3})
	fmt.Println(v, ok)
	_, stale := c.Get(Key{Version: 2, S: 0, T: 3}) // swapped network: new version
	fmt.Println(stale)
	// Output:
	// certified true
	// false
}
