package cache

import "testing"

// Rekey must migrate survivors to the new version, drop the selected
// entries (counting them as invalidations), and leave other versions
// untouched.
func TestRekeySelective(t *testing.T) {
	c := New[int](64)
	for i := 0; i < 8; i++ {
		c.Put(Key{Version: 1, S: i, T: 99}, i)
	}
	c.Put(Key{Version: 2, S: 0, T: 99}, 1000)

	// Drop odd-S entries of version 1.
	c.Rekey(1, 3, func(k Key, v int) bool { return k.S%2 == 1 })

	for i := 0; i < 8; i++ {
		if _, ok := c.Get(Key{Version: 1, S: i, T: 99}); ok {
			t.Fatalf("entry S=%d still reachable under the old version", i)
		}
		v, ok := c.Get(Key{Version: 3, S: i, T: 99})
		if i%2 == 0 {
			if !ok || v != i {
				t.Fatalf("survivor S=%d: got (%d, %v), want (%d, true)", i, v, ok, i)
			}
		} else if ok {
			t.Fatalf("dropped entry S=%d reachable under the new version", i)
		}
	}
	// The unrelated version is untouched.
	if v, ok := c.Get(Key{Version: 2, S: 0, T: 99}); !ok || v != 1000 {
		t.Fatal("Rekey disturbed an entry of another version")
	}
	if st := c.Stats(); st.Invalidations != 4 {
		t.Fatalf("Invalidations = %d, want 4", st.Invalidations)
	}
}

// Edge cases: nil cache, from == to, and nil drop (everything survives).
func TestRekeyEdgeCases(t *testing.T) {
	var nilCache *Cache[int]
	nilCache.Rekey(1, 2, nil) // must not panic

	c := New[int](16)
	c.Put(Key{Version: 1, S: 0, T: 1}, 7)
	c.Rekey(1, 1, func(Key, int) bool { return true })
	if _, ok := c.Get(Key{Version: 1, S: 0, T: 1}); !ok {
		t.Fatal("Rekey(from == to) must be a no-op")
	}
	c.Rekey(1, 2, nil)
	if v, ok := c.Get(Key{Version: 2, S: 0, T: 1}); !ok || v != 7 {
		t.Fatal("nil drop must keep every entry")
	}
	if st := c.Stats(); st.Invalidations != 0 {
		t.Fatalf("Invalidations = %d, want 0", st.Invalidations)
	}
}
