// Package cache is the certified-result cache behind the multi-tenant
// service layer: a sharded, concurrency-safe LRU keyed by
// (network version, source, sink).
//
// The flow pipeline's answers are exact and deterministic — a certified
// (value, cost, flows) triple for a terminal pair is a pure function of
// the network and the session seed — so the service layer may serve a
// previously certified result without re-running the interior-point
// method, provided the network has not changed since. The Key therefore
// carries the owning handle's monotonic version: swapping a network bumps
// the version, which makes every stale entry unreachable even before the
// owner calls Flush.
//
// Invariants:
//
//   - Concurrency-safe: Get/Put/Flush/Stats may be called from any number
//     of goroutines. Contention is bounded by sharding — a splitmix64
//     finalizer over the key picks the shard, and each shard serializes
//     on its own mutex (the same deterministic routing idiom as
//     internal/pool's terminal-pair router).
//   - Bounded: the entry budget is fixed at construction and split evenly
//     across shards; each shard evicts its least-recently-used entry on
//     overflow. A budget of 0 constructs a nil cache on which every
//     operation is a cheap no-op, so callers need no disabled-path
//     branching.
//   - Observable: Stats snapshots hits, misses, evictions (budget
//     pressure) and invalidations (Flush) as monotonic counters, plus the
//     current entry count against the budget.
//
// The cache stores values by reference and never copies them; the owner
// decides whether to clone on insert or lookup (the service layer clones
// the flow vector on every hit so callers cannot corrupt cached results).
package cache
