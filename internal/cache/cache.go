package cache

import (
	"sync"
	"sync/atomic"
)

// Key identifies one certified result: the owning network's monotonic
// version plus the terminal pair. Version participates in the key so that
// entries certified against a swapped-out network can never be returned
// for the new one, independent of when the owner flushes.
type Key struct {
	Version uint64
	S, T    int
}

// Stats is a point-in-time snapshot of one cache's counters.
type Stats struct {
	// Hits and Misses partition the Get calls; Evictions counts entries
	// dropped by budget pressure and Invalidations entries dropped by
	// Flush. All four are cumulative.
	Hits, Misses, Evictions, Invalidations int64
	// Entries is the current entry count; Capacity the fixed budget
	// (0 for a disabled cache).
	Entries, Capacity int
}

// entry is one cached value threaded onto its shard's intrusive LRU list
// (head = most recent, tail = next eviction victim).
type entry[V any] struct {
	key        Key
	val        V
	prev, next *entry[V]
}

// shard is one independently locked slice of the key space.
type shard[V any] struct {
	mu         sync.Mutex
	items      map[Key]*entry[V]
	head, tail *entry[V]
	cap        int
}

// Cache is a sharded LRU of certified results. The zero value and the nil
// pointer are valid disabled caches: Get always misses, Put and Flush are
// no-ops, Stats is zero. Construct with New.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64

	hits, misses, evictions, invalidations atomic.Int64
}

// shardCount is the fixed shard fan-out for caches large enough to split
// (power of two so the router can mask instead of mod).
const shardCount = 8

// New builds a cache bounded to capacity entries in total. A capacity
// ≤ 0 returns nil — the valid disabled cache — so a single construction
// site implements the "0 disables" contract.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		return nil
	}
	n := shardCount
	if capacity < n {
		n = 1
	}
	c := &Cache[V]{shards: make([]shard[V], n), mask: uint64(n - 1)}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i] = shard[V]{items: make(map[Key]*entry[V], sc), cap: sc}
	}
	return c
}

// shardFor routes a key with a splitmix64 finalizer over its packed
// fields — deterministic across processes, like the pool's pair router.
func (c *Cache[V]) shardFor(k Key) *shard[V] {
	x := k.Version*0x9e3779b97f4a7c15 + uint64(uint32(k.S))<<32 | uint64(uint32(k.T))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return &c.shards[x&c.mask]
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache[V]) Get(k Key) (v V, ok bool) {
	if c == nil {
		return v, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if ok {
		s.moveToFront(e)
		v = e.val
	}
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put inserts (or refreshes) k → v, evicting the shard's least recently
// used entry if the insert overflows the budget.
func (c *Cache[V]) Put(k Key, v V) {
	if c == nil {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		e.val = v
		s.moveToFront(e)
		s.mu.Unlock()
		return
	}
	evicted := 0
	for len(s.items) >= s.cap && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.items, victim.key)
		evicted++
	}
	e := &entry[V]{key: k, val: v}
	s.items[k] = e
	s.pushFront(e)
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

// Rekey migrates the entries of version from to version to, dropping the
// ones drop selects — the selective-invalidation hook behind arc-level
// patches: a patch bumps the owner's version, and instead of flushing the
// whole tenant, the owner re-keys the entries whose certified results
// survive the mutation and drops only the invalidated ones (counted as
// invalidations, like Flush). Entries of other versions are untouched.
//
// drop is called once per matching entry, under the entry's shard lock: it
// must be fast, must not call back into the cache, and must be a pure
// function of the key and value. Survivors are re-inserted most recently
// used. No-op on a nil cache, when from == to, or with a nil drop (then
// every entry survives).
func (c *Cache[V]) Rekey(from, to uint64, drop func(Key, V) bool) {
	if c == nil || from == to {
		return
	}
	type moved struct {
		k Key
		v V
	}
	var keep []moved
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for k, e := range s.items {
			if k.Version != from {
				continue
			}
			s.unlink(e)
			delete(s.items, k)
			if drop != nil && drop(k, e.val) {
				dropped++
			} else {
				keep = append(keep, moved{Key{Version: to, S: k.S, T: k.T}, e.val})
			}
		}
		s.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
	}
	for _, m := range keep {
		c.Put(m.k, m.v)
	}
}

// Flush drops every entry (whole-tenant invalidation on swap or
// deregistration), counting them as invalidations rather than evictions.
func (c *Cache[V]) Flush() {
	if c == nil {
		return
	}
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		dropped += len(s.items)
		s.items = make(map[Key]*entry[V])
		s.head, s.tail = nil, nil
		s.mu.Unlock()
	}
	if dropped > 0 {
		c.invalidations.Add(int64(dropped))
	}
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// Capacity returns the fixed entry budget (0 when disabled).
func (c *Cache[V]) Capacity() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		n += c.shards[i].cap
	}
	return n
}

// CarryCounters seeds c's cumulative counters from another cache's, so
// that a rebuilt cache (a budget change on tenant swap) keeps the
// monotonic hit/miss/eviction/invalidation history. No-op when either
// side is the nil disabled cache.
func (c *Cache[V]) CarryCounters(from *Cache[V]) {
	if c == nil || from == nil {
		return
	}
	c.hits.Store(from.hits.Load())
	c.misses.Store(from.misses.Load())
	c.evictions.Store(from.evictions.Load())
	c.invalidations.Store(from.invalidations.Load())
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Entries:       c.Len(),
		Capacity:      c.Capacity(),
	}
}

// Add accumulates another snapshot into s (service-level aggregation).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Hits:          s.Hits + o.Hits,
		Misses:        s.Misses + o.Misses,
		Evictions:     s.Evictions + o.Evictions,
		Invalidations: s.Invalidations + o.Invalidations,
		Entries:       s.Entries + o.Entries,
		Capacity:      s.Capacity + o.Capacity,
	}
}

// pushFront links e as the most recently used entry.
func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

// unlink removes e from the list.
func (s *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e's recency.
func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

// Counters snapshots only the lock-free cumulative counters — Entries
// and Capacity stay zero. Metric scrapes that run at high frequency can
// use it to avoid Len's walk over every shard lock; the full Stats is
// still the right call for user-facing snapshots.
func (c *Cache[V]) Counters() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
	}
}
