package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefLatencyBuckets are the default upper bounds (seconds) for latency
// histograms. They span cache hits (sub-microsecond) through cold
// large-instance solves (tens of seconds).
var DefLatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30,
}

// A Registry holds a fixed set of metric families. Families are
// registered once, at setup; recording through the returned instruments
// is safe for concurrent use and allocation-free.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family is one metric family: a name, HELP/TYPE metadata, a label
// schema and the set of recorded children (one per label-value tuple).
type family struct {
	name    string
	help    string
	typ     string // "counter" | "gauge" | "histogram"
	labels  []string
	buckets []float64 // histogram upper bounds, ascending, no +Inf

	// collect, when non-nil, makes this a scrape-time family: instead
	// of storing children it is invoked at encode time to emit samples
	// synthesized from external state.
	collect func(emit func(value float64, labelValues ...string))

	mu       sync.Mutex
	children map[string]*child
}

// child holds the sample state for one label-value tuple.
type child struct {
	values []string

	count   atomic.Int64   // counter value
	bits    atomic.Uint64  // gauge value (float64 bits)
	counts  []atomic.Int64 // histogram bucket counts; last entry is +Inf
	sumBits atomic.Uint64  // histogram sum (float64 bits)
}

func (r *Registry) register(name, help, typ string, buckets []float64, labels []string) *family {
	checkName(name, "metric")
	for _, l := range labels {
		checkName(l, "label")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.fams[name]; dup {
		panic("telemetry: duplicate metric family " + name)
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   labels,
		buckets:  normalizeBuckets(buckets),
		children: make(map[string]*child),
	}
	r.fams[name] = f
	return f
}

func checkName(s, what string) {
	if s == "" {
		panic("telemetry: empty " + what + " name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic("telemetry: invalid " + what + " name " + strconv.Quote(s))
		}
	}
}

func normalizeBuckets(b []float64) []float64 {
	out := make([]float64, 0, len(b))
	for _, ub := range b {
		if !math.IsInf(ub, +1) && !math.IsNaN(ub) {
			out = append(out, ub)
		}
	}
	sort.Float64s(out)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			panic("telemetry: duplicate histogram bucket bound")
		}
	}
	return out
}

func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s expects %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{values: append([]string(nil), values...)}
	if f.typ == "histogram" {
		c.counts = make([]atomic.Int64, len(f.buckets)+1)
	}
	f.children[key] = c
	return c
}

// Counter registers an unlabeled, monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, "counter", nil, nil)
	return &Counter{f.child(nil)}
}

// CounterVec registers a counter family split by the given labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, "counter", nil, labels)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, "gauge", nil, nil)
	return &Gauge{f.child(nil)}
}

// GaugeVec registers a gauge family split by the given labels.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, "gauge", nil, labels)}
}

// Histogram registers an unlabeled fixed-bucket histogram. A nil
// buckets slice uses DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.register(name, help, "histogram", buckets, nil)
	return &Histogram{c: f.child(nil), buckets: f.buckets}
}

// HistogramVec registers a histogram family split by the given labels.
// A nil buckets slice uses DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{r.register(name, help, "histogram", buckets, labels)}
}

// CollectFunc registers a scrape-time family: collect is invoked during
// WritePrometheus and emits each sample through its callback. Use it for
// values synthesized from existing stats structs (cache, pool, store)
// rather than recorded on the hot path. typ must be "counter" or
// "gauge". The emit callback must be called with exactly len(labels)
// label values, in registration order, and only from within collect.
func (r *Registry) CollectFunc(name, help, typ string, labels []string, collect func(emit func(value float64, labelValues ...string))) {
	if typ != "counter" && typ != "gauge" {
		panic("telemetry: CollectFunc type must be counter or gauge, got " + typ)
	}
	f := r.register(name, help, typ, nil, labels)
	f.collect = collect
}

// Counter is a monotonically increasing counter.
type Counter struct{ c *child }

// Inc adds 1.
func (c *Counter) Inc() { c.c.count.Add(1) }

// Add adds n, which must be non-negative.
func (c *Counter) Add(n int64) { c.c.count.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.c.count.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the given label values, creating it on
// first use. The returned pointer is stable: cache it at setup and the
// hot path performs no map lookups.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &Counter{v.f.child(labelValues)}
}

// Gauge is a value that can go up and down.
type Gauge struct{ c *child }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.c.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { addFloat(&g.c.bits, d) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.c.bits.Load()) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values (see CounterVec.With).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &Gauge{v.f.child(labelValues)}
}

// Histogram is a fixed-bucket histogram of float64 observations
// (conventionally seconds).
type Histogram struct {
	c       *child
	buckets []float64
}

// Observe records one observation: a bounded bucket scan plus two
// atomic operations.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.c.counts[i].Add(1)
	addFloat(&h.c.sumBits, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.c.counts {
		n += h.c.counts[i].Load()
	}
	return n
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values (see
// CounterVec.With).
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &Histogram{c: v.f.child(labelValues), buckets: v.f.buckets}
}

func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4). Families are sorted by name
// and children by label values, so the output is deterministic; HELP
// and TYPE header lines are emitted even for families with no samples,
// making the exposed name/type set independent of traffic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b []byte
	for _, f := range fams {
		b = f.encode(b[:0])
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) encode(b []byte) []byte {
	b = append(b, "# HELP "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, f.help)
	b = append(b, "\n# TYPE "...)
	b = append(b, f.name...)
	b = append(b, ' ')
	b = append(b, f.typ...)
	b = append(b, '\n')

	if f.collect != nil {
		f.collect(func(value float64, labelValues ...string) {
			if len(labelValues) != len(f.labels) {
				panic(fmt.Sprintf("telemetry: %s collect emitted %d label values, want %d",
					f.name, len(labelValues), len(f.labels)))
			}
			b = appendSample(b, f.name, f.labels, labelValues, "", value)
		})
		return b
	}

	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	for _, c := range children {
		switch f.typ {
		case "counter":
			b = appendSample(b, f.name, f.labels, c.values, "", float64(c.count.Load()))
		case "gauge":
			b = appendSample(b, f.name, f.labels, c.values, "", math.Float64frombits(c.bits.Load()))
		case "histogram":
			b = c.encodeHistogram(b, f)
		}
	}
	return b
}

func (c *child) encodeHistogram(b []byte, f *family) []byte {
	var cum int64
	for i, ub := range f.buckets {
		cum += c.counts[i].Load()
		b = appendSample(b, f.name+"_bucket", f.labels, c.values,
			strconv.FormatFloat(ub, 'g', -1, 64), float64(cum))
	}
	cum += c.counts[len(f.buckets)].Load()
	b = appendSample(b, f.name+"_bucket", f.labels, c.values, "+Inf", float64(cum))
	b = appendSample(b, f.name+"_sum", f.labels, c.values, "",
		math.Float64frombits(c.sumBits.Load()))
	b = appendSample(b, f.name+"_count", f.labels, c.values, "", float64(cum))
	return b
}

// appendSample writes one `name{labels} value` line. le, when non-empty,
// is appended as the trailing le="..." bucket label.
func appendSample(b []byte, name string, labels, values []string, le string, v float64) []byte {
	b = append(b, name...)
	if len(labels) > 0 || le != "" {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, l...)
			b = append(b, '=', '"')
			b = appendEscapedLabel(b, values[i])
			b = append(b, '"')
		}
		if le != "" {
			if len(labels) > 0 {
				b = append(b, ',')
			}
			b = append(b, `le="`...)
			b = append(b, le...)
			b = append(b, '"')
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = appendFloat(b, v)
	return append(b, '\n')
}

func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, +1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		case '"':
			b = append(b, `\"`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}
