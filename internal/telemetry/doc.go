// Package telemetry is a zero-dependency, allocation-conscious metrics
// registry with a Prometheus text-format encoder.
//
// A Registry holds metric families — counters, gauges and fixed-bucket
// latency histograms, each optionally split by a small set of labels —
// and renders them in the Prometheus text exposition format (version
// 0.0.4) via WritePrometheus. Families declare their HELP and TYPE at
// registration, and the encoder always emits those header lines even
// for families that have recorded no samples yet, so the set of metric
// names and types exposed by a process is fixed at startup and can be
// golden-file tested.
//
// Hot-path instruments are built for the solve fast path: Counter.Add
// and Gauge.Set are single atomic operations, Histogram.Observe is a
// bounded bucket scan plus two atomic adds, and vec children returned
// by With are stable pointers the caller caches once, so steady-state
// recording performs no map lookups and no allocation.
//
// The package also issues compact per-request trace IDs (NewTraceID)
// and threads them through context.Context (WithTraceID, TraceID) so
// a request can be correlated across structured logs, Stats and error
// responses.
package telemetry
