package telemetry

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")

	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
}

func TestVecChildrenStable(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_solves_total", "solves", "tenant", "cache")
	a := v.With("alpha", "hit")
	b := v.With("alpha", "hit")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Fatalf("children for identical labels not shared: %d, %d", a.Value(), b.Value())
	}
	other := v.With("beta", "hit")
	if other.Value() != 0 {
		t.Fatalf("distinct labels share state: %d", other.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.01"} 1`,
		`test_latency_seconds_bucket{le="0.1"} 2`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		`test_latency_seconds_count 4`,
		`test_latency_seconds_sum 5.555`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_b_total", "b counter", "tenant")
	v.With("t\"x\\y\nz").Inc()
	r.Gauge("test_a", "a gauge\nwith newline").Set(math.Inf(1))
	r.Histogram("test_empty_seconds", "never observed", []float64{1})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	// Families sorted by name, HELP directly before TYPE.
	ia := strings.Index(out, "# HELP test_a ")
	ib := strings.Index(out, "# HELP test_b_total ")
	ie := strings.Index(out, "# HELP test_empty_seconds ")
	if ia < 0 || ib < 0 || ie < 0 || !(ia < ib && ib < ie) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	// Headers present even for the never-observed histogram, whose
	// unlabeled child emits a zero-valued skeleton so scrapes see a
	// consistent series set from the first request on.
	for _, want := range []string{
		"# TYPE test_a gauge",
		"# TYPE test_b_total counter",
		"# TYPE test_empty_seconds histogram",
		`a gauge\nwith newline`,
		"test_a +Inf",
		`test_b_total{tenant="t\"x\\y\nz"} 1`,
		`test_empty_seconds_bucket{le="1"} 0`,
		`test_empty_seconds_bucket{le="+Inf"} 0`,
		"test_empty_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCollectFunc(t *testing.T) {
	r := NewRegistry()
	depth := 3.0
	r.CollectFunc("test_queue_depth", "queue depth", "gauge", []string{"tenant"},
		func(emit func(float64, ...string)) {
			emit(depth, "alpha")
			emit(0, "beta")
		})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE test_queue_depth gauge",
		`test_queue_depth{tenant="alpha"} 3`,
		`test_queue_depth{tenant="beta"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	h := r.HistogramVec("test_lat_seconds", "l", nil, "tenant")
	g := r.Gauge("test_g", "g")

	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			child := h.With("tenant")
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				child.Observe(float64(i%10) * 1e-4)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := g.Value(); got != workers*each {
		t.Fatalf("gauge = %g, want %d", got, workers*each)
	}
	if got := h.With("tenant").Count(); got != workers*each {
		t.Fatalf("histogram count = %d, want %d", got, workers*each)
	}
}

func TestTraceIDs(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 10000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		for _, c := range id {
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("trace ID %q not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q after %d draws", id, i)
		}
		seen[id] = true
	}

	ctx := WithTraceID(context.Background(), "deadbeefdeadbeef")
	if got := TraceID(ctx); got != "deadbeefdeadbeef" {
		t.Fatalf("TraceID = %q", got)
	}
	if got := TraceID(context.Background()); got != "" {
		t.Fatalf("TraceID on empty ctx = %q, want empty", got)
	}
}
