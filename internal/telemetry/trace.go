package telemetry

import (
	"context"
	"os"
	"sync/atomic"
	"time"
)

// Trace IDs are 16-hex-character tokens minted at the HTTP boundary and
// threaded through context so one request can be correlated across
// structured logs, solve Stats and error responses. They are unique
// within a process run and seeded from wall time and pid so that IDs
// from successive runs of the same binary do not collide in log
// aggregation.

var traceState atomic.Uint64

func init() {
	traceState.Store(uint64(time.Now().UnixNano())*0x9E3779B97F4A7C15 ^
		uint64(os.Getpid())<<32)
}

// NewTraceID returns a fresh 16-character lowercase-hex trace ID. It is
// safe for concurrent use and does not allocate beyond the returned
// string.
func NewTraceID() string {
	// splitmix64: counter increment by the golden-ratio constant, then
	// finalization mix; distinct counters map to distinct outputs.
	x := traceState.Add(0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31

	const hex = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hex[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

type traceKey struct{}

// WithTraceID returns a context carrying the given trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "" if none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}
