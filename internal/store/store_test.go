package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bcclap/internal/graph"
)

func testArcs() (int, []graph.Arc) {
	return 4, []graph.Arc{
		{From: 0, To: 1, Cap: 5, Cost: 2},
		{From: 1, To: 2, Cap: 3, Cost: 0},
		{From: 2, To: 3, Cap: 7, Cost: 1},
		{From: 0, To: 2, Cap: 2, Cost: 4},
	}
}

func testOpts() TenantOpts {
	return TenantOpts{Backend: "dense", Seed: 42, Tol: 0.25, Retries: 5, Pool: 2, Shards: 2, CacheSize: 64, CacheSizeSet: true}
}

// regRecord builds a register record for one tenant.
func regRecord(name string) Record {
	n, arcs := testArcs()
	return Record{Type: RecRegister, Name: name, Version: 1, Opts: testOpts(), N: n, Arcs: arcs}
}

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// Every record type must survive encode → decode unchanged.
func TestRecordRoundTrip(t *testing.T) {
	n, arcs := testArcs()
	records := []Record{
		{LSN: 1, Type: RecRegister, Name: "a", Version: 1, Opts: testOpts(), N: n, Arcs: arcs},
		{LSN: 2, Type: RecSwap, Name: "b", Version: 7, Opts: TenantOpts{Tol: 1e-9}, N: 2, Arcs: arcs[:1]},
		{LSN: 3, Type: RecPatch, Name: "c", Version: 3, Deltas: []graph.ArcDelta{{Arc: 0, CapDelta: -1, CostDelta: 9}, {Arc: 3, CapDelta: 2}}},
		{LSN: 4, Type: RecDeregister, Name: "d", Version: 5},
	}
	for _, rec := range records {
		got, err := DecodeRecord(encodeRecord(nil, &rec))
		if err != nil {
			t.Fatalf("%s: %v", rec.Type, err)
		}
		if !reflect.DeepEqual(*got, rec) {
			t.Fatalf("%s round trip:\n got %+v\nwant %+v", rec.Type, *got, rec)
		}
	}
}

// The full lifecycle must fold correctly and survive close + reopen, with
// every tenant coming back at its exact version, patch count, options and
// arc list.
func TestLifecycleReopen(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for _, rec := range []Record{
		regRecord("alpha"),
		regRecord("beta"),
		{Type: RecPatch, Name: "alpha", Version: 2, Deltas: []graph.ArcDelta{{Arc: 0, CapDelta: 3, CostDelta: -1}}},
		{Type: RecSwap, Name: "beta", Version: 2, Opts: testOpts(), N: 2, Arcs: []graph.Arc{{From: 1, To: 0, Cap: 9, Cost: 9}}},
		regRecord("gamma"),
		{Type: RecDeregister, Name: "gamma", Version: 1},
	} {
		if err := l.Append(rec); err != nil {
			t.Fatalf("append %s %q: %v", rec.Type, rec.Name, err)
		}
	}
	check := func(l *Log, when string) {
		t.Helper()
		ts := l.Tenants()
		if len(ts) != 2 || ts[0].Name != "alpha" || ts[1].Name != "beta" {
			t.Fatalf("%s: tenants = %+v", when, ts)
		}
		a, b := ts[0], ts[1]
		if a.Version != 2 || a.Patches != 1 {
			t.Fatalf("%s: alpha version=%d patches=%d", when, a.Version, a.Patches)
		}
		if a.Arcs[0].Cap != 8 || a.Arcs[0].Cost != 1 {
			t.Fatalf("%s: alpha arc 0 = %+v (patch not folded)", when, a.Arcs[0])
		}
		if b.Version != 2 || b.N != 2 || len(b.Arcs) != 1 || b.Arcs[0].Cap != 9 {
			t.Fatalf("%s: beta = %+v (swap not folded)", when, b)
		}
		if a.Opts != testOpts() {
			t.Fatalf("%s: alpha opts = %+v", when, a.Opts)
		}
	}
	check(l, "before close")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, Options{})
	check(l2, "after reopen")
}

// Invalid records must be rejected before touching the WAL: duplicate
// register, mutations of unknown tenants, bad patches.
func TestAppendValidation(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{})
	if err := l.Append(regRecord("a")); err != nil {
		t.Fatal(err)
	}
	size := l.Stats().WALBytes
	for _, rec := range []Record{
		regRecord("a"),
		{Type: RecSwap, Name: "ghost", Version: 2},
		{Type: RecPatch, Name: "ghost", Version: 2},
		{Type: RecDeregister, Name: "ghost", Version: 1},
		{Type: RecPatch, Name: "a", Version: 2, Deltas: []graph.ArcDelta{{Arc: 99}}},
		{Type: RecordType(9), Name: "a"},
	} {
		if err := l.Append(rec); err == nil {
			t.Fatalf("%s %q accepted", rec.Type, rec.Name)
		}
	}
	if got := l.Stats().WALBytes; got != size {
		t.Fatalf("rejected appends grew the WAL: %d -> %d", size, got)
	}
}

// Automatic snapshots must compact the WAL, prune old generations, and
// recovery must prefer the snapshot and skip pre-snapshot WAL leftovers.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotEvery: 4})
	names := []string{"t0", "t1", "t2", "t3", "t4", "t5"}
	for _, name := range names {
		if err := l.Append(regRecord(name)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Snapshots < 1 {
		t.Fatalf("no automatic snapshot after %d appends (every 4)", len(names))
	}
	// The WAL holds only the records since the last snapshot.
	if st.WALBytes >= 6*100 {
		t.Fatalf("WAL not compacted: %d bytes", st.WALBytes)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Close compacts once more, so reopening replays nothing.
	l2 := openTest(t, dir, Options{SnapshotEvery: 4})
	if got := l2.Stats().Replayed; got != 0 {
		t.Fatalf("replayed %d records despite close-time snapshot", got)
	}
	ts := l2.Tenants()
	if len(ts) != len(names) {
		t.Fatalf("recovered %d tenants, want %d", len(ts), len(names))
	}
	files, err := filepath.Glob(filepath.Join(dir, "snap-*.bcsnap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) > snapKeep {
		t.Fatalf("%d snapshot generations kept, want at most %d", len(files), snapKeep)
	}
}

// SnapshotEvery < 0 disables automatic and close-time compaction: the WAL
// keeps the full history and replays it all.
func TestSnapshotsDisabled(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotEvery: -1})
	for _, name := range []string{"a", "b", "c"} {
		if err := l.Append(regRecord(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "snap-*")); len(files) != 0 {
		t.Fatalf("snapshots written despite SnapshotEvery -1: %v", files)
	}
	l2 := openTest(t, dir, Options{SnapshotEvery: -1})
	if got := l2.Stats().Replayed; got != 3 {
		t.Fatalf("replayed %d, want 3", got)
	}
}

// A corrupted record mid-WAL truncates recovery at the corruption point:
// records before it survive, records after it are gone, and the file is
// cut back so later appends extend a clean log.
func TestCorruptMiddleRecordTruncates(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotEvery: -1})
	for _, name := range []string{"keep1", "keep2", "lost"} {
		if err := l.Append(regRecord(name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, walName)
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the second record's frame and flip a payload byte.
	rest := buf[len(walMagic):]
	_, first, ok := unframe(rest)
	if !ok {
		t.Fatal("first frame unreadable")
	}
	buf[len(walMagic)+first+8] ^= 0xff
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, Options{SnapshotEvery: -1})
	ts := l2.Tenants()
	if len(ts) != 1 || ts[0].Name != "keep1" {
		t.Fatalf("tenants after corruption = %+v, want just keep1", ts)
	}
	if l2.Stats().TruncatedBytes == 0 {
		t.Fatal("corruption not reported as truncation")
	}
	// The log must keep working past the cut.
	if err := l2.Append(regRecord("fresh")); err != nil {
		t.Fatal(err)
	}
	if got := len(l2.Tenants()); got != 2 {
		t.Fatalf("tenants after post-truncation append = %d, want 2", got)
	}
}

// Both sync policies must persist acknowledged records across a clean
// close (SyncNever defers only the fsync, not the write).
func TestSyncPolicies(t *testing.T) {
	for _, p := range []SyncPolicy{SyncAlways, SyncNever} {
		dir := t.TempDir()
		l := openTest(t, dir, Options{Sync: p, SnapshotEvery: -1})
		if err := l.Append(regRecord("x")); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2 := openTest(t, dir, Options{Sync: p, SnapshotEvery: -1})
		if got := len(l2.Tenants()); got != 1 {
			t.Fatalf("sync policy %d: %d tenants after reopen, want 1", p, got)
		}
	}
}

// Operations on a closed log must fail with ErrClosed; Close is
// idempotent.
func TestClosedLog(t *testing.T) {
	l := openTest(t, t.TempDir(), Options{})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.Append(regRecord("a")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
	if err := l.Snapshot(); !errors.Is(err, ErrClosed) {
		t.Fatalf("snapshot on closed log: %v", err)
	}
}

// Crash-recovery property: for EVERY byte-length prefix of a WAL, Open
// must recover exactly the records whose frames are complete in the
// prefix, truncate the rest, and leave a log that accepts new appends.
// This is the torn-write model: a crash can cut the file at any byte.
func TestCrashRecoveryEveryByteOffset(t *testing.T) {
	// Build the reference WAL: register / patch / swap / deregister mixed,
	// no snapshots so the whole history stays in one file.
	src := t.TempDir()
	l := openTest(t, src, Options{SnapshotEvery: -1})
	seq := []Record{
		regRecord("a"),
		regRecord("b"),
		{Type: RecPatch, Name: "a", Version: 2, Deltas: []graph.ArcDelta{{Arc: 1, CapDelta: 2, CostDelta: 1}}},
		{Type: RecSwap, Name: "b", Version: 2, Opts: testOpts(), N: 3, Arcs: []graph.Arc{{From: 0, To: 2, Cap: 4, Cost: 1}}},
		{Type: RecPatch, Name: "b", Version: 3, Deltas: []graph.ArcDelta{{Arc: 0, CapDelta: -3}}},
		{Type: RecDeregister, Name: "a", Version: 2},
	}
	for _, rec := range seq {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Snapshot Tenants() after each record count by refolding prefixes.
	expect := make([][]TenantState, len(seq)+1)
	state := map[string]*TenantState{}
	snap := func() []TenantState {
		out := []TenantState{}
		for _, name := range []string{"a", "b"} {
			if ts, ok := state[name]; ok {
				c := *ts
				c.Arcs = append([]graph.Arc(nil), ts.Arcs...)
				out = append(out, c)
			}
		}
		return out
	}
	expect[0] = snap()
	for i := range seq {
		rec := seq[i]
		rec.LSN = uint64(i + 1)
		if err := checkRecord(state, &rec); err != nil {
			t.Fatal(err)
		}
		applyRecord(state, &rec)
		expect[i+1] = snap()
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(src, walName))
	if err != nil {
		t.Fatal(err)
	}
	// Record-boundary offsets within the file.
	bounds := []int{len(walMagic)}
	rest := full[len(walMagic):]
	for {
		_, size, ok := unframe(rest)
		if !ok {
			break
		}
		bounds = append(bounds, bounds[len(bounds)-1]+size)
		rest = rest[size:]
	}
	if len(bounds) != len(seq)+1 {
		t.Fatalf("found %d frames, want %d", len(bounds)-1, len(seq))
	}

	dir := t.TempDir()
	path := filepath.Join(dir, walName)
	for cut := 0; cut <= len(full); cut++ {
		// How many whole records survive a cut at this byte?
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= cut {
			k++
		}
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{SnapshotEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		got := l.Tenants()
		if !reflect.DeepEqual(got, expect[k]) {
			l.Close()
			t.Fatalf("cut %d (%d records):\n got %+v\nwant %+v", cut, k, got, expect[k])
		}
		// The torn tail must be gone from disk and the log writable.
		if err := l.Append(Record{Type: RecRegister, Name: "probe", Version: 1, N: 2,
			Arcs: []graph.Arc{{From: 0, To: 1, Cap: 1}}}); err != nil {
			// "probe" may collide when it survived a previous iteration's
			// file; it cannot — the file is rewritten every iteration.
			l.Close()
			t.Fatalf("cut %d: post-recovery append: %v", cut, err)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestLimitsJournalReplay covers the RecLimits record: limits set at
// registration survive replay from both the WAL and a snapshot, a
// RecLimits append replaces them without touching the version, and the
// persisted bytes round-trip bit-identically.
func TestLimitsJournalReplay(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SnapshotEvery: -1})

	rec := regRecord("alpha")
	rec.Opts.Limits = TenantLimits{Rate: 1.5, Burst: 3, MaxInFlight: 2, QueueDepth: 4,
		RateSet: true, InFlightSet: true, QueueSet: true}
	if err := l.Append(rec); err != nil {
		t.Fatal(err)
	}

	// A limits change for an unknown tenant must be rejected up front.
	if err := l.Append(Record{Type: RecLimits, Name: "ghost", Version: 1}); err == nil {
		t.Fatal("RecLimits for unknown tenant accepted")
	}

	newLim := TenantLimits{Rate: 9, MaxInFlight: 1, RateSet: true, InFlightSet: true}
	if err := l.Append(Record{Type: RecLimits, Name: "alpha", Version: 1,
		Opts: TenantOpts{Limits: newLim}}); err != nil {
		t.Fatal(err)
	}
	ts := l.Tenants()[0]
	if ts.Version != 1 {
		t.Fatalf("limits change bumped version to %d", ts.Version)
	}
	if ts.Opts.Limits != newLim {
		t.Fatalf("limits = %+v, want %+v", ts.Opts.Limits, newLim)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay from the WAL.
	l = openTest(t, dir, Options{})
	if got := l.Tenants()[0].Opts.Limits; got != newLim {
		t.Fatalf("after WAL replay limits = %+v, want %+v", got, newLim)
	}
	// Fold into a snapshot and replay from that.
	if err := l.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openTest(t, dir, Options{})
	defer l.Close()
	if got := l.Tenants()[0].Opts.Limits; got != newLim {
		t.Fatalf("after snapshot replay limits = %+v, want %+v", got, newLim)
	}
	if st := l.Stats(); st.Replayed != 0 {
		t.Fatalf("snapshot replay still replayed %d WAL records", st.Replayed)
	}
}

// TestFsyncCounter checks Stats.Fsyncs tracks append-path syncs and
// stays zero under SyncNever.
func TestFsyncCounter(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncAlways, SnapshotEvery: -1})
	if err := l.Append(regRecord("alpha")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(regRecord("beta")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != 2 {
		t.Fatalf("Fsyncs = %d, want 2", got)
	}
	l.Close()

	l = openTest(t, t.TempDir(), Options{Sync: SyncNever, SnapshotEvery: -1})
	defer l.Close()
	if err := l.Append(regRecord("alpha")); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Fsyncs; got != 0 {
		t.Fatalf("Fsyncs under SyncNever = %d, want 0", got)
	}
}
