package store

import (
	"reflect"
	"testing"

	"bcclap/internal/graph"
)

// FuzzDecodeRecord throws arbitrary bytes at the WAL record decoder. It
// must never panic, and whenever it accepts an input the decoded record
// must re-encode and decode to the same value (the codec is canonical on
// its image). The seed corpus covers every record type plus truncated
// and perturbed variants, so `go test ./...` already exercises the
// interesting branches without -fuzz.
func FuzzDecodeRecord(f *testing.F) {
	n, arcs := testArcs()
	seeds := []Record{
		{LSN: 1, Type: RecRegister, Name: "alpha", Version: 1, Opts: testOpts(), N: n, Arcs: arcs},
		{LSN: 2, Type: RecSwap, Name: "beta", Version: 9, Opts: TenantOpts{Backend: "csr-pcg", Tol: 1e-6}, N: 2, Arcs: arcs[:1]},
		{LSN: 3, Type: RecPatch, Name: "gamma", Version: 4, Deltas: []graph.ArcDelta{{Arc: 2, CapDelta: -1, CostDelta: 3}}},
		{LSN: 4, Type: RecDeregister, Name: "delta", Version: 2},
		{LSN: 5, Type: RecLimits, Name: "epsilon", Version: 3, Opts: TenantOpts{
			Limits: TenantLimits{Rate: 2.5, Burst: 4, MaxInFlight: 2, QueueDepth: 8,
				RateSet: true, InFlightSet: true, QueueSet: true},
		}},
	}
	for _, rec := range seeds {
		enc := encodeRecord(nil, &rec)
		f.Add(enc)
		// Truncations and single-byte corruptions of valid encodings reach
		// the error paths of every field decoder.
		f.Add(enc[:len(enc)/2])
		if len(enc) > 4 {
			bad := append([]byte(nil), enc...)
			bad[len(bad)/3] ^= 0x80
			f.Add(bad)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		enc := encodeRecord(nil, rec)
		rec2, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("decode/encode/decode diverged:\nfirst  %+v\nsecond %+v", rec, rec2)
		}
	})
}
