package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"bcclap/internal/graph"
)

// SyncPolicy selects when the WAL file is fsynced.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: a record acknowledged to the
	// caller survives power loss. The default.
	SyncAlways SyncPolicy = iota
	// SyncNever leaves flushing to the OS: an append survives process
	// crashes (the write hit the kernel) but a power cut may lose the
	// tail. Snapshots still sync regardless of policy.
	SyncNever
)

// DefaultSnapshotEvery is the automatic compaction cadence: after this
// many WAL appends the log folds the tail into a fresh snapshot.
const DefaultSnapshotEvery = 64

// Options configures a Log.
type Options struct {
	// Sync is the WAL fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SnapshotEvery is the number of appended records between automatic
	// compacted snapshots; 0 selects DefaultSnapshotEvery and a negative
	// value disables automatic (and close-time) snapshots, leaving the
	// full history in the WAL.
	SnapshotEvery int
}

// TenantState is the materialized state of one tenant: the fold of its
// lifecycle records. Version and Patches match the live Service counters
// so a replayed service reports identical per-network stats.
type TenantState struct {
	Name    string
	Version uint64
	Patches uint64
	Opts    TenantOpts
	N       int
	Arcs    []graph.Arc
}

// Stats is a point-in-time snapshot of one Log's counters.
type Stats struct {
	// Dir is the store directory; Tenants the live tenant count.
	Dir     string
	Tenants int
	// NextLSN is the sequence number the next append will carry.
	NextLSN uint64
	// Appends and Snapshots count successful operations since Open;
	// SnapshotErrors counts failed automatic compactions (the append that
	// triggered them still succeeded). Fsyncs counts WAL-file fsyncs on
	// the append path (zero under SyncNever).
	Appends, Snapshots, SnapshotErrors, Fsyncs int64
	// Replayed is the number of WAL records Open folded in on top of the
	// newest valid snapshot; TruncatedBytes the torn tail Open discarded.
	Replayed       int
	TruncatedBytes int64
	// WALBytes is the current WAL file size (magic header included).
	WALBytes int64
}

const (
	walName = "wal.bclog"
	// Format 02 extends TenantOpts with the admission limit set and adds
	// the RecLimits record type. Format 01 stores are not migrated: the
	// magic mismatch fails Open loudly rather than misdecoding.
	walMagic   = "BCWAL02\n"
	snapMagic  = "BCSNAP2\n"
	snapPrefix = "snap-"
	snapSuffix = ".bcsnap"
	// snapKeep is how many snapshot generations survive a compaction: the
	// one just written plus the previous, so a snapshot corrupted by disk
	// trouble (not by a crash — renames are atomic) still leaves a
	// recovery point.
	snapKeep = 2
)

// ErrClosed marks an operation on a closed Log.
var ErrClosed = errors.New("store: log closed")

// Log is a durable, replayable journal of tenant lifecycle records: a
// length-prefixed, CRC-checksummed write-ahead log plus periodically
// compacted snapshots, materializing the fold of both as live tenant
// state. Open recovers by loading the newest valid snapshot, replaying the
// WAL tail and truncating any torn record; Append validates a record
// against the materialized state, makes it durable and then applies it —
// so the state Tenants returns is always exactly what a crash-and-reopen
// would rebuild. All methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	closed  bool
	broken  error // a failed partial write poisoned the WAL tail
	walSize int64
	walRecs int // records appended since the last snapshot
	nextLSN uint64
	state   map[string]*TenantState

	appends, snapshots, snapErrs, fsyncs int64
	replayed                             int
	truncated                            int64
}

// Open opens (creating if needed) the store rooted at dir and recovers its
// state: newest valid snapshot first, then the WAL tail record by record,
// stopping at — and truncating — the first torn or corrupt frame. A record
// that fails to apply to the recovered state (a patch for an unknown
// tenant, say) is real corruption, not a torn tail, and fails Open.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	removeTempFiles(dir)
	state, snapLSN, err := loadNewestSnapshot(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts, state: state, nextLSN: snapLSN + 1}

	path := filepath.Join(dir, walName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	l.f = f
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if len(buf) < len(walMagic) {
		// Empty or torn-at-creation header: start the WAL fresh.
		if err := l.resetWAL(); err != nil {
			f.Close()
			return nil, err
		}
		return l, nil
	}
	if string(buf[:len(walMagic)]) != walMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s is not a bcclap WAL", path)
	}
	good := int64(len(walMagic))
	rest := buf[len(walMagic):]
	maxLSN := snapLSN
	for {
		payload, size, ok := unframe(rest)
		if !ok {
			break
		}
		rec, err := DecodeRecord(payload)
		if err != nil {
			break // corrupt beyond framing: treat as torn from here
		}
		if rec.LSN > maxLSN {
			if err := checkRecord(l.state, rec); err != nil {
				f.Close()
				return nil, fmt.Errorf("store: replay LSN %d (%s %q): %w", rec.LSN, rec.Type, rec.Name, err)
			}
			applyRecord(l.state, rec)
			maxLSN = rec.LSN
			l.replayed++
			l.walRecs++
		}
		// rec.LSN ≤ maxLSN: a pre-snapshot leftover (crash between the
		// snapshot rename and the WAL truncation) — already folded in.
		rest = rest[size:]
		good += int64(size)
	}
	if good < int64(len(buf)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: %w", err)
		}
		l.truncated = int64(len(buf)) - good
	}
	if _, err := f.Seek(good, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	l.walSize = good
	l.nextLSN = maxLSN + 1
	return l, nil
}

// resetWAL rewrites the WAL file as empty (magic header only).
func (l *Log) resetWAL() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := l.f.WriteAt([]byte(walMagic), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := l.f.Seek(int64(len(walMagic)), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	l.walSize = int64(len(walMagic))
	l.walRecs = 0
	return nil
}

// Append assigns the next LSN to rec, validates it against the
// materialized state (so the WAL never holds a record that cannot replay),
// makes it durable per the sync policy and applies it. A failed write
// leaves the state unchanged and rolls the file back to the last record
// boundary; if even the rollback fails the log is poisoned and every later
// append returns the original error.
func (l *Log) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.broken != nil {
		return fmt.Errorf("store: log poisoned by earlier write failure: %w", l.broken)
	}
	rec.LSN = l.nextLSN
	if err := checkRecord(l.state, &rec); err != nil {
		return fmt.Errorf("store: append %s %q: %w", rec.Type, rec.Name, err)
	}
	fr := frame(encodeRecord(nil, &rec))
	// rollback undoes a failed write or sync: the frame (possibly partial,
	// possibly unsynced) must not stay on disk, or a later append would
	// follow garbage — or reuse its LSN with different contents. If the
	// rollback itself fails the log is poisoned.
	rollback := func(cause error) {
		if terr := l.f.Truncate(l.walSize); terr != nil {
			l.broken = cause
			return
		}
		if _, serr := l.f.Seek(l.walSize, 0); serr != nil {
			l.broken = cause
		}
	}
	if _, err := l.f.Write(fr); err != nil {
		rollback(err)
		return fmt.Errorf("store: append: %w", err)
	}
	if l.opts.Sync == SyncAlways {
		if err := l.f.Sync(); err != nil {
			rollback(err)
			return fmt.Errorf("store: append sync: %w", err)
		}
		l.fsyncs++
	}
	applyRecord(l.state, &rec)
	l.walSize += int64(len(fr))
	l.nextLSN++
	l.appends++
	l.walRecs++
	if l.opts.SnapshotEvery > 0 && l.walRecs >= l.opts.SnapshotEvery {
		if err := l.snapshotLocked(); err != nil {
			l.snapErrs++
		}
	}
	return nil
}

// Snapshot forces a compaction: the full tenant state is written to a new
// snapshot file (tmp + atomic rename), older snapshot generations beyond
// snapKeep are pruned, and the WAL is truncated to empty.
func (l *Log) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.snapshotLocked()
}

func (l *Log) snapshotLocked() error {
	lastLSN := l.nextLSN - 1
	payload := encodeSnapshot(nil, lastLSN, l.state)
	body := append([]byte(snapMagic), frame(payload)...)
	final := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", snapPrefix, lastLSN, snapSuffix))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, body, 0o644); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := syncFile(tmp); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: snapshot: %w", err)
	}
	syncDir(l.dir)
	// The snapshot is durable; everything below is cleanup. A crash here
	// leaves stale WAL records (skipped on replay by LSN) or extra
	// snapshot files (pruned next time) — never an unrecoverable state.
	for _, old := range snapshotFiles(l.dir) {
		if lsn, ok := snapshotLSN(old); ok && lsn < lastLSN {
			if keepers := snapshotsAtOrAfter(l.dir, lsn); keepers > snapKeep {
				os.Remove(filepath.Join(l.dir, old))
			}
		}
	}
	if err := l.resetWAL(); err != nil {
		return err
	}
	l.snapshots++
	return nil
}

// Tenants returns deep copies of the live tenant states, sorted by name.
func (l *Log) Tenants() []TenantState {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TenantState, 0, len(l.state))
	for _, ts := range l.state {
		c := *ts
		c.Arcs = slices.Clone(ts.Arcs)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Stats snapshots the log counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Dir:            l.dir,
		Tenants:        len(l.state),
		NextLSN:        l.nextLSN,
		Appends:        l.appends,
		Snapshots:      l.snapshots,
		SnapshotErrors: l.snapErrs,
		Fsyncs:         l.fsyncs,
		Replayed:       l.replayed,
		TruncatedBytes: l.truncated,
		WALBytes:       l.walSize,
	}
}

// Close compacts once more (best-effort, unless snapshots are disabled)
// and closes the WAL file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.walRecs > 0 && l.opts.SnapshotEvery > 0 && l.broken == nil {
		err = l.snapshotLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.closed = true
	return err
}

// checkRecord validates rec against the materialized state without
// mutating it; a record that passes can never fail applyRecord.
func checkRecord(state map[string]*TenantState, rec *Record) error {
	ts := state[rec.Name]
	switch rec.Type {
	case RecRegister:
		if ts != nil {
			return fmt.Errorf("tenant already registered")
		}
	case RecSwap:
		if ts == nil {
			return fmt.Errorf("swap of unknown tenant")
		}
	case RecPatch:
		if ts == nil {
			return fmt.Errorf("patch of unknown tenant")
		}
		if err := graph.CheckDeltas(ts.Arcs, rec.Deltas); err != nil {
			return err
		}
	case RecDeregister:
		if ts == nil {
			return fmt.Errorf("deregister of unknown tenant")
		}
	case RecLimits:
		if ts == nil {
			return fmt.Errorf("limits for unknown tenant")
		}
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// applyRecord folds one checked record into the state.
func applyRecord(state map[string]*TenantState, rec *Record) {
	switch rec.Type {
	case RecRegister:
		state[rec.Name] = &TenantState{
			Name: rec.Name, Version: rec.Version, Opts: rec.Opts,
			N: rec.N, Arcs: slices.Clone(rec.Arcs),
		}
	case RecSwap:
		ts := state[rec.Name]
		ts.Version = rec.Version
		ts.Opts = rec.Opts
		ts.N = rec.N
		ts.Arcs = slices.Clone(rec.Arcs)
	case RecPatch:
		ts := state[rec.Name]
		if err := graph.PatchArcList(ts.Arcs, rec.Deltas); err != nil {
			// checkRecord ran first; an error here is a programming error.
			panic(fmt.Sprintf("store: checked patch failed to apply: %v", err))
		}
		ts.Version = rec.Version
		ts.Patches++
	case RecDeregister:
		delete(state, rec.Name)
	case RecLimits:
		state[rec.Name].Opts.Limits = rec.Opts.Limits
	}
}

// encodeSnapshot appends the snapshot payload: the last folded LSN and
// every tenant, sorted by name for deterministic bytes.
func encodeSnapshot(buf []byte, lastLSN uint64, state map[string]*TenantState) []byte {
	buf = binary.AppendUvarint(buf, lastLSN)
	names := make([]string, 0, len(state))
	for name := range state {
		names = append(names, name)
	}
	slices.Sort(names)
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, name := range names {
		ts := state[name]
		buf = appendString(buf, ts.Name)
		buf = binary.AppendUvarint(buf, ts.Version)
		buf = binary.AppendUvarint(buf, ts.Patches)
		buf = appendOpts(buf, ts.Opts)
		buf = appendDigraph(buf, ts.N, ts.Arcs)
	}
	return buf
}

// decodeSnapshot parses a snapshot payload into (state, lastLSN).
func decodeSnapshot(payload []byte) (map[string]*TenantState, uint64, error) {
	d := &decoder{buf: payload}
	lastLSN := d.uvarint("snapshot lsn")
	n := d.count("tenant count")
	state := make(map[string]*TenantState, n)
	for i := 0; i < n && d.err == nil; i++ {
		ts := &TenantState{}
		ts.Name = d.name()
		ts.Version = d.uvarint("version")
		ts.Patches = d.uvarint("patches")
		ts.Opts = d.opts()
		ts.N, ts.Arcs = d.digraph()
		if d.err == nil {
			if _, dup := state[ts.Name]; dup {
				return nil, 0, d.failf("duplicate tenant %q", ts.Name)
			}
			state[ts.Name] = ts
		}
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if len(d.buf) != 0 {
		return nil, 0, fmt.Errorf("store: snapshot has %d trailing bytes", len(d.buf))
	}
	return state, lastLSN, nil
}

// loadNewestSnapshot scans dir for snapshot files, newest first, and
// returns the first that validates (empty state when none exists or none
// validates — then the WAL alone carries the history).
func loadNewestSnapshot(dir string) (map[string]*TenantState, uint64, error) {
	files := snapshotFiles(dir)
	for i := len(files) - 1; i >= 0; i-- {
		body, err := os.ReadFile(filepath.Join(dir, files[i]))
		if err != nil || len(body) < len(snapMagic) || string(body[:len(snapMagic)]) != snapMagic {
			continue
		}
		payload, _, ok := unframe(body[len(snapMagic):])
		if !ok {
			continue
		}
		state, lastLSN, err := decodeSnapshot(payload)
		if err != nil {
			continue
		}
		return state, lastLSN, nil
	}
	return make(map[string]*TenantState), 0, nil
}

// snapshotFiles lists the snapshot file names in dir, sorted ascending by
// name — and, the LSN being zero-padded hex, ascending by LSN.
func snapshotFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix) {
			out = append(out, name)
		}
	}
	slices.Sort(out)
	return out
}

// snapshotLSN extracts the LSN a snapshot file name encodes.
func snapshotLSN(name string) (uint64, bool) {
	hex := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	lsn, err := strconv.ParseUint(hex, 16, 64)
	return lsn, err == nil
}

// snapshotsAtOrAfter counts snapshot files covering lsn or newer.
func snapshotsAtOrAfter(dir string, lsn uint64) int {
	n := 0
	for _, name := range snapshotFiles(dir) {
		if l, ok := snapshotLSN(name); ok && l >= lsn {
			n++
		}
	}
	return n
}

// removeTempFiles clears half-written snapshot temporaries from a crash.
func removeTempFiles(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

func syncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

// syncDir makes a rename durable (best-effort; some filesystems reject
// directory fsync).
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
