// Package store is the durability subsystem behind the multi-tenant
// service layer: a write-ahead log of tenant lifecycle records plus
// periodically compacted snapshots, from which a restarted process
// rebuilds every registered network, its version and its resolved solver
// configuration — bit-identically, because bcclap results are exact and
// deterministic, so tenant state is a pure fold of the ordered record
// stream (the same log-then-replay discipline that makes replicated state
// machines reconstructible from their journal alone).
//
// On-disk layout (one directory per Log):
//
//   - wal.bclog — an 8-byte magic header followed by framed records. Each
//     frame is [uint32 length][uint32 CRC32-IEEE][payload]; each payload
//     is a varint-encoded Record carrying its LSN, type (register / swap /
//     arc-patch / deregister), tenant name, version and the type-specific
//     body (full digraph + resolved options, or the arc deltas).
//   - snap-<lsn>.bcsnap — a compacted snapshot: the full tenant state as
//     of the named LSN, one framed body behind its own magic, written to a
//     temporary file, fsynced and atomically renamed into place. The last
//     two generations are retained.
//
// Recovery (Open) loads the newest snapshot that validates, replays the
// WAL records with LSNs beyond it, and truncates the tail at the first
// incomplete or checksum-failing frame — a torn write from a crash loses
// at most the unacknowledged record it interrupted. Records whose LSN the
// snapshot already covers are skipped, which makes the crash window
// between a snapshot rename and the WAL truncation harmless.
//
// Invariants:
//
//   - Append-before-effect: Log.Append validates a record against the
//     materialized state, makes it durable (per the SyncPolicy), and only
//     then folds it in — so the WAL never holds a record that cannot
//     replay, and the state Tenants reports is always exactly what a
//     crash-and-reopen would rebuild.
//   - LSNs are strictly increasing across the log's whole lifetime,
//     snapshots included; a failed write or fsync rolls the file back to
//     the previous record boundary (poisoning the log if even that
//     fails) so an LSN is never reused for different bytes.
//   - The decoder (DecodeRecord, shared by the fuzz target) bounds every
//     count against the remaining input and revalidates digraph
//     invariants, so arbitrary bytes error out rather than panic,
//     over-allocate, or produce a record that fails replay.
//
// The package is deliberately ignorant of solvers: it stores names,
// versions, arc lists and the serializable option set (store.TenantOpts).
// The service layer owns the mapping to live solver pools and caches.
package store
