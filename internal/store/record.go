package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"bcclap/internal/graph"
)

// RecordType discriminates the tenant lifecycle events a WAL carries.
type RecordType uint8

const (
	// RecRegister creates a tenant: name, version (always 1), resolved
	// options and the full digraph.
	RecRegister RecordType = iota + 1
	// RecSwap replaces a tenant's digraph and options wholesale, at a new
	// version.
	RecSwap
	// RecPatch applies arc-level capacity/cost deltas to a tenant's
	// digraph, at a new version.
	RecPatch
	// RecDeregister retires a tenant.
	RecDeregister
	// RecLimits replaces a tenant's admission limits. Limits do not
	// affect certified results, so the tenant's version is unchanged.
	RecLimits
)

func (t RecordType) String() string {
	switch t {
	case RecRegister:
		return "register"
	case RecSwap:
		return "swap"
	case RecPatch:
		return "patch"
	case RecDeregister:
		return "deregister"
	case RecLimits:
		return "limits"
	}
	return fmt.Sprintf("RecordType(%d)", uint8(t))
}

// TenantLimits is the serializable per-tenant QoS limit set, holding
// the public option values (WithRateLimit, WithMaxInFlight,
// WithQueueDepth) verbatim; the *Set flags record which options were
// supplied explicitly, so replay re-applies exactly the options the
// caller passed.
type TenantLimits struct {
	Rate        float64
	Burst       int
	MaxInFlight int
	QueueDepth  int
	RateSet     bool
	InFlightSet bool
	QueueSet    bool
}

// TenantOpts is the serializable slice of a tenant's resolved solver
// configuration — everything needed to rebuild the tenant bit-identically
// on replay. Non-serializable options (progress callbacks, round
// simulators, advanced LP/sparsifier parameter structs) are intentionally
// absent: they do not affect certified results.
type TenantOpts struct {
	Backend      string
	Seed         int64
	Tol          float64
	Retries      int
	Pool         int
	Shards       int
	CacheSize    int
	CacheSizeSet bool
	Limits       TenantLimits
}

// Record is one WAL entry: a tenant lifecycle event with the payload its
// type needs. LSN is assigned by Log.Append (strictly increasing across
// the log's lifetime, snapshots included); callers leave it zero.
type Record struct {
	LSN     uint64
	Type    RecordType
	Name    string
	Version uint64

	// Opts, N and Arcs carry the full tenant definition (RecRegister,
	// RecSwap).
	Opts TenantOpts
	N    int
	Arcs []graph.Arc

	// Deltas carries the arc mutations (RecPatch).
	Deltas []graph.ArcDelta
}

// Decoder hard limits: a frame that passed its CRC can still be hostile
// input (the fuzz target feeds arbitrary bytes straight to DecodeRecord),
// so every count is bounded before allocation.
const (
	maxNameLen   = 256
	maxVertices  = 1 << 30
	maxRecordLen = 64 << 20
)

// encodeRecord appends the payload encoding of r to buf.
func encodeRecord(buf []byte, r *Record) []byte {
	buf = binary.AppendUvarint(buf, r.LSN)
	buf = append(buf, byte(r.Type))
	buf = appendString(buf, r.Name)
	buf = binary.AppendUvarint(buf, r.Version)
	switch r.Type {
	case RecRegister, RecSwap:
		buf = appendOpts(buf, r.Opts)
		buf = appendDigraph(buf, r.N, r.Arcs)
	case RecPatch:
		buf = binary.AppendUvarint(buf, uint64(len(r.Deltas)))
		for _, d := range r.Deltas {
			buf = binary.AppendUvarint(buf, uint64(d.Arc))
			buf = binary.AppendVarint(buf, d.CapDelta)
			buf = binary.AppendVarint(buf, d.CostDelta)
		}
	case RecLimits:
		buf = appendLimits(buf, r.Opts.Limits)
	}
	return buf
}

// DecodeRecord parses one WAL record payload (the framed bytes, after the
// length/CRC header). It validates structure exhaustively — string and
// slice lengths against the remaining input, arc endpoints against the
// vertex count, capacities positive — so that a record accepted here
// always replays cleanly; arbitrary input (the fuzz target) errors instead
// of panicking or over-allocating.
func DecodeRecord(payload []byte) (*Record, error) {
	d := &decoder{buf: payload}
	r := &Record{}
	r.LSN = d.uvarint("lsn")
	t := d.byte("type")
	r.Type = RecordType(t)
	if r.Type < RecRegister || r.Type > RecLimits {
		return nil, d.failf("unknown record type %d", t)
	}
	r.Name = d.name()
	r.Version = d.uvarint("version")
	switch r.Type {
	case RecRegister, RecSwap:
		r.Opts = d.opts()
		r.N, r.Arcs = d.digraph()
	case RecPatch:
		k := d.count("delta count")
		if d.err == nil {
			r.Deltas = make([]graph.ArcDelta, k)
			for i := range r.Deltas {
				r.Deltas[i].Arc = int(d.uvarintMax("delta arc", maxVertices*maxVertices))
				r.Deltas[i].CapDelta = d.varint("cap delta")
				r.Deltas[i].CostDelta = d.varint("cost delta")
			}
		}
	case RecLimits:
		r.Opts.Limits = d.limits()
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("store: record has %d trailing bytes", len(d.buf))
	}
	return r, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendOpts(buf []byte, o TenantOpts) []byte {
	buf = appendString(buf, o.Backend)
	buf = binary.AppendVarint(buf, o.Seed)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(o.Tol))
	buf = binary.AppendVarint(buf, int64(o.Retries))
	buf = binary.AppendVarint(buf, int64(o.Pool))
	buf = binary.AppendVarint(buf, int64(o.Shards))
	buf = binary.AppendVarint(buf, int64(o.CacheSize))
	var set byte
	if o.CacheSizeSet {
		set = 1
	}
	buf = append(buf, set)
	return appendLimits(buf, o.Limits)
}

func appendLimits(buf []byte, l TenantLimits) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l.Rate))
	buf = binary.AppendVarint(buf, int64(l.Burst))
	buf = binary.AppendVarint(buf, int64(l.MaxInFlight))
	buf = binary.AppendVarint(buf, int64(l.QueueDepth))
	var set byte
	if l.RateSet {
		set |= 1
	}
	if l.InFlightSet {
		set |= 2
	}
	if l.QueueSet {
		set |= 4
	}
	return append(buf, set)
}

func appendDigraph(buf []byte, n int, arcs []graph.Arc) []byte {
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(arcs)))
	for _, a := range arcs {
		buf = binary.AppendUvarint(buf, uint64(a.From))
		buf = binary.AppendUvarint(buf, uint64(a.To))
		buf = binary.AppendVarint(buf, a.Cap)
		buf = binary.AppendVarint(buf, a.Cost)
	}
	return buf
}

// decoder is a cursor over a record payload with sticky error handling:
// after the first failure every accessor returns zero values, so decode
// call sites stay linear.
type decoder struct {
	buf []byte
	err error
}

func (d *decoder) failf(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("store: "+format, args...)
	}
	return d.err
}

func (d *decoder) byte(field string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.failf("truncated %s", field)
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.failf("bad uvarint %s", field)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) uvarintMax(field string, max uint64) uint64 {
	v := d.uvarint(field)
	if d.err == nil && v > max {
		d.failf("%s %d exceeds limit %d", field, v, max)
		return 0
	}
	return v
}

func (d *decoder) varint(field string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.failf("bad varint %s", field)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// count reads a collection length and bounds it by the remaining input
// (every element encodes to at least one byte), preventing attacker-sized
// allocations.
func (d *decoder) count(field string) int {
	v := d.uvarint(field)
	if d.err == nil && v > uint64(len(d.buf)) {
		d.failf("%s %d exceeds remaining %d bytes", field, v, len(d.buf))
		return 0
	}
	return int(v)
}

func (d *decoder) string(field string, max int) string {
	n := d.count(field + " length")
	if d.err != nil {
		return ""
	}
	if n > max {
		d.failf("%s %d bytes exceeds limit %d", field, n, max)
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) name() string {
	s := d.string("name", maxNameLen)
	if d.err == nil && s == "" {
		d.failf("empty tenant name")
	}
	return s
}

func (d *decoder) opts() TenantOpts {
	var o TenantOpts
	o.Backend = d.string("backend", maxNameLen)
	o.Seed = d.varint("seed")
	if d.err == nil {
		if len(d.buf) < 8 {
			d.failf("truncated tolerance")
		} else {
			o.Tol = math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
			d.buf = d.buf[8:]
		}
	}
	o.Retries = int(d.varint("retries"))
	o.Pool = int(d.varint("pool"))
	o.Shards = int(d.varint("shards"))
	o.CacheSize = int(d.varint("cache size"))
	o.CacheSizeSet = d.byte("cache size set") != 0
	o.Limits = d.limits()
	return o
}

func (d *decoder) limits() TenantLimits {
	var l TenantLimits
	if d.err == nil {
		if len(d.buf) < 8 {
			d.failf("truncated rate limit")
		} else {
			l.Rate = math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
			d.buf = d.buf[8:]
			if math.IsNaN(l.Rate) || math.IsInf(l.Rate, 0) || l.Rate < 0 {
				d.failf("invalid rate limit %v", l.Rate)
			}
		}
	}
	l.Burst = int(d.varint("burst"))
	l.MaxInFlight = int(d.varint("max in-flight"))
	l.QueueDepth = int(d.varint("queue depth"))
	if d.err == nil && (l.Burst < 0 || l.MaxInFlight < 0 || l.QueueDepth < 0) {
		d.failf("negative admission limit")
	}
	set := d.byte("limits set flags")
	if d.err == nil && set > 7 {
		// Reject unknown flag bits so the codec stays canonical on its
		// image (decode∘encode is the identity for accepted inputs).
		d.failf("invalid limits set flags %#x", set)
	}
	l.RateSet = set&1 != 0
	l.InFlightSet = set&2 != 0
	l.QueueSet = set&4 != 0
	return l
}

func (d *decoder) digraph() (int, []graph.Arc) {
	n := int(d.uvarintMax("vertex count", maxVertices))
	m := d.count("arc count")
	if d.err != nil {
		return 0, nil
	}
	arcs := make([]graph.Arc, m)
	for i := range arcs {
		arcs[i].From = int(d.uvarint("arc from"))
		arcs[i].To = int(d.uvarint("arc to"))
		arcs[i].Cap = d.varint("arc cap")
		arcs[i].Cost = d.varint("arc cost")
		if d.err != nil {
			return 0, nil
		}
		// Mirror Digraph.AddArc's invariants so a decoded record can never
		// fail to rebuild its digraph on replay.
		if arcs[i].From < 0 || arcs[i].From >= n || arcs[i].To < 0 || arcs[i].To >= n {
			d.failf("arc %d endpoints (%d,%d) out of range [0,%d)", i, arcs[i].From, arcs[i].To, n)
			return 0, nil
		}
		if arcs[i].From == arcs[i].To {
			d.failf("arc %d is a self-loop at %d", i, arcs[i].From)
			return 0, nil
		}
		if arcs[i].Cap <= 0 {
			d.failf("arc %d has non-positive capacity %d", i, arcs[i].Cap)
			return 0, nil
		}
	}
	return n, arcs
}

// frame prepends the [length][CRC32] header to a payload. The same framing
// guards WAL records and snapshot bodies.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

// unframe validates one frame at the head of buf, returning its payload
// and the total frame size. ok is false when buf holds no complete, CRC-
// clean frame — the torn-tail condition recovery truncates at.
func unframe(buf []byte) (payload []byte, size int, ok bool) {
	if len(buf) < 8 {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if n == 0 || n > maxRecordLen || uint64(len(buf)) < 8+uint64(n) {
		return nil, 0, false
	}
	payload = buf[8 : 8+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, 0, false
	}
	return payload, 8 + int(n), true
}
