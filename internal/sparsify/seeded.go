package sparsify

import (
	"math"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
	"bcclap/internal/spanner"
)

// SeededBCC implements the extension the paper sketches in footnote 4: in
// the Broadcast Congested Clique a designated leader can sample a short
// random seed and broadcast it once (polylogarithmic overhead); every
// vertex then expands the seed with the same pseudorandom function, so the
// *a-priori* sampling of Algorithm 4 becomes directly implementable — both
// endpoints of an edge evaluate the same coin flip locally, and no
// on-the-fly Connect sampling is needed.
//
// The PRF is a splitmix64 hash of (seed, edge id, iteration); the paper
// points at bounded-independence sampling (Doron et al.) for the w.h.p.
// analysis — hash-based expansion exercises the identical communication
// pattern (one seed broadcast, then silence).
func SeededBCC(g *graph.Graph, par Params, seed int64, net *sim.Network) *Result {
	par = par.normalize()
	work := g.Clone()
	m := work.M()
	alive := make([]bool, m)
	for e := 0; e < m; e++ {
		alive[e] = true
	}
	res := &Result{OutDeg: make([]int, g.N())}
	startRounds := 0
	if net != nil {
		startRounds = net.Rounds()
		// The leader broadcasts the O(log²n)-bit seed once.
		net.BeginPhase()
		net.Broadcast(0, 2*sim.BitsForID(g.N())*sim.BitsForID(g.N()), seed)
		net.EndPhase()
	}
	// Spanner computations still run distributed (they are deterministic
	// given the marking bits, which also derive from the shared seed).
	opts := spanner.Options{
		MarkRand: rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
		EdgeRand: rand.New(rand.NewSource(seed ^ 0x27d4eb2f)),
		Net:      net,
	}
	coin := func(edge, iter int) bool {
		h := prf(uint64(seed), uint64(edge), uint64(iter))
		// Keep with probability 1/4: two pseudorandom bits.
		return h&3 == 0
	}
	for it := 0; it < par.Iterations; it++ {
		bundle := spanner.Bundle(work, alive, nil, par.K, par.T, opts)
		res.BundleSizes = append(res.BundleSizes, len(bundle.B))
		for v, d := range bundle.OutDeg {
			res.OutDeg[v] += d
		}
		inB := make(map[int]bool, len(bundle.B))
		for _, e := range bundle.B {
			inB[e] = true
		}
		for e := 0; e < m; e++ {
			if !alive[e] || inB[e] {
				continue
			}
			// Both endpoints evaluate the same shared-seed coin — no
			// broadcast needed for the sampling itself.
			if coin(e, it) {
				work.SetWeight(e, 4*work.Edge(e).W)
			} else {
				alive[e] = false
			}
		}
	}
	res.H = graph.New(g.N())
	for e := 0; e < m; e++ {
		if alive[e] {
			ed := work.Edge(e)
			if _, err := res.H.AddEdge(ed.U, ed.V, ed.W); err != nil {
				panic(err)
			}
			res.KeptEdges = append(res.KeptEdges, e)
		}
	}
	if net != nil {
		res.Rounds = net.Rounds() - startRounds
	}
	return res
}

// prf is a splitmix64-style hash of three words.
func prf(a, b, c uint64) uint64 {
	z := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + c*0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SeedBitsBCC returns the seed size SeededBCC broadcasts: Θ(log²n) bits as
// in footnote 4's "random seed of polylogarithmic size".
func SeedBitsBCC(n int) int {
	b := sim.BitsForID(n)
	return 2 * b * b
}

// mathLogGuard is referenced by tests that sanity-check parameter growth.
var _ = math.Log2
