package sparsify

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
)

func TestSeededBCCDeterministicGivenSeed(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	g := graph.RandomConnected(20, 0.4, 3, rnd)
	par := Params{K: 3, T: 1, Iterations: 4}
	a := SeededBCC(g, par, 42, nil)
	b := SeededBCC(g, par, 42, nil)
	if a.H.M() != b.H.M() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.H.M(), b.H.M())
	}
	for i := range a.KeptEdges {
		if a.KeptEdges[i] != b.KeptEdges[i] {
			t.Fatal("same seed, different edge sets — the shared-seed expansion is not deterministic")
		}
	}
	c := SeededBCC(g, par, 43, nil)
	same := a.H.M() == c.H.M()
	if same {
		for i := range a.KeptEdges {
			if a.KeptEdges[i] != c.KeptEdges[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical outputs (suspicious PRF)")
	}
}

func TestSeededBCCMatchesAprioriDistribution(t *testing.T) {
	g := graph.Cycle(8)
	for i := 0; i < 4; i++ {
		if _, err := g.AddEdge(i, i+4, 1); err != nil {
			t.Fatal(err)
		}
	}
	par := Params{K: 2, T: 1, Iterations: 3}
	const trials = 400
	var sizeSeeded, sizeApriori float64
	for i := 0; i < trials; i++ {
		rs := SeededBCC(g, par, int64(i+1), nil)
		ra := Apriori(g, par, rand.New(rand.NewSource(int64(i+1))))
		sizeSeeded += float64(rs.H.M())
		sizeApriori += float64(ra.H.M())
	}
	if d := math.Abs(sizeSeeded-sizeApriori) / trials; d > 0.6 {
		t.Fatalf("seeded mean size %v vs apriori %v", sizeSeeded/trials, sizeApriori/trials)
	}
}

func TestSeededBCCSeedBroadcastCharged(t *testing.T) {
	g := graph.Complete(16)
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBCC})
	if err != nil {
		t.Fatal(err)
	}
	res := SeededBCC(g, Params{K: 3, T: 1, Iterations: 4}, 7, net)
	if res.Rounds <= 0 {
		t.Fatal("no rounds charged")
	}
	if SeedBitsBCC(16) <= 0 {
		t.Fatal("seed bits must be positive")
	}
}

func TestSeededBCCQualityComparableToAdhoc(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	g := graph.RandomConnected(28, 0.5, 2, rnd)
	par := Params{K: 3, T: 3, Iterations: 5}
	seeded := SeededBCC(g, par, 11, nil)
	adhoc := Adhoc(g, par, rand.New(rand.NewSource(11)), nil)
	loS, hiS := Quality(g, seeded.H, 4, rand.New(rand.NewSource(3)))
	loA, hiA := Quality(g, adhoc.H, 4, rand.New(rand.NewSource(3)))
	if loS <= 0 || loA <= 0 {
		t.Fatalf("degenerate quality: seeded [%v,%v], adhoc [%v,%v]", loS, hiS, loA, hiA)
	}
	// The two variants implement the same distribution; their bands should
	// be in the same ballpark (within a generous factor).
	if hiS/loS > 20*(hiA/loA) && hiA/loA > 1.01 {
		t.Fatalf("seeded band [%v,%v] wildly worse than adhoc [%v,%v]", loS, hiS, loA, hiA)
	}
}
