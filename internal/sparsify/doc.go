// Package sparsify implements spectral graph sparsification in the
// Broadcast CONGEST model (Section 3.2 of the paper, Theorem 1.2),
// following the Koutis–Xu framework with the fixed bundle size of Kyng et
// al.:
//
//   - Apriori (Algorithm 4): the baseline that samples surviving edges
//     with probability 1/4 *a priori* in each iteration. Easy in CONGEST,
//     not implementable with broadcasts only.
//   - Adhoc (Algorithm 5): the paper's contribution — edge-existence
//     probabilities are maintained explicitly and evaluated lazily inside
//     the probabilistic-spanner Connect calls, so the outcome of every
//     sample is deducible by both endpoints from broadcasts alone.
//   - SeededBCC: the footnote 4 extension — in the Congested Clique a
//     shared broadcast seed lets every vertex replay the same a-priori
//     coin flips locally.
//
// Lemma 3.3 states that ad-hoc and a-priori sampling produce identically
// distributed outputs; TestLemma33 verifies this empirically, and Theorem
// 1.2 (quality + size + rounds) is validated in the E3 experiment.
//
// Invariants:
//
//   - Determinism in the supplied rand stream: Params plus one *rand.Rand
//     reproduce the sparsifier bit for bit (the Laplacian solver's
//     preprocessing depends on this for session determinism).
//   - The returned sparsifier carries KeptEdges indices into the input
//     graph, so reweighting is auditable edge by edge.
package sparsify
