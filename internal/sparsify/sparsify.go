package sparsify

import (
	"math"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
	"bcclap/internal/sim"
	"bcclap/internal/spanner"
)

// Params controls the sparsifier.
type Params struct {
	// K is the spanner stretch parameter; the paper sets k = ⌈log n⌉ so
	// that n^{1/k} = O(1).
	K int
	// T is the number of spanners per bundle; the paper's proof uses
	// t = 400·log²(n)/ε². That constant is for the w.h.p. union bound —
	// PracticalParams scales it down (see EXPERIMENTS.md, E3/E11).
	T int
	// Iterations is the number of sparsification rounds; the paper uses
	// ⌈log m⌉.
	Iterations int
}

// PaperParams returns the parameters exactly as in Algorithm 5.
func PaperParams(n, m int, eps float64) Params {
	ln := math.Log2(float64(max(2, n)))
	return Params{
		K:          int(math.Ceil(ln)),
		T:          int(math.Ceil(400 * ln * ln / (eps * eps))),
		Iterations: int(math.Ceil(math.Log2(float64(max(2, m))))),
	}
}

// PracticalParams keeps the paper's parameter *shapes* (t ∝ log²n/ε²,
// k = ⌈log n⌉, ⌈log m⌉ iterations) with a constant small enough that
// sparsification actually compresses at experiment scale; the E3 experiment
// reports measured quality against ε for this choice.
func PracticalParams(n, m int, eps float64) Params {
	p := PaperParams(n, m, eps)
	ln := math.Log2(float64(max(2, n)))
	p.T = max(1, int(math.Ceil(0.5*ln/(eps*eps))))
	return p
}

// normalize clamps parameters to usable minima.
func (p Params) normalize() Params {
	if p.K < 1 {
		p.K = 1
	}
	if p.T < 1 {
		p.T = 1
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	return p
}

// Result is a computed sparsifier.
type Result struct {
	// H is the reweighted sparsifier subgraph on the same vertex set.
	H *graph.Graph
	// KeptEdges[i] is the index in the input graph of H's i-th edge.
	KeptEdges []int
	// OutDeg is the orientation guaranteed by Theorem 1.2: every vertex
	// has small out-degree, so H can be made global knowledge quickly.
	OutDeg []int
	// BundleSizes records |B_i| per iteration (diagnostics).
	BundleSizes []int
	// Rounds is the number of simulator rounds consumed (0 when run
	// without a network).
	Rounds int
}

// MaxOutDegree returns the maximum entry of OutDeg.
func (r *Result) MaxOutDegree() int {
	m := 0
	for _, d := range r.OutDeg {
		if d > m {
			m = d
		}
	}
	return m
}

// Adhoc runs SpectralSparsify (Algorithm 5): the Broadcast CONGEST
// algorithm with on-the-fly edge sampling. The input graph is not modified.
func Adhoc(g *graph.Graph, par Params, rnd *rand.Rand, net *sim.Network) *Result {
	par = par.normalize()
	work := g.Clone() // weights are rescaled across iterations
	m := work.M()
	alive := make([]bool, m)
	p := make([]float64, m)
	for e := 0; e < m; e++ {
		alive[e] = true
		p[e] = 1
	}
	res := &Result{OutDeg: make([]int, g.N())}
	startRounds := 0
	if net != nil {
		startRounds = net.Rounds()
	}
	opts := spanner.Options{MarkRand: rnd, EdgeRand: rnd, Net: net}

	for it := 0; it < par.Iterations; it++ {
		bundle := spanner.Bundle(work, alive, p, par.K, par.T, opts)
		res.BundleSizes = append(res.BundleSizes, len(bundle.B))
		for v, d := range bundle.OutDeg {
			res.OutDeg[v] += d
		}
		inB := make(map[int]bool, len(bundle.B))
		for _, e := range bundle.B {
			inB[e] = true
		}
		// E_i := E_{i-1} \ C_i.
		for _, e := range bundle.C {
			alive[e] = false
		}
		// Bundle edges exist for sure from now on; the rest decay.
		for e := 0; e < m; e++ {
			if !alive[e] {
				continue
			}
			if inB[e] {
				p[e] = 1
			} else {
				p[e] /= 4
				work.SetWeight(e, 4*work.Edge(e).W)
			}
		}
		if it == par.Iterations-1 {
			// Final step (lines 11–15): keep the last bundle outright, then
			// each remaining edge is sampled by its lower-ID endpoint with
			// its accumulated probability and broadcast if kept.
			if net != nil {
				net.BeginPhase()
			}
			kept := make([]bool, m)
			for _, e := range bundle.B {
				kept[e] = true
			}
			for e := 0; e < m; e++ {
				if !alive[e] || kept[e] {
					continue
				}
				if rnd.Float64() < p[e] {
					kept[e] = true
					ed := work.Edge(e)
					lo := ed.U
					if ed.V < lo {
						lo = ed.V
					}
					res.OutDeg[lo]++ // oriented toward the higher ID
					if net != nil {
						net.Broadcast(lo, 2*sim.BitsForID(g.N()), e)
					}
				}
			}
			if net != nil {
				net.EndPhase()
			}
			res.H = graph.New(g.N())
			for e := 0; e < m; e++ {
				if kept[e] {
					ed := work.Edge(e)
					if _, err := res.H.AddEdge(ed.U, ed.V, ed.W); err != nil {
						panic(err)
					}
					res.KeptEdges = append(res.KeptEdges, e)
				}
			}
		}
	}
	if net != nil {
		res.Rounds = net.Rounds() - startRounds
	}
	return res
}

// Apriori runs SpectralSparsify-apriori (Algorithm 4): surviving non-bundle
// edges are kept with probability 1/4 immediately after each bundle. It is
// the reference algorithm of Koutis–Xu / Kyng et al. whose guarantee
// (Theorem 3.4) transfers to Adhoc through Lemma 3.3.
func Apriori(g *graph.Graph, par Params, rnd *rand.Rand) *Result {
	par = par.normalize()
	work := g.Clone()
	m := work.M()
	alive := make([]bool, m)
	for e := 0; e < m; e++ {
		alive[e] = true
	}
	res := &Result{OutDeg: make([]int, g.N())}
	opts := spanner.Options{MarkRand: rnd, EdgeRand: rnd}

	for it := 0; it < par.Iterations; it++ {
		bundle := spanner.Bundle(work, alive, nil, par.K, par.T, opts)
		res.BundleSizes = append(res.BundleSizes, len(bundle.B))
		for v, d := range bundle.OutDeg {
			res.OutDeg[v] += d
		}
		inB := make(map[int]bool, len(bundle.B))
		for _, e := range bundle.B {
			inB[e] = true
		}
		for e := 0; e < m; e++ {
			if !alive[e] || inB[e] {
				continue
			}
			if rnd.Float64() < 0.25 {
				work.SetWeight(e, 4*work.Edge(e).W)
			} else {
				alive[e] = false
			}
		}
	}
	res.H = graph.New(g.N())
	for e := 0; e < m; e++ {
		if alive[e] {
			ed := work.Edge(e)
			if _, err := res.H.AddEdge(ed.U, ed.V, ed.W); err != nil {
				panic(err)
			}
			res.KeptEdges = append(res.KeptEdges, e)
		}
	}
	return res
}

// Quality estimates the spectral approximation range of the sparsifier:
// it returns (lo, hi) with lo ≤ xᵀL_G x / xᵀL_H x ≤ hi over sampled and
// power-iterated directions x ⊥ 1. For a (1±ε) sparsifier in the sense of
// Definition 2.1, 1−ε ≤ lo and hi ≤ 1+ε.
func Quality(g *graph.Graph, h *graph.Graph, probes int, rnd *rand.Rand) (lo, hi float64) {
	lh := h.Laplacian()
	solveH := func(b []float64) []float64 {
		x, _ := linalg.CGLaplacian(lh, b, 1e-10, 4*g.N()+200)
		return x
	}
	return linalg.PencilBounds(g.WEdges(), h.WEdges(), g.N(), solveH, probes, 24, rnd.Float64)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
