package sparsify

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
)

func TestParams(t *testing.T) {
	p := PaperParams(1024, 5000, 0.5)
	if p.K != 10 {
		t.Errorf("K = %d, want 10", p.K)
	}
	if p.T < 100000 {
		t.Errorf("paper T = %d, expected the huge theory constant", p.T)
	}
	q := PracticalParams(1024, 5000, 0.5)
	if q.T >= p.T {
		t.Error("practical T should be far smaller than paper T")
	}
	if q.K != p.K || q.Iterations != p.Iterations {
		t.Error("practical params should keep K and Iterations")
	}
	z := Params{}.normalize()
	if z.K != 1 || z.T != 1 || z.Iterations != 1 {
		t.Error("normalize failed")
	}
}

func TestAdhocKeepsConnectivityWithGenerousBundle(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	g := graph.RandomConnected(24, 0.4, 4, rnd)
	par := Params{K: 3, T: 4, Iterations: 4}
	res := Adhoc(g, par, rnd, nil)
	if res.H == nil || res.H.N() != g.N() {
		t.Fatal("no sparsifier produced")
	}
	if !res.H.Connected() {
		t.Fatal("sparsifier disconnected (bundle contains a spanner, so it must stay connected)")
	}
	if len(res.KeptEdges) != res.H.M() {
		t.Fatal("KeptEdges inconsistent with H")
	}
}

func TestAdhocQualityImprovesWithT(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	g := graph.RandomConnected(28, 0.5, 1, rnd)
	type band struct{ lo, hi float64 }
	measure := func(tBundle int) band {
		r := rand.New(rand.NewSource(77))
		res := Adhoc(g, Params{K: 3, T: tBundle, Iterations: 5}, r, nil)
		lo, hi := Quality(g, res.H, 6, rand.New(rand.NewSource(5)))
		return band{lo, hi}
	}
	small := measure(1)
	big := measure(6)
	widthSmall := small.hi - small.lo
	widthBig := big.hi - big.lo
	if widthBig > widthSmall+0.35 {
		t.Fatalf("quality band did not improve with T: t=1 gives [%v,%v], t=6 gives [%v,%v]",
			small.lo, small.hi, big.lo, big.hi)
	}
	if big.lo <= 0 {
		t.Fatalf("sparsifier lost PSD dominance entirely: lo = %v", big.lo)
	}
}

func TestAdhocSparsifiesDenseGraph(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	g := graph.Complete(32)
	res := Adhoc(g, Params{K: 4, T: 2, Iterations: 6}, rnd, nil)
	if res.H.M() >= g.M() {
		t.Fatalf("no compression: %d of %d edges kept", res.H.M(), g.M())
	}
}

// TestAprioriMatchesInputWhenBundleDominates: with a huge bundle size every
// edge lands in the bundle, so the output is the whole graph with original
// weights (no 4× scaling applies).
func TestAprioriWholeGraphWhenBundleHuge(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	g := graph.Grid(4, 4)
	res := Apriori(g, Params{K: 1, T: 1, Iterations: 3}, rnd)
	// With k=1 the first spanner keeps every edge, so H = G exactly.
	if res.H.M() != g.M() {
		t.Fatalf("H has %d edges, want %d", res.H.M(), g.M())
	}
	for i, e := range res.H.Edges() {
		if e.W != g.Edge(res.KeptEdges[i]).W {
			t.Fatal("weights rescaled although nothing was sampled")
		}
	}
	lo, hi := Quality(g, res.H, 4, rnd)
	if lo < 0.999 || hi > 1.001 {
		t.Fatalf("identity sparsifier quality [%v, %v]", lo, hi)
	}
}

// TestLemma33Distribution compares Adhoc and Apriori over many seeds on a
// small graph: Lemma 3.3 says the output distributions are identical, so
// per-edge keep frequencies and expected sizes must agree within sampling
// error.
func TestLemma33Distribution(t *testing.T) {
	g := graph.New(6)
	type pair struct{ u, v int }
	for _, e := range []pair{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}, {0, 2}, {1, 3}, {2, 4}} {
		if _, err := g.AddEdge(e.u, e.v, 1); err != nil {
			t.Fatal(err)
		}
	}
	const trials = 600
	par := Params{K: 2, T: 1, Iterations: 3}
	freqA := make([]float64, g.M())
	freqB := make([]float64, g.M())
	var sizeA, sizeB float64
	for i := 0; i < trials; i++ {
		ra := rand.New(rand.NewSource(int64(2*i + 1)))
		resA := Adhoc(g, par, ra, nil)
		for _, e := range resA.KeptEdges {
			freqA[e]++
		}
		sizeA += float64(len(resA.KeptEdges))

		rb := rand.New(rand.NewSource(int64(2*i + 2)))
		resB := Apriori(g, par, rb)
		for _, e := range resB.KeptEdges {
			freqB[e]++
		}
		sizeB += float64(len(resB.KeptEdges))
	}
	if d := math.Abs(sizeA-sizeB) / trials; d > 0.5 {
		t.Fatalf("mean sizes differ: adhoc %v vs apriori %v", sizeA/trials, sizeB/trials)
	}
	for e := 0; e < g.M(); e++ {
		fa, fb := freqA[e]/trials, freqB[e]/trials
		// Binomial std dev at p=0.5, n=600 is ≈ 0.02; allow 5 sigma.
		if math.Abs(fa-fb) > 0.11 {
			t.Fatalf("edge %d keep frequency: adhoc %v vs apriori %v", e, fa, fb)
		}
	}
}

// TestRoundsCharged: running Adhoc on a Broadcast CONGEST network charges
// rounds, and the final-sampling broadcast is included.
func TestRoundsCharged(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	g := graph.RandomConnected(16, 0.4, 2, rnd)
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
	if err != nil {
		t.Fatal(err)
	}
	res := Adhoc(g, Params{K: 2, T: 2, Iterations: 3}, rnd, net)
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
	if res.Rounds != net.Rounds() {
		t.Fatal("result rounds disagree with network")
	}
}

// TestOutDegreeBound: Theorem 1.2 promises small max out-degree for the
// orientation — that is what makes the sparsifier cheap to globalize.
func TestOutDegreeBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	g := graph.Complete(24)
	res := Adhoc(g, Params{K: 3, T: 2, Iterations: 5}, rnd, nil)
	if res.MaxOutDegree() == 0 {
		t.Fatal("no orientation recorded")
	}
	if res.MaxOutDegree() > 2*res.H.M()/3 {
		t.Fatalf("orientation degenerate: max out-degree %d of %d edges", res.MaxOutDegree(), res.H.M())
	}
}

func TestWeightsScaledByPowersOfFour(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	g := graph.Complete(16)
	res := Adhoc(g, Params{K: 2, T: 1, Iterations: 4}, rnd, nil)
	for i, e := range res.H.Edges() {
		orig := g.Edge(res.KeptEdges[i]).W
		ratio := e.W / orig
		l := math.Log2(ratio) / 2 // ratio must be 4^j
		if math.Abs(l-math.Round(l)) > 1e-9 {
			t.Fatalf("edge %d weight ratio %v is not a power of 4", i, ratio)
		}
	}
}
