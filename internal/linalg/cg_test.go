package linalg

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func TestCGOnSPD(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	n := 15
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rnd.NormFloat64())
		}
	}
	spd := a.Transpose().Mul(a)
	for i := 0; i < n; i++ {
		spd.Inc(i, i, 1)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rnd.NormFloat64()
	}
	b := spd.MulVec(want)
	got, err := CG(spd, b, 1e-12, 10*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := Norm2(Sub(got, want)); d > 1e-7 {
		t.Fatalf("CG error %g", d)
	}
}

func TestCGWithPreconditioner(t *testing.T) {
	// Diagonal system with Jacobi preconditioner converges in one step.
	n := 10
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, float64(i+1))
	}
	b := Ones(n)
	precond := func(r []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r[i] / float64(i+1)
		}
		return out
	}
	x, err := CG(d, b, 1e-14, 3, precond)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], 1/float64(i+1), 1e-10) {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	x, err := CG(Eye(4), Zeros(4), 1e-12, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(x) != 0 {
		t.Fatal("zero RHS should give zero solution")
	}
}

func TestCGLaplacianPath(t *testing.T) {
	// Path graph 0-1-2-3 with unit weights; solve L x = b with b ⊥ 1.
	edges := []WEdge{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}
	l := LaplacianCSR(4, edges)
	b := []float64{1, 0, 0, -1}
	x, err := CGLaplacian(l, b, 1e-12, 200)
	if err != nil {
		t.Fatal(err)
	}
	lx := l.MulVec(x)
	if d := Norm2(Sub(lx, b)); d > 1e-8 {
		t.Fatalf("residual %g", d)
	}
	if s := Sum(x); !almostEq(s, 0, 1e-10) {
		t.Fatalf("solution not mean-zero: %g", s)
	}
}

func TestCGLaplacianProjectsRHS(t *testing.T) {
	// A RHS not orthogonal to 1 is handled by projecting it.
	edges := []WEdge{{0, 1, 1}, {1, 2, 2}}
	l := LaplacianCSR(3, edges)
	b := []float64{5, 1, 0}
	x, err := CGLaplacian(l, b, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	pb := ProjectOutOnes(b)
	if d := Norm2(Sub(l.MulVec(x), pb)); d > 1e-8 {
		t.Fatalf("residual vs projected RHS: %g", d)
	}
}

func TestPreconditionedChebyshevExactPreconditioner(t *testing.T) {
	// With B = A (κ = 1) Chebyshev solves essentially immediately.
	n := 6
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, float64(i+1))
	}
	b := Ones(n)
	solveB := func(r []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r[i] / float64(i+1)
		}
		return out
	}
	x, res := PreconditionedChebyshev(d.MulVec, solveB, b, 1.0001, 1e-10)
	if res.ResidualNorm > 1e-8 {
		t.Fatalf("residual %g after %d iterations", res.ResidualNorm, res.Iterations)
	}
	for i := range x {
		if !almostEq(x[i], 1/float64(i+1), 1e-8) {
			t.Fatalf("x[%d] = %v", i, x[i])
		}
	}
}

func TestPreconditionedChebyshevKappa3(t *testing.T) {
	// A = diag(1..n), B = 3A is a κ = 3 preconditioner (A ≼ B? No: we need
	// A ≼ B ≼ κA, so take B with spectrum within [1,3]× that of A).
	n := 12
	rnd := rand.New(rand.NewSource(5))
	diagA := make([]float64, n)
	diagB := make([]float64, n)
	for i := range diagA {
		diagA[i] = 1 + rnd.Float64()*9
		diagB[i] = diagA[i] * (1 + 2*rnd.Float64()) // within [1,3]·A
	}
	mulA := func(x []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = diagA[i] * x[i]
		}
		return out
	}
	solveB := func(r []float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = r[i] / diagB[i]
		}
		return out
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	x, res := PreconditionedChebyshev(mulA, solveB, b, 3, 1e-9)
	_ = x
	if res.ResidualNorm > 1e-6*Norm2(b) {
		t.Fatalf("residual %g too large after %d iters", res.ResidualNorm, res.Iterations)
	}
}

// A pre-canceled context must abort both inner iterations promptly with an
// error satisfying errors.Is(err, context.Canceled).
func TestIterativeSolversHonorContext(t *testing.T) {
	rnd := rand.New(rand.NewSource(21))
	n := 32
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rnd.NormFloat64())
		}
	}
	spd := a.Transpose().Mul(a)
	for i := 0; i < n; i++ {
		spd.Inc(i, i, 1)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x := make([]float64, n)
	iters, err := CGTo(ctx, x, spd, b, 1e-12, 10*n, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("CGTo under canceled context: iters=%d err=%v", iters, err)
	}
	solveB := func(dst, r []float64) { copy(dst, r) }
	if _, err := PreconditionedChebyshevTo(ctx, x, spd, solveB, b, 4, 1e-6, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("Chebyshev under canceled context: %v", err)
	}
}
