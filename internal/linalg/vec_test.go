package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestDotBasic(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotSymmetricProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := clampVec(xs[:n]), clampVec(ys[:n])
		return almostEq(Dot(x, y), Dot(y, x), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := clampVec(xs[:n]), clampVec(ys[:n])
		return math.Abs(Dot(x, y)) <= Norm2(x)*Norm2(y)*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		x, y := clampVec(xs[:n]), clampVec(ys[:n])
		return Norm2(Add(x, y)) <= Norm2(x)+Norm2(y)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// clampVec replaces NaN/Inf/huge fuzz values so that float identities hold
// in exact-enough arithmetic.
func clampVec(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		out[i] = math.Mod(v, 1e6)
	}
	return out
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if got := Norm2(x); got != 5 {
		t.Errorf("Norm2 = %v", got)
	}
	if got := Norm1(x); got != 7 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := NormInf(x); got != 4 {
		t.Errorf("NormInf = %v", got)
	}
	if got := WeightedNorm(x, []float64{1, 0.25}); got != math.Sqrt(9+4) {
		t.Errorf("WeightedNorm = %v", got)
	}
}

func TestAXPYScale(t *testing.T) {
	y := []float64{1, 1}
	AXPY(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("AXPY = %v", y)
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[1] != 2.5 {
		t.Fatalf("Scale = %v", y)
	}
}

func TestProjectOutOnes(t *testing.T) {
	x := ProjectOutOnes([]float64{1, 2, 3, 6})
	if !almostEq(Sum(x), 0, 1e-12) {
		t.Fatalf("sum after projection = %v", Sum(x))
	}
	// Idempotent.
	y := ProjectOutOnes(x)
	for i := range x {
		if !almostEq(x[i], y[i], 1e-12) {
			t.Fatalf("not idempotent at %d: %v vs %v", i, x[i], y[i])
		}
	}
}

func TestMedian3(t *testing.T) {
	cases := [][4]float64{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2}, {5, 5, 1, 5}, {1, 5, 5, 5},
	}
	for _, c := range cases {
		if got := Median3(c[0], c[1], c[2]); got != c[3] {
			t.Errorf("Median3(%v,%v,%v) = %v, want %v", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestMedian3Property(t *testing.T) {
	f := func(a, b, c float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
			return true
		}
		m := Median3(a, b, c)
		// The median is one of the inputs and at least one input is <= m
		// and one is >= m.
		isInput := m == a || m == b || m == c
		le := 0
		ge := 0
		for _, v := range []float64{a, b, c} {
			if v <= m {
				le++
			}
			if v >= m {
				ge++
			}
		}
		return isInput && le >= 2 && ge >= 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHadamardEntryDivApply(t *testing.T) {
	x := []float64{2, 4}
	y := []float64{3, 2}
	h := Hadamard(x, y)
	if h[0] != 6 || h[1] != 8 {
		t.Fatalf("Hadamard = %v", h)
	}
	d := EntryDiv(x, y)
	if !almostEq(d[0], 2.0/3, 1e-12) || d[1] != 2 {
		t.Fatalf("EntryDiv = %v", d)
	}
	a := Apply(x, func(v float64) float64 { return v * v })
	if a[0] != 4 || a[1] != 16 {
		t.Fatalf("Apply = %v", a)
	}
}

func TestMinMaxClamp(t *testing.T) {
	x := []float64{3, -1, 7}
	if Max(x) != 7 || Min(x) != -1 {
		t.Fatal("Max/Min wrong")
	}
	if Clamp(5, 0, 3) != 3 || Clamp(-2, 0, 3) != 0 || Clamp(1, 0, 3) != 1 {
		t.Fatal("Clamp wrong")
	}
}
