package linalg

import (
	"fmt"
	"math"
)

// Precond is an SPD preconditioner pluggable into CGTo's precondTo hook:
// ApplyTo writes M⁻¹·r into dst without allocating. Implementations split
// their work into a symbolic part fixed at construction and a numeric
// Refresh, so the Õ(√n) solves of one interior-point session pay the
// structural cost once and only update values when the barrier diagonal
// changes.
type Precond interface {
	// ApplyTo computes dst = M⁻¹·r. dst and r have the operator dimension
	// and must not alias; the call performs no allocation.
	ApplyTo(dst, r []float64)
}

// JacobiPrecond is the diagonal preconditioner M = diag(d). Refresh copies
// a new diagonal in (guarding non-positive entries), ApplyTo divides by it
// — division rather than multiplication by a cached reciprocal, so it is
// bit-identical to the historical inline Jacobi of the csr-cg backend.
type JacobiPrecond struct {
	diag []float64
}

// NewJacobiPrecond sizes a Jacobi preconditioner for dimension n. It is
// unusable until the first Refresh.
func NewJacobiPrecond(n int) *JacobiPrecond {
	return &JacobiPrecond{diag: make([]float64, n)}
}

// Refresh installs a new diagonal. Non-positive entries (numerically
// degenerate columns) are replaced by 1 so M stays SPD.
func (p *JacobiPrecond) Refresh(diag []float64) {
	if len(diag) != len(p.diag) {
		panic(fmt.Sprintf("linalg: JacobiPrecond Refresh got %d entries, want %d", len(diag), len(p.diag)))
	}
	for i, v := range diag {
		if v <= 0 {
			v = 1
		}
		p.diag[i] = v
	}
}

// ApplyTo implements Precond.
func (p *JacobiPrecond) ApplyTo(dst, r []float64) {
	for i := range r {
		dst[i] = r[i] / p.diag[i]
	}
}

// TreeEdge is one undirected edge of a TreeCholPrecond's elimination
// forest, indexing vertices of the preconditioned system.
type TreeEdge struct {
	U, V int
}

// treeCholFloor keeps the factor diagonal strictly positive when the
// Schur-complement updates of a numerically extreme refresh would drive a
// pivot to (or below) zero. Clamping preserves LLᵀ symmetry and positive
// definiteness — the property CG needs — at the price of a slightly less
// accurate preconditioner on that pivot.
const treeCholFloor = 1e-300

// TreeCholPrecond is an incomplete Cholesky preconditioner whose sparsity
// pattern is a spanning forest: M = diag(AᵀDA) + the off-diagonals of AᵀDA
// restricted to the forest edges. Eliminating leaves before their parents
// makes the factorization fill-free, so both Refresh and ApplyTo are O(n)
// and allocation-free, and M = LLᵀ is SPD by construction (every pivot is
// clamped positive).
//
// The symbolic structure — rooted forest, elimination order, per-vertex
// factor slots — is computed once by NewTreeCholPrecond; Refresh only
// rewrites numeric values, which is what lets one preconditioner follow an
// interior-point run across every reweighting of D.
type TreeCholPrecond struct {
	n int
	// Symbolic structure, fixed at construction.
	order  []int // vertices in elimination order (leaves first)
	parent []int // parent in the rooted forest, -1 for roots
	edgeOf []int // edgeOf[v] = index of the (v, parent[v]) edge, -1 for roots
	// Numeric factor, rewritten by every Refresh.
	lDiag []float64 // l_vv
	lOff  []float64 // l_{parent[v],v}, indexed by child vertex
	// Scratch (owned; ApplyTo and Refresh never allocate).
	d []float64
	y []float64
}

// NewTreeCholPrecond builds the symbolic elimination structure for the
// forest given by edges on n vertices: it roots every component, orders
// vertices leaves-first and records each vertex's factor slot. An edge set
// containing a cycle (or an out-of-range endpoint) is rejected — the
// fill-free factorization exists only on forests.
func NewTreeCholPrecond(n int, edges []TreeEdge) (*TreeCholPrecond, error) {
	adj := make([][]int, n) // vertex -> incident edge indices
	for i, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("linalg: tree edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("linalg: tree edge %d is a self-loop at %d", i, e.U)
		}
		adj[e.U] = append(adj[e.U], i)
		adj[e.V] = append(adj[e.V], i)
	}
	p := &TreeCholPrecond{
		n:      n,
		order:  make([]int, 0, n),
		parent: make([]int, n),
		edgeOf: make([]int, n),
		lDiag:  make([]float64, n),
		lOff:   make([]float64, n),
		d:      make([]float64, n),
		y:      make([]float64, n),
	}
	seen := make([]bool, n)
	bfs := make([]int, 0, n)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		p.parent[root] = -1
		p.edgeOf[root] = -1
		bfs = append(bfs[:0], root)
		for head := 0; head < len(bfs); head++ {
			v := bfs[head]
			p.order = append(p.order, v)
			for _, ei := range adj[v] {
				e := edges[ei]
				u := e.U
				if u == v {
					u = e.V
				}
				if ei == p.edgeOf[v] {
					continue // the edge to v's own parent
				}
				if seen[u] {
					return nil, fmt.Errorf("linalg: tree edges contain a cycle through (%d,%d)", e.U, e.V)
				}
				seen[u] = true
				p.parent[u] = v
				p.edgeOf[u] = ei
				bfs = append(bfs, u)
			}
		}
	}
	// Eliminate leaves before their parents: reverse the BFS order.
	for i, j := 0, len(p.order)-1; i < j; i, j = i+1, j-1 {
		p.order[i], p.order[j] = p.order[j], p.order[i]
	}
	return p, nil
}

// N returns the dimension of the preconditioned system.
func (p *TreeCholPrecond) N() int { return p.n }

// Refresh refactorizes M = diag + (forest off-diagonals) for new numeric
// values: diag is the full diagonal of the target matrix (length n) and
// off the off-diagonal value per forest edge, in the edge order given to
// NewTreeCholPrecond. The elimination order is fixed, so the factorization
// is a single O(n) sweep with no fill and no allocation.
func (p *TreeCholPrecond) Refresh(diag, off []float64) {
	if len(diag) != p.n {
		panic(fmt.Sprintf("linalg: TreeCholPrecond Refresh got %d diagonal entries, want %d", len(diag), p.n))
	}
	copy(p.d, diag)
	for _, v := range p.order {
		dv := p.d[v]
		if dv < treeCholFloor {
			dv = treeCholFloor
		}
		l := math.Sqrt(dv)
		p.lDiag[v] = l
		if par := p.parent[v]; par >= 0 {
			lo := off[p.edgeOf[v]] / l
			p.lOff[v] = lo
			p.d[par] -= lo * lo
		}
	}
}

// ApplyTo implements Precond: dst = (LLᵀ)⁻¹·r via one forward and one
// backward substitution along the forest, each O(n).
func (p *TreeCholPrecond) ApplyTo(dst, r []float64) {
	if len(dst) != p.n || len(r) != p.n {
		panic(fmt.Sprintf("linalg: TreeCholPrecond ApplyTo got dst=%d r=%d, want %d", len(dst), len(r), p.n))
	}
	// Forward solve L y = r, columns in elimination order.
	copy(p.y, r)
	for _, v := range p.order {
		yv := p.y[v] / p.lDiag[v]
		p.y[v] = yv
		if par := p.parent[v]; par >= 0 {
			p.y[par] -= p.lOff[v] * yv
		}
	}
	// Backward solve Lᵀ x = y, roots before their subtrees.
	for i := len(p.order) - 1; i >= 0; i-- {
		v := p.order[i]
		x := p.y[v]
		if par := p.parent[v]; par >= 0 {
			x -= p.lOff[v] * dst[par]
		}
		dst[v] = x / p.lDiag[v]
	}
}
