package linalg

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
)

func randomCSR(rows, cols int, density float64, rnd *rand.Rand) *CSR {
	var ts []Triple
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if rnd.Float64() < density {
				ts = append(ts, Triple{Row: r, Col: c, Val: rnd.NormFloat64()})
			}
		}
	}
	// Guarantee at least one entry per row so no row is trivially zero.
	for r := 0; r < rows; r++ {
		ts = append(ts, Triple{Row: r, Col: rnd.Intn(cols), Val: rnd.NormFloat64()})
	}
	return NewCSR(rows, cols, ts)
}

func randomVec(n int, rnd *rand.Rand) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rnd.NormFloat64()
	}
	return x
}

// The nnz-balanced shard partition must stay bit-for-bit identical to the
// serial product even on pathologically skewed row-length distributions
// (one hub row holding most of the nonzeros next to thousands of short
// rows — the shape that defeated the old row-count partition), and the
// auto heuristic must stay serial below the nnz threshold.
func TestSpMVNNZBalancedSharding(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	n := 2000
	var ts []Triple
	for c := 0; c < n; c++ {
		// Row 0 is the hub: dense.
		ts = append(ts, Triple{Row: 0, Col: c, Val: rnd.NormFloat64()})
	}
	for r := 1; r < n; r++ {
		ts = append(ts, Triple{Row: r, Col: rnd.Intn(n), Val: rnd.NormFloat64()})
	}
	m := NewCSR(n, n, ts)
	x := randomVec(n, rnd)
	serial := make([]float64, n)
	m.MulVecToShards(serial, x, 1)
	for _, shards := range []int{2, 3, 5, 16, n, 3 * n} {
		got := make([]float64, n)
		m.MulVecToShards(got, x, shards)
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("shards=%d: row %d: %v != serial %v", shards, i, got[i], serial[i])
			}
		}
	}
	// Below the threshold the auto path must not fan out at all.
	small := randomCSR(64, 64, 0.1, rnd)
	if small.NNZ() >= spmvMinNNZ {
		t.Fatalf("test instance too large: %d nnz", small.NNZ())
	}
	if s := small.spmvShards(); s != 1 {
		t.Fatalf("auto shards = %d for %d nnz, want serial", s, small.NNZ())
	}
	// Above it the heuristic is bounded by both resources: never more
	// shards than CPUs, and never so many that a shard owns less than
	// spmvShardNNZ nonzeros. The instance is built to sit just above the
	// threshold (≈ 2.4 shards of work), where a heuristic regression that
	// ignored the work cap and took runtime.NumCPU() shards outright is
	// visible on any multi-core host.
	bigRows := 300
	perRow := (spmvShardNNZ*12/5)/bigRows + 1
	var bigTS []Triple
	for r := 0; r < bigRows; r++ {
		for k := 0; k < perRow; k++ {
			bigTS = append(bigTS, Triple{Row: r, Col: (r*perRow + k) % bigRows, Val: 1})
		}
	}
	big := NewCSR(bigRows, bigRows, bigTS)
	if big.NNZ() < spmvMinNNZ {
		t.Fatalf("test instance too small: %d nnz", big.NNZ())
	}
	s := big.spmvShards()
	if s > runtime.NumCPU() {
		t.Fatalf("auto shards = %d exceeds %d CPUs", s, runtime.NumCPU())
	}
	if s > big.NNZ()/spmvShardNNZ {
		t.Fatalf("auto shards = %d leaves only %d nnz per shard (want ≥ %d)",
			s, big.NNZ()/s, spmvShardNNZ)
	}
	if got := big.AutoShards(); got != s {
		t.Fatalf("AutoShards() = %d, spmvShards() = %d", got, s)
	}
}

// Parallel SpMV must be bit-for-bit identical to the serial product for
// every shard count: the row partition never changes the per-row summation
// order.
func TestSpMVDeterministicAcrossShards(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, size := range []struct{ rows, cols int }{{7, 5}, {64, 48}, {301, 211}, {1024, 1024}} {
		m := randomCSR(size.rows, size.cols, 0.1, rnd)
		x := randomVec(size.cols, rnd)
		serial := make([]float64, size.rows)
		m.MulVecToShards(serial, x, 1)
		for _, shards := range []int{2, 3, 4, 7, 8, 16, 1000} {
			got := make([]float64, size.rows)
			m.MulVecToShards(got, x, shards)
			for i := range got {
				if got[i] != serial[i] {
					t.Fatalf("%dx%d shards=%d: row %d: parallel %v != serial %v (not bit-for-bit)",
						size.rows, size.cols, shards, i, got[i], serial[i])
				}
			}
		}
		// The automatic path must agree too, whatever shard count it picks.
		auto := make([]float64, size.rows)
		m.MulVecTo(auto, x)
		for i := range auto {
			if auto[i] != serial[i] {
				t.Fatalf("MulVecTo differs from serial at row %d", i)
			}
		}
	}
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	m := randomCSR(40, 30, 0.2, rnd)
	x := randomVec(30, rnd)
	want := m.MulVec(x)
	got := make([]float64, 40)
	m.MulVecTo(got, x)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: %v vs %v", i, got[i], want[i])
		}
	}
	y := randomVec(40, rnd)
	wantT := m.MulVecT(y)
	gotT := make([]float64, 30)
	m.MulVecTTo(gotT, y)
	for i := range wantT {
		if gotT[i] != wantT[i] {
			t.Fatalf("transpose col %d: %v vs %v", i, gotT[i], wantT[i])
		}
	}
}

// Composition of LinOps must match the dense reference product.
func TestComposeMatchesDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	a := randomCSR(12, 8, 0.4, rnd) // 12x8
	d := randomVec(12, rnd)         // diag 12x12
	ws := NewWorkspace()
	// Op = Aᵀ · diag(d) · A : 8x8.
	op := Compose(ws, TransposeOp{A: a}, DiagOp{D: d}, a)
	ad := a.Dense()
	ref := ad.Transpose()
	scaled := NewDense(12, 8)
	for i := 0; i < 12; i++ {
		for j := 0; j < 8; j++ {
			scaled.Set(i, j, d[i]*ad.At(i, j))
		}
	}
	refM := ref.Mul(scaled) // 8x8
	if r, c := op.Dims(); r != 8 || c != 8 {
		t.Fatalf("composed dims %dx%d, want 8x8", r, c)
	}
	for trial := 0; trial < 5; trial++ {
		x := randomVec(8, rnd)
		got := make([]float64, 8)
		op.MulVecTo(got, x)
		want := refM.MulVec(x)
		for i := range got {
			if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("trial %d entry %d: composed %v vs dense %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestComposedGramMatchesDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	a := randomCSR(20, 9, 0.3, rnd)
	d := make([]float64, 20)
	for i := range d {
		d[i] = 0.1 + rnd.Float64()
	}
	// The csr-cg backend's operator shape: AᵀDA as a composition.
	op := Compose(NewWorkspace(), TransposeOp{A: a}, DiagOp{D: d}, a)
	// Dense reference AᵀDA.
	ad := a.Dense()
	gram := NewDense(9, 9)
	for r := 0; r < 20; r++ {
		for i := 0; i < 9; i++ {
			for j := 0; j < 9; j++ {
				gram.Inc(i, j, d[r]*ad.At(r, i)*ad.At(r, j))
			}
		}
	}
	x := randomVec(9, rnd)
	got := make([]float64, 9)
	op.MulVecTo(got, x)
	want := gram.MulVec(x)
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("entry %d: composed Gram %v vs dense %v", i, got[i], want[i])
		}
	}
	diag := make([]float64, 9)
	a.GramDiagTo(diag, d)
	for i := range diag {
		if diff := diag[i] - gram.At(i, i); diff > 1e-10 || diff < -1e-10 {
			t.Fatalf("diag %d: %v vs %v", i, diag[i], gram.At(i, i))
		}
	}
}

func TestLaplacianOpMatchesCSR(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	n := 14
	var edges []WEdge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < 0.3 {
				edges = append(edges, WEdge{U: u, V: v, W: 0.5 + rnd.Float64()})
			}
		}
	}
	op := LaplacianOp{N: n, Edges: edges}
	l := LaplacianCSR(n, edges)
	x := randomVec(n, rnd)
	got := make([]float64, n)
	op.MulVecTo(got, x)
	want := l.MulVec(x)
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("entry %d: edge-wise %v vs CSR %v", i, got[i], want[i])
		}
	}
}

func TestScaledOp(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	n := 10
	a := randomCSR(n, n, 0.3, rnd)
	s := ScaledOp{C: -1.5, A: a}
	x := randomVec(n, rnd)
	ax := a.MulVec(x)
	got := make([]float64, n)
	s.MulVecTo(got, x)
	for i := range x {
		want := -1.5 * ax[i]
		if diff := got[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("scaled entry %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	b1 := ws.Get(64)
	for i := range b1 {
		b1[i] = 7
	}
	ws.Put(b1)
	b2 := ws.Get(32)
	if cap(b2) < 64 {
		t.Fatalf("workspace did not reuse the 64-cap buffer (cap %d)", cap(b2))
	}
	// Nil workspace must degrade to plain allocation.
	var nilWS *Workspace
	b3 := nilWS.Get(8)
	if len(b3) != 8 {
		t.Fatal("nil workspace Get failed")
	}
	nilWS.Put(b3)
}

// CGTo must agree with the allocating CG on an SPD system and reuse its
// workspace buffers across solves.
func TestCGToMatchesCG(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	n := 24
	// SPD matrix AᵀA + I.
	a := randomCSR(n, n, 0.3, rnd)
	gram := Compose(NewWorkspace(), TransposeOp{A: a}, a)
	spd := FuncOp{R: n, C: n, Apply: func(dst, x []float64) {
		gram.MulVecTo(dst, x)
		for i := range dst {
			dst[i] += x[i]
		}
	}}
	asMulVecer := OpFunc(func(x []float64) []float64 {
		dst := make([]float64, n)
		spd.MulVecTo(dst, x)
		return dst
	})
	b := randomVec(n, rnd)
	want, err := CG(asMulVecer, b, 1e-12, 10*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	got := make([]float64, n)
	if _, err := CGTo(context.Background(), got, spd, b, 1e-12, 10*n, nil, ws); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if diff := got[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("entry %d: CGTo %v vs CG %v", i, got[i], want[i])
		}
	}
	// Second solve through the same workspace must still be correct.
	b2 := randomVec(n, rnd)
	want2, err := CG(asMulVecer, b2, 1e-12, 10*n, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CGTo(context.Background(), got, spd, b2, 1e-12, 10*n, nil, ws); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if diff := got[i] - want2[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("reused-workspace entry %d: %v vs %v", i, got[i], want2[i])
		}
	}
}
