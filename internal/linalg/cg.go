package linalg

import "errors"

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// MulVecer is any operator that can apply itself to a vector. Both Dense and
// CSR satisfy it, as do function adapters.
type MulVecer interface {
	MulVec(x []float64) []float64
}

// OpFunc adapts a function to the MulVecer interface.
type OpFunc func(x []float64) []float64

// MulVec applies the wrapped function.
func (f OpFunc) MulVec(x []float64) []float64 { return f(x) }

// CG solves the symmetric positive-definite system A x = b with conjugate
// gradients to relative residual tol, starting from x = 0. precond, if
// non-nil, applies an SPD preconditioner M⁻¹.
func CG(a MulVecer, b []float64, tol float64, maxIter int, precond func([]float64) []float64) ([]float64, error) {
	n := len(b)
	x := make([]float64, n)
	r := Clone(b)
	bnorm := Norm2(b)
	if bnorm == 0 {
		return x, nil
	}
	apply := func(v []float64) []float64 {
		if precond == nil {
			return Clone(v)
		}
		return precond(v)
	}
	z := apply(r)
	p := Clone(z)
	rz := Dot(r, z)
	for it := 0; it < maxIter; it++ {
		if Norm2(r) <= tol*bnorm {
			return x, nil
		}
		ap := a.MulVec(p)
		pap := Dot(p, ap)
		if pap <= 0 {
			// Not SPD in this direction (or numerically exhausted); stop with
			// the best iterate rather than diverging.
			return x, nil
		}
		alpha := rz / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		z = apply(r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if Norm2(r) <= tol*bnorm {
		return x, nil
	}
	return x, ErrNoConvergence
}

// CGLaplacian solves L x = b for a graph Laplacian L, handling the span{1}
// nullspace: b is projected orthogonal to 1 and the returned solution is the
// minimum-norm (mean-zero) one. The graph must be connected for the result
// to solve the projected system.
func CGLaplacian(l MulVecer, b []float64, tol float64, maxIter int) ([]float64, error) {
	pb := ProjectOutOnes(b)
	op := OpFunc(func(x []float64) []float64 {
		return ProjectOutOnes(l.MulVec(ProjectOutOnes(x)))
	})
	x, err := CG(op, pb, tol, maxIter, nil)
	if err != nil {
		return x, err
	}
	return ProjectOutOnes(x), nil
}
