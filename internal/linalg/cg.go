package linalg

import (
	"context"
	"errors"
	"fmt"
)

// ErrNoConvergence is returned when an iterative solver exhausts its
// iteration budget without reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// cancelCheckInterval is how often (in iterations) the inner solve loops
// poll ctx.Err(). Checking every iteration would put a branch on the hot
// path for nothing — a handful of matrix-vector products between polls
// keeps cancellation latency far below one outer IPM iteration while the
// kernel stays allocation-free.
const cancelCheckInterval = 32

// MulVecer is any operator that can apply itself to a vector. Both Dense and
// CSR satisfy it, as do function adapters.
type MulVecer interface {
	MulVec(x []float64) []float64
}

// OpFunc adapts a function to the MulVecer interface.
type OpFunc func(x []float64) []float64

// MulVec applies the wrapped function.
func (f OpFunc) MulVec(x []float64) []float64 { return f(x) }

// CGTo solves the symmetric positive-definite system A x = b with conjugate
// gradients to relative residual tol, writing the solution into x (length n,
// initialized to zero by this function). precondTo, if non-nil, applies an
// SPD preconditioner M⁻¹ into its first argument. All temporaries come from
// ws, so repeated solves through a shared workspace allocate nothing.
//
// ctx is polled every cancelCheckInterval iterations; on cancellation the
// returned error satisfies errors.Is(err, ctx.Err()). The returned count is
// the number of CG iterations performed.
func CGTo(ctx context.Context, x []float64, a LinOp, b []float64, tol float64, maxIter int, precondTo func(dst, r []float64), ws *Workspace) (int, error) {
	n := len(b)
	if len(x) != n {
		panic("linalg: CGTo dimension mismatch")
	}
	for i := range x {
		x[i] = 0
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		return 0, nil
	}
	r := ws.Get(n)
	copy(r, b)
	z := ws.Get(n)
	p := ws.Get(n)
	ap := ws.Get(n)
	defer func() {
		ws.Put(r)
		ws.Put(z)
		ws.Put(p)
		ws.Put(ap)
	}()
	apply := func(dst, v []float64) {
		if precondTo == nil {
			copy(dst, v)
		} else {
			precondTo(dst, v)
		}
	}
	apply(z, r)
	copy(p, z)
	rz := Dot(r, z)
	for it := 0; it < maxIter; it++ {
		if it%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return it, fmt.Errorf("linalg: CG canceled after %d iterations: %w", it, err)
			}
		}
		if Norm2(r) <= tol*bnorm {
			return it, nil
		}
		a.MulVecTo(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			// Not SPD in this direction (or numerically exhausted); stop with
			// the best iterate rather than diverging.
			return it, nil
		}
		alpha := rz / pap
		AXPY(alpha, p, x)
		AXPY(-alpha, ap, r)
		apply(z, r)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if Norm2(r) <= tol*bnorm {
		return maxIter, nil
	}
	return maxIter, ErrNoConvergence
}

// CG solves A x = b with conjugate gradients, allocating its result and
// temporaries (wrapper over CGTo for callers without a workspace or
// context). precond, if non-nil, applies an SPD preconditioner M⁻¹.
func CG(a MulVecer, b []float64, tol float64, maxIter int, precond func([]float64) []float64) ([]float64, error) {
	n := len(b)
	x := make([]float64, n)
	op := FuncOp{R: n, C: n, Apply: func(dst, v []float64) { copy(dst, a.MulVec(v)) }}
	var precondTo func(dst, r []float64)
	if precond != nil {
		precondTo = func(dst, r []float64) { copy(dst, precond(r)) }
	}
	_, err := CGTo(context.Background(), x, op, b, tol, maxIter, precondTo, nil)
	return x, err
}

// CGLaplacian solves L x = b for a graph Laplacian L, handling the span{1}
// nullspace: b is projected orthogonal to 1 and the returned solution is the
// minimum-norm (mean-zero) one. The graph must be connected for the result
// to solve the projected system.
func CGLaplacian(l MulVecer, b []float64, tol float64, maxIter int) ([]float64, error) {
	pb := ProjectOutOnes(b)
	op := OpFunc(func(x []float64) []float64 {
		return ProjectOutOnes(l.MulVec(ProjectOutOnes(x)))
	})
	x, err := CG(op, pb, tol, maxIter, nil)
	if err != nil {
		return x, err
	}
	return ProjectOutOnes(x), nil
}
