package linalg

import (
	"fmt"
	"runtime"
	"sync"
)

// spmvMinNNZ is the nonzero count below which parallel SpMV is not worth the
// goroutine fan-out and MulVecTo stays serial.
const spmvMinNNZ = 1 << 14

// spmvShards returns the shard count MulVecTo uses for this matrix: one
// (serial) below the size threshold, otherwise up to NumCPU row blocks.
func (m *CSR) spmvShards() int {
	if len(m.vals) < spmvMinNNZ {
		return 1
	}
	shards := runtime.NumCPU()
	if shards > m.rows {
		shards = m.rows
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// mulVecRange computes dst[r0:r1] = (m·x)[r0:r1]. Each row is accumulated in
// the same order as the serial product, so any row partition yields
// bit-for-bit identical results.
func (m *CSR) mulVecRange(dst, x []float64, r0, r1 int) {
	for r := r0; r < r1; r++ {
		var s float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[r] = s
	}
}

// MulVecTo computes dst = m·x without allocating. Large matrices are sharded
// into row blocks processed by up to runtime.NumCPU() goroutines; rows are
// summed in serial order inside each block, so the output is bit-for-bit
// identical to the serial product regardless of the shard count.
func (m *CSR) MulVecTo(dst, x []float64) {
	checkApply(m, dst, x)
	m.MulVecToShards(dst, x, m.spmvShards())
}

// MulVecToShards is MulVecTo with an explicit shard count (exported so tests
// and benchmarks can pin serial vs parallel execution). shards ≤ 1 runs
// serially.
func (m *CSR) MulVecToShards(dst, x []float64, shards int) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("linalg: CSR MulVecToShards got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), m.rows, m.cols))
	}
	if shards > m.rows {
		shards = m.rows
	}
	if shards <= 1 {
		m.mulVecRange(dst, x, 0, m.rows)
		return
	}
	// Static row-block partition: block i owns rows [i*q+min(i,rem), …).
	// Disjoint dst segments mean no synchronization beyond the WaitGroup.
	var wg sync.WaitGroup
	q, rem := m.rows/shards, m.rows%shards
	r0 := 0
	for i := 0; i < shards; i++ {
		r1 := r0 + q
		if i < rem {
			r1++
		}
		wg.Add(1)
		go func(a, b int) {
			defer wg.Done()
			m.mulVecRange(dst, x, a, b)
		}(r0, r1)
		r0 = r1
	}
	wg.Wait()
}

// GramDiagTo writes diag(mᵀ·diag(d)·m) into dst (length Cols) in O(nnz) —
// the Jacobi preconditioner of the csr-cg normal-equation backend.
func (m *CSR) GramDiagTo(dst, d []float64) {
	if len(d) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: CSR GramDiagTo got dst=%d d=%d, want dst=%d d=%d", len(dst), len(d), m.cols, m.rows))
	}
	for j := range dst {
		dst[j] = 0
	}
	for r := 0; r < m.rows; r++ {
		dr := d[r]
		if dr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			v := m.vals[k]
			dst[m.colIdx[k]] += dr * v * v
		}
	}
}

// MulVecTTo computes dst = mᵀ·x without allocating. The column scatter is
// serial: parallelizing it would race on dst (or require per-shard copies),
// and the transpose product is never the bottleneck in this codebase.
func (m *CSR) MulVecTTo(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: CSR MulVecTTo got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), m.cols, m.rows))
	}
	for j := range dst {
		dst[j] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			dst[m.colIdx[k]] += m.vals[k] * xr
		}
	}
}
