package linalg

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// spmvMinNNZ is the nonzero count below which parallel SpMV is never worth
// the goroutine fan-out and MulVecTo stays serial. The measured crossover
// (BENCH_backends.json) sits well above the old 2¹⁴ guess: at ~180k
// nonzeros the fork/join overhead still cancels the gain, so the auto path
// only fans out when every shard carries a meaningful slice of work.
const spmvMinNNZ = 1 << 15

// spmvShardNNZ is the minimum number of nonzeros per shard: the shard
// count is capped so no goroutine receives less than this much work. It is
// spmvMinNNZ/2 exactly so that the threshold above is the real serial/
// parallel boundary — any nnz ≥ spmvMinNNZ admits at least two shards.
const spmvShardNNZ = spmvMinNNZ / 2

// spmvShards returns the shard count MulVecTo uses for this matrix: one
// (serial) below the nnz threshold or on a single-CPU host, otherwise the
// largest count ≤ NumCPU for which every shard still owns ≥ spmvShardNNZ
// nonzeros.
func (m *CSR) spmvShards() int {
	nnz := len(m.vals)
	if nnz < spmvMinNNZ {
		return 1
	}
	shards := runtime.NumCPU()
	if byWork := nnz / spmvShardNNZ; shards > byWork {
		shards = byWork
	}
	if shards > m.rows {
		shards = m.rows
	}
	if shards < 2 {
		return 1
	}
	return shards
}

// AutoShards reports the shard count MulVecTo's heuristic picks for this
// matrix (1 = serial) — exported so benchmarks and the committed snapshot
// gate can tell a genuine parallel win from an auto fallback to serial.
func (m *CSR) AutoShards() int { return m.spmvShards() }

// mulVecRange computes dst[r0:r1] = (m·x)[r0:r1]. Each row is accumulated in
// the same order as the serial product, so any row partition yields
// bit-for-bit identical results.
func (m *CSR) mulVecRange(dst, x []float64, r0, r1 int) {
	for r := r0; r < r1; r++ {
		var s float64
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			s += m.vals[k] * x[m.colIdx[k]]
		}
		dst[r] = s
	}
}

// MulVecTo computes dst = m·x without allocating. Matrices above the nnz
// threshold are sharded into row blocks of balanced nonzero count; rows are
// summed in serial order inside each block, so the output is bit-for-bit
// identical to the serial product regardless of the shard count.
func (m *CSR) MulVecTo(dst, x []float64) {
	checkApply(m, dst, x)
	m.MulVecToShards(dst, x, m.spmvShards())
}

// MulVecToShards is MulVecTo with an explicit shard count (exported so tests
// and benchmarks can pin serial vs parallel execution). shards ≤ 1 runs
// serially. Shard boundaries balance *nonzeros*, not row counts: rowPtr is
// already the nnz prefix sum, so shard i owns the rows holding nonzeros
// [i·nnz/shards, (i+1)·nnz/shards) — a skewed row-length distribution (one
// dense hub row plus thousands of short ones) no longer serializes on the
// shard that drew the hub.
func (m *CSR) MulVecToShards(dst, x []float64, shards int) {
	if len(dst) != m.rows || len(x) != m.cols {
		panic(fmt.Sprintf("linalg: CSR MulVecToShards got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), m.rows, m.cols))
	}
	if shards > m.rows {
		shards = m.rows
	}
	if shards <= 1 {
		m.mulVecRange(dst, x, 0, m.rows)
		return
	}
	// Disjoint dst segments mean no synchronization beyond the WaitGroup.
	var wg sync.WaitGroup
	nnz := len(m.vals)
	r0 := 0
	for i := 0; i < shards; i++ {
		r1 := m.rows
		if i+1 < shards {
			// First row whose prefix reaches the next nnz quantile; never
			// before r0, so every shard gets a well-formed (possibly empty)
			// row range and all rows are covered exactly once.
			target := (i + 1) * nnz / shards
			r1 = sort.SearchInts(m.rowPtr, target)
			if r1 < r0 {
				r1 = r0
			}
			if r1 > m.rows {
				r1 = m.rows
			}
		}
		if r1 > r0 {
			wg.Add(1)
			go func(a, b int) {
				defer wg.Done()
				m.mulVecRange(dst, x, a, b)
			}(r0, r1)
		}
		r0 = r1
	}
	wg.Wait()
}

// GramDiagTo writes diag(mᵀ·diag(d)·m) into dst (length Cols) in O(nnz) —
// the Jacobi preconditioner of the csr-cg normal-equation backend.
func (m *CSR) GramDiagTo(dst, d []float64) {
	if len(d) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: CSR GramDiagTo got dst=%d d=%d, want dst=%d d=%d", len(dst), len(d), m.cols, m.rows))
	}
	for j := range dst {
		dst[j] = 0
	}
	for r := 0; r < m.rows; r++ {
		dr := d[r]
		if dr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			v := m.vals[k]
			dst[m.colIdx[k]] += dr * v * v
		}
	}
}

// MulVecTTo computes dst = mᵀ·x without allocating. The column scatter is
// serial: parallelizing it would race on dst (or require per-shard copies),
// and the transpose product is never the bottleneck in this codebase.
func (m *CSR) MulVecTTo(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: CSR MulVecTTo got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), m.cols, m.rows))
	}
	for j := range dst {
		dst[j] = 0
	}
	for r := 0; r < m.rows; r++ {
		xr := x[r]
		if xr == 0 {
			continue
		}
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			dst[m.colIdx[k]] += m.vals[k] * xr
		}
	}
}
