package linalg

import (
	"fmt"
	"sort"
)

// Triple is a (row, col, value) entry used to assemble sparse matrices.
type Triple struct {
	Row, Col int
	Val      float64
}

// CSR is a compressed-sparse-row matrix. Duplicate triples are summed during
// assembly. The zero value is unusable; construct with NewCSR.
type CSR struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewCSR assembles a rows×cols CSR matrix from triples, summing duplicates.
func NewCSR(rows, cols int, triples []Triple) *CSR {
	for _, t := range triples {
		if t.Row < 0 || t.Row >= rows || t.Col < 0 || t.Col >= cols {
			panic(fmt.Sprintf("linalg: triple (%d,%d) out of bounds for %dx%d", t.Row, t.Col, rows, cols))
		}
	}
	ts := make([]Triple, len(triples))
	copy(ts, triples)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	m := &CSR{rows: rows, cols: cols, rowPtr: make([]int, rows+1)}
	for i := 0; i < len(ts); {
		j := i
		v := 0.0
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			v += ts[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, ts[i].Col)
			m.vals = append(m.vals, v)
			m.rowPtr[ts[i].Row+1]++
		}
		i = j
	}
	for r := 0; r < rows; r++ {
		m.rowPtr[r+1] += m.rowPtr[r]
	}
	return m
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.vals) }

// MulVec returns m * x as a fresh vector (allocating wrapper over MulVecTo).
func (m *CSR) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: CSR MulVec got %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecT returns mᵀ * x as a fresh vector (allocating wrapper over
// MulVecTTo).
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: CSR MulVecT got %d, want %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	m.MulVecTTo(out, x)
	return out
}

// At returns the entry at (i, j) with a binary search over row i.
func (m *CSR) At(i, j int) float64 {
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := sort.SearchInts(m.colIdx[lo:hi], j) + lo
	if k < hi && m.colIdx[k] == j {
		return m.vals[k]
	}
	return 0
}

// Diag returns the diagonal as a vector (for square matrices).
func (m *CSR) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// Dense converts to a dense matrix (for small instances and tests).
func (m *CSR) Dense() *Dense {
	out := NewDense(m.rows, m.cols)
	for r := 0; r < m.rows; r++ {
		for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
			out.Set(r, m.colIdx[k], m.vals[k])
		}
	}
	return out
}

// QuadForm returns xᵀ m x for square m.
func (m *CSR) QuadForm(x []float64) float64 {
	return Dot(x, m.MulVec(x))
}

// Scale returns a new CSR with every value multiplied by a.
func (m *CSR) Scale(a float64) *CSR {
	out := &CSR{
		rows:   m.rows,
		cols:   m.cols,
		rowPtr: append([]int(nil), m.rowPtr...),
		colIdx: append([]int(nil), m.colIdx...),
		vals:   make([]float64, len(m.vals)),
	}
	for i, v := range m.vals {
		out.vals[i] = a * v
	}
	return out
}

// RowNNZ returns the number of nonzeros in row r.
func (m *CSR) RowNNZ(r int) int { return m.rowPtr[r+1] - m.rowPtr[r] }

// VisitRow calls f(col, val) for every stored nonzero in row r.
func (m *CSR) VisitRow(r int, f func(col int, val float64)) {
	for k := m.rowPtr[r]; k < m.rowPtr[r+1]; k++ {
		f(m.colIdx[k], m.vals[k])
	}
}
