package linalg

import (
	"math/rand"
	"testing"
)

func randomTriples(rows, cols, nnz int, rnd *rand.Rand) []Triple {
	ts := make([]Triple, nnz)
	for i := range ts {
		ts[i] = Triple{Row: rnd.Intn(rows), Col: rnd.Intn(cols), Val: rnd.NormFloat64()}
	}
	return ts
}

func TestCSRMatchesDense(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		rows, cols := 1+rnd.Intn(12), 1+rnd.Intn(12)
		ts := randomTriples(rows, cols, rnd.Intn(40), rnd)
		csr := NewCSR(rows, cols, ts)
		dense := csr.Dense()
		x := make([]float64, cols)
		for i := range x {
			x[i] = rnd.NormFloat64()
		}
		a, b := csr.MulVec(x), dense.MulVec(x)
		for i := range a {
			if !almostEq(a[i], b[i], 1e-12) {
				t.Fatalf("MulVec mismatch at %d: %v vs %v", i, a[i], b[i])
			}
		}
		y := make([]float64, rows)
		for i := range y {
			y[i] = rnd.NormFloat64()
		}
		at, bt := csr.MulVecT(y), dense.MulVecT(y)
		for i := range at {
			if !almostEq(at[i], bt[i], 1e-12) {
				t.Fatalf("MulVecT mismatch at %d", i)
			}
		}
	}
}

func TestCSRDuplicatesSummed(t *testing.T) {
	csr := NewCSR(2, 2, []Triple{{0, 0, 1}, {0, 0, 2}, {1, 1, -1}, {1, 1, 1}})
	if got := csr.At(0, 0); got != 3 {
		t.Fatalf("At(0,0) = %v, want 3", got)
	}
	// Entries that cancel exactly are dropped.
	if got := csr.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %v, want 0", got)
	}
	if csr.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", csr.NNZ())
	}
}

func TestCSRDiagAndVisit(t *testing.T) {
	csr := NewCSR(3, 3, []Triple{{0, 0, 2}, {1, 1, 5}, {1, 2, -1}, {2, 0, 4}})
	d := csr.Diag()
	if d[0] != 2 || d[1] != 5 || d[2] != 0 {
		t.Fatalf("Diag = %v", d)
	}
	var cols []int
	csr.VisitRow(1, func(c int, v float64) { cols = append(cols, c) })
	if len(cols) != 2 || cols[0] != 1 || cols[1] != 2 {
		t.Fatalf("VisitRow = %v", cols)
	}
	if csr.RowNNZ(1) != 2 {
		t.Fatal("RowNNZ wrong")
	}
}

func TestCSRScale(t *testing.T) {
	csr := NewCSR(2, 2, []Triple{{0, 1, 3}})
	s := csr.Scale(2)
	if s.At(0, 1) != 6 || csr.At(0, 1) != 3 {
		t.Fatal("Scale should not mutate the receiver")
	}
}

func TestLaplacianAgainstQuadForm(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	n := 8
	var edges []WEdge
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rnd.Float64() < 0.4 {
				edges = append(edges, WEdge{U: u, V: v, W: 1 + rnd.Float64()*4})
			}
		}
	}
	l := LaplacianCSR(n, edges)
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rnd.NormFloat64()
		}
		if a, b := l.QuadForm(x), LaplacianQuadForm(edges, x); !almostEq(a, b, 1e-10) {
			t.Fatalf("quadform mismatch: %v vs %v", a, b)
		}
	}
	// Row sums of a Laplacian vanish: L·1 = 0.
	ones := Ones(n)
	if nrm := Norm2(l.MulVec(ones)); nrm > 1e-10 {
		t.Fatalf("L*1 = %v, want 0", nrm)
	}
}

func TestIncidenceFactorsLaplacian(t *testing.T) {
	edges := []WEdge{{0, 1, 2}, {1, 2, 3}, {0, 2, 1}}
	n := 3
	b := IncidenceCSR(n, edges)
	l := LaplacianCSR(n, edges)
	// L = Bᵀ W B.
	x := []float64{0.3, -1.2, 0.7}
	bx := b.MulVec(x)
	for i := range bx {
		bx[i] *= edges[i].W
	}
	btwbx := b.MulVecT(bx)
	lx := l.MulVec(x)
	for i := range lx {
		if !almostEq(lx[i], btwbx[i], 1e-12) {
			t.Fatalf("BᵀWB x != L x at %d: %v vs %v", i, btwbx[i], lx[i])
		}
	}
}
