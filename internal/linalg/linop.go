package linalg

import "fmt"

// LinOp is a linear operator applied into caller-provided storage. It is the
// shared currency of the solver stack: CSR and Dense matrices, diagonal
// scalings, transposes, compositions and Laplacian pencils all implement it,
// so downstream layers (lapsolver, lp, flow) can compose solves without
// materializing intermediate matrices or allocating per application.
type LinOp interface {
	// Dims returns the (rows, cols) shape of the operator.
	Dims() (rows, cols int)
	// MulVecTo computes dst = Op · x. dst must have length rows and x
	// length cols; dst and x must not alias.
	MulVecTo(dst, x []float64)
}

// checkApply panics unless dst and x match the operator shape.
func checkApply(op LinOp, dst, x []float64) {
	r, c := op.Dims()
	if len(dst) != r || len(x) != c {
		panic(fmt.Sprintf("linalg: LinOp apply got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), r, c))
	}
}

// Workspace is a small arena of reusable float64 buffers. Iterative solvers
// and composed operators draw their temporaries from one workspace so that
// repeated solves (e.g. the Õ(√n) path steps of the interior-point method)
// stop allocating after the first call. A Workspace is NOT safe for
// concurrent use; give each goroutine its own.
type Workspace struct {
	free [][]float64
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// Get returns a length-n buffer with unspecified contents, reusing a
// previously Put buffer when one is large enough.
func (w *Workspace) Get(n int) []float64 {
	if w == nil {
		return make([]float64, n)
	}
	for i := len(w.free) - 1; i >= 0; i-- {
		if cap(w.free[i]) >= n {
			b := w.free[i][:n]
			w.free[i] = w.free[len(w.free)-1]
			w.free = w.free[:len(w.free)-1]
			return b
		}
	}
	return make([]float64, n)
}

// Put returns a buffer to the workspace for reuse. The caller must not use
// b afterwards.
func (w *Workspace) Put(b []float64) {
	if w == nil || cap(b) == 0 {
		return
	}
	w.free = append(w.free, b[:cap(b)])
}

// Dims implements LinOp for CSR.
func (m *CSR) Dims() (int, int) { return m.rows, m.cols }

// Dims implements LinOp for Dense.
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// MulVecTo computes dst = m·x without allocating.
func (m *Dense) MulVecTo(dst, x []float64) {
	checkApply(m, dst, x)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecTTo computes dst = mᵀ·x without allocating.
func (m *Dense) MulVecTTo(dst, x []float64) {
	if len(x) != m.rows || len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: Dense MulVecTTo got dst=%d x=%d, want dst=%d x=%d", len(dst), len(x), m.cols, m.rows))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// OpFunc already adapts func([]float64) []float64 to MulVecer; FuncOp adapts
// an in-place function with explicit dimensions to LinOp.
type FuncOp struct {
	R, C  int
	Apply func(dst, x []float64)
}

// Dims implements LinOp.
func (f FuncOp) Dims() (int, int) { return f.R, f.C }

// MulVecTo implements LinOp.
func (f FuncOp) MulVecTo(dst, x []float64) { f.Apply(dst, x) }

// DiagOp is the diagonal operator diag(D).
type DiagOp struct{ D []float64 }

// Dims implements LinOp.
func (d DiagOp) Dims() (int, int) { return len(d.D), len(d.D) }

// MulVecTo implements LinOp.
func (d DiagOp) MulVecTo(dst, x []float64) {
	checkApply(d, dst, x)
	for i, v := range d.D {
		dst[i] = v * x[i]
	}
}

// ScaledOp is c·A for a scalar c.
type ScaledOp struct {
	C float64
	A LinOp
}

// Dims implements LinOp.
func (s ScaledOp) Dims() (int, int) { return s.A.Dims() }

// MulVecTo implements LinOp.
func (s ScaledOp) MulVecTo(dst, x []float64) {
	s.A.MulVecTo(dst, x)
	for i := range dst {
		dst[i] *= s.C
	}
}

// TransposeOp applies Aᵀ for a CSR matrix A (row-scatter; serial).
type TransposeOp struct{ A *CSR }

// Dims implements LinOp.
func (t TransposeOp) Dims() (int, int) { return t.A.cols, t.A.rows }

// MulVecTo implements LinOp.
func (t TransposeOp) MulVecTo(dst, x []float64) {
	checkApply(t, dst, x)
	t.A.MulVecTTo(dst, x)
}

// ComposedOp applies Ops[0]·Ops[1]·…·Ops[k-1] (rightmost first), drawing
// intermediate vectors from its workspace so repeated applications allocate
// nothing. Construct with Compose.
type ComposedOp struct {
	ops []LinOp
	ws  *Workspace
}

// Compose chains operators into their product op0·op1·…; it panics on an
// inner dimension mismatch. ws may be nil (then intermediates are allocated
// per call).
func Compose(ws *Workspace, ops ...LinOp) *ComposedOp {
	if len(ops) == 0 {
		panic("linalg: Compose needs at least one operator")
	}
	for i := 0; i+1 < len(ops); i++ {
		_, c := ops[i].Dims()
		r, _ := ops[i+1].Dims()
		if c != r {
			panic(fmt.Sprintf("linalg: Compose inner dimension mismatch at %d: %d vs %d", i, c, r))
		}
	}
	return &ComposedOp{ops: ops, ws: ws}
}

// Dims implements LinOp.
func (c *ComposedOp) Dims() (int, int) {
	r, _ := c.ops[0].Dims()
	_, cc := c.ops[len(c.ops)-1].Dims()
	return r, cc
}

// MulVecTo implements LinOp.
func (c *ComposedOp) MulVecTo(dst, x []float64) {
	checkApply(c, dst, x)
	cur := x
	var scratch []float64
	for i := len(c.ops) - 1; i >= 0; i-- {
		op := c.ops[i]
		r, _ := op.Dims()
		var out []float64
		if i == 0 {
			out = dst
		} else {
			out = c.ws.Get(r)
		}
		op.MulVecTo(out, cur)
		if scratch != nil {
			c.ws.Put(scratch)
		}
		scratch = nil
		if i != 0 {
			scratch = out
		}
		cur = out
	}
}

// LaplacianOp applies the graph Laplacian L = BᵀWB directly from its edge
// list: (Lx)_u = Σ_{(u,v)} w(x_u − x_v). It is allocation-free and never
// assembles L, which makes it the natural pencil operand for preconditioned
// iterations on lo·L_H ≼ L_G ≼ hi·L_H.
type LaplacianOp struct {
	N     int
	Edges []WEdge
}

// Dims implements LinOp.
func (l LaplacianOp) Dims() (int, int) { return l.N, l.N }

// MulVecTo implements LinOp.
func (l LaplacianOp) MulVecTo(dst, x []float64) {
	checkApply(l, dst, x)
	for i := range dst {
		dst[i] = 0
	}
	for _, e := range l.Edges {
		d := e.W * (x[e.U] - x[e.V])
		dst[e.U] += d
		dst[e.V] -= d
	}
}
