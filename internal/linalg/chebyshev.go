package linalg

import "math"

// ChebyshevResult reports what a preconditioned Chebyshev run did.
type ChebyshevResult struct {
	// Iterations is the number of Chebyshev iterations performed (each one
	// multiplication by A and one solve in B, per Theorem 2.3).
	Iterations int
	// ResidualNorm is ||b - A y||₂ at termination.
	ResidualNorm float64
}

// PreconditionedChebyshev implements Theorem 2.3 of the paper: given
// symmetric PSD A and B with A ≼ B ≼ κA, a vector b and ε ∈ (0, 1/2], it
// returns y with ||x − y||_A ≤ ε ||x||_A for the solution x of A x = b,
// using O(√κ · log(1/ε)) iterations. Each iteration multiplies A by one
// vector (mulA) and solves one system in B (solveB).
//
// The iteration is classical Chebyshev semi-iteration on the preconditioned
// operator B⁻¹A, whose spectrum lies in [1/κ, 1] (restricted to the range of
// A; callers handle nullspaces, e.g. by projecting out the all-ones vector
// for Laplacians).
func PreconditionedChebyshev(mulA, solveB func([]float64) []float64, b []float64, kappa, eps float64) ([]float64, ChebyshevResult) {
	n := len(b)
	lmin, lmax := 1/kappa, 1.0
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2

	iters := int(math.Ceil(math.Sqrt(kappa)*math.Log(2/eps))) + 1
	x := make([]float64, n)
	r := Clone(b)
	var p []float64
	var alpha float64
	for k := 0; k < iters; k++ {
		z := solveB(r)
		switch k {
		case 0:
			p = Clone(z)
			alpha = 1 / theta
		default:
			var beta float64
			if k == 1 {
				beta = 0.5 * (delta * alpha) * (delta * alpha)
			} else {
				beta = (delta * alpha / 2) * (delta * alpha / 2)
			}
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		}
		AXPY(alpha, p, x)
		ax := mulA(x)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
	}
	return x, ChebyshevResult{Iterations: iters, ResidualNorm: Norm2(r)}
}
