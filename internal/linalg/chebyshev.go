package linalg

import (
	"context"
	"fmt"
	"math"
)

// ChebyshevResult reports what a preconditioned Chebyshev run did.
type ChebyshevResult struct {
	// Iterations is the number of Chebyshev iterations performed (each one
	// multiplication by A and one solve in B, per Theorem 2.3).
	Iterations int
	// ResidualNorm is ||b - A y||₂ at termination.
	ResidualNorm float64
}

// PreconditionedChebyshevTo implements Theorem 2.3 of the paper with
// caller-provided storage: given symmetric PSD A (as a LinOp) and a solver
// for B with A ≼ B ≼ κA, a vector b and ε ∈ (0, 1/2], it writes y into x
// with ||x* − y||_A ≤ ε ||x*||_A for the solution x* of A x* = b, using
// O(√κ · log(1/ε)) iterations. solveBTo applies B⁻¹ into its first
// argument. Temporaries come from ws; repeated solves through a shared
// workspace allocate nothing.
//
// The iteration is classical Chebyshev semi-iteration on the preconditioned
// operator B⁻¹A, whose spectrum lies in [1/κ, 1] (restricted to the range of
// A; callers handle nullspaces, e.g. by projecting out the all-ones vector
// for Laplacians).
//
// ctx is polled every cancelCheckInterval iterations; on cancellation the
// returned error satisfies errors.Is(err, ctx.Err()) and the result reports
// the iterations completed so far.
func PreconditionedChebyshevTo(ctx context.Context, x []float64, a LinOp, solveBTo func(dst, r []float64), b []float64, kappa, eps float64, ws *Workspace) (ChebyshevResult, error) {
	n := len(b)
	if len(x) != n {
		panic("linalg: PreconditionedChebyshevTo dimension mismatch")
	}
	lmin, lmax := 1/kappa, 1.0
	theta := (lmax + lmin) / 2
	delta := (lmax - lmin) / 2

	iters := int(math.Ceil(math.Sqrt(kappa)*math.Log(2/eps))) + 1
	for i := range x {
		x[i] = 0
	}
	r := ws.Get(n)
	copy(r, b)
	z := ws.Get(n)
	p := ws.Get(n)
	ax := ws.Get(n)
	defer func() {
		ws.Put(r)
		ws.Put(z)
		ws.Put(p)
		ws.Put(ax)
	}()
	var alpha float64
	for k := 0; k < iters; k++ {
		if k%cancelCheckInterval == 0 && ctx != nil {
			if err := ctx.Err(); err != nil {
				return ChebyshevResult{Iterations: k, ResidualNorm: Norm2(r)},
					fmt.Errorf("linalg: Chebyshev canceled after %d iterations: %w", k, err)
			}
		}
		solveBTo(z, r)
		switch k {
		case 0:
			copy(p, z)
			alpha = 1 / theta
		default:
			var beta float64
			if k == 1 {
				beta = 0.5 * (delta * alpha) * (delta * alpha)
			} else {
				beta = (delta * alpha / 2) * (delta * alpha / 2)
			}
			alpha = 1 / (theta - beta/alpha)
			for i := range p {
				p[i] = z[i] + beta*p[i]
			}
		}
		AXPY(alpha, p, x)
		a.MulVecTo(ax, x)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
	}
	return ChebyshevResult{Iterations: iters, ResidualNorm: Norm2(r)}, nil
}

// PreconditionedChebyshev is the allocating wrapper over
// PreconditionedChebyshevTo for callers holding closures instead of LinOps
// or a context.
func PreconditionedChebyshev(mulA, solveB func([]float64) []float64, b []float64, kappa, eps float64) ([]float64, ChebyshevResult) {
	n := len(b)
	x := make([]float64, n)
	op := FuncOp{R: n, C: n, Apply: func(dst, v []float64) { copy(dst, mulA(v)) }}
	res, _ := PreconditionedChebyshevTo(context.Background(), x, op, func(dst, r []float64) { copy(dst, solveB(r)) }, b, kappa, eps, nil)
	return x, res
}
