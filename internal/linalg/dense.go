package linalg

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. The zero value is an empty matrix; use
// NewDense to allocate.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense allocates a rows×cols zero matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimensions")
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewDenseFromRows builds a matrix from row slices, copying the data.
func NewDenseFromRows(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the entry at (i, j).
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the entry at (i, j).
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Inc adds v to the entry at (i, j).
func (m *Dense) Inc(i, j int, v float64) { m.data[i*m.cols+j] += v }

// Row returns a view of row i (not a copy).
func (m *Dense) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := NewDense(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m * x as a fresh vector (allocating wrapper over MulVecTo).
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("linalg: MulVec got %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	m.MulVecTo(out, x)
	return out
}

// MulVecT returns mᵀ * x as a fresh vector (allocating wrapper over
// MulVecTTo).
func (m *Dense) MulVecT(x []float64) []float64 {
	if len(x) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecT got %d, want %d", len(x), m.rows))
	}
	out := make([]float64, m.cols)
	m.MulVecTTo(out, x)
	return out
}

// Mul returns m * b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			orow := out.Row(i)
			for j, v := range brow {
				orow[j] += a * v
			}
		}
	}
	return out
}

// Transpose returns mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	out := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Solve solves m*x = b by Gaussian elimination with partial pivoting.
// m must be square; it is not modified. Returns ErrSingular if the matrix is
// numerically singular.
func (m *Dense) Solve(b []float64) ([]float64, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("linalg: Solve on %dx%d matrix: %w", m.rows, m.cols, ErrDimension)
	}
	if len(b) != m.rows {
		return nil, ErrDimension
	}
	n := m.rows
	a := m.Clone()
	x := Clone(b)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vi, vp := a.At(col, j), a.At(pivot, j)
				a.Set(col, j, vp)
				a.Set(pivot, j, vi)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / a.At(col, col)
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				a.Inc(r, j, -f*a.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x, nil
}

// ErrSingular is returned when a solve hits a numerically singular matrix.
var ErrSingular = fmt.Errorf("linalg: singular matrix")

// Cholesky computes the lower-triangular Cholesky factor of a symmetric
// positive-definite matrix. Returns ErrSingular when the matrix is not
// (numerically) positive definite.
func (m *Dense) Cholesky() (*Dense, error) {
	if m.rows != m.cols {
		return nil, ErrDimension
	}
	n := m.rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := m.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return l, nil
}

// CholSolve solves L Lᵀ x = b given a lower Cholesky factor L.
func CholSolve(l *Dense, b []float64) []float64 {
	y := Clone(b)
	CholSolveInPlace(l, y)
	return y
}

// CholSolveInPlace solves L Lᵀ x = y in place (y holds b on entry and x on
// return), the allocation-free form of CholSolve.
func CholSolveInPlace(l *Dense, y []float64) {
	n := l.rows
	for i := 0; i < n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// QuadForm returns xᵀ m x.
func (m *Dense) QuadForm(x []float64) float64 {
	return Dot(x, m.MulVec(x))
}

// SymEigBounds estimates the extreme eigenvalues of a symmetric matrix using
// power iteration on m and on (sI - m) with s an upper bound obtained from
// Gershgorin discs. The estimates are accurate to the given tolerance for
// matrices whose extreme eigenvalues are separated; they are used for bound
// reporting, not for correctness-critical decisions.
func (m *Dense) SymEigBounds(iters int) (lo, hi float64) {
	n := m.rows
	if n == 0 {
		return 0, 0
	}
	// Gershgorin upper bound on |lambda|.
	var shift float64
	for i := 0; i < n; i++ {
		var r float64
		for j := 0; j < n; j++ {
			r += math.Abs(m.At(i, j))
		}
		if r > shift {
			shift = r
		}
	}
	power := func(mul func([]float64) []float64) float64 {
		x := make([]float64, n)
		for i := range x {
			x[i] = 1 / math.Sqrt(float64(n)) * (1 + 0.01*float64(i%7))
		}
		var lambda float64
		for it := 0; it < iters; it++ {
			y := mul(x)
			nrm := Norm2(y)
			if nrm == 0 {
				return 0
			}
			Scale(1/nrm, y)
			lambda = Dot(y, mul(y))
			x = y
		}
		return lambda
	}
	hi = power(m.MulVec)
	// Largest eigenvalue of shift*I - m gives shift - lo.
	loShift := power(func(x []float64) []float64 {
		y := m.MulVec(x)
		for i := range y {
			y[i] = shift*x[i] - y[i]
		}
		return y
	})
	lo = shift - loShift
	return lo, hi
}
