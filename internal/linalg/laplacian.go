package linalg

import "math"

// WEdge is an undirected weighted edge between vertices U and V, used to
// assemble Laplacians without importing the graph package (linalg sits at
// the bottom of the dependency tree).
type WEdge struct {
	U, V int
	W    float64
}

// LaplacianCSR assembles the graph Laplacian L = BᵀWB of the weighted
// undirected graph given by edges on n vertices (Section 2.2 of the paper):
//
//	L[u][v] = -w(u,v) for u adjacent to v, L[u][u] = sum of incident weights.
func LaplacianCSR(n int, edges []WEdge) *CSR {
	triples := make([]Triple, 0, 4*len(edges))
	for _, e := range edges {
		triples = append(triples,
			Triple{e.U, e.U, e.W},
			Triple{e.V, e.V, e.W},
			Triple{e.U, e.V, -e.W},
			Triple{e.V, e.U, -e.W},
		)
	}
	return NewCSR(n, n, triples)
}

// IncidenceCSR assembles the m×n edge-vertex incidence matrix B with
// B[e][head] = 1, B[e][tail] = -1 (Section 2.2). For undirected edges the
// orientation is U→V (tail U, head V); the Laplacian BᵀWB is
// orientation-independent.
func IncidenceCSR(n int, edges []WEdge) *CSR {
	triples := make([]Triple, 0, 2*len(edges))
	for i, e := range edges {
		triples = append(triples,
			Triple{i, e.V, 1},
			Triple{i, e.U, -1},
		)
	}
	return NewCSR(len(edges), n, triples)
}

// LaplacianQuadForm returns xᵀ L x = sum_e w_e (x_u - x_v)^2 computed
// directly from the edge list, which is both faster and more accurate than
// assembling L first.
func LaplacianQuadForm(edges []WEdge, x []float64) float64 {
	var s float64
	for _, e := range edges {
		d := x[e.U] - x[e.V]
		s += e.W * d * d
	}
	return s
}

// PencilBounds estimates the range of the generalized Rayleigh quotient
// xᵀ L_G x / xᵀ L_H x over x ⊥ 1, used to certify that H is a (1±ε)
// spectral sparsifier of G (Definition 2.1). It combines random probes with
// generalized power iteration: x ← L_H⁺ L_G x drives x toward the top
// generalized eigenvector, and the inverse iteration toward the bottom one.
// solveH must apply L_H⁺ (e.g. via CG with the ones-projection).
//
// The returned (lo, hi) satisfy lo ≤ λmin(L_H⁺L_G) and hi ≥ sampled
// λmax estimates; for the test graphs used here the estimates converge to
// the true extremes well within the iteration budget.
func PencilBounds(edgesG, edgesH []WEdge, n int, solveH func([]float64) []float64, probes, iters int, rnd func() float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	ratio := func(x []float64) float64 {
		num := LaplacianQuadForm(edgesG, x)
		den := LaplacianQuadForm(edgesH, x)
		if den <= 0 {
			return math.NaN()
		}
		return num / den
	}
	lg := LaplacianCSR(n, edgesG)
	for p := 0; p < probes; p++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rnd() - 0.5
		}
		x = ProjectOutOnes(x)
		// Forward power iteration for the maximum.
		y := Clone(x)
		for it := 0; it < iters; it++ {
			y = solveH(lg.MulVec(y))
			y = ProjectOutOnes(y)
			if nrm := Norm2(y); nrm > 0 {
				Scale(1/nrm, y)
			}
		}
		if r := ratio(y); !math.IsNaN(r) && r > hi {
			hi = r
		}
		if r := ratio(x); !math.IsNaN(r) {
			if r > hi {
				hi = r
			}
			if r < lo {
				lo = r
			}
		}
	}
	// Inverse iteration for the minimum: power iterate on L_G⁺ L_H using CG
	// on L_G. Build a solver for L_G on the fly.
	lgSolve := func(b []float64) []float64 {
		x, _ := CGLaplacian(lg, b, 1e-10, 4*n+200)
		return x
	}
	lh := LaplacianCSR(n, edgesH)
	for p := 0; p < probes; p++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rnd() - 0.5
		}
		x = ProjectOutOnes(x)
		for it := 0; it < iters; it++ {
			x = lgSolve(lh.MulVec(x))
			x = ProjectOutOnes(x)
			if nrm := Norm2(x); nrm > 0 {
				Scale(1/nrm, x)
			}
		}
		if r := ratio(x); !math.IsNaN(r) && r < lo {
			lo = r
		}
	}
	return lo, hi
}
