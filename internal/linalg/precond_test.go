package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomForest draws a random spanning tree on n vertices (every vertex v
// attaches to a uniform earlier vertex) plus the numeric values of an SDD
// matrix supported on it: a strictly dominant diagonal and signed
// off-diagonals.
func randomForest(n int, rnd *rand.Rand) (edges []TreeEdge, diag, off []float64) {
	for v := 1; v < n; v++ {
		edges = append(edges, TreeEdge{U: rnd.Intn(v), V: v})
	}
	diag = make([]float64, n)
	off = make([]float64, len(edges))
	for i := range off {
		off[i] = rnd.NormFloat64()
	}
	for v := range diag {
		diag[v] = 0.1 + rnd.Float64()
	}
	for i, e := range edges {
		diag[e.U] += math.Abs(off[i])
		diag[e.V] += math.Abs(off[i])
	}
	return edges, diag, off
}

// denseFromTree assembles M = diag + forest off-diagonals for reference.
func denseFromTree(n int, edges []TreeEdge, diag, off []float64) *Dense {
	m := NewDense(n, n)
	for v, d := range diag {
		m.Set(v, v, d)
	}
	for i, e := range edges {
		m.Set(e.U, e.V, off[i])
		m.Set(e.V, e.U, off[i])
	}
	return m
}

// The fill-free factorization must be exact on its own support: applying
// M then M⁻¹ is the identity for matrices whose off-diagonals all lie on
// the forest.
func TestTreeCholExactOnForest(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 7, 33} {
		edges, diag, off := randomForest(n, rnd)
		p, err := NewTreeCholPrecond(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		p.Refresh(diag, off)
		m := denseFromTree(n, edges, diag, off)
		r := make([]float64, n)
		for i := range r {
			r[i] = rnd.NormFloat64()
		}
		x := make([]float64, n)
		p.ApplyTo(x, r)
		back := m.MulVec(x)
		if diff := Norm2(Sub(back, r)) / (1 + Norm2(r)); diff > 1e-12 {
			t.Fatalf("n=%d: M·M⁻¹r deviates from r by %g", n, diff)
		}
	}
}

// M⁻¹ must be SPD — the property CG's convergence theory needs: symmetric
// in the inner product and positive on every probed direction, even when a
// refresh carries degenerate values that trip the pivot clamp.
func TestPrecondSPD(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	n := 24
	edges, diag, off := randomForest(n, rnd)
	tree, err := NewTreeCholPrecond(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	jac := NewJacobiPrecond(n)
	for trial := 0; trial < 3; trial++ {
		if trial == 2 {
			// Degenerate refresh: zero diagonal forces the pivot clamp.
			for i := range diag {
				diag[i] = 0
			}
		}
		tree.Refresh(diag, off)
		jac.Refresh(diag)
		for _, p := range []Precond{tree, jac} {
			u := make([]float64, n)
			v := make([]float64, n)
			for i := range u {
				u[i] = rnd.NormFloat64()
				v[i] = rnd.NormFloat64()
			}
			pu := make([]float64, n)
			pv := make([]float64, n)
			p.ApplyTo(pu, u)
			p.ApplyTo(pv, v)
			// Symmetry: ⟨M⁻¹u, v⟩ = ⟨u, M⁻¹v⟩.
			l, r := Dot(pu, v), Dot(u, pv)
			if diff := math.Abs(l-r) / (1 + math.Abs(l)); diff > 1e-10 {
				t.Fatalf("trial %d %T: asymmetric, %g vs %g", trial, p, l, r)
			}
			// Positivity: ⟨M⁻¹u, u⟩ > 0 for u ≠ 0.
			if q := Dot(pu, u); q <= 0 {
				t.Fatalf("trial %d %T: quadratic form %g not positive", trial, p, q)
			}
		}
		for i, e := range edges {
			off[i] = rnd.NormFloat64()
			diag[e.U] += math.Abs(off[i])
			diag[e.V] += math.Abs(off[i])
		}
	}
}

// Symbolic reuse: refreshing one preconditioner across reweights must be
// bit-identical to building a fresh one from scratch for each weighting —
// the contract that lets a session keep one elimination structure across
// every IPM step.
func TestTreeCholRefreshEqualsRebuild(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	n := 19
	edges, diag, off := randomForest(n, rnd)
	reused, err := NewTreeCholPrecond(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	for i := range r {
		r[i] = rnd.NormFloat64()
	}
	got := make([]float64, n)
	want := make([]float64, n)
	for reweight := 0; reweight < 5; reweight++ {
		reused.Refresh(diag, off)
		fresh, err := NewTreeCholPrecond(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		fresh.Refresh(diag, off)
		reused.ApplyTo(got, r)
		fresh.ApplyTo(want, r)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("reweight %d: entry %d differs, %v vs %v", reweight, i, got[i], want[i])
			}
		}
		// Fresh weights for the next round (keep dominance).
		for i := range diag {
			diag[i] = 0.1 + rnd.Float64()
		}
		for i, e := range edges {
			off[i] = rnd.NormFloat64()
			diag[e.U] += math.Abs(off[i])
			diag[e.V] += math.Abs(off[i])
		}
	}
}

// The hot-path contract: ApplyTo and Refresh allocate nothing after
// construction.
func TestPrecondAllocationFree(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	n := 64
	edges, diag, off := randomForest(n, rnd)
	tree, err := NewTreeCholPrecond(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	jac := NewJacobiPrecond(n)
	r := make([]float64, n)
	dst := make([]float64, n)
	for i := range r {
		r[i] = rnd.NormFloat64()
	}
	tree.Refresh(diag, off)
	jac.Refresh(diag)
	if allocs := testing.AllocsPerRun(100, func() { tree.ApplyTo(dst, r) }); allocs != 0 {
		t.Fatalf("TreeCholPrecond.ApplyTo allocates %v per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { tree.Refresh(diag, off) }); allocs != 0 {
		t.Fatalf("TreeCholPrecond.Refresh allocates %v per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { jac.ApplyTo(dst, r) }); allocs != 0 {
		t.Fatalf("JacobiPrecond.ApplyTo allocates %v per run", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { jac.Refresh(diag) }); allocs != 0 {
		t.Fatalf("JacobiPrecond.Refresh allocates %v per run", allocs)
	}
}

// Cyclic or malformed edge sets must be rejected at construction — the
// fill-free factorization exists only on forests.
func TestTreeCholRejectsNonForest(t *testing.T) {
	if _, err := NewTreeCholPrecond(3, []TreeEdge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, err := NewTreeCholPrecond(2, []TreeEdge{{U: 0, V: 1}, {U: 1, V: 0}}); err == nil {
		t.Fatal("duplicate edge accepted")
	}
	if _, err := NewTreeCholPrecond(2, []TreeEdge{{U: 0, V: 2}}); err == nil {
		t.Fatal("out-of-range endpoint accepted")
	}
	if _, err := NewTreeCholPrecond(2, []TreeEdge{{U: 1, V: 1}}); err == nil {
		t.Fatal("self-loop accepted")
	}
}

// CG preconditioned by the forest factorization must converge in fewer
// iterations than unpreconditioned CG on a tree-dominated SDD system.
func TestTreeCholAcceleratesCG(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	n := 200
	// A path graph Laplacian plus small diagonal: condition number Θ(n²),
	// the classic CG-hostile instance that a tree preconditioner inverts
	// exactly.
	var ts []Triple
	edges := make([]TreeEdge, 0, n-1)
	diag := make([]float64, n)
	off := make([]float64, 0, n-1)
	for v := 0; v+1 < n; v++ {
		w := 1 + rnd.Float64()
		edges = append(edges, TreeEdge{U: v, V: v + 1})
		off = append(off, -w)
		diag[v] += w
		diag[v+1] += w
	}
	for v := 0; v < n; v++ {
		diag[v] += 0.01
		ts = append(ts, Triple{Row: v, Col: v, Val: diag[v]})
	}
	for i, e := range edges {
		ts = append(ts, Triple{Row: e.U, Col: e.V, Val: off[i]}, Triple{Row: e.V, Col: e.U, Val: off[i]})
	}
	a := NewCSR(n, n, ts)
	b := make([]float64, n)
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	p, err := NewTreeCholPrecond(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	p.Refresh(diag, off)
	x := make([]float64, n)
	plain, err := CGTo(nil, x, a, b, 1e-10, 10*n, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := CGTo(nil, x, a, b, 1e-10, 10*n, p.ApplyTo, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pre >= plain {
		t.Fatalf("tree-preconditioned CG took %d iterations, unpreconditioned %d", pre, plain)
	}
	if pre > 3 {
		t.Fatalf("preconditioner supported on the whole graph should solve in ≤ 3 iterations, took %d", pre)
	}
}
