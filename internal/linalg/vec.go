package linalg

import (
	"errors"
	"math"
)

// ErrDimension is returned when vector or matrix dimensions do not match.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Dot returns the inner product of x and y. It panics if lengths differ,
// since that is always a programming error in this codebase.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// NormInf returns the maximum absolute entry of x (0 for an empty vector).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute entries of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// WeightedNorm returns sqrt(sum_i w_i * x_i^2), the ||x||_w norm used by the
// LP solver (Definition of ||.||_w in Section 4.1 of the paper).
func WeightedNorm(x, w []float64) float64 {
	if len(x) != len(w) {
		panic("linalg: WeightedNorm dimension mismatch")
	}
	var s float64
	for i, v := range x {
		s += w[i] * v * v
	}
	return math.Sqrt(s)
}

// AXPY computes y <- a*x + y in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY dimension mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Scale multiplies every entry of x by a, in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Add returns x + y as a new vector.
func Add(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: Add dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Sub returns x - y as a new vector.
func Sub(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: Sub dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zeros returns a zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// Ones returns the all-ones vector of length n.
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// Constant returns a vector of length n with every entry c.
func Constant(n int, c float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = c
	}
	return out
}

// Hadamard returns the entrywise product x .* y.
func Hadamard(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: Hadamard dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] * y[i]
	}
	return out
}

// EntryDiv returns the entrywise quotient x ./ y.
func EntryDiv(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: EntryDiv dimension mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] / y[i]
	}
	return out
}

// Apply returns f applied entrywise to x, following the paper's convention
// that scalar operations on vectors act coordinate-wise.
func Apply(x []float64, f func(float64) float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = f(v)
	}
	return out
}

// Sum returns the sum of entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Max returns the maximum entry of x. It panics on an empty vector.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("linalg: Max of empty vector")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum entry of x. It panics on an empty vector.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("linalg: Min of empty vector")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// ProjectOutOnes removes the component of x along the all-ones vector,
// returning x - mean(x)*1. Laplacian systems are only solvable for b
// orthogonal to the nullspace span{1}; solvers use this projection.
func ProjectOutOnes(x []float64) []float64 {
	if len(x) == 0 {
		return nil
	}
	out := Clone(x)
	ProjectOutOnesInPlace(out)
	return out
}

// ProjectOutOnesInPlace subtracts the mean from every entry of x, the
// allocation-free form of ProjectOutOnes for workspace-based solvers.
func ProjectOutOnesInPlace(x []float64) {
	if len(x) == 0 {
		return
	}
	mean := Sum(x) / float64(len(x))
	for i := range x {
		x[i] -= mean
	}
}

// Median3 returns the median of a, b and c. The paper's algorithms use
// median(x, y, z) to clamp step sizes (Algorithms 7, 8 and 10).
func Median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// Clamp restricts v to the interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
