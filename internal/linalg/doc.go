// Package linalg provides the numerical linear-algebra substrate used by
// the Laplacian-paradigm pipeline: dense and CSR sparse matrices, graph
// Laplacians, the LinOp operator layer (diagonal, scaled, transposed and
// composed operators that apply A, D, Aᵀ without materializing products),
// conjugate-gradient and preconditioned Chebyshev solvers, reusable
// preconditioners (Jacobi and the spanning-forest incomplete Cholesky of
// precond.go, whose symbolic structure is built once and numerically
// refreshed per reweight), and spectral utilities (Rayleigh quotients,
// pencil bounds).
//
// Everything is float64 and stdlib-only. Vectors are plain []float64 so
// they compose with the rest of the codebase without wrapper types.
//
// Invariants:
//
//   - Allocation-free kernels: the *To solver variants (CGTo,
//     PreconditionedChebyshevTo, MulVecTo) write into caller-owned
//     buffers and draw scratch from a Workspace arena, so a warmed-up
//     solve allocates nothing — the property the session and pool layers
//     are built around (one workspace per session, never shared).
//   - Bit-for-bit parallel SpMV: the CSR kernel shards rows into blocks of
//     balanced *nonzero* count (never row count — a hub row would
//     serialize its shard) and sums each row in serial order, so its
//     output is identical to the serial kernel for every shard count
//     (property-tested and raced in CI). Below the nnz threshold the auto
//     path stays serial: fan-out only ever pays above it.
//   - Cancellation: the iterative solvers poll their context every 32
//     iterations — frequent enough to abort within one outer
//     path-following step, rare enough to keep the kernels branch-lean.
package linalg
