package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestDenseSolveKnown(t *testing.T) {
	m := NewDenseFromRows([][]float64{
		{2, 1},
		{1, 3},
	})
	x, err := m.Solve([]float64{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	// Solution of 2x+y=3, x+3y=5 is x=4/5, y=7/5.
	if !almostEq(x[0], 0.8, 1e-12) || !almostEq(x[1], 1.4, 1e-12) {
		t.Fatalf("Solve = %v", x)
	}
}

func TestDenseSolveRandom(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rnd.Intn(12)
		m := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.Set(i, j, rnd.NormFloat64())
			}
			m.Inc(i, i, float64(n)) // diagonally dominant => well conditioned
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		b := m.MulVec(want)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if d := Norm2(Sub(got, want)); d > 1e-8 {
			t.Fatalf("trial %d: residual %g", trial, d)
		}
	}
}

func TestDenseSolveSingular(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := m.Solve([]float64{1, 2}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rnd.Intn(10)
		// SPD via AᵀA + I.
		a := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rnd.NormFloat64())
			}
		}
		spd := a.Transpose().Mul(a)
		for i := 0; i < n; i++ {
			spd.Inc(i, i, 1)
		}
		l, err := spd.Cholesky()
		if err != nil {
			t.Fatal(err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rnd.NormFloat64()
		}
		b := spd.MulVec(want)
		got := CholSolve(l, b)
		if d := Norm2(Sub(got, want)); d > 1e-8 {
			t.Fatalf("trial %d: error %g", trial, d)
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := m.Cholesky(); err == nil {
		t.Fatal("expected not-PD error")
	}
}

func TestTransposeMulVec(t *testing.T) {
	m := NewDenseFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	x := []float64{1, 1}
	got := m.MulVecT(x)
	want := m.Transpose().MulVec(x)
	for i := range got {
		if !almostEq(got[i], want[i], 1e-12) {
			t.Fatalf("MulVecT mismatch at %d", i)
		}
	}
}

func TestSymEigBounds(t *testing.T) {
	// diag(1, 2, 5) has eigenvalues exactly 1 and 5.
	m := NewDense(3, 3)
	m.Set(0, 0, 1)
	m.Set(1, 1, 2)
	m.Set(2, 2, 5)
	lo, hi := m.SymEigBounds(200)
	if math.Abs(hi-5) > 1e-6 {
		t.Errorf("hi = %v, want 5", hi)
	}
	if math.Abs(lo-1) > 1e-6 {
		t.Errorf("lo = %v, want 1", lo)
	}
}

func TestEyeQuadForm(t *testing.T) {
	m := Eye(3)
	x := []float64{1, 2, 3}
	if got := m.QuadForm(x); got != 14 {
		t.Fatalf("QuadForm = %v", got)
	}
}
