// Package pool provides the concurrent serving layer over the
// single-goroutine solver sessions of internal/flow: a thread-safe,
// sharded pool of worker sessions that fans batches out with bounded
// concurrency and drains gracefully under a context.
//
// The paper (Theorem 1.1) gives one solver per network; this package is
// what turns that into a service. The design constraint comes from the
// session layer's performance contract: the interior-point hot paths are
// allocation-free because each session reuses its backend workspaces and
// centering scratch across queries, which makes a session inherently
// single-goroutine. The pool therefore never shares a session — it shards
// the terminal-pair space instead:
//
//   - hash(s, t) picks a shard, and a second independent hash pins the
//     pair to one worker inside the shard;
//   - each worker goroutine exclusively owns one Session (its own LP
//     formulations, backend workspaces, scratch and warm-start cache), so
//     the solve path takes no locks and the -race detector has nothing to
//     find;
//   - per-pair execution order equals submission order, which preserves
//     the warm-start semantics of the sequential SolveBatch — pooled
//     batches return bit-identical certified results.
//
// Invariants:
//
//   - Determinism: routing uses a fixed splitmix64 finalizer (no per-run
//     hash seeding), and every worker session is constructed with the same
//     options, so a replayed query stream produces bit-identical results
//     for any pool geometry, matching the sequential session path.
//   - Confinement: Session.Solve/SolveWarm are only ever invoked from the
//     owning worker goroutine; only Validate (read-only) crosses workers.
//   - Cancellation: a solve runs under the submitter's context and is
//     additionally canceled by an aborting shutdown; the solver polls its
//     context every few iterations, so Close interrupts within one
//     path-following iteration.
//
// Shutdown is two-speed: Drain(ctx) stops intake and lets queued work
// finish (aborting if ctx expires), Close aborts immediately. Both return
// only after every worker goroutine has exited.
package pool
