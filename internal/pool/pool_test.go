package pool

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcclap/internal/flow"
	"bcclap/internal/graph"
)

// fakeSession is an instrumented Session: it asserts single-goroutine
// confinement (the pool's core invariant), reproduces the sequential
// warm-start semantics with a per-pair counter, and can be slowed down to
// exercise drain and abort paths. The pair map is intentionally unlocked —
// under -race, any pool bug that lets two goroutines into one session
// shows up both as the busy-flag error and as a data race.
type fakeSession struct {
	t     *testing.T
	n     int           // vertex count for Validate
	delay time.Duration // per-solve latency, context-aware
	busy  atomic.Int32
	pair  map[flow.Query]int
}

func newFake(t *testing.T, n int, delay time.Duration) *fakeSession {
	return &fakeSession{t: t, n: n, delay: delay, pair: map[flow.Query]int{}}
}

func (f *fakeSession) Validate(q flow.Query) error {
	if q.S < 0 || q.T < 0 || q.S >= f.n || q.T >= f.n || q.S == q.T {
		return fmt.Errorf("fake: %w", flow.ErrBadQuery)
	}
	return nil
}

func (f *fakeSession) Solve(ctx context.Context, s, t int) (*flow.Result, error) {
	return f.solve(ctx, flow.Query{S: s, T: t}, false)
}

func (f *fakeSession) SolveWarm(ctx context.Context, q flow.Query) (*flow.Result, error) {
	return f.solve(ctx, q, true)
}

func (f *fakeSession) solve(ctx context.Context, q flow.Query, warm bool) (*flow.Result, error) {
	if !f.busy.CompareAndSwap(0, 1) {
		f.t.Error("two goroutines entered one session concurrently")
	}
	defer f.busy.Store(0)
	if f.delay > 0 {
		timer := time.NewTimer(f.delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := 0
	if warm {
		k = f.pair[q]
		f.pair[q]++
	}
	return &flow.Result{
		Value:       int64(q.S*1000 + q.T),
		Cost:        int64(k),
		WarmStarted: warm && k > 0,
	}, nil
}

func fakePool(t *testing.T, shards, workers int, delay time.Duration) *Pool {
	t.Helper()
	p, err := New(Config{
		Shards:  shards,
		Workers: workers,
		New:     func(int) (Session, error) { return newFake(t, 16, delay), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// A pooled batch must reproduce the sequential batch semantics for every
// pool geometry: the k-th occurrence of a terminal pair sees exactly k
// prior solves of that pair (warm-start order), regardless of how the
// batch interleaves across shards and workers.
func TestPoolBatchSemantics(t *testing.T) {
	queries := []flow.Query{
		{S: 0, T: 5}, {S: 1, T: 5}, {S: 0, T: 5}, {S: 2, T: 7},
		{S: 1, T: 5}, {S: 0, T: 5}, {S: 3, T: 9}, {S: 2, T: 7},
	}
	wantRepeat := map[flow.Query]int{}
	wantCost := make([]int64, len(queries))
	for i, q := range queries {
		wantCost[i] = int64(wantRepeat[q])
		wantRepeat[q]++
	}
	// {shards, workers}, including ragged distributions (5 workers over 3
	// shards → sizes 2, 2, 1) and workers < shards (topped up to 1/shard).
	for _, geo := range [][2]int{{1, 1}, {4, 4}, {2, 4}, {3, 1}, {1, 4}, {3, 5}} {
		p := fakePool(t, geo[0], geo[1], 0)
		if want := max(geo[0], geo[1]); p.Workers() != want {
			t.Fatalf("geometry %v: %d workers, want exactly %d", geo, p.Workers(), want)
		}
		out, err := p.SolveBatch(context.Background(), queries)
		if err != nil {
			t.Fatalf("geometry %v: %v", geo, err)
		}
		for i, res := range out {
			if res.Value != int64(queries[i].S*1000+queries[i].T) {
				t.Fatalf("geometry %v query %d: wrong value %d", geo, i, res.Value)
			}
			if res.Cost != wantCost[i] {
				t.Fatalf("geometry %v query %d: per-pair order broken: repeat %d, want %d",
					geo, i, res.Cost, wantCost[i])
			}
			if res.WarmStarted != (wantCost[i] > 0) {
				t.Fatalf("geometry %v query %d: WarmStarted=%v, want %v",
					geo, i, res.WarmStarted, wantCost[i] > 0)
			}
		}
		st := p.Stats()
		if st.Submitted != int64(len(queries)) || st.Completed != int64(len(queries)) || st.Failed != 0 {
			t.Fatalf("geometry %v stats: %+v", geo, st)
		}
	}
}

// A malformed pair must fail the whole batch up front, before any solve.
func TestPoolBatchValidatesUpFront(t *testing.T) {
	p := fakePool(t, 2, 1, 0)
	_, err := p.SolveBatch(context.Background(), []flow.Query{{S: 0, T: 1}, {S: 3, T: 3}})
	if !errors.Is(err, flow.ErrBadQuery) {
		t.Fatalf("got %v, want ErrBadQuery", err)
	}
	if st := p.Stats(); st.Submitted != 0 {
		t.Fatalf("solves ran despite invalid batch: %+v", st)
	}
}

// Hammer one pool from many goroutines: every result must be correct and
// no two goroutines may enter the same session (checked inside the fake,
// and by -race on the fake's unlocked state).
func TestPoolConcurrentHammer(t *testing.T) {
	p := fakePool(t, 4, 8, 0)
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 25; i++ {
				s := rnd.Intn(15)
				tt := (s + 1 + rnd.Intn(14)) % 16
				if s == tt {
					tt = (tt + 1) % 16
				}
				res, err := p.Solve(context.Background(), s, tt)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				if res.Value != int64(s*1000+tt) {
					t.Errorf("goroutine %d: query (%d,%d) answered %d", g, s, tt, res.Value)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := p.Stats()
	if st.Completed != goroutines*25 {
		t.Fatalf("completed %d of %d", st.Completed, goroutines*25)
	}
}

// Concurrent batch callers with disjoint pair sets must each see exactly
// the sequential per-pair order.
func TestPoolConcurrentBatchCallers(t *testing.T) {
	p := fakePool(t, 3, 1, 0)
	var wg sync.WaitGroup
	for caller := 0; caller < 4; caller++ {
		wg.Add(1)
		go func(caller int) {
			defer wg.Done()
			base := caller * 4
			queries := []flow.Query{
				{S: base, T: base + 1}, {S: base, T: base + 2},
				{S: base, T: base + 1}, {S: base, T: base + 1},
			}
			out, err := p.SolveBatch(context.Background(), queries)
			if err != nil {
				t.Errorf("caller %d: %v", caller, err)
				return
			}
			wantCost := []int64{0, 0, 1, 2}
			for i, res := range out {
				if res.Cost != wantCost[i] {
					t.Errorf("caller %d query %d: repeat %d, want %d", caller, i, res.Cost, wantCost[i])
				}
			}
		}(caller)
	}
	wg.Wait()
}

// Drain with a live context must let queued work finish, then reject new
// queries with ErrClosed.
func TestPoolDrainGraceful(t *testing.T) {
	p := fakePool(t, 2, 1, 20*time.Millisecond)
	var wg sync.WaitGroup
	errs := make([]error, 6)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Solve(context.Background(), 0, 1+i%3)
		}(i)
	}
	time.Sleep(5 * time.Millisecond) // let the queues fill
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed during graceful drain: %v", i, err)
		}
	}
	if _, err := p.Solve(context.Background(), 0, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain solve: got %v, want ErrClosed", err)
	}
	if _, err := p.SolveBatch(context.Background(), []flow.Query{{S: 0, T: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-drain batch: got %v, want ErrClosed", err)
	}
}

// Drain under an expiring context must abort: running solves are canceled
// mid-solve, queued tasks fail with ErrClosed, and Drain reports ctx.Err().
func TestPoolDrainCancellation(t *testing.T) {
	p := fakePool(t, 1, 1, time.Hour) // one worker, effectively stuck
	const queued = 4
	var wg sync.WaitGroup
	errs := make([]error, queued)
	for i := 0; i < queued; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Solve(context.Background(), 0, 1)
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // first task running, rest queued
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain: got %v, want DeadlineExceeded", err)
	}
	wg.Wait()
	var canceled, closed int
	for i, err := range errs {
		switch {
		case errors.Is(err, context.Canceled):
			canceled++
		case errors.Is(err, ErrClosed):
			closed++
		default:
			t.Fatalf("query %d: unexpected error %v", i, err)
		}
	}
	if canceled != 1 || closed != queued-1 {
		t.Fatalf("canceled=%d closed=%d, want 1 running canceled and %d queued closed",
			canceled, closed, queued-1)
	}
}

// Drain racing in-flight SolveBatch callers (run under -race in CI's
// dedicated pool step): every batch must either complete fully — all
// results present and correct — or fail atomically with ErrClosed; no
// mixed outcome, no lost task, and Closed() must report shutdown. The
// submit loop inside SolveBatch is deliberately raced against
// beginShutdown here: a batch caught mid-submission has its accepted
// prefix resolved (completed or failed) before Drain returns, so the
// inflight accounting can never leak.
func TestPoolDrainRacesSolveBatch(t *testing.T) {
	p := fakePool(t, 2, 3, time.Millisecond)
	if p.Closed() {
		t.Fatal("fresh pool reports Closed")
	}
	queries := []flow.Query{
		{S: 0, T: 5}, {S: 1, T: 6}, {S: 2, T: 7}, {S: 0, T: 5}, {S: 3, T: 8},
	}
	const callers = 6
	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		results = make([][]*flow.Result, callers)
		errs    = make([]error, callers)
	)
	started.Add(callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			started.Done()
			for {
				res, err := p.SolveBatch(context.Background(), queries)
				if err != nil {
					results[c], errs[c] = nil, err
					return
				}
				results[c], errs[c] = res, nil
				if p.Closed() {
					return
				}
			}
		}(c)
	}
	started.Wait()
	time.Sleep(3 * time.Millisecond) // batches mid-flight
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !p.Closed() {
		t.Fatal("Closed() false after Drain")
	}
	wg.Wait()
	completed := 0
	for c := 0; c < callers; c++ {
		switch {
		case errs[c] == nil:
			completed++
			for i, r := range results[c] {
				if r == nil {
					t.Fatalf("caller %d: batch reported success with missing result %d", c, i)
				}
				if want := int64(queries[i].S*1000 + queries[i].T); r.Value != want {
					t.Fatalf("caller %d result %d: value %d, want %d", c, i, r.Value, want)
				}
			}
		case errors.Is(errs[c], ErrClosed):
			// Atomic rejection: the whole batch failed, nothing partial.
			if results[c] != nil {
				t.Fatalf("caller %d: results alongside ErrClosed", c)
			}
		default:
			t.Fatalf("caller %d: unexpected error %v", c, errs[c])
		}
	}
	if completed == 0 {
		t.Fatal("every batch was rejected; the race never exercised completion")
	}
	st := p.Stats()
	if st.Completed+st.Failed != st.Submitted {
		t.Fatalf("task accounting leaked: %+v", st)
	}
}

// Close must abort immediately and be idempotent.
func TestPoolClose(t *testing.T) {
	p := fakePool(t, 2, 1, time.Hour)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Solve(context.Background(), 0, 1)
		}(i)
	}
	time.Sleep(10 * time.Millisecond)
	p.Close()
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("query %d succeeded through Close", i)
		}
	}
	p.Close() // idempotent
	if err := p.Drain(context.Background()); err != nil {
		t.Fatalf("drain after close: %v", err)
	}
}

// A caller whose own context dies while its query is queued must return
// promptly instead of waiting behind the rest of the queue.
func TestPoolSolveCallerCancellation(t *testing.T) {
	p := fakePool(t, 1, 1, 50*time.Millisecond)
	go p.Solve(context.Background(), 0, 1) // occupy the only worker
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := p.Solve(ctx, 0, 2)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 40*time.Millisecond {
		t.Fatalf("caller waited %v behind the queue", waited)
	}
}

// The real thing: a pooled batch over flow.Solver worker sessions must be
// bit-identical to the sequential session batch — values, costs, flows,
// warm-start flags and interior-point iterates.
func TestPoolRealFlowBatchBitIdentical(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	d := graph.RandomFlowNetwork(5, 0.35, 3, 3, rnd)
	// Pick terminal pairs the instance can actually route.
	var pairs []flow.Query
	for s := 0; s < d.N() && len(pairs) < 3; s++ {
		for tt := d.N() - 1; tt > s && len(pairs) < 3; tt-- {
			if v, _, _, err := flow.MinCostMaxFlowSSP(d, s, tt); err == nil && v > 0 {
				pairs = append(pairs, flow.Query{S: s, T: tt})
			}
		}
	}
	if len(pairs) < 2 {
		t.Fatalf("instance too sparse: only %d usable pairs", len(pairs))
	}
	queries := []flow.Query{pairs[0], pairs[1], pairs[0], pairs[0], pairs[1]}
	opts := flow.Options{Seed: flow.SeedOf(77)}

	seq, err := flow.NewSolver(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	p, err := New(Config{
		Shards:  2,
		Workers: 4,
		New:     func(int) (Session, error) { return flow.NewSolver(d, opts) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	got, err := p.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		w, g := want[i], got[i]
		if g.Value != w.Value || g.Cost != w.Cost {
			t.Fatalf("query %d: pooled (%d, %d) vs sequential (%d, %d)",
				i, g.Value, g.Cost, w.Value, w.Cost)
		}
		if !reflect.DeepEqual(g.Flows, w.Flows) {
			t.Fatalf("query %d: flows diverged", i)
		}
		if g.WarmStarted != w.WarmStarted {
			t.Fatalf("query %d: WarmStarted %v vs %v", i, g.WarmStarted, w.WarmStarted)
		}
		if g.LPStats.PathSteps != w.LPStats.PathSteps ||
			g.LPStats.CGIterations != w.LPStats.CGIterations ||
			!reflect.DeepEqual(g.LPStats.X, w.LPStats.X) {
			t.Fatalf("query %d: interior-point trajectories diverged", i)
		}
		if err := flow.CertifyOptimal(d, queries[i].S, queries[i].T, g.Flows); err != nil {
			t.Fatalf("query %d: pooled result not certified: %v", i, err)
		}
	}
	if err := p.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}
