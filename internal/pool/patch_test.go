package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Patch must run the apply function exactly once on every worker session,
// and the wait function must not return before all of them have.
func TestPatchReachesEveryWorker(t *testing.T) {
	const workers = 5
	p := fakePool(t, 2, workers, 0)
	var (
		mu   sync.Mutex
		seen = map[Session]int{}
	)
	wait, err := p.Patch(func(s Session) error {
		mu.Lock()
		seen[s]++
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != workers {
		t.Fatalf("patch reached %d distinct sessions, want %d", len(seen), workers)
	}
	for s, n := range seen {
		if n != 1 {
			t.Fatalf("session %p patched %d times, want 1", s, n)
		}
	}
	if st := p.Stats(); st.Patches != workers {
		t.Fatalf("Stats.Patches = %d, want %d", st.Patches, workers)
	}
}

// Per-worker FIFO: queries submitted before the patch must run against the
// pre-patch session state, queries submitted after wait() against the
// post-patch state. The fake tracks a per-session epoch the patch bumps.
func TestPatchOrdersAgainstQueries(t *testing.T) {
	type epochSession struct {
		*fakeSession
		epoch int
	}
	var (
		mu       sync.Mutex
		sessions []*epochSession
	)
	p, err := New(Config{
		Shards:  1,
		Workers: 3,
		New: func(int) (Session, error) {
			es := &epochSession{fakeSession: newFake(t, 16, 2*time.Millisecond)}
			mu.Lock()
			sessions = append(sessions, es)
			mu.Unlock()
			return es, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)

	// Saturate the queues so patch tasks genuinely wait behind work.
	var pre sync.WaitGroup
	for i := 0; i < 12; i++ {
		pre.Add(1)
		go func(i int) {
			defer pre.Done()
			if _, err := p.Solve(context.Background(), i%4, 5+i%3); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wait, err := p.Patch(func(s Session) error {
		s.(*epochSession).epoch++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	pre.Wait()
	mu.Lock()
	defer mu.Unlock()
	for i, es := range sessions {
		if es.epoch != 1 {
			t.Fatalf("session %d epoch = %d, want 1", i, es.epoch)
		}
	}
}

// A draining or closed pool must reject patches with ErrClosed, and a nil
// apply function must be rejected outright.
func TestPatchRejections(t *testing.T) {
	p := fakePool(t, 1, 2, 0)
	if _, err := p.Patch(nil); err == nil {
		t.Fatal("nil apply accepted")
	}
	p.Close()
	if _, err := p.Patch(func(Session) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("patch on closed pool: err = %v, want ErrClosed", err)
	}
}

// The first per-worker apply error must surface through wait, and patch
// failures must not pollute the query failure counter.
func TestPatchErrorPropagation(t *testing.T) {
	p := fakePool(t, 1, 3, 0)
	boom := fmt.Errorf("boom")
	calls := 0
	var mu sync.Mutex
	wait, err := p.Patch(func(Session) error {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n == 2 {
			return boom
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); !errors.Is(err, boom) {
		t.Fatalf("wait() = %v, want the apply error", err)
	}
	if st := p.Stats(); st.Failed != 0 {
		t.Fatalf("Stats.Failed = %d after a patch error, want 0 (Failed partitions queries)", st.Failed)
	}
	// One solve still works: the sessions stay serviceable after an apply
	// error.
	if _, err := p.Solve(context.Background(), 0, 5); err != nil {
		t.Fatal(err)
	}
}
