package pool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bcclap/internal/flow"
)

// ErrClosed marks a query submitted after Close or Drain has begun, or a
// queued query abandoned by an aborting shutdown.
var ErrClosed = errors.New("pool: closed")

// Session is the solver handle each worker goroutine owns exclusively.
// *flow.Solver implements it; tests substitute instrumented fakes.
type Session interface {
	// Validate reports whether q is well-formed without doing solve work.
	// It must be safe for concurrent use (read-only), unlike the solve
	// methods, which the pool confines to the owning worker goroutine.
	Validate(q flow.Query) error
	// Solve answers one query with one-shot semantics (no warm start).
	Solve(ctx context.Context, s, t int) (*flow.Result, error)
	// SolveWarm answers one query with batch semantics: a repeated
	// terminal pair warm-starts from the previous certified solve.
	SolveWarm(ctx context.Context, q flow.Query) (*flow.Result, error)
}

var _ Session = (*flow.Solver)(nil)

// Config sizes a Pool.
type Config struct {
	// Shards is the number of terminal-pair shards (default 1). A query's
	// (s, t) pair hashes onto one shard, and every solve for that pair
	// happens inside it, so each shard accumulates the warm-start caches
	// of its slice of the terminal-pair space.
	Shards int
	// Workers is the total number of worker sessions (default: one per
	// shard). Workers are distributed across shards as evenly as possible
	// and every shard gets at least one, so the effective total is
	// max(Workers, Shards) — never more. Within a shard a pair is pinned
	// to a single worker by a second hash, so per-pair solve order — and
	// with it warm-start reuse and bit-for-bit reproducibility — is
	// preserved under fan-out.
	Workers int
	// New constructs the session owned by worker i. It is called once per
	// worker during pool construction; each session must be independent
	// (its own backend workspaces and scratch).
	New func(i int) (Session, error)
}

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	// Shards and Workers echo the pool geometry (Workers is the total
	// session count, Shards × WorkersPerShard).
	Shards, Workers int
	// Submitted counts queries accepted by Solve/SolveBatch; Completed and
	// Failed partition the finished ones; WarmStarted counts completions
	// that skipped path following.
	Submitted, Completed, Failed, WarmStarted int64
	// Patches counts per-worker patch applications (one Patch call
	// increments it once per worker that ran the apply function).
	Patches int64
	// InFlight is the number of accepted but unfinished tasks (queued or
	// running, patch broadcasts included) at snapshot time — the pool
	// occupancy a scrape reports.
	InFlight int
}

// task is one query in flight: submitted to exactly one worker queue,
// resolved exactly once (res/err are written before done is closed and
// only read after). A task with apply set is a session mutation instead of
// a query — it runs the function against the worker's session and carries
// no query fields.
type task struct {
	ctx   context.Context
	q     flow.Query
	warm  bool
	apply func(Session) error
	res   *flow.Result
	err   error
	done  chan struct{}
}

// worker is one pool goroutine and the session it exclusively owns. Tasks
// are queued FIFO; because a terminal pair always hashes to the same
// worker, per-pair execution order equals submission order.
type worker struct {
	id    int
	sess  Session
	p     *Pool
	mu    sync.Mutex
	queue []*task
	wake  chan struct{} // cap 1: queue became non-empty
}

// Pool is a thread-safe, sharded pool of solver sessions. Queries are
// routed by terminal pair: hash(s, t) picks the shard and, inside it, the
// worker — so every query for one pair runs on one session, in submission
// order, which keeps the allocation-free per-session hot paths race-free
// and the warm-start caches coherent without any locking on the solve
// path. Solve and SolveBatch may be called from any number of goroutines.
//
// Shutdown is two-speed: Drain stops intake and lets queued work finish
// (with a context bounding the wait), Close aborts queued and running work
// immediately.
type Pool struct {
	workers []*worker
	shards  int
	// shardOff/shardLen index the workers slice per shard (ragged: the
	// first Workers mod Shards shards hold one extra worker).
	shardOff, shardLen []int

	// mu guards closed and brackets every queue append, so that a task
	// accepted before shutdown is always visible to its worker's final
	// queue scan (submission and beginShutdown serialize on mu).
	mu     sync.Mutex
	closed bool
	drain  chan struct{} // closed once no new work is accepted
	kill   chan struct{} // closed to abort queued and running work

	killOnce  sync.Once
	wg        sync.WaitGroup // worker goroutines
	inflight  sync.WaitGroup // accepted but unfinished tasks
	inflightN atomic.Int64   // readable mirror of inflight for Stats

	submitted, completed, failed, warmHits, patches atomic.Int64
}

// New builds the pool and starts its max(Workers, Shards) workers. Every
// session is constructed eagerly so configuration errors (bad backend,
// empty digraph) surface here, before any query is accepted.
func New(cfg Config) (*Pool, error) {
	if cfg.New == nil {
		return nil, errors.New("pool: Config.New is required")
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = 1
	}
	workers := cfg.Workers
	if workers < shards {
		workers = shards
	}
	p := &Pool{
		shards: shards,
		drain:  make(chan struct{}),
		kill:   make(chan struct{}),
	}
	base, extra := workers/shards, workers%shards
	for s, off := 0, 0; s < shards; s++ {
		size := base
		if s < extra {
			size++
		}
		p.shardOff = append(p.shardOff, off)
		p.shardLen = append(p.shardLen, size)
		off += size
	}
	for i := 0; i < workers; i++ {
		sess, err := cfg.New(i)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("pool: worker %d session: %w", i, err)
		}
		p.workers = append(p.workers, &worker{id: i, sess: sess, p: p, wake: make(chan struct{}, 1)})
	}
	for _, w := range p.workers {
		p.wg.Add(1)
		go w.loop()
	}
	return p, nil
}

// Workers returns the total worker-session count.
func (p *Pool) Workers() int { return len(p.workers) }

// ShardCount returns the number of terminal-pair shards.
func (p *Pool) ShardCount() int { return p.shards }

// Stats snapshots the pool counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Shards:      p.shards,
		Workers:     len(p.workers),
		Submitted:   p.submitted.Load(),
		Completed:   p.completed.Load(),
		Failed:      p.failed.Load(),
		WarmStarted: p.warmHits.Load(),
		Patches:     p.patches.Load(),
		InFlight:    int(p.inflightN.Load()),
	}
}

// Validate checks one query without solving (read-only, concurrency-safe).
func (p *Pool) Validate(q flow.Query) error { return p.workers[0].sess.Validate(q) }

// workerFor routes a terminal pair: a splitmix64 finalizer over (s, t)
// picks the shard from the low bits and the worker within the shard from
// independent high bits. Deterministic across processes (no per-run hash
// seeding), so a replayed query stream shards identically.
func (p *Pool) workerFor(q flow.Query) *worker {
	x := uint64(uint32(q.S))<<32 | uint64(uint32(q.T))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	shard := int(x % uint64(p.shards))
	wi := int((x >> 17) % uint64(p.shardLen[shard]))
	return p.workers[p.shardOff[shard]+wi]
}

// submit enqueues t on its pair's worker, or rejects it if shutdown began.
func (p *Pool) submit(t *task) error {
	w := p.workerFor(t.q)
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.inflight.Add(1)
	p.inflightN.Add(1)
	p.submitted.Add(1)
	w.mu.Lock()
	w.queue = append(w.queue, t)
	w.mu.Unlock()
	p.mu.Unlock()
	select {
	case w.wake <- struct{}{}:
	default:
	}
	return nil
}

// Solve answers one (s, t) query with one-shot (cold) semantics on the
// pair's pinned worker session. If ctx expires while the query is still
// queued or running, Solve returns ctx.Err() immediately; the worker fails
// the abandoned task promptly when it reaches it.
func (p *Pool) Solve(ctx context.Context, s, t int) (*flow.Result, error) {
	tk := &task{ctx: ctx, q: flow.Query{S: s, T: t}, done: make(chan struct{})}
	if err := p.submit(tk); err != nil {
		return nil, err
	}
	select {
	case <-tk.done:
		return tk.res, tk.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SolveWarm answers one (s, t) query with batch (warm-start) semantics on
// the pair's pinned worker session: a repeat of an already-answered pair
// re-centers the previous certified solution instead of re-running path
// following. Ordering and cancellation behave exactly like Solve.
func (p *Pool) SolveWarm(ctx context.Context, s, t int) (*flow.Result, error) {
	tk := &task{ctx: ctx, q: flow.Query{S: s, T: t}, warm: true, done: make(chan struct{})}
	if err := p.submit(tk); err != nil {
		return nil, err
	}
	select {
	case <-tk.done:
		return tk.res, tk.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// SolveBatch fans queries out across the pool with batch (warm-start)
// semantics and bounded concurrency — at most Workers() solves run at
// once. Every terminal pair is validated before any work starts, matching
// the sequential session contract. Because submission order is batch order
// and a pair always lands on the same worker queue, per-pair solve order
// equals the sequential path's — which is what keeps warm starts, and
// their bit-identical results, intact under fan-out. The first failing
// query cancels the rest of the batch and is returned.
func (p *Pool) SolveBatch(ctx context.Context, queries []flow.Query) ([]*flow.Result, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	for i, q := range queries {
		if err := p.Validate(q); err != nil {
			return nil, fmt.Errorf("pool: batch query %d: %w", i, err)
		}
	}
	bctx, cancelBatch := context.WithCancel(ctx)
	defer cancelBatch()
	var (
		once     sync.Once
		firstErr error
	)
	fail := func(i int, q flow.Query, err error) {
		once.Do(func() {
			firstErr = fmt.Errorf("pool: batch query %d (s=%d, t=%d): %w", i, q.S, q.T, err)
			cancelBatch()
		})
	}
	tasks := make([]*task, len(queries))
	for i, q := range queries {
		t := &task{ctx: bctx, q: q, warm: true, done: make(chan struct{})}
		if err := p.submit(t); err != nil {
			fail(i, q, err)
			break
		}
		tasks[i] = t
	}
	var wg sync.WaitGroup
	for i, t := range tasks {
		if t == nil {
			continue
		}
		wg.Add(1)
		go func(i int, t *task) {
			defer wg.Done()
			<-t.done
			if t.err != nil {
				fail(i, t.q, t.err)
			}
		}(i, t)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	out := make([]*flow.Result, len(tasks))
	for i, t := range tasks {
		out[i] = t.res
	}
	return out, nil
}

// Patch broadcasts a session mutation to every worker: apply is enqueued
// behind each worker's already-queued work (FIFO, like queries), so every
// query accepted before Patch runs against the pre-patch sessions and
// every query accepted after the returned wait function completes runs
// against the patched ones. Patch itself only enqueues — it returns a wait
// function that blocks until every worker has run apply and reports the
// first failure. The enqueue is atomic with respect to submission: callers
// holding their own serving lock across Patch get a clean linearization
// point (no query can slip between the per-worker enqueues).
//
// apply runs on each worker goroutine with exclusive access to that
// worker's session, exactly like a solve; it must leave the session
// serviceable even on error. A pool that is draining or closed rejects the
// patch with ErrClosed, and a kill while patch tasks sit queued fails the
// wait with ErrClosed.
func (p *Pool) Patch(apply func(Session) error) (wait func() error, err error) {
	if apply == nil {
		return nil, errors.New("pool: nil patch function")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	tasks := make([]*task, len(p.workers))
	for i, w := range p.workers {
		t := &task{ctx: context.Background(), apply: apply, done: make(chan struct{})}
		p.inflight.Add(1)
		p.inflightN.Add(1)
		w.mu.Lock()
		w.queue = append(w.queue, t)
		w.mu.Unlock()
		tasks[i] = t
	}
	p.mu.Unlock()
	for _, w := range p.workers {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return func() error {
		var first error
		for _, t := range tasks {
			<-t.done
			if t.err != nil && first == nil {
				first = t.err
			}
		}
		return first
	}, nil
}

// beginShutdown stops intake. Serializing on mu with submit guarantees
// every accepted task is already on its worker queue when drain closes.
func (p *Pool) beginShutdown() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.drain)
	}
	p.mu.Unlock()
}

// Closed reports whether shutdown (Drain or Close) has begun: once true,
// no new query will ever be accepted. The service layer's swap/drain path
// uses it to distinguish a retiring solver from a serving one.
func (p *Pool) Closed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// Drain gracefully shuts the pool down: intake stops immediately, queued
// and running queries are allowed to finish, and Drain returns nil once
// every worker has exited. If ctx expires first, the remaining work is
// aborted — running solves are canceled mid-iteration, queued tasks fail
// with ErrClosed — and Drain returns ctx.Err() after the workers exit.
func (p *Pool) Drain(ctx context.Context) error {
	p.beginShutdown()
	done := make(chan struct{})
	go func() {
		p.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		p.wg.Wait()
		return nil
	case <-ctx.Done():
		p.killOnce.Do(func() { close(p.kill) })
		<-done
		p.wg.Wait()
		return ctx.Err()
	}
}

// Close aborts the pool: intake stops, queued tasks fail with ErrClosed,
// running solves are canceled within one solver iteration, and Close
// returns once every worker goroutine has exited. Safe to call after
// Drain, and more than once.
func (p *Pool) Close() {
	p.beginShutdown()
	p.killOnce.Do(func() { close(p.kill) })
	p.wg.Wait()
}

// loop is the worker body: pop, solve, repeat until shutdown.
func (w *worker) loop() {
	defer w.p.wg.Done()
	for {
		t, stop := w.next()
		if stop {
			return
		}
		if t != nil {
			w.run(t)
		}
	}
}

// next blocks until a task is available or the pool shuts down. On drain
// it keeps working until its queue is empty; on kill it fails everything
// still queued and exits.
func (w *worker) next() (t *task, stop bool) {
	for {
		w.mu.Lock()
		if len(w.queue) > 0 {
			t = w.queue[0]
			w.queue = w.queue[1:]
			w.mu.Unlock()
			select {
			case <-w.p.kill:
				// Abort began while this task sat queued: fail it
				// instead of running it.
				w.fail(t, ErrClosed)
				continue
			default:
			}
			return t, false
		}
		w.mu.Unlock()
		select {
		case <-w.wake:
		case <-w.p.kill:
			w.failQueued()
			return nil, true
		case <-w.p.drain:
			// Intake is closed and submissions serialize with it on
			// p.mu, so an empty queue here is final.
			w.mu.Lock()
			empty := len(w.queue) == 0
			w.mu.Unlock()
			if empty {
				return nil, true
			}
		}
	}
}

// fail resolves a task without running it (abort path). Patch tasks do not
// count toward the query failure counter — Failed partitions queries.
func (w *worker) fail(t *task, err error) {
	t.err = err
	if t.apply == nil {
		w.p.failed.Add(1)
	}
	close(t.done)
	w.p.inflightN.Add(-1)
	w.p.inflight.Done()
}

// failQueued resolves every still-queued task with ErrClosed (abort path).
func (w *worker) failQueued() {
	w.mu.Lock()
	q := w.queue
	w.queue = nil
	w.mu.Unlock()
	for _, t := range q {
		w.fail(t, ErrClosed)
	}
}

// run executes one task on the worker's private session. The solve context
// is the task's, additionally canceled if the pool is killed mid-solve, so
// an aborting shutdown interrupts within one solver iteration.
func (w *worker) run(t *task) {
	p := w.p
	if t.apply != nil {
		t.err = t.apply(w.sess)
		p.patches.Add(1)
		close(t.done)
		p.inflightN.Add(-1)
		p.inflight.Done()
		return
	}
	finish := func() {
		if t.err != nil {
			p.failed.Add(1)
		} else {
			p.completed.Add(1)
			if t.res.WarmStarted {
				p.warmHits.Add(1)
			}
		}
		close(t.done)
		p.inflightN.Add(-1)
		p.inflight.Done()
	}
	if err := t.ctx.Err(); err != nil {
		t.err = err
		finish()
		return
	}
	ctx, cancel := context.WithCancel(t.ctx)
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-p.kill:
			cancel()
		case <-watchDone:
		}
	}()
	if t.warm {
		t.res, t.err = w.sess.SolveWarm(ctx, t.q)
	} else {
		t.res, t.err = w.sess.Solve(ctx, t.q.S, t.q.T)
	}
	close(watchDone)
	cancel()
	finish()
}
