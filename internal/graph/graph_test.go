package graph

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddEdgeValidation(t *testing.T) {
	g := New(3)
	if _, err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out of range accepted")
	}
	if _, err := g.AddEdge(1, 1, 1); err == nil {
		t.Error("self loop accepted")
	}
	if _, err := g.AddEdge(0, 1, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := g.AddEdge(0, 1, 2); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if g.M() != 1 || g.N() != 3 {
		t.Errorf("M=%d N=%d", g.M(), g.N())
	}
}

func TestDegreesAndNeighbors(t *testing.T) {
	g := Path(4)
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Fatal("degrees wrong")
	}
	nb := g.Neighbors(1)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 2 {
		t.Fatalf("Neighbors(1) = %v", nb)
	}
	ei := g.IncidentEdges(1)
	if len(ei) != 2 {
		t.Fatal("incident edges wrong")
	}
	if g.Other(ei[0], 1) != 0 && g.Other(ei[0], 1) != 2 {
		t.Fatal("Other wrong")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(3)
	h := g.Clone()
	h.SetWeight(0, 9)
	if g.Edge(0).W != 1 {
		t.Fatal("Clone shares edge storage")
	}
	if _, err := h.AddEdge(0, 2, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() == h.M() {
		t.Fatal("Clone shares adjacency")
	}
}

func TestBFSAndConnected(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Fatalf("BFS[%d] = %d", i, d[i])
		}
	}
	if !g.Connected() {
		t.Fatal("path should be connected")
	}
	h := New(3)
	if _, err := h.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if h.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestDijkstraKnown(t *testing.T) {
	g := New(4)
	mustAdd(g, 0, 1, 1)
	mustAdd(g, 1, 2, 1)
	mustAdd(g, 0, 2, 5)
	mustAdd(g, 2, 3, 1)
	d := g.Dijkstra(0)
	want := []float64{0, 1, 2, 3}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("Dijkstra[%d] = %v, want %v", i, d[i], want[i])
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	mustAdd(g, 0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Fatal("unreachable vertex should be +Inf")
	}
}

func TestStretchIdentity(t *testing.T) {
	g := Grid(3, 3)
	if s := Stretch(g, g); s != 1 {
		t.Fatalf("self stretch = %v", s)
	}
}

func TestStretchPathVsCycle(t *testing.T) {
	c := Cycle(6)
	// Remove one edge: the cycle minus an edge is a path; worst stretch for
	// the removed edge's endpoints is 5.
	keep := make([]int, 0, c.M()-1)
	for i := 0; i < c.M()-1; i++ {
		keep = append(keep, i)
	}
	p := c.Subgraph(keep)
	if s := Stretch(c, p); s != 5 {
		t.Fatalf("stretch = %v, want 5", s)
	}
}

func TestGenerators(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	cases := map[string]*Graph{
		"path":     Path(10),
		"cycle":    Cycle(10),
		"complete": Complete(8),
		"grid":     Grid(4, 5),
		"random":   RandomConnected(20, 0.2, 5, rnd),
		"barbell":  Barbell(5),
		"expander": Expanderish(16, rnd),
	}
	for name, g := range cases {
		if !g.Connected() {
			t.Errorf("%s not connected", name)
		}
	}
	if Complete(8).M() != 28 {
		t.Error("K8 edge count")
	}
	if Grid(4, 5).M() != 4*4+3*5 {
		t.Error("grid edge count")
	}
}

func TestLaplacianPSD(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	g := RandomConnected(12, 0.3, 7, rnd)
	l := g.Laplacian()
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rnd.NormFloat64()
		}
		if q := l.QuadForm(x); q < -1e-9 {
			t.Fatalf("Laplacian not PSD: %v", q)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Components() != 5 {
		t.Fatal("initial components")
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("union failed")
	}
	if uf.Union(0, 2) {
		t.Fatal("union of same set returned true")
	}
	if uf.Components() != 3 {
		t.Fatalf("components = %d", uf.Components())
	}
	if uf.Find(0) != uf.Find(2) {
		t.Fatal("find disagrees")
	}
}

func TestSubgraphPreservesWeights(t *testing.T) {
	g := New(3)
	mustAdd(g, 0, 1, 2.5)
	mustAdd(g, 1, 2, 3.5)
	h := g.Subgraph([]int{1})
	if h.M() != 1 || h.Edge(0).W != 3.5 {
		t.Fatalf("subgraph wrong: %v", h.Edges())
	}
}

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(3)
	if _, err := d.AddArc(0, 1, 5, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddArc(0, 0, 1, 0); err == nil {
		t.Fatal("self loop accepted")
	}
	if _, err := d.AddArc(0, 1, 0, 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if _, err := d.AddArc(1, 2, 3, -1); err != nil {
		t.Fatal(err)
	}
	if d.MaxCap() != 5 || d.MaxAbsCost() != 2 {
		t.Fatal("max cap/cost wrong")
	}
	if len(d.Out(0)) != 1 || len(d.In(2)) != 1 {
		t.Fatal("adjacency wrong")
	}
}

func TestFlowNetworkGenerators(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	d := RandomFlowNetwork(10, 0.2, 10, 5, rnd)
	if d.N() != 10 || d.M() < 9 {
		t.Fatal("random flow network malformed")
	}
	l := LayeredFlowNetwork(3, 2, 10, 5, rnd)
	if l.N() != 8 {
		t.Fatalf("layered N = %d", l.N())
	}
	// s has outgoing arcs only to layer 0; t has incoming from last layer.
	if len(l.Out(0)) != 2 || len(l.In(l.N()-1)) != 2 {
		t.Fatal("layered structure wrong")
	}
}
