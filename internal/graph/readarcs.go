package graph

import (
	"fmt"
	"io"
)

// ReadArcList reads m whitespace-separated arc lines "from to capacity
// cost" from r into a fresh digraph on n vertices — the on-disk arc
// format shared by the CLIs (their headers differ, the arc list does
// not). Pass a buffered reader; fmt.Fscan is used per field.
func ReadArcList(r io.Reader, n, m int) (*Digraph, error) {
	d := NewDigraph(n)
	for i := 0; i < m; i++ {
		var u, v int
		var c, q int64
		if _, err := fmt.Fscan(r, &u, &v, &c, &q); err != nil {
			return nil, fmt.Errorf("read arc %d: %w", i, err)
		}
		if _, err := d.AddArc(u, v, c, q); err != nil {
			return nil, err
		}
	}
	return d, nil
}
