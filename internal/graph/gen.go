package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph 0-1-…-(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		mustAdd(g, i, i+1, 1)
	}
	return g
}

// Cycle returns the n-cycle with unit weights.
func Cycle(n int) *Graph {
	g := Path(n)
	if n >= 3 {
		mustAdd(g, n-1, 0, 1)
	}
	return g
}

// Complete returns K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(g, u, v, 1)
		}
	}
	return g
}

// Grid returns the rows×cols grid graph with unit weights; vertex (r,c) has
// index r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(g, id(r, c), id(r, c+1), 1)
			}
			if r+1 < rows {
				mustAdd(g, id(r, c), id(r+1, c), 1)
			}
		}
	}
	return g
}

// RandomConnected returns a connected G(n,p)-style graph: a random spanning
// tree plus each remaining pair independently with probability p. Weights
// are integers drawn uniformly from [1, maxW].
func RandomConnected(n int, p float64, maxW int, rnd *rand.Rand) *Graph {
	if maxW < 1 {
		maxW = 1
	}
	g := New(n)
	// Random spanning tree: connect each vertex i ≥ 1 to a uniformly random
	// earlier vertex (random attachment tree).
	for i := 1; i < n; i++ {
		j := rnd.Intn(i)
		mustAdd(g, j, i, float64(1+rnd.Intn(maxW)))
	}
	present := make(map[[2]int]bool, n)
	for _, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		present[[2]int{u, v}] = true
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if present[[2]int{u, v}] {
				continue
			}
			if rnd.Float64() < p {
				mustAdd(g, u, v, float64(1+rnd.Intn(maxW)))
			}
		}
	}
	return g
}

// Barbell returns two K_k cliques joined by a single unit-weight bridge
// edge; a classic hard case for spectral approximation (the bridge carries
// all the conductance).
func Barbell(k int) *Graph {
	g := New(2 * k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			mustAdd(g, u, v, 1)
			mustAdd(g, k+u, k+v, 1)
		}
	}
	mustAdd(g, k-1, k, 1)
	return g
}

// Expanderish returns a 3-regular-ish multigraph built from three random
// perfect matchings on an even number of vertices; with high probability it
// is a good expander, giving well-conditioned Laplacians.
func Expanderish(n int, rnd *rand.Rand) *Graph {
	if n%2 != 0 {
		n++
	}
	g := New(n)
	for m := 0; m < 3; m++ {
		perm := rnd.Perm(n)
		for i := 0; i < n; i += 2 {
			u, v := perm[i], perm[i+1]
			if u != v {
				mustAdd(g, u, v, 1)
			}
		}
	}
	// Guarantee connectivity with a Hamiltonian cycle overlay.
	for i := 0; i < n; i++ {
		mustAdd(g, i, (i+1)%n, 1)
	}
	return g
}

func mustAdd(g *Graph, u, v int, w float64) {
	if _, err := g.AddEdge(u, v, w); err != nil {
		panic(fmt.Sprintf("graph generator: %v", err))
	}
}
