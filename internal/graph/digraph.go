package graph

import (
	"errors"
	"fmt"
	"math/rand"
)

// Arc is a directed edge with an integer capacity and cost, matching the
// min-cost max-flow setup in Sections 2.4 and 5 of the paper.
type Arc struct {
	From, To int
	Cap      int64 // capacity c_e > 0
	Cost     int64 // cost q_e (may be zero or, after perturbation, scaled)
}

// Digraph is a directed multigraph with capacities and costs on arcs.
type Digraph struct {
	n    int
	arcs []Arc
	out  [][]int // vertex -> indices of outgoing arcs
	in   [][]int // vertex -> indices of incoming arcs
}

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph {
	return &Digraph{n: n, out: make([][]int, n), in: make([][]int, n)}
}

// AddArc appends a directed arc and returns its index.
func (d *Digraph) AddArc(from, to int, capacity, cost int64) (int, error) {
	if from < 0 || from >= d.n || to < 0 || to >= d.n {
		return 0, fmt.Errorf("digraph: arc (%d,%d) out of range [0,%d)", from, to, d.n)
	}
	if from == to {
		return 0, fmt.Errorf("digraph: self-loop at %d", from)
	}
	if capacity <= 0 {
		return 0, fmt.Errorf("digraph: non-positive capacity %d on arc (%d,%d)", capacity, from, to)
	}
	idx := len(d.arcs)
	d.arcs = append(d.arcs, Arc{From: from, To: to, Cap: capacity, Cost: cost})
	d.out[from] = append(d.out[from], idx)
	d.in[to] = append(d.in[to], idx)
	return idx, nil
}

// Clone returns a deep copy of d: mutating the copy's arcs (PatchArc,
// ApplyDeltas) never aliases the original.
func (d *Digraph) Clone() *Digraph {
	nd := &Digraph{
		n:    d.n,
		arcs: append([]Arc(nil), d.arcs...),
		out:  make([][]int, d.n),
		in:   make([][]int, d.n),
	}
	for v := 0; v < d.n; v++ {
		nd.out[v] = append([]int(nil), d.out[v]...)
		nd.in[v] = append([]int(nil), d.in[v]...)
	}
	return nd
}

// ErrBadDelta marks a malformed arc delta: an index outside the arc list,
// or a capacity delta that would drive an arc's capacity non-positive
// (cumulatively, when one arc appears several times in a delta set).
var ErrBadDelta = errors.New("digraph: bad arc delta")

// ArcDelta is one incremental arc mutation: additive adjustments to the
// capacity and cost of the arc at index Arc (the AddArc return value /
// Arcs() position). Topology is immutable — deltas never add or remove
// arcs — so the LP constraint structure built from the digraph stays
// valid across patches.
type ArcDelta struct {
	Arc       int
	CapDelta  int64
	CostDelta int64
}

// CheckDeltas reports (without mutating) whether ds applies cleanly to
// arcs: every index in range and every capacity positive after the
// cumulative deltas. Errors wrap ErrBadDelta.
func CheckDeltas(arcs []Arc, ds []ArcDelta) error {
	caps := make(map[int]int64, len(ds))
	for i, dl := range ds {
		if dl.Arc < 0 || dl.Arc >= len(arcs) {
			return fmt.Errorf("%w: delta %d: arc index %d out of range [0,%d)", ErrBadDelta, i, dl.Arc, len(arcs))
		}
		c, ok := caps[dl.Arc]
		if !ok {
			c = arcs[dl.Arc].Cap
		}
		c += dl.CapDelta
		if c <= 0 {
			return fmt.Errorf("%w: delta %d drives arc %d capacity to %d", ErrBadDelta, i, dl.Arc, c)
		}
		caps[dl.Arc] = c
	}
	return nil
}

// PatchArcList validates ds against arcs (CheckDeltas) and then applies it
// in place. On error nothing is mutated.
func PatchArcList(arcs []Arc, ds []ArcDelta) error {
	if err := CheckDeltas(arcs, ds); err != nil {
		return err
	}
	for _, dl := range ds {
		arcs[dl.Arc].Cap += dl.CapDelta
		arcs[dl.Arc].Cost += dl.CostDelta
	}
	return nil
}

// ApplyDeltas applies an all-or-nothing set of arc deltas to d. The arc
// list is mutated in place — indices, endpoints and adjacency are
// untouched, so readers of the topology (N, M, Out, In) are unaffected.
func (d *Digraph) ApplyDeltas(ds []ArcDelta) error {
	return PatchArcList(d.arcs, ds)
}

// N returns the number of vertices.
func (d *Digraph) N() int { return d.n }

// M returns the number of arcs.
func (d *Digraph) M() int { return len(d.arcs) }

// Arc returns the arc with the given index.
func (d *Digraph) Arc(i int) Arc { return d.arcs[i] }

// Arcs returns a copy of the arc list.
func (d *Digraph) Arcs() []Arc {
	out := make([]Arc, len(d.arcs))
	copy(out, d.arcs)
	return out
}

// Out returns the indices of arcs leaving v (a copy).
func (d *Digraph) Out(v int) []int { return append([]int(nil), d.out[v]...) }

// In returns the indices of arcs entering v (a copy).
func (d *Digraph) In(v int) []int { return append([]int(nil), d.in[v]...) }

// MaxCap returns the largest arc capacity.
func (d *Digraph) MaxCap() int64 {
	var m int64
	for _, a := range d.arcs {
		if a.Cap > m {
			m = a.Cap
		}
	}
	return m
}

// MaxAbsCost returns the largest |cost|.
func (d *Digraph) MaxAbsCost() int64 {
	var m int64
	for _, a := range d.arcs {
		c := a.Cost
		if c < 0 {
			c = -c
		}
		if c > m {
			m = c
		}
	}
	return m
}

// RandomFlowNetwork builds a connected random flow network on n vertices
// with an s→t backbone path (guaranteeing positive max flow), plus extra
// random arcs with probability p. Capacities are in [1, maxCap], costs in
// [0, maxCost]. s = 0, t = n-1.
func RandomFlowNetwork(n int, p float64, maxCap, maxCost int64, rnd *rand.Rand) *Digraph {
	d := NewDigraph(n)
	add := func(u, v int) {
		c := 1 + rnd.Int63n(maxCap)
		q := rnd.Int63n(maxCost + 1)
		if _, err := d.AddArc(u, v, c, q); err != nil {
			panic(err)
		}
	}
	for i := 0; i+1 < n; i++ {
		add(i, i+1)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v || (v == u+1) {
				continue
			}
			if rnd.Float64() < p {
				add(u, v)
			}
		}
	}
	return d
}

// LayeredFlowNetwork builds a layered DAG (layers of the given width)
// between s = 0 and t = n-1, the classic transport-network workload from the
// paper's min-cost flow motivation. Every consecutive-layer pair is fully
// connected with random capacities/costs.
func LayeredFlowNetwork(layers, width int, maxCap, maxCost int64, rnd *rand.Rand) *Digraph {
	n := layers*width + 2
	d := NewDigraph(n)
	s, t := 0, n-1
	node := func(l, i int) int { return 1 + l*width + i }
	add := func(u, v int) {
		c := 1 + rnd.Int63n(maxCap)
		q := rnd.Int63n(maxCost + 1)
		if _, err := d.AddArc(u, v, c, q); err != nil {
			panic(err)
		}
	}
	for i := 0; i < width; i++ {
		add(s, node(0, i))
		add(node(layers-1, i), t)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				add(node(l, i), node(l+1, j))
			}
		}
	}
	return d
}
