package graph

import (
	"errors"
	"testing"
)

func deltaTestDigraph(t *testing.T) *Digraph {
	t.Helper()
	d := NewDigraph(4)
	arcs := [][4]int64{{0, 1, 5, 2}, {1, 2, 3, 0}, {2, 3, 7, 1}, {0, 2, 2, 4}}
	for _, a := range arcs {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestCheckDeltasValidation(t *testing.T) {
	d := deltaTestDigraph(t)
	cases := []struct {
		name string
		ds   []ArcDelta
		ok   bool
	}{
		{"in-range", []ArcDelta{{Arc: 0, CapDelta: 1}}, true},
		{"negative index", []ArcDelta{{Arc: -1}}, false},
		{"index past end", []ArcDelta{{Arc: 4}}, false},
		{"cap to zero", []ArcDelta{{Arc: 1, CapDelta: -3}}, false},
		{"cap below zero", []ArcDelta{{Arc: 1, CapDelta: -5}}, false},
		{"cap to one", []ArcDelta{{Arc: 1, CapDelta: -2}}, true},
		{"cost only", []ArcDelta{{Arc: 2, CostDelta: -1}}, true},
		// Cumulative: each step individually keeps cap positive, the pair
		// does not.
		{"cumulative underflow", []ArcDelta{{Arc: 0, CapDelta: -2}, {Arc: 0, CapDelta: -3}}, false},
		{"cumulative ok", []ArcDelta{{Arc: 0, CapDelta: -2}, {Arc: 0, CapDelta: 1}}, true},
	}
	for _, tc := range cases {
		err := CheckDeltas(d.Arcs(), tc.ds)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok {
			if err == nil {
				t.Errorf("%s: accepted", tc.name)
			} else if !errors.Is(err, ErrBadDelta) {
				t.Errorf("%s: error %v does not wrap ErrBadDelta", tc.name, err)
			}
		}
	}
}

func TestApplyDeltasAllOrNothing(t *testing.T) {
	d := deltaTestDigraph(t)
	before := d.Arcs()
	// Second delta is invalid; the first must not have been applied.
	err := d.ApplyDeltas([]ArcDelta{{Arc: 0, CapDelta: 1}, {Arc: 9}})
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
	for i, a := range d.Arcs() {
		if a != before[i] {
			t.Fatalf("arc %d mutated by failed ApplyDeltas: %+v -> %+v", i, before[i], a)
		}
	}

	if err := d.ApplyDeltas([]ArcDelta{{Arc: 0, CapDelta: -2, CostDelta: 3}, {Arc: 3, CapDelta: 5}}); err != nil {
		t.Fatal(err)
	}
	if a := d.Arc(0); a.Cap != 3 || a.Cost != 5 {
		t.Fatalf("arc 0 = %+v, want cap 3 cost 5", a)
	}
	if a := d.Arc(3); a.Cap != 7 || a.Cost != 4 {
		t.Fatalf("arc 3 = %+v, want cap 7 cost 4", a)
	}
	// Topology untouched.
	if d.M() != 4 || len(d.Out(0)) != 2 || len(d.In(2)) != 2 {
		t.Fatal("ApplyDeltas disturbed topology")
	}
}

func TestDigraphCloneIndependence(t *testing.T) {
	d := deltaTestDigraph(t)
	c := d.Clone()
	if err := c.ApplyDeltas([]ArcDelta{{Arc: 0, CapDelta: 10, CostDelta: 10}}); err != nil {
		t.Fatal(err)
	}
	if d.Arc(0).Cap != 5 || d.Arc(0).Cost != 2 {
		t.Fatal("Clone shares arc storage with the original")
	}
	if _, err := c.AddArc(3, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if d.M() == c.M() {
		t.Fatal("Clone shares the arc list")
	}
	if len(d.Out(3)) == len(c.Out(3)) {
		t.Fatal("Clone shares adjacency")
	}
}
