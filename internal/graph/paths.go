package graph

import (
	"container/heap"
	"math"
)

// BFS returns hop distances from src; unreachable vertices get -1.
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range g.adj[v] {
			u := g.Other(ei, v)
			if dist[u] < 0 {
				dist[u] = dist[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// Connected reports whether the graph is connected (vacuously true for
// n ≤ 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	dist := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns weighted shortest-path distances from src; unreachable
// vertices get +Inf. Weights must be positive (enforced by AddEdge).
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	q := &pq{{v: src}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.v] {
			continue
		}
		for _, ei := range g.adj[it.v] {
			e := g.edges[ei]
			u := g.Other(ei, it.v)
			if nd := it.dist + e.W; nd < dist[u] {
				dist[u] = nd
				heap.Push(q, pqItem{v: u, dist: nd})
			}
		}
	}
	return dist
}

// AllPairsDijkstra returns the full distance matrix (n runs of Dijkstra);
// used by the spanner stretch checks on small graphs.
func (g *Graph) AllPairsDijkstra() [][]float64 {
	out := make([][]float64, g.n)
	for v := 0; v < g.n; v++ {
		out[v] = g.Dijkstra(v)
	}
	return out
}

// Stretch returns the maximum over connected pairs (u,v) of
// d_H(u,v) / d_G(u,v), where h must be a subgraph of g on the same vertex
// set. Returns +Inf if h disconnects a pair connected in g. Used to verify
// Lemma 3.1 (stretch ≤ 2k−1) on test instances.
func Stretch(g, h *Graph) float64 {
	dg := g.AllPairsDijkstra()
	dh := h.AllPairsDijkstra()
	worst := 1.0
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if math.IsInf(dg[u][v], 1) || dg[u][v] == 0 {
				continue
			}
			r := dh[u][v] / dg[u][v]
			if r > worst {
				worst = r
			}
		}
	}
	return worst
}
