package graph

// UnionFind is a disjoint-set forest with path compression and union by
// rank.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (u *UnionFind) Find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of x and y, returning true if they were distinct.
func (u *UnionFind) Union(x, y int) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Components returns the current number of disjoint sets.
func (u *UnionFind) Components() int { return u.count }
