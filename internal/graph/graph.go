package graph

import (
	"fmt"
	"sort"

	"bcclap/internal/linalg"
)

// Edge is an undirected weighted edge. U < V is not required; edges store
// endpoints as given.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted multigraph on vertices 0..n-1. Edges are
// stored in an indexed list; adjacency lists hold edge indices so parallel
// edges and per-edge metadata (e.g. sampling probabilities) are supported.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]int // vertex -> indices into edges
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]int, n)}
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	g := New(n)
	for _, e := range edges {
		if _, err := g.AddEdge(e.U, e.V, e.W); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// AddEdge appends the undirected edge (u, v, w) and returns its index.
func (g *Graph) AddEdge(u, v int, w float64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("graph: self-loop at %d", u)
	}
	if w <= 0 {
		return 0, fmt.Errorf("graph: non-positive weight %g on edge (%d,%d)", w, u, v)
	}
	idx := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], idx)
	g.adj[v] = append(g.adj[v], idx)
	return idx, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// IncidentEdges returns the indices of edges incident to v (a copy).
func (g *Graph) IncidentEdges(v int) []int {
	out := make([]int, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Other returns the endpoint of edge i that is not v.
func (g *Graph) Other(i, v int) int {
	e := g.edges[i]
	if e.U == v {
		return e.V
	}
	return e.U
}

// SetWeight replaces the weight of edge i (used by the sparsifier's
// reweighting step, Algorithm 5 line 10).
func (g *Graph) SetWeight(i int, w float64) { g.edges[i].W = w }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := New(g.n)
	out.edges = make([]Edge, len(g.edges))
	copy(out.edges, g.edges)
	out.adj = make([][]int, g.n)
	for v := range g.adj {
		out.adj[v] = append([]int(nil), g.adj[v]...)
	}
	return out
}

// Subgraph returns the graph induced by keeping exactly the edges whose
// indices appear in keep (weights preserved).
func (g *Graph) Subgraph(keep []int) *Graph {
	out := New(g.n)
	for _, i := range keep {
		e := g.edges[i]
		// Re-adding preserves weights; errors are impossible for valid indices.
		if _, err := out.AddEdge(e.U, e.V, e.W); err != nil {
			panic(err)
		}
	}
	return out
}

// MaxWeight returns the largest edge weight (0 for an edgeless graph).
func (g *Graph) MaxWeight() float64 {
	var m float64
	for _, e := range g.edges {
		if e.W > m {
			m = e.W
		}
	}
	return m
}

// TotalWeight returns the sum of edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// WEdges converts the edge list into linalg.WEdge triples for Laplacian
// assembly.
func (g *Graph) WEdges() []linalg.WEdge {
	out := make([]linalg.WEdge, len(g.edges))
	for i, e := range g.edges {
		out[i] = linalg.WEdge{U: e.U, V: e.V, W: e.W}
	}
	return out
}

// Laplacian assembles the graph Laplacian as a CSR matrix.
func (g *Graph) Laplacian() *linalg.CSR {
	return linalg.LaplacianCSR(g.n, g.WEdges())
}

// Incidence assembles the m×n edge-vertex incidence matrix.
func (g *Graph) Incidence() *linalg.CSR {
	return linalg.IncidenceCSR(g.n, g.WEdges())
}

// Neighbors returns the distinct neighbor vertices of v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	seen := make(map[int]bool, len(g.adj[v]))
	for _, ei := range g.adj[v] {
		seen[g.Other(ei, v)] = true
	}
	out := make([]int, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Ints(out)
	return out
}
