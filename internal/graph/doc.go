// Package graph provides the graph substrate for the Laplacian-paradigm
// pipeline: undirected weighted multigraphs (for the spanners, sparsifiers
// and Laplacians of Sections 3–4), directed flow networks with integer
// capacities and costs (for the Section 5 min-cost max-flow), generators
// for the workloads used in the experiments, and basic graph algorithms
// (BFS, Dijkstra, union-find, connectivity).
//
// Invariants:
//
//   - Graphs are append-only: algorithms upstream never mutate a graph
//     after construction, which is why the session and pool layers can
//     share one digraph across many solver sessions without locking.
//   - Generators are deterministic in the *rand.Rand they are handed;
//     replaying a seed replays the instance bit for bit.
//   - Arc and edge indices are stable: Digraph.Arc(i) corresponds to
//     position i of every flow vector the solvers return.
package graph
