package bcclap

import (
	"errors"

	"bcclap/internal/admission"
	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/lapsolver"
	"bcclap/internal/lp"
	"bcclap/internal/pool"
)

// Sentinel errors of the session API. Every error returned by a session
// wraps one of these when the named condition applies, so callers branch
// with errors.Is regardless of which internal layer raised it (the
// variables alias the internal sentinels — an error produced four layers
// down still matches).
var (
	// ErrBadQuery marks a malformed flow query: terminals out of range,
	// s == t, or an empty digraph. Raised at the API boundary, before any
	// LP formulation work starts.
	ErrBadQuery = flow.ErrBadQuery

	// ErrBackendUnknown marks a backend name that does not resolve in the
	// registry; the error text lists FlowBackends(). Raised by the session
	// constructors, never mid-solve.
	ErrBackendUnknown = lp.ErrBackendUnknown

	// ErrDisconnected marks a disconnected input graph, for which a single
	// Laplacian solve is ill-posed.
	ErrDisconnected = lapsolver.ErrDisconnected

	// ErrInfeasible marks a starting point that is not strictly feasible
	// for the LP (outside the box interior or violating Aᵀx = b).
	ErrInfeasible = lp.ErrInfeasible

	// ErrSolverClosed marks a query submitted to a FlowSolver after Drain
	// or Close began (pooled or not), a queued query abandoned by an
	// aborting shutdown, or an operation on a Service or NetworkHandle
	// whose shutdown has begun.
	ErrSolverClosed = pool.ErrClosed

	// ErrNetworkUnknown marks a Service operation naming a network that is
	// not (or no longer) registered.
	ErrNetworkUnknown = errors.New("bcclap: unknown network")

	// ErrNetworkExists marks a Service.Register under a name that is
	// already taken; use Get + Swap to replace a live network.
	ErrNetworkExists = errors.New("bcclap: network already registered")

	// ErrBadPatch marks a malformed arc-delta set passed to PatchArcs: an
	// empty set, an arc index outside the network, or a capacity delta
	// that would drive an arc's capacity non-positive. Raised before any
	// state (durable or in-memory) changes.
	ErrBadPatch = graph.ErrBadDelta

	// ErrNetworkBusy marks a Swap or PatchArcs attempted while another
	// mutation of the same tenant is still in progress. Mutations are
	// serialized per tenant; retry once the in-flight one finishes (the
	// REST layer maps this to 429 with a Retry-After hint).
	ErrNetworkBusy = errors.New("bcclap: network mutation in progress")

	// ErrBadSpec marks a malformed network specification: an unparseable
	// request body or an arc list the digraph constructor rejects. Raised
	// by the REST layer's PUT/PATCH decoding, before any solver work.
	ErrBadSpec = errors.New("bcclap: malformed network spec")

	// ErrOverloaded marks a query rejected by a network's admission gate:
	// the bounded admission queue was full, or the request's deadline
	// would have expired before a slot or rate token freed up. The REST
	// layer maps it to 429 with a computed Retry-After. A rejection that
	// noticed the deadline while queued also matches
	// context.DeadlineExceeded.
	ErrOverloaded = admission.ErrOverloaded

	// ErrBadLimits marks invalid QoS limits: a negative rate, burst,
	// in-flight cap, or a non-finite rate. Raised by Register/Swap option
	// validation and NetworkHandle.SetLimits, before anything is
	// journaled.
	ErrBadLimits = admission.ErrBadLimits
)
