package bcclap

import (
	"context"
	"errors"
	"fmt"
	"io"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bcclap/internal/admission"
	"bcclap/internal/cache"
	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/store"
	"bcclap/internal/telemetry"
)

// DefaultCacheSize is the per-network certified-result cache budget a
// Service applies when neither NewService nor Register/Swap passed
// WithCacheSize. WithCacheSize(0) disables caching for a network.
const DefaultCacheSize = 1024

// CacheStats re-exports the certified-result cache counters (hits,
// misses, budget evictions, flush invalidations, current entries against
// the budget).
type CacheStats = cache.Stats

// StoreStats re-exports the durable-store counters (appends, snapshots,
// records replayed and bytes truncated at the last recovery).
type StoreStats = store.Stats

// Limits is the per-tenant QoS limit set enforced by each handle's
// admission gate: sustained rate (token bucket with a burst depth), an
// in-flight cap, and the bounded admission queue between them. The zero
// value means unlimited. Configure at Register/Swap with WithRateLimit,
// WithMaxInFlight and WithQueueDepth — note those options use serving-
// surface conventions (queue depth 0 disables queueing) while this
// struct keeps the gate's (QueueDepth 0 means the default, negative
// disables) — or change at runtime with NetworkHandle.SetLimits.
type Limits = admission.Limits

// AdmissionStats re-exports the per-tenant admission-gate counters
// (admitted/queued/rejected totals, live occupancy, cumulative queue
// wait and the EWMA service time backing Retry-After estimates).
type AdmissionStats = admission.Stats

// Service is the multi-tenant top of the API: one process managing many
// named, versioned flow networks over the session/pool machinery, the way
// a container daemon fronts many named objects with one lifecycle
// vocabulary. Register ingests a network under a name and returns its
// NetworkHandle; Get resolves a name; Swap atomically replaces a tenant's
// network (draining the old solver, bumping the handle's version) without
// disturbing queries on other tenants; Deregister retires one.
//
// Every handle wraps a pooled FlowSolver — per-network WithBackend /
// WithPoolSize / WithSeed / WithCacheSize overrides layer over the
// service-level defaults given to NewService — and fronts it with a
// sharded LRU of certified results keyed by (network, version, s, t).
// Since solves are exact and deterministic, cached answers are
// bit-identical to fresh ones, turning repeated production queries into
// O(1) lookups; the cache is invalidated whole-tenant on Swap and
// Deregister, and its hit/miss/eviction counters surface in NetworkStats
// and ServiceStats.
//
// A service built by OpenService with WithStore is additionally durable:
// every lifecycle mutation (Register, Swap, PatchArcs, Deregister) is
// appended to a write-ahead log before it takes effect, and a restarted
// process replays the log — so tenants, versions and configurations
// survive crashes and serve bit-identical results without
// re-registration.
//
// All Service and NetworkHandle methods are safe for concurrent use.
type Service struct {
	defaults []Option

	// log is the durable tenant store (nil on a NewService-built,
	// memory-only service). Records are appended before the mutation they
	// describe takes effect; appends for one tenant serialize under that
	// tenant's handle lock (Register under s.mu), so WAL order equals the
	// order mutations became visible.
	log *store.Log

	// tel is the recording half of the service's telemetry: the one
	// hot-path metric family plus the scrape-time machinery behind
	// WriteMetrics. Nil when WithTelemetry(false) was passed.
	tel *serviceTelemetry

	mu     sync.RWMutex
	nets   map[string]*NetworkHandle
	closed bool

	registered, deregistered, swaps, patches atomic.Int64
}

// NetworkStats describes one tenant: identity (name, monotonic version),
// network size, solver configuration and the pool/cache counters.
type NetworkStats struct {
	// Name and Version identify the tenant; Version starts at 1 and is
	// bumped by every successful Swap and PatchArcs.
	Name    string
	Version uint64
	// Patches counts successful PatchArcs calls over the tenant's lifetime
	// (persisted: it survives restarts of a durable service).
	Patches uint64
	// Vertices and Arcs size the currently served network.
	Vertices, Arcs int
	// Backend is the resolved AᵀDA backend name; PoolSize the worker-
	// session count behind the handle.
	Backend  string
	PoolSize int
	// Pool snapshots the solver pool counters, Cache the certified-result
	// cache counters, Admission the QoS gate (configured limits included).
	Pool      PoolStats
	Cache     CacheStats
	Admission AdmissionStats
}

// ServiceStats aggregates the whole service: tenant count, lifecycle
// counters and the per-tenant records (sorted by name), plus the cache
// counters summed across tenants.
type ServiceStats struct {
	// Networks is the number of currently registered tenants.
	Networks int
	// Registered, Deregistered, Swaps and Patches count lifecycle events
	// since NewService/OpenService (replayed tenants count as Registered).
	Registered, Deregistered, Swaps, Patches int64
	// Cache sums the per-tenant cache counters.
	Cache CacheStats
	// Store snapshots the durable-store counters; nil on a memory-only
	// service.
	Store *StoreStats
	// PerNetwork holds one record per live tenant, sorted by name.
	PerNetwork []NetworkStats
}

// NewService builds an empty service. opts become the service-level
// defaults that every Register and Swap layers its per-network options
// over (later options win), so a fleet-wide backend, seed, pool size or
// cache budget is stated once:
//
//	svc := bcclap.NewService(bcclap.WithBackend("csr-pcg"), bcclap.WithPoolSize(4))
//	h, err := svc.Register("prod-eu", d, bcclap.WithPoolSize(8)) // overrides pool only
//
// Handles are always pooled (WithPoolSize(1) is implied) so that every
// tenant is safe for concurrent use and can be drained independently;
// WithNetwork is therefore rejected by Register, as it is for any pooled
// solver.
func NewService(opts ...Option) *Service {
	s := &Service{
		defaults: slices.Clone(opts),
		nets:     make(map[string]*NetworkHandle),
	}
	if !applyOptions(opts).telemetryOff {
		s.tel = newServiceTelemetry()
	}
	return s
}

// OpenService builds a durable service: with WithStore(dir) among opts it
// opens (or creates) the write-ahead log under dir, replays the persisted
// tenant state — every network is rebuilt at its last version with its
// resolved solver configuration, ready to serve bit-identical results
// without re-registration — and then starts journaling new mutations.
// Without WithStore it degenerates to NewService. WithStoreSync and
// WithSnapshotEvery tune the store; the remaining opts are the usual
// service-level defaults for new registrations (replayed tenants keep
// their persisted configuration and ignore them).
//
// A directory may be open in at most one process at a time; Drain or
// Close releases it.
func OpenService(opts ...Option) (*Service, error) {
	s := NewService(opts...)
	cfg := applyOptions(opts)
	if cfg.storeDir == "" {
		return s, nil
	}
	lg, err := store.Open(cfg.storeDir, store.Options{
		Sync:          cfg.storeSync,
		SnapshotEvery: cfg.storeSnapEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("bcclap: open store: %w", err)
	}
	for _, ts := range lg.Tenants() {
		if err := s.replayTenant(ts); err != nil {
			lg.Close()
			s.Close()
			return nil, fmt.Errorf("bcclap: replay tenant %q: %w", ts.Name, err)
		}
	}
	// Attach only after replay: rebuilding a persisted tenant must not
	// journal a fresh register record.
	s.log = lg
	return s, nil
}

// tenantOptsOf resolves the serializable subset of a merged option slice —
// what a restarted process needs to rebuild the tenant's solver so that it
// answers bit-identically (backend, seed, tolerance, retries, pool
// geometry, cache budget). Process-local options (progress callbacks,
// round simulators, LP/sparsifier parameter structs) are not persisted.
func tenantOptsOf(merged []Option) store.TenantOpts {
	cfg := applyOptions(merged)
	return store.TenantOpts{
		Backend:      cfg.backend,
		Seed:         cfg.seed,
		Tol:          cfg.tol,
		Retries:      cfg.retries,
		Pool:         cfg.poolSize,
		Shards:       cfg.shards,
		CacheSize:    cfg.cacheSize,
		CacheSizeSet: cfg.cacheSizeSet,
		Limits: store.TenantLimits{
			Rate:        cfg.rateQPS,
			Burst:       cfg.rateBurst,
			MaxInFlight: cfg.maxInFlight,
			QueueDepth:  cfg.queueDepth,
			RateSet:     cfg.rateSet,
			InFlightSet: cfg.maxInFlightSet,
			QueueSet:    cfg.queueDepthSet,
		},
	}
}

// tenantOptions is the inverse of tenantOptsOf: the option slice that
// rebuilds a replayed tenant. It intentionally does not layer over the
// current service defaults — the persisted values are already resolved
// against the defaults in force at the original Register/Swap.
func tenantOptions(o store.TenantOpts) []Option {
	opts := []Option{
		WithBackend(o.Backend),
		WithSeed(o.Seed),
		WithTolerance(o.Tol),
		WithRetries(o.Retries),
		WithPoolSize(o.Pool),
		WithShards(o.Shards),
	}
	if o.CacheSizeSet {
		opts = append(opts, WithCacheSize(o.CacheSize))
	}
	if o.Limits.RateSet {
		opts = append(opts, WithRateLimit(o.Limits.Rate, o.Limits.Burst))
	}
	if o.Limits.InFlightSet {
		opts = append(opts, WithMaxInFlight(o.Limits.MaxInFlight))
	}
	if o.Limits.QueueSet {
		opts = append(opts, WithQueueDepth(o.Limits.QueueDepth))
	}
	return opts
}

// limitsOf maps the serving-surface limit options onto the gate's Limits
// convention. An unset knob stays zero (the gate default); an explicit
// WithQueueDepth(0) — "no queue" at the option surface — becomes the
// gate's negative "queueing disabled".
func limitsOf(cfg config) Limits {
	var l Limits
	if cfg.rateSet {
		l.RatePerSec = cfg.rateQPS
		l.Burst = cfg.rateBurst
	}
	if cfg.maxInFlightSet {
		l.MaxInFlight = cfg.maxInFlight
	}
	if cfg.queueDepthSet {
		if cfg.queueDepth > 0 {
			l.QueueDepth = cfg.queueDepth
		} else {
			l.QueueDepth = -1
		}
	}
	return l
}

// replayTenant rebuilds one persisted tenant during OpenService (the log
// is not attached yet, so nothing is re-journaled).
func (s *Service) replayTenant(ts store.TenantState) error {
	d := NewDigraph(ts.N)
	for _, a := range ts.Arcs {
		if _, err := d.AddArc(a.From, a.To, a.Cap, a.Cost); err != nil {
			return err
		}
	}
	opts := tenantOptions(ts.Opts)
	solver, cacheSize, lims, err := newTenantSolver(d, opts)
	if err != nil {
		return err
	}
	gate, err := admission.NewGate(lims)
	if err != nil {
		solver.Close()
		return err
	}
	h := &NetworkHandle{
		name:    ts.Name,
		svc:     s,
		opts:    opts,
		solver:  solver,
		d:       d,
		version: ts.Version,
		patches: ts.Patches,
		cache:   cache.New[*FlowResult](cacheSize),
		gate:    gate,
	}
	h.lat.Store(s.latFor(ts.Name, solver.Backend()))
	s.mu.Lock()
	s.nets[ts.Name] = h
	s.mu.Unlock()
	s.registered.Add(1)
	return nil
}

// validName rejects names that cannot round-trip through the REST surface
// (path segments) or read back ambiguously in logs.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("bcclap: network name must be non-empty")
	}
	if len(name) > 128 {
		return fmt.Errorf("bcclap: network name longer than 128 bytes")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("bcclap: network name %q contains '/' or whitespace", name)
	}
	return nil
}

// newTenantSolver builds the pooled FlowSolver for one tenant from the
// fully merged option slice and resolves its cache budget and QoS limits.
func newTenantSolver(d *Digraph, merged []Option) (solver *FlowSolver, cacheSize int, lims Limits, err error) {
	cfg := applyOptions(merged)
	// Validate limits before the (expensive) solver build: a bad
	// WithRateLimit/WithMaxInFlight fails fast and journals nothing.
	lims = limitsOf(cfg)
	if err := lims.Validate(); err != nil {
		return nil, 0, Limits{}, fmt.Errorf("bcclap: %w", err)
	}
	// Pool floor: handles must always be pooled (concurrency-safe and
	// drainable for Swap), so an absent or non-positive WithPoolSize is
	// clamped to 1 — appended last so it beats the invalid value, while
	// any explicit positive choice keeps winning on its own.
	opts := merged
	if cfg.poolSize < 1 {
		opts = append(slices.Clone(merged), WithPoolSize(1))
	}
	solver, err = NewFlowSolver(d, opts...)
	if err != nil {
		return nil, 0, Limits{}, err
	}
	size := DefaultCacheSize
	if cfg.cacheSizeSet {
		size = cfg.cacheSize
	}
	return solver, size, lims, nil
}

// Register ingests d under name and returns its handle. The per-network
// opts layer over the NewService defaults; a taken name fails with
// ErrNetworkExists (swap a live network through its handle instead), and
// solver construction failures (empty digraph, unknown backend) surface
// unchanged. The handle starts at version 1 with an empty cache.
func (s *Service) Register(name string, d *Digraph, opts ...Option) (*NetworkHandle, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	merged := append(slices.Clone(s.defaults), opts...)
	// The handle owns a private copy: PatchArcs mutates arc capacities and
	// costs in place, and the caller keeps using its digraph.
	held := d.Clone()
	// Construct outside the lock: solver construction does real work and
	// must not serialize tenants; the name reservation below re-checks.
	solver, cacheSize, lims, err := newTenantSolver(held, merged)
	if err != nil {
		return nil, err
	}
	gate, err := admission.NewGate(lims)
	if err != nil {
		solver.Close()
		return nil, err
	}
	h := &NetworkHandle{
		name:    name,
		svc:     s,
		opts:    merged,
		solver:  solver,
		d:       held,
		version: 1,
		cache:   cache.New[*FlowResult](cacheSize),
		gate:    gate,
	}
	h.lat.Store(s.latFor(name, solver.Backend()))
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		solver.Close()
		return nil, fmt.Errorf("bcclap: service: %w", ErrSolverClosed)
	}
	if _, taken := s.nets[name]; taken {
		s.mu.Unlock()
		solver.Close()
		return nil, fmt.Errorf("bcclap: network %q: %w", name, ErrNetworkExists)
	}
	// Journal-before-effect: the registration is durable before the name
	// becomes visible; a failed append registers nothing.
	if s.log != nil {
		rec := store.Record{
			Type: store.RecRegister, Name: name, Version: 1,
			Opts: tenantOptsOf(merged), N: held.N(), Arcs: held.Arcs(),
		}
		if err := s.log.Append(rec); err != nil {
			s.mu.Unlock()
			solver.Close()
			return nil, fmt.Errorf("bcclap: register %q: %w", name, err)
		}
	}
	s.nets[name] = h
	s.mu.Unlock()
	s.registered.Add(1)
	return h, nil
}

// Get resolves a registered network by name (ErrNetworkUnknown otherwise).
func (s *Service) Get(name string) (*NetworkHandle, error) {
	s.mu.RLock()
	h, ok := s.nets[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("bcclap: service: %w", ErrSolverClosed)
	}
	if !ok {
		return nil, fmt.Errorf("bcclap: network %q: %w", name, ErrNetworkUnknown)
	}
	return h, nil
}

// Deregister retires the named network: the retirement is journaled (on a
// durable service), the name is freed, the tenant's cache is invalidated,
// and the handle's solver is drained — in-flight queries finish, later
// ones fail with ErrSolverClosed. Other tenants are untouched. Unknown
// names fail with ErrNetworkUnknown.
func (s *Service) Deregister(name string) error {
	s.mu.RLock()
	h, ok := s.nets[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("bcclap: network %q: %w", name, ErrNetworkUnknown)
	}
	// The deregister record is appended under the handle lock, before the
	// handle closes: per-tenant appends (swap, patch, deregister) all hold
	// h.mu, so WAL order equals the order mutations became visible, and a
	// failed append leaves the tenant serving.
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("bcclap: network %q: %w", name, ErrNetworkUnknown)
	}
	if s.log != nil {
		rec := store.Record{Type: store.RecDeregister, Name: name, Version: h.version}
		if err := s.log.Append(rec); err != nil {
			h.mu.Unlock()
			return fmt.Errorf("bcclap: deregister %q: %w", name, err)
		}
	}
	h.closed = true
	solver := h.solver
	h.cache.Flush()
	h.mu.Unlock()
	s.mu.Lock()
	if s.nets[name] == h {
		delete(s.nets, name)
	}
	s.mu.Unlock()
	s.deregistered.Add(1)
	if err := solver.Drain(context.Background()); err != nil {
		solver.Close()
		return err
	}
	return nil
}

// Names lists the registered networks, sorted.
func (s *Service) Names() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.nets))
	for name := range s.nets {
		names = append(names, name)
	}
	s.mu.RUnlock()
	slices.Sort(names)
	return names
}

// ServiceStats snapshots the whole service: lifecycle counters plus one
// NetworkStats per live tenant (sorted by name) and the cache counters
// summed across tenants.
func (s *Service) ServiceStats() ServiceStats {
	s.mu.RLock()
	handles := make([]*NetworkHandle, 0, len(s.nets))
	for _, h := range s.nets {
		handles = append(handles, h)
	}
	s.mu.RUnlock()
	st := ServiceStats{
		Networks:     len(handles),
		Registered:   s.registered.Load(),
		Deregistered: s.deregistered.Load(),
		Swaps:        s.swaps.Load(),
		Patches:      s.patches.Load(),
	}
	if s.log != nil {
		ls := s.log.Stats()
		st.Store = &ls
	}
	for _, h := range handles {
		ns := h.Stats()
		st.Cache = st.Cache.Add(ns.Cache)
		st.PerNetwork = append(st.PerNetwork, ns)
	}
	slices.SortFunc(st.PerNetwork, func(a, b NetworkStats) int {
		return strings.Compare(a.Name, b.Name)
	})
	return st
}

// Drain gracefully shuts the whole service down: intake stops (Register,
// Get and every handle's Solve fail with ErrSolverClosed), every tenant's
// in-flight queries finish within ctx's budget, and the first drain error
// (if any) is returned after all tenants have stopped. On a durable
// service the store is compacted and released afterwards — shutting down
// is not deregistration, so the tenants stay journaled and OpenService on
// the same directory brings them all back.
func (s *Service) Drain(ctx context.Context) error {
	handles := s.takeAll()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for _, h := range handles {
		wg.Add(1)
		go func(h *NetworkHandle) {
			defer wg.Done()
			if err := h.retire(ctx); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("bcclap: drain network %q: %w", h.name, err)
				}
				mu.Unlock()
			}
		}(h)
	}
	wg.Wait()
	// Close the log only after every tenant has stopped mutating: appends
	// hold the handle locks the retires above contend on, so none can
	// arrive after this point.
	if s.log != nil {
		if err := s.log.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("bcclap: close store: %w", err)
		}
	}
	return firstErr
}

// Close shuts the service down immediately: every tenant's queued queries
// fail and running solves are canceled within one solver iteration, and
// on a durable service the store is released (its journaled tenants
// survive for the next OpenService). Safe to call after Drain, and more
// than once.
func (s *Service) Close() {
	for _, h := range s.takeAll() {
		h.mu.Lock()
		h.closed = true
		solver := h.solver
		h.cache.Flush()
		h.mu.Unlock()
		solver.Close()
	}
	if s.log != nil {
		s.log.Close()
	}
}

// takeAll marks the service closed and empties the registry, returning
// the tenants that still need shutting down.
func (s *Service) takeAll() []*NetworkHandle {
	s.mu.Lock()
	s.closed = true
	handles := make([]*NetworkHandle, 0, len(s.nets))
	for _, h := range s.nets {
		handles = append(handles, h)
	}
	s.nets = make(map[string]*NetworkHandle)
	s.mu.Unlock()
	return handles
}

// NetworkHandle is one tenant of a Service: a named, versioned network
// behind a pooled FlowSolver and a certified-result cache. Handles are
// safe for concurrent use; they stay valid across Swap (queries in flight
// during a swap finish against the network they started on) and fail with
// ErrSolverClosed once their network is deregistered.
type NetworkHandle struct {
	name string
	svc  *Service

	// mutating serializes tenant mutations (Swap, PatchArcs, each of which
	// does real work outside h.mu): a second mutation arriving while one is
	// in flight fails fast with ErrNetworkBusy instead of queueing.
	mutating atomic.Bool

	// gate is the tenant's QoS admission controller; immutable for the
	// handle's lifetime (SetLimits mutates it in place, never replaces
	// it), so the solve path reads it without holding h.mu.
	gate *admission.Gate

	// tick drives the 1-in-64 sampling of cache-hit latencies; lat holds
	// the hot-path histogram children for the current backend (nil with
	// telemetry disabled), swapped atomically when Swap changes backends.
	tick atomic.Uint64
	lat  atomic.Pointer[latChildren]

	mu      sync.RWMutex
	opts    []Option // merged service defaults + register/swap overrides
	solver  *FlowSolver
	d       *Digraph // handle-private clone; PatchArcs mutates it in place
	version uint64
	patches uint64
	cache   *cache.Cache[*FlowResult]
	closed  bool
}

// Name returns the tenant's registered name.
func (h *NetworkHandle) Name() string { return h.name }

// Version returns the monotonic network version: 1 at Register, bumped by
// every successful Swap and PatchArcs. Cached results are keyed by it; a
// swap makes every old entry unreachable, while a patch migrates the
// still-valid entries to the new version (see PatchArcs).
func (h *NetworkHandle) Version() uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.version
}

// Backend returns the resolved AᵀDA backend name of the current solver.
func (h *NetworkHandle) Backend() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.solver.Backend()
}

// snapshot pins the serving state for one query: the solver, the version
// its answers certify against, and the cache.
func (h *NetworkHandle) snapshot() (*FlowSolver, uint64, *cache.Cache[*FlowResult], error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.closed {
		return nil, 0, nil, fmt.Errorf("bcclap: network %q: %w", h.name, ErrSolverClosed)
	}
	return h.solver, h.version, h.cache, nil
}

// cloneResult detaches a FlowResult from the cache (or the cache from the
// caller): same value, cost and bit-identical flow vector, with the
// CacheHit flag set as requested.
func cloneResult(res *FlowResult, hit bool) *FlowResult {
	out := *res
	out.Flows = slices.Clone(res.Flows)
	out.Stats.CacheHit = hit
	// Trace IDs are request-scoped, never cached: the entry going into
	// (or coming out of) the cache must not carry the trace of whichever
	// request happened to touch it first.
	out.Stats.TraceID = ""
	return &out
}

// store inserts a freshly certified result, unless the network was
// swapped or retired while the solve ran (the version re-check and the
// Put are under one read lock, so a concurrent Swap — which flushes under
// the write lock — can never leave a stale entry behind).
func (h *NetworkHandle) store(ver uint64, key cache.Key, res *FlowResult) {
	h.mu.RLock()
	if !h.closed && h.version == ver {
		h.cache.Put(key, cloneResult(res, false))
	}
	h.mu.RUnlock()
}

// swappedSince reports whether an ErrSolverClosed from a pinned solver
// means the query merely lost a race with Swap — the snapshot retired
// between pinning and submission, and the tenant is still serving on a
// newer version — rather than the tenant itself being shut down.
func (h *NetworkHandle) swappedSince(ver uint64) bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return !h.closed && h.version != ver
}

// Solve answers one (s, t) query: a cache hit returns the previously
// certified result in O(1) — bit-identical in value, cost and flow vector
// to a fresh solve, with Stats.CacheHit set — and a miss solves on the
// tenant's pool with warm-start semantics (a pair the pool has already
// answered re-centers the previous certified solution, which is what
// makes resolves after PatchArcs cheap) and populates the cache. A query
// that loses the race with a concurrent Swap transparently retries on the
// new network, so tenants never observe spurious shutdown errors from
// their own swaps. Every query first passes the tenant's admission gate
// (cache hits included — QoS limits bound offered load, not solver
// work); a saturated gate queues or rejects with ErrOverloaded per the
// configured Limits. Sentinels match FlowSolver.Solve (ErrBadQuery, ctx
// errors), plus ErrSolverClosed after Deregister.
func (h *NetworkHandle) Solve(ctx context.Context, s, t int) (*FlowResult, error) {
	rel, err := h.gate.Admit(ctx)
	if err != nil {
		return nil, fmt.Errorf("bcclap: network %q: %w", h.name, err)
	}
	defer rel()
	// Cache-hit latency is sampled 1-in-64: the hit path is a few hundred
	// nanoseconds, so even one time.Now pair per hit would be a measurable
	// tax. Misses need no clock — the solver already measures WallTime.
	var start time.Time
	sampled := h.tick.Add(1)&63 == 0 && h.lat.Load() != nil
	if sampled {
		start = time.Now()
	}
	for {
		solver, ver, c, err := h.snapshot()
		if err != nil {
			return nil, err
		}
		key := cache.Key{Version: ver, S: s, T: t}
		if res, ok := c.Get(key); ok {
			out := cloneResult(res, true)
			out.Stats.TraceID = telemetry.TraceID(ctx)
			if sampled {
				if lc := h.lat.Load(); lc != nil {
					lc.hit.Observe(time.Since(start).Seconds())
				}
			}
			return out, nil
		}
		res, err := solver.solveWarm(ctx, s, t)
		if errors.Is(err, ErrSolverClosed) && h.swappedSince(ver) {
			continue
		}
		if err != nil {
			return nil, err
		}
		h.gate.RecordServiceTime(res.Stats.WallTime)
		if lc := h.lat.Load(); lc != nil {
			lc.miss.Observe(res.Stats.WallTime.Seconds())
		}
		h.store(ver, key, res)
		res.Stats.TraceID = telemetry.TraceID(ctx)
		return res, nil
	}
}

// SolveBatch answers a batch with the cache in front: hits are filled
// in O(1), and only the misses fan out to the tenant's pool (repeated
// misses inside one batch still warm-start there). Results come back in
// query order and every answer — cached or fresh — is certified exact.
// The batch passes the admission gate as one request consuming one rate
// token per query (so a large batch cannot launder a rate limit) and one
// in-flight slot (its internal concurrency is already bounded by the
// pool size).
func (h *NetworkHandle) SolveBatch(ctx context.Context, queries []FlowQuery) ([]*FlowResult, error) {
	rel, err := h.gate.AdmitN(ctx, len(queries))
	if err != nil {
		return nil, fmt.Errorf("bcclap: network %q: %w", h.name, err)
	}
	defer rel()
	trace := telemetry.TraceID(ctx)
	for {
		solver, ver, c, err := h.snapshot()
		if err != nil {
			return nil, err
		}
		out := make([]*FlowResult, len(queries))
		var (
			missIdx []int
			misses  []FlowQuery
		)
		for i, q := range queries {
			if res, ok := c.Get(cache.Key{Version: ver, S: q.S, T: q.T}); ok {
				out[i] = cloneResult(res, true)
				out[i].Stats.TraceID = trace
			} else {
				missIdx = append(missIdx, i)
				misses = append(misses, q)
			}
		}
		if len(misses) > 0 {
			fresh, err := solver.SolveBatch(ctx, misses)
			if errors.Is(err, ErrSolverClosed) && h.swappedSince(ver) {
				// Lost the race with Swap: the whole batch re-runs against
				// the new network (its version keys a flushed cache, so
				// pre-swap hits cannot leak into the answer).
				continue
			}
			if err != nil {
				return nil, err
			}
			lc := h.lat.Load()
			for j, res := range fresh {
				h.gate.RecordServiceTime(res.Stats.WallTime)
				if lc != nil {
					lc.miss.Observe(res.Stats.WallTime.Seconds())
				}
				out[missIdx[j]] = res
				h.store(ver, cache.Key{Version: ver, S: misses[j].S, T: misses[j].T}, res)
				res.Stats.TraceID = trace
			}
		}
		return out, nil
	}
}

// Swap atomically replaces the tenant's network with d: a new pooled
// solver is built first (per-call opts layer over the handle's existing
// options and stick for future swaps), then — under one critical section
// — the swap is journaled (on a durable service), the solver switched,
// the version bumped and the tenant's cache invalidated. Queries in
// flight at the switch finish against the old network (its solver is
// drained, not killed), queries after it certify against d, and no other
// tenant is disturbed at any point. Any failure — construction (empty
// digraph, unknown backend) or journaling — leaves the handle serving the
// old network unchanged. A Swap racing another Swap or PatchArcs on the
// same tenant fails with ErrNetworkBusy (mutations serialize per tenant).
func (h *NetworkHandle) Swap(d *Digraph, opts ...Option) error {
	if !h.mutating.CompareAndSwap(false, true) {
		return fmt.Errorf("bcclap: network %q: %w", h.name, ErrNetworkBusy)
	}
	defer h.mutating.Store(false)
	h.mu.RLock()
	merged := append(slices.Clone(h.opts), opts...)
	h.mu.RUnlock()
	held := d.Clone()
	solver, cacheSize, lims, err := newTenantSolver(held, merged)
	if err != nil {
		return err
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		solver.Close()
		return fmt.Errorf("bcclap: network %q: %w", h.name, ErrSolverClosed)
	}
	if h.svc.log != nil {
		rec := store.Record{
			Type: store.RecSwap, Name: h.name, Version: h.version + 1,
			Opts: tenantOptsOf(merged), N: held.N(), Arcs: held.Arcs(),
		}
		if err := h.svc.log.Append(rec); err != nil {
			h.mu.Unlock()
			solver.Close()
			return fmt.Errorf("bcclap: swap %q: %w", h.name, err)
		}
	}
	old := h.solver
	h.opts = merged
	h.solver = solver
	h.d = held
	h.version++
	// Whole-tenant invalidation. The cache object survives the swap; it
	// is only rebuilt when the budget changed, and then the cumulative
	// counters carry over so NetworkStats.Cache stays monotonic.
	h.cache.Flush()
	if cacheSize != h.cache.Capacity() {
		next := cache.New[*FlowResult](cacheSize)
		next.CarryCounters(h.cache)
		h.cache = next
	}
	// Re-resolve the QoS limits from the merged options (validated above)
	// and repoint the hot-path histogram children at the new backend.
	h.gate.SetLimits(lims)
	h.lat.Store(h.svc.latFor(h.name, solver.Backend()))
	h.mu.Unlock()
	h.svc.swaps.Add(1)
	// Retire the old solver gracefully: queries that snapshotted it before
	// the switch run to completion; it only rejects queries that never
	// existed (nothing routes to it anymore).
	if err := old.Drain(context.Background()); err != nil {
		old.Close()
	}
	return nil
}

// PatchArcs applies an all-or-nothing set of arc capacity/cost deltas to
// the tenant's network — the incremental alternative to Swap when
// topology is unchanged. Instead of building a new solver, the patch is
// journaled (on a durable service) and folded into the live worker
// sessions, which keep their LP structure, backend workspaces and
// warm-start state: the next solve of an affected terminal pair
// re-centers from the pre-patch optimum rather than re-running path
// following from scratch.
//
// The cache is invalidated selectively, not flushed: entries whose flow
// routes through a modified arc are dropped, and every other entry is
// re-certified against the patched network — kept (migrated to the new
// version) only if its flow is still provably optimal. Kept entries are
// exact, certified answers; note that after a patch a cached flow vector
// may differ from the one a fresh solve would pick when the optimum is
// degenerate, while value and cost always agree.
//
// Malformed delta sets (empty, arc index out of range, capacity driven
// non-positive) fail with ErrBadPatch before any state — durable or
// in-memory — changes. A PatchArcs racing another PatchArcs or Swap on
// the same tenant fails with ErrNetworkBusy.
func (h *NetworkHandle) PatchArcs(deltas []ArcDelta) error {
	if len(deltas) == 0 {
		return fmt.Errorf("bcclap: network %q: %w: empty delta set", h.name, ErrBadPatch)
	}
	if !h.mutating.CompareAndSwap(false, true) {
		return fmt.Errorf("bcclap: network %q: %w", h.name, ErrNetworkBusy)
	}
	defer h.mutating.Store(false)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("bcclap: network %q: %w", h.name, ErrSolverClosed)
	}
	if err := graph.CheckDeltas(h.d.Arcs(), deltas); err != nil {
		h.mu.Unlock()
		return fmt.Errorf("bcclap: network %q: %w", h.name, err)
	}
	oldVer, newVer := h.version, h.version+1
	if h.svc.log != nil {
		rec := store.Record{
			Type: store.RecPatch, Name: h.name, Version: newVer,
			Deltas: slices.Clone(deltas),
		}
		if err := h.svc.log.Append(rec); err != nil {
			h.mu.Unlock()
			return fmt.Errorf("bcclap: patch %q: %w", h.name, err)
		}
	}
	if err := h.d.ApplyDeltas(deltas); err != nil {
		// CheckDeltas passed above under the same lock, so this cannot
		// fail; surface it rather than diverge from the journal if it ever
		// does.
		h.mu.Unlock()
		return fmt.Errorf("bcclap: network %q: %w", h.name, err)
	}
	h.version = newVer
	h.patches++
	touched := make(map[int]struct{}, len(deltas))
	for _, dl := range deltas {
		touched[dl.Arc] = struct{}{}
	}
	// Selective invalidation: drop entries whose flow uses a modified arc
	// (their cost certainly changed), then re-certify the rest against the
	// patched network — a flow avoiding every touched arc can still lose
	// optimality (a patched arc may now offer a cheaper or wider route).
	d := h.d
	h.cache.Rekey(oldVer, newVer, func(k cache.Key, res *FlowResult) bool {
		for a := range touched {
			if a < len(res.Flows) && res.Flows[a] != 0 {
				return true
			}
		}
		return flow.CertifyOptimal(d, k.S, k.T, res.Flows) != nil
	})
	// Enqueue on every worker while still holding the write lock — no query
	// can slip between the version bump and the patch broadcast — then wait
	// outside it so queries ahead of the patch in the worker queues can
	// finish.
	wait, err := h.solver.patchAsync(deltas)
	h.mu.Unlock()
	if err != nil {
		return fmt.Errorf("bcclap: patch %q: %w", h.name, err)
	}
	if err := wait(); err != nil {
		return fmt.Errorf("bcclap: patch %q: %w", h.name, err)
	}
	h.svc.patches.Add(1)
	return nil
}

// SetLimits replaces the tenant's QoS limits at runtime (the REST
// layer's PATCH /v1/networks/{name}/limits). The change is journaled on
// a durable service — limits survive restarts like any other tenant
// configuration — and applies to subsequent admissions immediately:
// tightening never revokes in-flight requests, loosening to unlimited
// admits every queued waiter. The network version is not bumped (limits
// do not affect results), so cached entries stay valid. Invalid limits
// fail with ErrBadLimits before anything changes.
func (h *NetworkHandle) SetLimits(l Limits) error {
	if err := l.Validate(); err != nil {
		return fmt.Errorf("bcclap: network %q: %w", h.name, err)
	}
	if l.QueueDepth < 0 {
		l.QueueDepth = -1 // canonical "queueing disabled"
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return fmt.Errorf("bcclap: network %q: %w", h.name, ErrSolverClosed)
	}
	if h.svc.log != nil {
		// The journaled form uses the option-surface convention (queue
		// depth 0 = no queue, unset = gate default) so replay rebuilds the
		// gate through the same WithRateLimit/WithMaxInFlight/
		// WithQueueDepth path as a fresh registration.
		tl := store.TenantLimits{
			Rate:        l.RatePerSec,
			Burst:       l.Burst,
			MaxInFlight: l.MaxInFlight,
			RateSet:     true,
			InFlightSet: true,
		}
		if l.QueueDepth != 0 {
			tl.QueueSet = true
			if l.QueueDepth > 0 {
				tl.QueueDepth = l.QueueDepth
			}
		}
		rec := store.Record{
			Type: store.RecLimits, Name: h.name, Version: h.version,
			Opts: store.TenantOpts{Limits: tl},
		}
		if err := h.svc.log.Append(rec); err != nil {
			h.mu.Unlock()
			return fmt.Errorf("bcclap: set limits %q: %w", h.name, err)
		}
	}
	h.gate.SetLimits(l)
	// Fold the new limits into the handle's option slice so a later Swap
	// (which re-resolves limits from h.opts) keeps them.
	h.opts = append(slices.Clone(h.opts),
		WithRateLimit(l.RatePerSec, l.Burst),
		WithMaxInFlight(l.MaxInFlight))
	switch {
	case l.QueueDepth > 0:
		h.opts = append(h.opts, WithQueueDepth(l.QueueDepth))
	case l.QueueDepth < 0:
		h.opts = append(h.opts, WithQueueDepth(0))
	default:
		h.opts = append(h.opts, WithQueueDepth(admission.DefaultQueueDepth))
	}
	h.mu.Unlock()
	return nil
}

// Limits returns the tenant's current QoS limit set (zero value when
// unlimited).
func (h *NetworkHandle) Limits() Limits { return h.gate.Limits() }

// RetryAfter estimates how long a rejected client should wait before
// retrying — the predicted admission wait for a request joining the
// queue now (0 when the gate has no basis for an estimate). The REST
// layer rounds it up into the Retry-After header on 429 responses.
func (h *NetworkHandle) RetryAfter() time.Duration { return h.gate.RetryAfter() }

// Stats snapshots the tenant (see NetworkStats).
func (h *NetworkHandle) Stats() NetworkStats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return NetworkStats{
		Name:      h.name,
		Version:   h.version,
		Patches:   h.patches,
		Vertices:  h.d.N(),
		Arcs:      h.d.M(),
		Backend:   h.solver.Backend(),
		PoolSize:  h.solver.PoolSize(),
		Pool:      h.solver.PoolStats(),
		Cache:     h.cache.Stats(),
		Admission: h.gate.Stats(),
	}
}

// retire closes the handle and drains its solver (Deregister and Drain).
func (h *NetworkHandle) retire(ctx context.Context) error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	solver := h.solver
	h.cache.Flush()
	h.mu.Unlock()
	if err := solver.Drain(ctx); err != nil {
		solver.Close()
		return err
	}
	return nil
}

// latChildren are the prebuilt hot-path histogram children for one
// (tenant, backend) pair: the solve path reaches them with one atomic
// load and records with no map lookups or allocation.
type latChildren struct {
	hit, miss *telemetry.Histogram
}

// latFor prebuilds the latency children for a tenant and backend (nil
// with telemetry disabled — callers skip recording on nil).
func (s *Service) latFor(tenant, backend string) *latChildren {
	if s.tel == nil {
		return nil
	}
	return &latChildren{
		hit:  s.tel.solveLatency.With(tenant, backend, "hit"),
		miss: s.tel.solveLatency.With(tenant, backend, "miss"),
	}
}

// serviceTelemetry is the service's metrics registry. Exactly one family
// — solve latency — is recorded on the serving paths; every other family
// is a scrape-time collector synthesizing samples from a single
// ServiceStats snapshot taken in WriteMetrics, so the daemon's whole
// observability surface costs the hot path nothing.
type serviceTelemetry struct {
	reg          *telemetry.Registry
	solveLatency *telemetry.HistogramVec // {tenant, backend, cache}

	// scrapeMu serializes scrapes; snap is the snapshot the collector
	// closures read and is only valid while scrapeMu is held.
	scrapeMu sync.Mutex
	snap     ServiceStats
}

func newServiceTelemetry() *serviceTelemetry {
	t := &serviceTelemetry{reg: telemetry.NewRegistry()}
	t.solveLatency = t.reg.HistogramVec("bcclap_solve_latency_seconds",
		"Solve latency by tenant, backend and cache outcome. Misses record the solver-measured wall time of every fresh solve; hits are sampled 1 in 64 to keep the cached path cheap.",
		nil, "tenant", "backend", "cache")
	t.registerCollectors()
	return t
}

// WriteMetrics renders every metric family in the Prometheus text
// exposition format, version 0.0.4 (the daemon serves it at
// GET /metrics). Families and label sets are emitted in sorted order
// with HELP/TYPE headers even when empty, so the exposed name/type
// schema is independent of traffic. It fails when the service was built
// with WithTelemetry(false).
func (s *Service) WriteMetrics(w io.Writer) error {
	if s.tel == nil {
		return errors.New("bcclap: telemetry disabled by WithTelemetry(false)")
	}
	t := s.tel
	t.scrapeMu.Lock()
	defer t.scrapeMu.Unlock()
	t.snap = s.ServiceStats()
	err := t.reg.WritePrometheus(w)
	t.snap = ServiceStats{}
	return err
}

// registerCollectors declares the scrape-time families. Each collector
// closure reads t.snap, which WriteMetrics populates under scrapeMu
// before encoding.
func (t *serviceTelemetry) registerCollectors() {
	r := t.reg
	tenant := []string{"tenant"}
	perNet := func(fn func(emit func(v float64, lv ...string), ns *NetworkStats)) func(emit func(v float64, lv ...string)) {
		return func(emit func(v float64, lv ...string)) {
			for i := range t.snap.PerNetwork {
				fn(emit, &t.snap.PerNetwork[i])
			}
		}
	}
	gaugeNet := func(name, help string, fn func(ns *NetworkStats) float64) {
		r.CollectFunc(name, help, "gauge", tenant,
			perNet(func(emit func(v float64, lv ...string), ns *NetworkStats) { emit(fn(ns), ns.Name) }))
	}
	counterNet := func(name, help string, fn func(ns *NetworkStats) float64) {
		r.CollectFunc(name, help, "counter", tenant,
			perNet(func(emit func(v float64, lv ...string), ns *NetworkStats) { emit(fn(ns), ns.Name) }))
	}

	r.CollectFunc("bcclap_networks", "Currently registered networks.", "gauge", nil,
		func(emit func(v float64, lv ...string)) { emit(float64(t.snap.Networks)) })
	r.CollectFunc("bcclap_lifecycle_total",
		"Lifecycle events since the service started; replayed tenants count as registered.",
		"counter", []string{"op"},
		func(emit func(v float64, lv ...string)) {
			emit(float64(t.snap.Registered), "registered")
			emit(float64(t.snap.Deregistered), "deregistered")
			emit(float64(t.snap.Swaps), "swapped")
			emit(float64(t.snap.Patches), "patched")
		})

	gaugeNet("bcclap_network_version", "Monotonic network version (bumped by Swap and PatchArcs).",
		func(ns *NetworkStats) float64 { return float64(ns.Version) })
	counterNet("bcclap_network_patches_total", "Successful PatchArcs calls over the tenant's lifetime.",
		func(ns *NetworkStats) float64 { return float64(ns.Patches) })

	r.CollectFunc("bcclap_solves_total", "Finished pool solves by outcome.",
		"counter", []string{"tenant", "result"},
		perNet(func(emit func(v float64, lv ...string), ns *NetworkStats) {
			emit(float64(ns.Pool.Completed), ns.Name, "ok")
			emit(float64(ns.Pool.Failed), ns.Name, "error")
		}))
	gaugeNet("bcclap_pool_workers", "Worker sessions behind the tenant's solver pool.",
		func(ns *NetworkStats) float64 { return float64(ns.Pool.Workers) })
	gaugeNet("bcclap_pool_in_flight", "Accepted but unfinished pool tasks (queued or running).",
		func(ns *NetworkStats) float64 { return float64(ns.Pool.InFlight) })
	counterNet("bcclap_pool_submitted_total", "Queries accepted by the tenant's pool.",
		func(ns *NetworkStats) float64 { return float64(ns.Pool.Submitted) })
	counterNet("bcclap_pool_warm_started_total", "Completions that skipped path following via warm start.",
		func(ns *NetworkStats) float64 { return float64(ns.Pool.WarmStarted) })
	counterNet("bcclap_pool_patches_total", "Per-worker patch applications.",
		func(ns *NetworkStats) float64 { return float64(ns.Pool.Patches) })

	counterNet("bcclap_cache_hits_total", "Certified-result cache hits.",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Hits) })
	counterNet("bcclap_cache_misses_total", "Certified-result cache misses.",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Misses) })
	counterNet("bcclap_cache_evictions_total", "Cache entries dropped by budget pressure.",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Evictions) })
	counterNet("bcclap_cache_invalidations_total", "Cache entries dropped by flush or patch invalidation.",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Invalidations) })
	gaugeNet("bcclap_cache_entries", "Current cache entries.",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Entries) })
	gaugeNet("bcclap_cache_capacity", "Cache entry budget (0 = caching disabled).",
		func(ns *NetworkStats) float64 { return float64(ns.Cache.Capacity) })

	counterNet("bcclap_admission_admitted_total", "Queries admitted by the QoS gate (a batch of k counts k).",
		func(ns *NetworkStats) float64 { return float64(ns.Admission.Admitted) })
	counterNet("bcclap_admission_queued_total", "Requests that waited in the admission queue.",
		func(ns *NetworkStats) float64 { return float64(ns.Admission.Queued) })
	r.CollectFunc("bcclap_admission_rejected_total", "Admission rejections by reason.",
		"counter", []string{"tenant", "reason"},
		perNet(func(emit func(v float64, lv ...string), ns *NetworkStats) {
			emit(float64(ns.Admission.RejectedQueueFull), ns.Name, "queue_full")
			emit(float64(ns.Admission.RejectedDeadline), ns.Name, "deadline")
			emit(float64(ns.Admission.Canceled), ns.Name, "canceled")
		}))
	counterNet("bcclap_admission_queue_wait_seconds_total", "Cumulative time requests spent queued for admission.",
		func(ns *NetworkStats) float64 { return ns.Admission.QueueWait.Seconds() })
	gaugeNet("bcclap_admission_in_flight", "Currently admitted, unreleased requests.",
		func(ns *NetworkStats) float64 { return float64(ns.Admission.InFlight) })
	gaugeNet("bcclap_admission_queue_depth", "Requests currently waiting for admission.",
		func(ns *NetworkStats) float64 { return float64(ns.Admission.QueueDepth) })
	gaugeNet("bcclap_admission_rate_limit_per_sec", "Configured sustained admission rate (0 = unlimited).",
		func(ns *NetworkStats) float64 { return ns.Admission.Limits.RatePerSec })
	gaugeNet("bcclap_admission_max_in_flight", "Configured in-flight cap (0 = unlimited).",
		func(ns *NetworkStats) float64 { return float64(ns.Admission.Limits.MaxInFlight) })
	gaugeNet("bcclap_admission_mean_service_seconds", "EWMA of recent fresh-solve service times (feeds Retry-After).",
		func(ns *NetworkStats) float64 { return ns.Admission.MeanServiceTime.Seconds() })

	storeSample := func(name, help, typ string, fn func(st *StoreStats) float64) {
		r.CollectFunc(name, help, typ, nil, func(emit func(v float64, lv ...string)) {
			if t.snap.Store != nil {
				emit(fn(t.snap.Store))
			}
		})
	}
	storeSample("bcclap_store_appends_total", "WAL records appended since the store opened.", "counter",
		func(st *StoreStats) float64 { return float64(st.Appends) })
	storeSample("bcclap_store_fsyncs_total", "WAL fsyncs on the append path (0 under SyncNever).", "counter",
		func(st *StoreStats) float64 { return float64(st.Fsyncs) })
	storeSample("bcclap_store_snapshots_total", "Successful snapshot compactions.", "counter",
		func(st *StoreStats) float64 { return float64(st.Snapshots) })
	storeSample("bcclap_store_snapshot_errors_total", "Failed automatic compactions.", "counter",
		func(st *StoreStats) float64 { return float64(st.SnapshotErrors) })
	storeSample("bcclap_store_replayed_records", "WAL records replayed on top of the newest snapshot at the last open.", "gauge",
		func(st *StoreStats) float64 { return float64(st.Replayed) })
	storeSample("bcclap_store_wal_bytes", "Current WAL file size.", "gauge",
		func(st *StoreStats) float64 { return float64(st.WALBytes) })
}
