package bcclap

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
)

func testFlowNetwork(n int, seed int64) *Digraph {
	return graph.RandomFlowNetwork(n, 0.35, 3, 3, rand.New(rand.NewSource(seed)))
}

// Acceptance: a canceled context aborts a flow solve on every registered
// backend with an error satisfying errors.Is(err, context.Canceled).
func TestFlowSolverCancellationAllBackends(t *testing.T) {
	d := testFlowNetwork(5, 31)
	for _, backend := range FlowBackends() {
		t.Run(backend, func(t *testing.T) {
			// Pre-canceled context: rejected before any attempt.
			fs, err := NewFlowSolver(d, WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := fs.Solve(ctx, 0, d.N()-1); !errors.Is(err, context.Canceled) {
				t.Fatalf("pre-canceled: got %v", err)
			}
			// Cancel mid-path-following from the progress stream: the solve
			// must abort within one outer iteration.
			ctx2, cancel2 := context.WithCancel(context.Background())
			defer cancel2()
			fs2, err := NewFlowSolver(d,
				WithBackend(backend),
				WithProgress(func(e Event) {
					if e.Stage == "path-step" && e.Step == 2 {
						cancel2()
					}
				}))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs2.Solve(ctx2, 0, d.N()-1); !errors.Is(err, context.Canceled) {
				t.Fatalf("mid-solve: got %v", err)
			}
		})
	}
}

// Session solves must reproduce the deprecated one-shot wrapper bit for
// bit, call after call.
func TestFlowSolverMatchesOneShot(t *testing.T) {
	d := testFlowNetwork(5, 32)
	const seed = 6
	fs, err := NewFlowSolver(d, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := fs.Solve(context.Background(), 0, d.N()-1)
		if err != nil {
			t.Fatalf("session solve %d: %v", i, err)
		}
		want, err := MinCostMaxFlow(d, 0, d.N()-1, FlowOptions{Seed: seed})
		if err != nil {
			t.Fatalf("one-shot %d: %v", i, err)
		}
		if got.Value != want.Value || got.Cost != want.Cost ||
			got.PathSteps != want.PathSteps || !reflect.DeepEqual(got.Flows, want.Flows) {
			t.Fatalf("solve %d diverged: session (%d, %d, %d steps) vs one-shot (%d, %d, %d steps)",
				i, got.Value, got.Cost, got.PathSteps, want.Value, want.Cost, want.PathSteps)
		}
		if i > 0 && !got.Stats.ReusedPreprocessing {
			t.Fatal("repeat query did not reuse preprocessing")
		}
		if got.Stats.WallTime <= 0 {
			t.Fatal("no wall time recorded")
		}
	}
}

// Batch answers must match the SSP baseline with warm starts engaged.
func TestFlowSolverBatch(t *testing.T) {
	d := testFlowNetwork(6, 33)
	s, tt := 0, d.N()-1
	wantV, wantC, _, err := MinCostMaxFlowBaseline(d, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := NewFlowSolver(d, WithSeed(4), WithBackend("csr-cg"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := fs.SolveBatch(context.Background(), []FlowQuery{{s, tt}, {s, tt}, {s, tt}})
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for i, r := range res {
		if r.Value != wantV || r.Cost != wantC {
			t.Fatalf("query %d: (%d, %d) vs baseline (%d, %d)", i, r.Value, r.Cost, wantV, wantC)
		}
		if r.Stats.Backend != "csr-cg" {
			t.Fatalf("query %d: backend %q", i, r.Stats.Backend)
		}
		if r.Stats.WarmStarted {
			warm++
		}
	}
	if warm == 0 {
		t.Fatal("no warm starts in a repeated-query batch")
	}
}

// Sentinel errors must surface through the public API with errors.Is.
func TestSentinelErrors(t *testing.T) {
	d := testFlowNetwork(5, 34)
	fs, err := NewFlowSolver(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Solve(context.Background(), 0, 0); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("s == t: got %v", err)
	}
	if _, err := fs.Solve(context.Background(), -1, 2); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("s out of range: got %v", err)
	}
	if _, err := fs.SolveBatch(context.Background(), []FlowQuery{{0, 1}, {9, 99}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad batch query: got %v", err)
	}
	if _, err := NewFlowSolver(NewDigraph(3)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("empty digraph: got %v", err)
	}
	_, err = NewFlowSolver(d, WithBackend("no-such-backend"))
	if !errors.Is(err, ErrBackendUnknown) {
		t.Fatalf("unknown backend: got %v", err)
	}
	if !strings.Contains(err.Error(), "csr-cg") {
		t.Fatalf("backend error does not list registered names: %v", err)
	}
	if _, err := NewLaplacianSession(graph.New(4)); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("edgeless graph: got %v", err)
	}
}

// The LP session must amortize across solves, report unified stats, and
// reject infeasible starts with ErrInfeasible.
func TestLPSolverSession(t *testing.T) {
	prob := &LPProblem{
		A: linalg.NewCSR(2, 1, []linalg.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}}),
		B: []float64{1},
		C: []float64{2, 1},
		L: []float64{0, 0},
		U: []float64{1, 1},
	}
	l, err := NewLPSolver(prob, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		sol, st, err := l.Solve(ctx, []float64{0.5, 0.5}, 0.02)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Objective < 0.95 || sol.Objective > 1.05 {
			t.Fatalf("objective %v, want ≈ 1", sol.Objective)
		}
		if st.PathSteps == 0 || st.WallTime <= 0 || st.Backend != "dense" {
			t.Fatalf("stats: %+v", st)
		}
		if (i > 0) != st.ReusedPreprocessing {
			t.Fatalf("solve %d: ReusedPreprocessing = %v", i, st.ReusedPreprocessing)
		}
	}
	if _, _, err := l.Solve(ctx, []float64{2, -1}, 0.02); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("infeasible x0: got %v", err)
	}
	ctxC, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := l.Solve(ctxC, []float64{0.5, 0.5}, 0.02); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled LP solve: got %v", err)
	}
}

// The Laplacian session must honor contexts and keep serving after a
// cancellation; the new constructor must reproduce the deprecated one.
func TestLaplacianSessionCtx(t *testing.T) {
	g := graph.Grid(4, 5)
	sess, err := NewLaplacianSession(g, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	old, err := NewLaplacianSolver(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(2))
	b := make([]float64, g.N())
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	b = linalg.ProjectOutOnes(b)
	ctxC, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := sess.SolveCtx(ctxC, b, 1e-6); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Laplacian solve: got %v", err)
	}
	y, st, err := sess.SolveCtx(context.Background(), b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if st.CGIterations == 0 || !st.ReusedPreprocessing || st.WallTime <= 0 {
		t.Fatalf("stats: %+v", st)
	}
	yOld, _, err := old.Solve(b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(y, yOld) {
		t.Fatal("session and deprecated constructor disagree")
	}
}

// WithProgress must deliver both attempt and path-step events.
func TestProgressEvents(t *testing.T) {
	d := testFlowNetwork(5, 35)
	var attempts, steps int
	fs, err := NewFlowSolver(d, WithProgress(func(e Event) {
		switch e.Stage {
		case "attempt":
			attempts++
		case "path-step":
			steps++
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Solve(context.Background(), 0, d.N()-1); err != nil {
		t.Fatal(err)
	}
	if attempts == 0 || steps == 0 {
		t.Fatalf("progress stream empty: attempts=%d steps=%d", attempts, steps)
	}
}

// A pooled FlowSolver must answer batches bit-identically to the
// sequential solver, accept concurrent callers, and shut down with the
// ErrSolverClosed sentinel.
func TestFlowSolverPooled(t *testing.T) {
	d := testFlowNetwork(5, 36)
	s, tt := 0, d.N()-1
	queries := []FlowQuery{{s, tt}, {s, tt}, {s, tt}, {s, tt}}

	seq, err := NewFlowSolver(d, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}

	// A pooled solver cannot share the single-stream round simulator.
	if net, err := NewBCCNetwork(d.N()); err != nil {
		t.Fatal(err)
	} else if _, err := NewFlowSolver(d, WithPoolSize(2), WithNetwork(net)); err == nil {
		t.Fatal("WithNetwork + WithPoolSize accepted")
	}

	pooled, err := NewFlowSolver(d, WithSeed(6), WithPoolSize(3), WithShards(2))
	if err != nil {
		t.Fatal(err)
	}
	defer pooled.Close()
	if n := pooled.PoolSize(); n != 3 {
		t.Fatalf("pool size %d, want exactly 3 (max of WithPoolSize and WithShards)", n)
	}
	got, err := pooled.SolveBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if got[i].Value != want[i].Value || got[i].Cost != want[i].Cost ||
			!reflect.DeepEqual(got[i].Flows, want[i].Flows) ||
			got[i].Stats.WarmStarted != want[i].Stats.WarmStarted {
			t.Fatalf("query %d: pooled %+v vs sequential %+v", i, got[i], want[i])
		}
	}
	st := pooled.PoolStats()
	if st.Completed != int64(len(queries)) || st.WarmStarted == 0 {
		t.Fatalf("pool stats: %+v", st)
	}

	// Concurrent single-query callers: every result must match the
	// sequential answer (queries are cold, so any order is the same order).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := pooled.Solve(context.Background(), s, tt)
			if err != nil {
				t.Error(err)
				return
			}
			if res.Value != want[0].Value || res.Cost != want[0].Cost {
				t.Errorf("concurrent solve: (%d, %d) vs (%d, %d)",
					res.Value, res.Cost, want[0].Value, want[0].Cost)
			}
		}()
	}
	wg.Wait()

	if err := pooled.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pooled.Solve(context.Background(), s, tt); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("post-drain solve: got %v, want ErrSolverClosed", err)
	}
	// On a sequential solver Drain has nothing to wait for but still
	// closes intake, like the pooled path.
	if err := seq.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Solve(context.Background(), s, tt); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("sequential post-drain solve: got %v, want ErrSolverClosed", err)
	}
}

// Regression (satellite of the service PR): a *non-pooled* FlowSolver
// must reject queries after Close with ErrSolverClosed, exactly like the
// pooled path — both Solve and SolveBatch, and Closed must report it.
func TestFlowSolverClosedNonPooled(t *testing.T) {
	d := testFlowNetwork(5, 36)
	s, tt := 0, d.N()-1
	fs, err := NewFlowSolver(d, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if fs.Closed() {
		t.Fatal("fresh solver reports Closed")
	}
	if _, err := fs.Solve(context.Background(), s, tt); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	if !fs.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if _, err := fs.Solve(context.Background(), s, tt); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("Solve after Close: got %v, want ErrSolverClosed", err)
	}
	if _, err := fs.SolveBatch(context.Background(), []FlowQuery{{s, tt}}); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("SolveBatch after Close: got %v, want ErrSolverClosed", err)
	}
	fs.Close() // idempotent
}
