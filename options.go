package bcclap

import "bcclap/internal/store"

// Functional options shared by every session constructor (NewFlowSolver,
// NewLPSolver, NewLaplacianSession, SparsifyGraph). Options that do not
// apply to a given entry point are ignored, so one option slice can
// configure a whole pipeline.

// SyncPolicy selects when the durable tenant store fsyncs its write-ahead
// log (WithStoreSync).
type SyncPolicy = store.SyncPolicy

const (
	// SyncAlways fsyncs after every appended record before the mutation
	// takes effect: an acknowledged Register/Swap/PatchArcs/Deregister
	// survives any crash. The default.
	SyncAlways = store.SyncAlways
	// SyncNever leaves flushing to the OS page cache: much faster appends,
	// but records acknowledged since the last snapshot or sync may be lost
	// on power failure (never corrupted — recovery truncates torn tails).
	SyncNever = store.SyncNever
)

// Event is a progress notification delivered to WithProgress callbacks.
type Event struct {
	// Stage identifies the pipeline stage: "attempt" (a fresh flow
	// perturbation attempt starts), "path-step" (one interior-point
	// t-update completed).
	Stage string
	// Attempt is the flow perturbation attempt (Stage "attempt").
	Attempt int
	// Phase is the path-following phase for Stage "path-step": 1 =
	// artificial cost, 2 = true cost, 3 = warm-start polish.
	Phase int
	// Step is the cumulative path-step count (Stage "path-step").
	Step int
	// T is the current path parameter (Stage "path-step").
	T float64
}

// Option configures a session constructor.
type Option func(*config)

// config is the resolved option set.
type config struct {
	backend        string
	seed           int64
	net            *Network
	tol            float64
	retries        int
	poolSize       int
	shards         int
	progress       func(Event)
	sparsifyParams SparsifyParams
	lpParams       LPParams
	cacheSize      int
	cacheSizeSet   bool
	storeDir       string
	storeSync      SyncPolicy
	storeSnapEvery int
	rateQPS        float64
	rateBurst      int
	rateSet        bool
	maxInFlight    int
	maxInFlightSet bool
	queueDepth     int
	queueDepthSet  bool
	telemetryOff   bool
}

func applyOptions(opts []Option) config {
	var cfg config
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithBackend selects the AᵀDA linear-solve strategy by registry name
// ("dense", "gremban", "csr-cg", "csr-pcg", …; FlowBackends lists them).
// Without it a NewFlowSolver auto-selects from the graph: "csr-pcg" —
// matrix-free CG with the spanner-built combinatorial preconditioner —
// when the flow network is sparse (n ≥ 32 vertices and m ≤ n²/8 arcs),
// the exact dense reference otherwise. NewLPSolver has no graph to
// inspect and defaults to prob.Backend (then "dense"). An unknown name
// makes the session constructor fail fast with ErrBackendUnknown.
// Applies to NewFlowSolver and NewLPSolver.
func WithBackend(name string) Option {
	return func(c *config) { c.backend = name }
}

// WithSeed fixes the seed driving all randomness (perturbations,
// sparsifier sampling, sketching). Sessions derive per-query streams from
// it deterministically: the same seed replays bit-identical runs. Applies
// to every entry point.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithNetwork attaches a round-accounting simulator network; Stats.Rounds
// then reports the rounds consumed by each solve. The simulator is
// single-stream, so combining it with WithPoolSize/WithShards fails at
// construction. Applies to every entry point.
func WithNetwork(net *Network) Option {
	return func(c *config) { c.net = net }
}

// WithTolerance overrides the target accuracy: the LP objective tolerance
// for flow sessions (default 0.25, which the rounding theory needs — only
// lower it if you know the rounding margin) and the default ε for
// Laplacian solves. Applies to NewFlowSolver, NewLPSolver and
// NewLaplacianSession.
func WithTolerance(eps float64) Option {
	return func(c *config) { c.tol = eps }
}

// WithRetries caps the flow pipeline's perturbation attempts (default 5).
// Applies to NewFlowSolver.
func WithRetries(n int) Option {
	return func(c *config) { c.retries = n }
}

// WithPoolSize backs a FlowSolver with a pool of n ≥ 1 worker sessions,
// making it safe for concurrent use: Solve and SolveBatch may be called
// from any number of goroutines, SolveBatch fans its queries out across
// the workers (bounded by pool-size concurrent solves), and queries are
// routed by terminal pair so that each pair always runs on the same
// worker session — which keeps results bit-identical to the sequential
// path, warm-start caches included. The worker count is exactly
// max(n, WithShards) — every shard needs at least one worker — and
// construction cost scales with it (each worker owns independent backend
// workspaces); PoolSize reports the effective count. Without this option
// the solver is the classic single-goroutine session. A pooled solver
// rejects WithNetwork (the round simulator is single-stream) and should
// be shut down with Drain or Close. Applies to NewFlowSolver.
func WithPoolSize(n int) Option {
	return func(c *config) { c.poolSize = n }
}

// WithShards sets the number of terminal-pair shards of a pooled
// FlowSolver (default: the pool size, i.e. one worker per shard). Queries
// hash by (s, t) onto shards; setting fewer shards than workers groups
// several workers under one shard while keeping each pair pinned to a
// single worker. Setting it without WithPoolSize makes the solver pooled
// with one worker per shard. Applies to NewFlowSolver.
func WithShards(s int) Option {
	return func(c *config) { c.shards = s }
}

// WithProgress registers a callback receiving per-attempt and per-path-step
// Events. The callback runs synchronously on the solver goroutine: keep it
// fast, and do not call back into the session. Canceling the solve's
// context from inside the callback is the supported way to abort on a
// progress condition. On a pooled FlowSolver (WithPoolSize > 1) the
// callback is invoked concurrently from every worker goroutine — it must
// be safe for concurrent use. Applies to NewFlowSolver and NewLPSolver.
func WithProgress(fn func(Event)) Option {
	return func(c *config) { c.progress = fn }
}

// WithCacheSize bounds the certified-result cache a Service places in
// front of each NetworkHandle to n entries (per network). 0 disables
// caching for the network; without this option the service default
// applies (DefaultCacheSize, itself overridable by passing WithCacheSize
// to NewService). Cached answers are bit-identical to fresh solves —
// results are certified and deterministic, so the cache is a pure
// latency/throughput optimization; Stats.CacheHit and the hit/miss/
// eviction counters in NetworkStats and ServiceStats make it observable.
// Applies to NewService and Service.Register/Swap.
func WithCacheSize(n int) Option {
	return func(c *config) { c.cacheSize = n; c.cacheSizeSet = true }
}

// WithRateLimit caps a network's sustained admission rate at qps
// queries per second with the given token-bucket burst (how many
// queries may be admitted back-to-back after idling; burst <= 0 means
// max(1, ⌈qps⌉)). A SolveBatch consumes one token per query. Saturated
// requests wait in the admission queue (WithQueueDepth) and are
// rejected with ErrOverloaded when it is full or their deadline would
// expire while queued. qps = 0 removes the rate limit; a negative qps
// fails registration with ErrBadLimits. Limits are journaled on a
// durable service and survive restarts; NetworkHandle.SetLimits changes
// them at runtime. Applies to NewService and Service.Register/Swap.
func WithRateLimit(qps float64, burst int) Option {
	return func(c *config) {
		if burst < 0 {
			burst = 0
		}
		c.rateQPS = qps
		c.rateBurst = burst
		c.rateSet = true
	}
}

// WithMaxInFlight caps how many admitted requests a network may have
// running concurrently (a SolveBatch counts as one request; its
// internal fan-out is already bounded by the tenant's pool size).
// Excess requests queue per WithQueueDepth. n = 0 removes the cap;
// negative n fails registration with ErrBadLimits. Applies to
// NewService and Service.Register/Swap.
func WithMaxInFlight(n int) Option {
	return func(c *config) { c.maxInFlight = n; c.maxInFlightSet = true }
}

// WithQueueDepth bounds the admission queue: how many requests may wait
// when the network is at its rate or in-flight limit (default
// admission.DefaultQueueDepth = 16 once any limit is active). n <= 0
// disables queueing, so saturated requests fail immediately with
// ErrOverloaded. Irrelevant while no limit is configured. Applies to
// NewService and Service.Register/Swap.
func WithQueueDepth(n int) Option {
	return func(c *config) {
		if n < 0 {
			n = 0
		}
		c.queueDepth = n
		c.queueDepthSet = true
	}
}

// WithTelemetry enables or disables the service's metrics registry
// (default enabled). With telemetry off, Service.WriteMetrics fails and
// the solve path skips all metric recording — an escape hatch for
// embedders that scrape nothing and want the last nanoseconds of the
// cached hot path. Admission limits are enforced either way. Applies to
// NewService and OpenService.
func WithTelemetry(enabled bool) Option {
	return func(c *config) { c.telemetryOff = !enabled }
}

// WithLPParams overrides the interior-point parameters (step size,
// centering tolerances, leverage sketching). Applies to NewFlowSolver and
// NewLPSolver.
func WithLPParams(par LPParams) Option {
	return func(c *config) { c.lpParams = par }
}

// WithSparsifyParams overrides the sparsifier parameters (bundle size,
// stretch, iterations). Applies to SparsifyGraph and NewLaplacianSession.
func WithSparsifyParams(par SparsifyParams) Option {
	return func(c *config) { c.sparsifyParams = par }
}

// WithStore makes a Service durable: tenant lifecycle mutations (Register,
// Swap, PatchArcs, Deregister) are appended to a write-ahead log under dir
// — durably, before they take effect — and periodically compacted into
// snapshots, so OpenService on the same directory rebuilds every network,
// version and resolved solver configuration without re-registration.
// Results after recovery are bit-identical to the pre-crash service's.
//
// The persisted per-tenant configuration is the resolved serializable
// subset: backend, seed, tolerance, retries, pool size, shards and cache
// size. Process-local options (WithProgress, WithNetwork, WithLPParams,
// WithSparsifyParams) are not persisted and must be re-supplied per
// registration after a restart if needed. Applies to OpenService
// (NewService ignores it).
func WithStore(dir string) Option {
	return func(c *config) { c.storeDir = dir }
}

// WithStoreSync selects the WAL fsync policy of a WithStore service:
// SyncAlways (default, every acknowledged mutation survives a crash) or
// SyncNever (faster, bounded loss of the most recent mutations on power
// failure). Applies to OpenService.
func WithStoreSync(p SyncPolicy) Option {
	return func(c *config) { c.storeSync = p }
}

// WithSnapshotEvery sets how many WAL records accumulate before the store
// folds them into a compacted snapshot (default store.DefaultSnapshotEvery;
// negative disables automatic snapshots). Snapshots bound both recovery
// replay time and log growth. Applies to OpenService.
func WithSnapshotEvery(n int) Option {
	return func(c *config) { c.storeSnapEvery = n }
}
