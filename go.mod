module bcclap

go 1.24
