#!/usr/bin/env bash
# Metrics schema gate: scrapes /metrics off an in-process daemon and
# diffs every exported family name and type against
# cmd/bcclap-serve/testdata/metrics.golden (names/types only — sample
# values and label sets vary with traffic and are not pinned). The same
# test lints the scrape for Prometheus text-format shape: HELP before
# TYPE, known types, no orphan samples, +Inf histogram buckets.
#
# A schema change is sometimes right — after reviewing the dashboards it
# breaks, regenerate the golden file with:
#
#   UPDATE_GOLDEN=1 go test -run TestServeMetricsGolden ./cmd/bcclap-serve/
#
# Run from anywhere in the repo; CI fails the build on drift.
set -euo pipefail
cd "$(dirname "$0")/.."

go test -count=1 -run TestServeMetricsGolden ./cmd/bcclap-serve/
