#!/usr/bin/env bash
# Docs gate: every package under ./... must carry package-level
# documentation — a comment block immediately preceding the package clause
# in at least one non-test .go file (conventionally doc.go, or the
# "// Command ..." header of a main package). Run from the repo root; CI
# fails the build on any finding.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for dir in $(go list -f '{{.Dir}}' ./...); do
  ok=0
  for f in "$dir"/*.go; do
    case "$f" in *_test.go) continue ;; esac
    # The line directly above the package clause must be a comment (i.e.
    # the file ends a package doc block there).
    if awk '/^package /{ok = (prev ~ /^\/\//); exit} {prev=$0} END{exit !ok}' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -eq 0 ]; then
    echo "missing package-level documentation: ${dir#"$(pwd)"/}" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "every package needs a doc comment (see internal/*/doc.go for the pattern)" >&2
fi
exit "$fail"
