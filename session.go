package bcclap

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/lapsolver"
	"bcclap/internal/lp"
	"bcclap/internal/pool"
)

// seededRand is the deterministic stream constructor shared by the session
// layer.
func seededRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Stats is the unified per-solve observability record surfaced identically
// by flow, LP and Laplacian sessions. Fields that do not apply to a given
// solver are zero.
type Stats struct {
	// PathSteps counts interior-point t-updates (the Õ(√n·log(U/ε)) of
	// Theorems 1.1/1.4); 0 for Laplacian solves and warm-started batch
	// queries (which skip path following entirely).
	PathSteps int
	// Centerings counts CenteringInexact invocations.
	Centerings int
	// CGIterations accumulates inner iterations of the linear-solve
	// kernels: projection-solve CG for flow/LP sessions, Chebyshev plus
	// safeguard CG for Laplacian sessions.
	CGIterations int
	// PrecondBuilds and PrecondRefreshes report the backend's
	// combinatorial-preconditioner counters (csr-pcg; 0 elsewhere),
	// cumulative over the owning session: Builds counts symbolic
	// constructions (subgraph extraction + elimination ordering, paid once
	// per session) and Refreshes counts numeric refactorizations (one per
	// distinct barrier diagonal). A Builds count that stays at 1 across
	// queries is direct evidence the symbolic structure was reused.
	PrecondBuilds    int
	PrecondRefreshes int
	// Attempts is the number of fresh flow perturbation attempts (0 for a
	// warm-started batch query).
	Attempts int
	// Rounds is the simulated round cost of this solve (0 without a
	// network attached via WithNetwork).
	Rounds int
	// WallTime is the measured duration of this solve.
	WallTime time.Duration
	// ReusedPreprocessing reports that query-independent work (flow-LP
	// formulation + backend workspaces, or the Laplacian sparsifier) was
	// reused from an earlier call on this session.
	ReusedPreprocessing bool
	// WarmStarted reports that a batch query re-centered the previous
	// certified solution instead of re-running path following.
	WarmStarted bool
	// CacheHit reports that the result was served from a Service handle's
	// certified-result cache without touching the solver at all (always
	// false on direct FlowSolver queries). Cached answers are bit-identical
	// to fresh ones in value, cost and flow vector.
	CacheHit bool
	// Backend is the AᵀDA backend name in use (flow/LP sessions).
	Backend string
	// TraceID is the request-scoped trace identifier threaded from the
	// serving boundary (16 hex digits, minted per HTTP request or set via
	// telemetry.WithTraceID on the query context). Empty on direct solver
	// queries without a trace context. Never cached: a hit carries the
	// requesting call's trace, not the one that populated the entry.
	TraceID string
}

// FlowQuery is one (source, sink) pair for FlowSolver.SolveBatch.
type FlowQuery struct {
	S, T int
}

// FlowSolver is a reusable min-cost max-flow session (Theorem 1.1 as a
// service): NewFlowSolver ingests the digraph once, and each queried
// terminal pair lazily builds — then caches — the Section 5 LP
// formulation, CSR constraint structure and linear-solve backend
// workspaces, so repeated and batched queries pay only for the
// interior-point iterations. Every returned flow is certified exact
// (feasibility, maximality, cost optimality) before being returned.
//
// By default a FlowSolver is single-goroutine: serve a sequential query
// stream per solver (matching the model: one network, one round
// structure). With WithPoolSize the solver is instead backed by a
// sharded pool of n independent worker sessions (internal/pool): Solve and
// SolveBatch become safe for concurrent use, SolveBatch fans out across
// the workers, and queries are routed by terminal pair so results —
// including warm-start behavior — stay bit-identical to the sequential
// path. Pooled solvers should be shut down with Drain or Close.
type FlowSolver struct {
	inner   *flow.Solver // single-session mode (pool size ≤ 1)
	pool    *pool.Pool   // pooled mode (WithPoolSize / WithShards)
	backend string
	// closed is the non-pooled shutdown latch: Drain and Close set it so
	// that later queries fail with ErrSolverClosed exactly as they would
	// on a pooled solver (the pooled path keeps its own latch). Atomic
	// because Close may race a concurrent Solve during service swaps.
	closed atomic.Bool
}

// PoolStats is a snapshot of a pooled FlowSolver's counters (pool
// geometry, queries submitted/completed/failed, warm-start hits).
type PoolStats = pool.Stats

// NewFlowSolver builds a session over d. Construction fails fast on an
// empty digraph (ErrBadQuery) and on an unknown WithBackend name
// (ErrBackendUnknown, listing FlowBackends()); it does no numerical work.
// With WithPoolSize, independent worker sessions are constructed (each
// with its own backend workspaces) and the solver becomes safe for
// concurrent use; WithNetwork is then rejected (the round-accounting
// simulator is single-stream).
func NewFlowSolver(d *Digraph, opts ...Option) (*FlowSolver, error) {
	cfg := applyOptions(opts)
	fopts := flow.Options{
		Backend: cfg.backend,
		Eps:     cfg.tol,
		Retries: cfg.retries,
		// Offset matches the historical MinCostMaxFlow stream so sessions
		// reproduce one-shot results bit for bit (for every seed value —
		// flow takes the seed by pointer, so there is no sentinel).
		Seed: flow.SeedOf(cfg.seed + 11),
		Net:  cfg.net,
		LP:   cfg.lpParams,
	}
	if cfg.progress != nil {
		prg := cfg.progress
		fopts.Progress = func(attempt int) {
			prg(Event{Stage: "attempt", Attempt: attempt})
		}
		fopts.LP.Progress = func(phase, step int, t float64) {
			prg(Event{Stage: "path-step", Phase: phase, Step: step, T: t})
		}
	}
	// Resolve the backend through the same path the worker sessions use,
	// so Stats.Backend reports the name actually run (the auto-selection
	// included) and unknown names fail fast even in pooled mode.
	backend, err := fopts.ResolveBackend(d)
	if err != nil {
		return nil, err
	}
	if cfg.poolSize >= 1 || cfg.shards > 1 {
		// The round-accounting simulator is single-stream (its phase state
		// is unsynchronized by design — one network, one round structure);
		// sharing it across workers would interleave the accounting.
		if cfg.net != nil {
			return nil, fmt.Errorf("bcclap: WithNetwork cannot be combined with WithPoolSize/WithShards; attach the simulator to a sequential solver")
		}
		shards := cfg.shards
		if shards <= 0 {
			shards = cfg.poolSize
		}
		// Every worker session gets identical options (flow takes the seed
		// by pointer and derives a fresh per-query stream from it), so any
		// worker answers any query exactly as the sequential session would.
		// Each worker owns a private digraph clone: PatchArcs mutates arc
		// capacities/costs on the worker goroutines, and a shared arc slice
		// would race with reads on the others.
		p, err := pool.New(pool.Config{
			Shards:  shards,
			Workers: cfg.poolSize,
			New: func(int) (pool.Session, error) {
				return flow.NewSolver(d.Clone(), fopts)
			},
		})
		if err != nil {
			return nil, err
		}
		return &FlowSolver{pool: p, backend: backend}, nil
	}
	// The sequential session also takes a clone, so a caller-held digraph
	// is never mutated behind the caller's back by PatchArcs.
	inner, err := flow.NewSolver(d.Clone(), fopts)
	if err != nil {
		return nil, err
	}
	return &FlowSolver{inner: inner, backend: backend}, nil
}

// Solve answers one (s, t) query under ctx. Malformed queries return
// ErrBadQuery before any solve work; cancellation aborts within one
// path-following iteration with an error satisfying
// errors.Is(err, ctx.Err()). Sequential Solve calls are deterministic:
// they produce bit-identical results to fresh one-shot calls with the
// same seed.
func (fs *FlowSolver) Solve(ctx context.Context, s, t int) (*FlowResult, error) {
	var (
		res *flow.Result
		err error
	)
	if fs.pool != nil {
		res, err = fs.pool.Solve(ctx, s, t)
	} else if fs.closed.Load() {
		return nil, fmt.Errorf("bcclap: %w", ErrSolverClosed)
	} else {
		res, err = fs.inner.Solve(ctx, s, t)
	}
	if err != nil {
		return nil, err
	}
	return fs.newResult(res), nil
}

// SolveBatch answers a sequence of queries, validating all terminal pairs
// up front (any malformed pair fails the batch with ErrBadQuery before
// work starts). Repeated terminal pairs warm-start from the previous
// certified solution — skipping path following, which is where batch
// amortization comes from — and fall back to a cold solve whenever the
// exactness certificate rejects the shortcut, so batch answers are exactly
// as certified as single-query answers.
//
// On a pooled solver (WithPoolSize) the batch fans out across the worker
// sessions with at most pool-size concurrent solves. Terminal pairs stay
// pinned to workers, so per-pair order — and every certified result — is
// bit-identical to the sequential batch.
func (fs *FlowSolver) SolveBatch(ctx context.Context, queries []FlowQuery) ([]*FlowResult, error) {
	qs := make([]flow.Query, len(queries))
	for i, q := range queries {
		qs[i] = flow.Query{S: q.S, T: q.T}
	}
	var (
		results []*flow.Result
		err     error
	)
	if fs.pool != nil {
		results, err = fs.pool.SolveBatch(ctx, qs)
	} else if fs.closed.Load() {
		return nil, fmt.Errorf("bcclap: %w", ErrSolverClosed)
	} else {
		results, err = fs.inner.SolveBatch(ctx, qs)
	}
	if err != nil {
		return nil, err
	}
	out := make([]*FlowResult, len(results))
	for i, res := range results {
		out[i] = fs.newResult(res)
	}
	return out, nil
}

// solveWarm answers one query with batch (warm-start) semantics: a repeat
// of a terminal pair this solver has already answered re-centers the
// previous certified solution instead of re-running path following,
// falling back to a cold solve whenever the exactness certificate rejects
// the shortcut. First queries of a pair behave exactly like Solve. The
// service layer routes single queries here so that resolves after
// PatchArcs warm-start from the pre-patch optimum.
func (fs *FlowSolver) solveWarm(ctx context.Context, s, t int) (*FlowResult, error) {
	var (
		res *flow.Result
		err error
	)
	if fs.pool != nil {
		res, err = fs.pool.SolveWarm(ctx, s, t)
	} else if fs.closed.Load() {
		return nil, fmt.Errorf("bcclap: %w", ErrSolverClosed)
	} else {
		res, err = fs.inner.SolveWarm(ctx, flow.Query{S: s, T: t})
	}
	if err != nil {
		return nil, err
	}
	return fs.newResult(res), nil
}

// PatchArcs applies an all-or-nothing set of arc capacity/cost deltas to
// every worker session, without rebuilding the solver: the LP constraint
// structure (which depends only on topology) and the linear-solve backend
// workspaces survive, and previously answered terminal pairs keep their
// warm-start state, so the next solve of an affected pair re-centers from
// the pre-patch optimum rather than re-running path following. Malformed
// delta sets (empty, index out of range, capacity driven non-positive)
// fail with ErrBadPatch before anything mutates. On a pooled solver the
// patch is applied atomically with respect to queries: it enqueues on
// every worker and PatchArcs returns once all workers have folded it in,
// so no query started after PatchArcs returns sees pre-patch arcs.
// Concurrent callers must serialize PatchArcs against Solve/SolveBatch
// themselves when they need a precise ordering (the Service layer does).
func (fs *FlowSolver) PatchArcs(deltas []ArcDelta) error {
	wait, err := fs.patchAsync(deltas)
	if err != nil {
		return err
	}
	return wait()
}

// patchAsync enqueues the patch and returns a wait function. The service
// layer calls it while holding the handle write lock — the enqueue is the
// linearization point against queries — and waits after unlocking.
func (fs *FlowSolver) patchAsync(deltas []ArcDelta) (func() error, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("bcclap: %w: empty delta set", ErrBadPatch)
	}
	// Clone: the enqueued closure outlives this call, and callers may
	// reuse or mutate their slice as soon as we return.
	ds := append([]ArcDelta(nil), deltas...)
	if fs.pool != nil {
		wait, err := fs.pool.Patch(func(s pool.Session) error {
			ps, ok := s.(interface {
				ApplyArcDeltas([]graph.ArcDelta) error
			})
			if !ok {
				return fmt.Errorf("bcclap: pool session %T does not support arc patches", s)
			}
			return ps.ApplyArcDeltas(ds)
		})
		if err != nil {
			if errors.Is(err, pool.ErrClosed) {
				return nil, fmt.Errorf("bcclap: %w", ErrSolverClosed)
			}
			return nil, err
		}
		return wait, nil
	}
	if fs.closed.Load() {
		return nil, fmt.Errorf("bcclap: %w", ErrSolverClosed)
	}
	err := fs.inner.ApplyArcDeltas(ds)
	return func() error { return err }, nil
}

// Drain gracefully shuts the solver down: new queries are rejected with
// ErrSolverClosed, queued and running queries finish, and Drain returns
// nil once every worker has exited. If ctx expires first, the remaining
// work is aborted and Drain returns ctx.Err(). On a non-pooled solver
// there is no queue to wait for — Drain just closes intake and returns
// nil.
func (fs *FlowSolver) Drain(ctx context.Context) error {
	fs.closed.Store(true)
	if fs.pool == nil {
		return nil
	}
	return fs.pool.Drain(ctx)
}

// Close shuts the solver down immediately: later queries fail with
// ErrSolverClosed, and on a pooled solver queued queries fail, running
// solves are canceled within one solver iteration, and Close returns once
// every worker goroutine has exited. Safe to call after Drain, and more
// than once.
func (fs *FlowSolver) Close() {
	fs.closed.Store(true)
	if fs.pool != nil {
		fs.pool.Close()
	}
}

// Closed reports whether shutdown (Drain or Close) has begun on this
// solver — pooled or not. Once true, Solve and SolveBatch fail with
// ErrSolverClosed.
func (fs *FlowSolver) Closed() bool {
	if fs.pool != nil {
		return fs.pool.Closed()
	}
	return fs.closed.Load()
}

// Backend returns the AᵀDA backend name this solver's sessions use: the
// WithBackend choice, or the auto-selected default (csr-pcg on sparse
// graphs, dense otherwise) when none was named. It matches Stats.Backend
// on every result.
func (fs *FlowSolver) Backend() string { return fs.backend }

// PoolSize returns the number of worker sessions (1 when not pooled).
func (fs *FlowSolver) PoolSize() int {
	if fs.pool == nil {
		return 1
	}
	return fs.pool.Workers()
}

// PoolStats snapshots the pool counters; the zero Stats when not pooled.
func (fs *FlowSolver) PoolStats() PoolStats {
	if fs.pool == nil {
		return PoolStats{}
	}
	return fs.pool.Stats()
}

func (fs *FlowSolver) newResult(res *flow.Result) *FlowResult {
	return &FlowResult{
		Value:     res.Value,
		Cost:      res.Cost,
		Flows:     res.Flows,
		PathSteps: res.LPStats.PathSteps,
		Rounds:    res.Rounds,
		Stats: Stats{
			PathSteps:           res.LPStats.PathSteps,
			Centerings:          res.LPStats.Centerings,
			CGIterations:        res.LPStats.CGIterations,
			PrecondBuilds:       res.LPStats.PrecondBuilds,
			PrecondRefreshes:    res.LPStats.PrecondRefreshes,
			Attempts:            res.Attempts,
			Rounds:              res.Rounds,
			WallTime:            res.WallTime,
			ReusedPreprocessing: res.ReusedForm,
			WarmStarted:         res.WarmStarted,
			Backend:             fs.backend,
		},
	}
}

// LPSolver is a reusable session for one linear program: the linear-solve
// backend and interior-point scratch are built once by NewLPSolver and
// shared by every Solve call. Not safe for concurrent use.
type LPSolver struct {
	sess    *lp.Session
	cfg     config
	backend string
	used    bool
}

// NewLPSolver validates prob and builds the session. WithBackend overrides
// prob.Backend; unknown names fail here with ErrBackendUnknown.
func NewLPSolver(prob *LPProblem, opts ...Option) (*LPSolver, error) {
	cfg := applyOptions(opts)
	if cfg.backend != "" {
		if err := lp.ValidateBackend(cfg.backend); err != nil {
			return nil, err
		}
		prob.Backend = cfg.backend
	}
	sess, err := lp.NewSession(prob)
	if err != nil {
		return nil, err
	}
	backend := prob.Backend
	if backend == "" && prob.Solve == nil {
		backend = lp.DefaultBackend
	}
	return &LPSolver{sess: sess, cfg: cfg, backend: backend}, nil
}

// Solve runs the Theorem 1.4 path-following method from the strictly
// feasible x0 to objective accuracy eps under ctx. An x0 outside the
// strict interior (or violating Aᵀx = b) returns ErrInfeasible.
func (l *LPSolver) Solve(ctx context.Context, x0 []float64, eps float64) (*LPSolution, Stats, error) {
	par := l.cfg.lpParams
	par.Net = l.cfg.net
	if par.Seed == 0 {
		par.Seed = l.cfg.seed
	}
	if l.cfg.progress != nil {
		prg := l.cfg.progress
		par.Progress = func(phase, step int, t float64) {
			prg(Event{Stage: "path-step", Phase: phase, Step: step, T: t})
		}
	}
	start := time.Now()
	sol, err := l.sess.Solve(ctx, x0, eps, par)
	if err != nil {
		return nil, Stats{}, err
	}
	st := Stats{
		PathSteps:           sol.PathSteps,
		Centerings:          sol.Centerings,
		CGIterations:        sol.CGIterations,
		PrecondBuilds:       sol.PrecondBuilds,
		PrecondRefreshes:    sol.PrecondRefreshes,
		Rounds:              sol.Rounds,
		WallTime:            time.Since(start),
		ReusedPreprocessing: l.used,
		Backend:             l.backend,
	}
	l.used = true
	return sol, st, nil
}

// NewLaplacianSession is the options form of NewLaplacianSolver: it runs
// the one-time sparsifier preprocessing of Theorem 1.3 on g (connected,
// else ErrDisconnected) and returns a handle that answers repeated
// right-hand sides. WithSeed, WithNetwork and WithSparsifyParams apply.
func NewLaplacianSession(g *Graph, opts ...Option) (*LaplacianSolver, error) {
	cfg := applyOptions(opts)
	s, err := lapsolver.New(g, lapsolver.Config{
		Sparsify: cfg.sparsifyParams,
		Rand:     seededRand(cfg.seed + 3),
		Net:      cfg.net,
	})
	if err != nil {
		if errors.Is(err, lapsolver.ErrDisconnected) {
			return nil, fmt.Errorf("bcclap: %w", ErrDisconnected)
		}
		return nil, err
	}
	return &LaplacianSolver{inner: s}, nil
}

// SolveCtx answers one (b, ε) instance under ctx, reusing the
// preprocessed sparsifier: O(log(1/ε)) preconditioned Chebyshev
// iterations, cancelable between iterations with an error satisfying
// errors.Is(err, ctx.Err()).
func (s *LaplacianSolver) SolveCtx(ctx context.Context, b []float64, eps float64) ([]float64, Stats, error) {
	start := time.Now()
	y, st, err := s.inner.SolveCtx(ctx, b, eps)
	stats := Stats{
		CGIterations:        st.Iterations,
		Rounds:              st.Rounds,
		WallTime:            time.Since(start),
		ReusedPreprocessing: true,
	}
	if err != nil {
		return nil, stats, err
	}
	return y, stats, nil
}
