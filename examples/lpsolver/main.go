// Direct use of the Theorem 1.4 LP solver on a small resource-allocation
// program: distribute one unit of budget per project across three bids of
// different costs, min total cost.
package main

import (
	"context"
	"fmt"
	"log"

	"bcclap"
	"bcclap/internal/linalg"
)

func main() {
	// Four projects; each must allocate exactly 1 across its three bids
	// (cost 1, 2, 3 per unit). The optimum funds the cheapest bid of every
	// project: objective 4.
	const projects = 4
	m := 3 * projects
	var ts []linalg.Triple
	c := make([]float64, m)
	for p := 0; p < projects; p++ {
		for j := 0; j < 3; j++ {
			row := 3*p + j
			ts = append(ts, linalg.Triple{Row: row, Col: p, Val: 1})
			c[row] = float64(j + 1)
		}
	}
	prob := &bcclap.LPProblem{
		A: linalg.NewCSR(m, projects, ts),
		B: linalg.Ones(projects),
		C: c,
		L: make([]float64, m),
		U: linalg.Ones(m),
	}
	x0 := linalg.Constant(m, 1.0/3) // uniform split: strictly feasible

	solver, err := bcclap.NewLPSolver(prob, bcclap.WithSeed(2))
	if err != nil {
		log.Fatal(err)
	}
	sol, stats, err := solver.Solve(context.Background(), x0, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("objective %.3f (OPT = %d) after %d path steps / %d centerings (%d CG iterations)\n",
		sol.Objective, projects, stats.PathSteps, stats.Centerings, stats.CGIterations)
	for p := 0; p < projects; p++ {
		fmt.Printf("project %d allocation: %.3f %.3f %.3f\n",
			p, sol.X[3*p], sol.X[3*p+1], sol.X[3*p+2])
	}
}
