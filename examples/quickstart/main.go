// Quickstart: sparsify a graph in the Broadcast CONGEST model and solve a
// Laplacian system in the Broadcast Congested Clique — the two primitives
// of Theorems 1.2 and 1.3 in ~50 lines.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"bcclap"
)

func main() {
	// A dense random graph on 32 vertices.
	rnd := rand.New(rand.NewSource(42))
	g := bcclap.NewGraph(32)
	for u := 0; u < 32; u++ {
		for v := u + 1; v < 32; v++ {
			if rnd.Float64() < 0.5 {
				if _, err := g.AddEdge(u, v, 1+float64(rnd.Intn(4))); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	if !g.Connected() {
		log.Fatal("unlucky seed: graph disconnected")
	}

	// 1. Spectral sparsification with round accounting (Theorem 1.2).
	net, err := bcclap.NewBroadcastCONGESTNetwork(g)
	if err != nil {
		log.Fatal(err)
	}
	sp, err := bcclap.SparsifyGraph(g, 0.5,
		bcclap.WithSeed(7),
		bcclap.WithNetwork(net),
		// A lean bundle: at n = 32 the default practical bundle already
		// covers the whole graph (which is a valid, if pointless,
		// sparsifier).
		bcclap.WithSparsifyParams(bcclap.SparsifyParams{K: 4, T: 2, Iterations: 6}))
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := bcclap.SparsifierQuality(g, sp.H, 7)
	fmt.Printf("sparsifier: %d of %d edges, spectral band [%.2f, %.2f], %d BC rounds\n",
		sp.H.M(), g.M(), lo, hi, sp.Rounds)

	// 2. Laplacian solving in the BCC (Theorem 1.3): preprocess once,
	// answer many (b, ε) instances cheaply.
	bccNet, err := bcclap.NewBCCNetwork(g.N())
	if err != nil {
		log.Fatal(err)
	}
	solver, err := bcclap.NewLaplacianSession(g, bcclap.WithSeed(7), bcclap.WithNetwork(bccNet))
	if err != nil {
		log.Fatal(err)
	}
	b := make([]float64, g.N())
	b[0], b[g.N()-1] = 1, -1 // unit demand pair: x is an electrical potential
	x, st, err := solver.SolveCtx(context.Background(), b, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("laplacian solve: %d Chebyshev iterations, %d rounds (preprocessing %d)\n",
		st.CGIterations, st.Rounds, solver.PreprocessRounds())
	fmt.Printf("effective resistance(0, %d) ≈ %.4f\n", g.N()-1, x[0]-x[g.N()-1])
}
