// Distributed spanner construction (Section 3.1) with probabilistic edges:
// build a (2k−1)-spanner of a clique where every edge only exists with
// probability 1/2, count the Broadcast CONGEST rounds, and verify the
// partition/stretch guarantees of Lemma 3.1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bcclap/internal/graph"
	"bcclap/internal/sim"
	"bcclap/internal/spanner"
)

func main() {
	n, k := 40, 3
	g := graph.Complete(n)
	p := make([]float64, g.M())
	for i := range p {
		p[i] = 0.5
	}
	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v)
	}
	net, err := sim.NewNetwork(sim.Config{N: n, Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
	if err != nil {
		log.Fatal(err)
	}
	res := spanner.Run(g, nil, p, k, spanner.Options{
		MarkRand: rand.New(rand.NewSource(1)),
		EdgeRand: rand.New(rand.NewSource(2)),
		Net:      net,
	})
	st := net.Stats()
	fmt.Printf("K%d with p=1/2 edges, k=%d (stretch ≤ %d)\n", n, k, 2*k-1)
	fmt.Printf("decided: |F⁺| = %d (spanner), |F⁻| = %d (sampled away), undecided %d\n",
		len(res.FPlus), len(res.FMinus), g.M()-len(res.FPlus)-len(res.FMinus))
	fmt.Printf("rounds: %d, messages: %d, bits: %d\n", st.Rounds, st.Messages, st.Bits)

	// Lemma 3.1's guarantee: F⁺ spans every graph F⁺ ∪ E″ with E″ ⊆ E∖F.
	decided := make(map[int]bool)
	for _, e := range res.FPlus {
		decided[e] = true
	}
	for _, e := range res.FMinus {
		decided[e] = true
	}
	union := append([]int{}, res.FPlus...)
	rnd := rand.New(rand.NewSource(3))
	for e := 0; e < g.M(); e++ {
		if !decided[e] && rnd.Float64() < 0.5 {
			union = append(union, e)
		}
	}
	stretch := graph.Stretch(g.Subgraph(union), g.Subgraph(res.FPlus))
	fmt.Printf("measured stretch over F⁺ ∪ E″: %.2f (bound %d)\n", stretch, 2*k-1)
}
