// Min-cost flow on a layered transport network: the headline application
// (Theorem 1.1). The BCC pipeline (LP + Laplacian solves + rounding) is
// verified arc-by-arc against the combinatorial baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bcclap"
	"bcclap/internal/graph"
)

func main() {
	// A 3-layer transport network: sources → depots → customers, with
	// random capacities and per-unit shipping costs.
	rnd := rand.New(rand.NewSource(9))
	d := graph.LayeredFlowNetwork(3, 2, 4, 5, rnd)
	s, t := 0, d.N()-1
	fmt.Printf("transport network: %d nodes, %d arcs\n", d.N(), d.M())

	// Backend selects the AᵀDA linear-solve strategy: "gremban" is the
	// paper's Lemma 5.1 Laplacian route; "csr-cg" (matrix-free CG) is the
	// scalable choice for large networks; "dense" the exact reference.
	// bcclap.FlowBackends() lists every registered name.
	res, err := bcclap.MinCostMaxFlow(d, s, t, bcclap.FlowOptions{Seed: 3, Backend: "gremban"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BCC pipeline: ship %d units at total cost %d (%d interior-point steps)\n",
		res.Value, res.Cost, res.PathSteps)

	wantV, wantC, wantFlows, err := bcclap.MinCostMaxFlowBaseline(d, s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:     ship %d units at total cost %d\n", wantV, wantC)
	if wantV != res.Value || wantC != res.Cost {
		log.Fatal("pipeline disagrees with the exact baseline")
	}
	_ = wantFlows
	fmt.Println("\nshipping plan (pipeline):")
	for i, f := range res.Flows {
		if f > 0 {
			a := d.Arc(i)
			fmt.Printf("  %2d -> %2d : %d units (unit cost %d)\n", a.From, a.To, f, a.Cost)
		}
	}
}
