// Min-cost flow on a layered transport network: the headline application
// (Theorem 1.1), served through the session API. A FlowSolver ingests the
// network once and answers a batch of shipping queries under a deadline;
// every answer is verified arc-by-arc against the combinatorial baseline.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"bcclap"
	"bcclap/internal/graph"
)

func main() {
	// A 3-layer transport network: sources → depots → customers, with
	// random capacities and per-unit shipping costs.
	rnd := rand.New(rand.NewSource(9))
	d := graph.LayeredFlowNetwork(3, 2, 4, 5, rnd)
	s, t := 0, d.N()-1
	fmt.Printf("transport network: %d nodes, %d arcs\n", d.N(), d.M())

	// WithBackend selects the AᵀDA linear-solve strategy: "gremban" is the
	// paper's Lemma 5.1 Laplacian route; "csr-cg" (matrix-free CG) is the
	// scalable choice for large networks; "dense" the exact reference.
	// bcclap.FlowBackends() lists every registered name — a typo here
	// fails fast with bcclap.ErrBackendUnknown.
	solver, err := bcclap.NewFlowSolver(d,
		bcclap.WithSeed(3),
		bcclap.WithBackend("gremban"))
	if err != nil {
		log.Fatal(err)
	}

	// The context bounds the whole batch; a pathological instance aborts
	// with context.DeadlineExceeded instead of hanging.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Three identical shipping queries: the first solves cold, the rest
	// warm-start from its certified solution and skip path following.
	queries := []bcclap.FlowQuery{{S: s, T: t}, {S: s, T: t}, {S: s, T: t}}
	results, err := solver.SolveBatch(ctx, queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, res := range results {
		fmt.Printf("query %d: ship %d units at total cost %d (%d path steps, warm=%v, %v)\n",
			i, res.Value, res.Cost, res.Stats.PathSteps, res.Stats.WarmStarted,
			res.Stats.WallTime.Round(time.Millisecond))
	}

	res := results[0]
	wantV, wantC, _, err := bcclap.MinCostMaxFlowBaseline(d, s, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline:  ship %d units at total cost %d\n", wantV, wantC)
	if wantV != res.Value || wantC != res.Cost {
		log.Fatal("pipeline disagrees with the exact baseline")
	}
	fmt.Println("\nshipping plan (pipeline):")
	for i, f := range res.Flows {
		if f > 0 {
			a := d.Arc(i)
			fmt.Printf("  %2d -> %2d : %d units (unit cost %d)\n", a.From, a.To, f, a.Cost)
		}
	}
}
