// Package bcclap is a Go implementation of "The Laplacian Paradigm in the
// Broadcast Congested Clique" (Forster, de Vos; PODC 2022): spectral
// sparsification and Laplacian solving in broadcast models, a Lee–Sidford
// style linear program solver built on those primitives, and an exact
// minimum-cost maximum-flow algorithm running in Õ(√n) simulated rounds.
//
// # Sessions
//
// The package is organized around reusable, context-aware solver sessions:
// construct a handle once, then answer many queries under explicit
// resource control. Everything that is query-independent — the flow-LP
// formulation and its CSR constraint structure, linear-solve backend
// workspaces, the Laplacian sparsifier of Theorem 1.3 — is built by the
// constructor and amortized across queries:
//
//	FlowSolver      — NewFlowSolver(d, opts...) then Solve(ctx, s, t) /
//	                  SolveBatch(ctx, queries): exact min-cost max-flow
//	                  (Thm 1.1) as a service; batch mode warm-starts
//	                  repeated terminal pairs from the previous certified
//	                  solution
//	LPSolver        — NewLPSolver(prob, opts...) then Solve(ctx, x0, eps):
//	                  LPs with Õ(√n·log(U/ε)) path steps (Thm 1.4)
//	LaplacianSolver — NewLaplacianSession(g, opts...) then
//	                  SolveCtx(ctx, b, eps): high-precision Laplacian
//	                  solving after one-time sparsifier preprocessing
//	                  (Thm 1.3)
//	SparsifyGraph   — (1±ε) spectral sparsifiers in Broadcast CONGEST
//	                  (Thm 1.2); one-shot by nature, same option set
//
// Sessions share one functional option vocabulary (WithBackend, WithSeed,
// WithNetwork, WithTolerance, WithProgress, …), surface one Stats record
// per solve (path steps, CG iterations, rounds, wall time, reuse flags),
// and classify failures with sentinel errors usable with errors.Is:
// ErrBadQuery, ErrBackendUnknown, ErrDisconnected, ErrInfeasible.
//
// Every Solve accepts a context.Context, threaded down through the flow
// retry loop, the interior-point path following, and the CG/Chebyshev
// inner loops (polled every few iterations, so the hot kernels stay
// allocation-free): cancellation or deadline aborts within one outer
// iteration with an error satisfying errors.Is(err, ctx.Err()).
//
// Sessions are deterministic — sequential Solve calls on one FlowSolver
// produce bit-identical results to fresh one-shot calls with the same
// seed — and single-goroutine by default: serve a sequential query stream
// per session.
//
// # Concurrent serving
//
// WithPoolSize(n) backs a FlowSolver with a sharded pool of n independent
// worker sessions (each owning its own backend workspaces, so the
// allocation-free hot paths stay race-free without locks). The solver then
// accepts Solve and SolveBatch from any number of goroutines, and
// SolveBatch fans out across the workers with bounded concurrency.
// Queries are routed by terminal pair — every pair always runs on the same
// worker, in submission order — so pooled results, warm starts included,
// are bit-identical to the sequential path. WithShards controls the
// terminal-pair sharding; Drain and Close shut the pool down gracefully or
// immediately, and PoolStats exposes the serving counters:
//
//	solver, err := bcclap.NewFlowSolver(d, bcclap.WithPoolSize(8))
//	defer solver.Close()
//	results, err := solver.SolveBatch(ctx, queries) // fans out, certified
//
// # Multi-tenant service
//
// Service is the top of the API for production serving: one process
// managing many named, versioned networks over the session/pool
// machinery. Register ingests a digraph under a name and returns a
// NetworkHandle — a pooled FlowSolver with per-network option overrides
// layered over the service defaults — and Swap atomically replaces a
// tenant's network (bumping its monotonic version and draining the old
// solver) without disturbing other tenants:
//
//	svc := bcclap.NewService(bcclap.WithPoolSize(4))
//	h, err := svc.Register("prod", d)
//	res, err := h.Solve(ctx, s, t)     // certified; repeat queries hit the cache
//	err = h.Swap(d2)                    // version 2, cache invalidated
//
// Because every flow answer is exact and deterministic, each handle
// fronts its solver with a certified-result cache keyed by (network,
// version, s, t): hits return the previously certified result — value,
// cost and flow vector bit-identical to a fresh solve, Stats.CacheHit
// set — in O(1) without touching the solver. WithCacheSize bounds the
// per-network entry budget (0 disables); NetworkStats and ServiceStats
// expose hit/miss/eviction counters. Lifecycle errors carry their own
// sentinels: ErrNetworkUnknown, ErrNetworkExists, ErrNetworkBusy.
//
// # Durable state and incremental updates
//
// OpenService with WithStore(dir) makes the service restartable: every
// tenant mutation — Register, Swap, PatchArcs, Deregister — is appended
// to a CRC-checksummed write-ahead log in dir before it takes effect,
// the log is periodically folded into compacted snapshots
// (WithSnapshotEvery), and startup replays snapshot plus journal, so a
// restarted process serves every tenant at its exact pre-shutdown
// version with bit-identical answers and no re-registration.
// WithStoreSync selects the fsync policy (SyncAlways pays ~200× per
// record for a zero loss window; SyncNever defers flushing to the OS).
// Recovery truncates torn tails at the last complete record, so a crash
// mid-append never corrupts the journal.
//
// PatchArcs is the incremental alternative to Swap when the topology is
// unchanged: arc capacity/cost deltas (ArcDelta) are journaled, folded
// into the live worker sessions — which keep their LP structure, backend
// workspaces and warm-start state, so the next resolve of an affected
// pair re-centers instead of re-running path following — and the cache
// is invalidated selectively: only entries whose flow routes through a
// modified arc are dropped, the rest are re-certified and migrated to
// the new version. Malformed deltas fail with ErrBadPatch before any
// state changes; mutations racing on one tenant fail with ErrNetworkBusy.
//
// cmd/bcclap-serve exposes the service over REST (PUT/GET/DELETE
// /v1/networks/{name}, PATCH /v1/networks/{name}/arcs, per-tenant /flow
// and /stats routes, durable with -data-dir), with the legacy
// single-network /v1/flow surface kept as a compatibility layer over a
// "default" tenant.
//
// Every entry point optionally runs against the round-accounting simulator
// in internal/sim so that the paper's round-complexity claims can be
// measured; see EXPERIMENTS.md for the measured-vs-claimed record,
// including the session amortization measurements.
//
// # Linear-solve backends
//
// The interior-point pipeline reduces to repeated solves (AᵀDA)x = y. The
// strategy is pluggable through a backend registry shared by flow and LP
// sessions (WithBackend):
//
//	dense   — assemble AᵀDA and factorize it; exact reference, O(n³)/solve
//	gremban — Gremban reduction to a Laplacian + preconditioned CG (Lemma 5.1)
//	csr-cg  — matrix-free CG applying A, D, Aᵀ as composed operators;
//	          never materializes AᵀDA and scales to large instances
//	csr-pcg — csr-cg plus a combinatorial preconditioner: a spanning-forest
//	          incomplete Cholesky extracted from the flow network with the
//	          paper's spanner/sparsifier machinery, built once per session
//	          and only numerically refreshed when the IPM reweights D —
//	          fewer inner CG iterations per query (see BENCH_precond.json);
//	          Stats.PrecondBuilds/PrecondRefreshes expose its counters
//
//	solver, err := bcclap.NewFlowSolver(d, bcclap.WithBackend("csr-pcg"))
//	res, err := solver.Solve(ctx, s, t)
//
// With no WithBackend option the backend is auto-selected: csr-pcg when
// the network is sparse (n ≥ 32 and m ≤ n²/8), dense otherwise;
// FlowSolver.Backend and Stats.Backend report the resolved name.
// FlowBackends lists the registered names; unknown names fail at session
// construction with ErrBackendUnknown. All matrix-vector products ride on
// a parallel sparse kernel that shards rows by balanced nonzero count
// (serial below an nnz threshold) with output bit-for-bit identical to the
// serial product.
//
// The pre-session entry points (Sparsify, SolveLP, MinCostMaxFlow) remain
// as thin deprecated wrappers over sessions, so existing callers keep
// working unchanged.
package bcclap

import (
	"context"
	"fmt"
	"math/rand"

	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/lapsolver"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
	"bcclap/internal/sparsify"
)

// Graph is a weighted undirected multigraph (re-exported from the graph
// substrate).
type Graph = graph.Graph

// Digraph is a directed graph with integer capacities and costs.
type Digraph = graph.Digraph

// ArcDelta is one incremental arc mutation for PatchArcs: additive
// adjustments to the capacity and cost of the arc at index Arc (the
// AddArc return value / Arcs() position). Deltas never change topology —
// arcs are not added or removed — which is what lets a patched solver
// keep its LP constraint structure and warm-start state.
type ArcDelta = graph.ArcDelta

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph { return graph.NewDigraph(n) }

// Network is the synchronous broadcast-round simulator.
type Network = sim.Network

// NewBCCNetwork returns a Broadcast Congested Clique network on n vertices
// with the standard Θ(log n) bandwidth.
func NewBCCNetwork(n int) (*Network, error) {
	return sim.NewNetwork(sim.Config{N: n, Mode: sim.ModeBCC})
}

// NewBroadcastCONGESTNetwork returns a Broadcast CONGEST network over the
// topology of g.
func NewBroadcastCONGESTNetwork(g *Graph) (*Network, error) {
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
}

// SparsifyParams re-exports the sparsifier parameters (bundle size t,
// stretch parameter k, iteration count).
type SparsifyParams = sparsify.Params

// PaperSparsifyParams returns the constants of Algorithm 5 verbatim
// (t = 400·log²n/ε² — astronomically conservative; see EXPERIMENTS.md).
func PaperSparsifyParams(n, m int, eps float64) SparsifyParams {
	return sparsify.PaperParams(n, m, eps)
}

// PracticalSparsifyParams keeps the paper's parameter shapes with a
// constant that compresses at experiment scale.
func PracticalSparsifyParams(n, m int, eps float64) SparsifyParams {
	return sparsify.PracticalParams(n, m, eps)
}

// SparsifyOptions configures Sparsify.
//
// Deprecated: use SparsifyGraph with functional options (WithSeed,
// WithNetwork, WithSparsifyParams).
type SparsifyOptions struct {
	// Params overrides the sparsifier parameters (zero selects
	// PracticalParams; use sparsify.PaperParams for the proof constants).
	Params sparsify.Params
	// Seed drives all randomness.
	Seed int64
	// Net, if non-nil, receives Broadcast CONGEST round accounting.
	Net *Network
}

// SparsifyResult is a computed spectral sparsifier.
type SparsifyResult struct {
	// H is the reweighted sparsifier.
	H *Graph
	// KeptEdges maps H's edges to indices in the input graph.
	KeptEdges []int
	// MaxOutDegree is the orientation bound of Theorem 1.2.
	MaxOutDegree int
	// Rounds is the simulated round cost (0 without Net).
	Rounds int
}

// SparsifyGraph computes a spectral sparsifier of g with the paper's
// ad-hoc sampling algorithm (Algorithm 5 / Theorem 1.2). It accepts the
// session option set: WithSeed, WithNetwork and WithSparsifyParams apply.
func SparsifyGraph(g *Graph, eps float64, opts ...Option) (*SparsifyResult, error) {
	cfg := applyOptions(opts)
	if g.N() == 0 {
		return nil, fmt.Errorf("bcclap: empty graph")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("bcclap: eps must be positive, got %g", eps)
	}
	par := cfg.sparsifyParams
	if par.K == 0 {
		par = sparsify.PracticalParams(g.N(), g.M(), eps)
	}
	res := sparsify.Adhoc(g, par, seededRand(cfg.seed+1), cfg.net)
	return &SparsifyResult{
		H:            res.H,
		KeptEdges:    res.KeptEdges,
		MaxOutDegree: res.MaxOutDegree(),
		Rounds:       res.Rounds,
	}, nil
}

// Sparsify computes a spectral sparsifier of g.
//
// Deprecated: use SparsifyGraph, which takes the shared functional option
// set. Sparsify remains a thin wrapper and behaves identically.
func Sparsify(g *Graph, eps float64, opts SparsifyOptions) (*SparsifyResult, error) {
	return SparsifyGraph(g, eps,
		WithSeed(opts.Seed),
		WithNetwork(opts.Net),
		WithSparsifyParams(opts.Params))
}

// SparsifierQuality estimates the spectral band (lo, hi) with
// lo·L_H ≼ L_G ≼ hi·L_H over probed directions.
func SparsifierQuality(g, h *Graph, seed int64) (lo, hi float64) {
	return sparsify.Quality(g, h, 6, rand.New(rand.NewSource(seed+7)))
}

// LaplacianSolver answers systems L_G x = b after a one-time sparsifier
// preprocessing (Theorem 1.3). Construct with NewLaplacianSession (or the
// deprecated NewLaplacianSolver) and query with SolveCtx.
type LaplacianSolver struct {
	inner *lapsolver.Solver
}

// LaplacianSolveStats mirrors the per-instance costs of Theorem 1.3.
//
// Deprecated: SolveCtx reports the unified Stats instead.
type LaplacianSolveStats = lapsolver.Stats

// NewLaplacianSolver preprocesses g (connected) for repeated solving.
//
// Deprecated: use NewLaplacianSession(g, WithSeed(seed), WithNetwork(net)),
// which additionally accepts WithSparsifyParams. This wrapper behaves
// identically.
func NewLaplacianSolver(g *Graph, seed int64, net *Network) (*LaplacianSolver, error) {
	return NewLaplacianSession(g, WithSeed(seed), WithNetwork(net))
}

// PreprocessRounds returns the rounds consumed by preprocessing.
func (s *LaplacianSolver) PreprocessRounds() int { return s.inner.PreprocessRounds }

// Sparsifier returns the sparsifier used for preconditioning.
func (s *LaplacianSolver) Sparsifier() *Graph { return s.inner.Sparsifier() }

// Solve returns y with ‖x − y‖_{L_G} ≤ ε‖x‖_{L_G} for L_G x = b.
//
// Deprecated: use SolveCtx, which is cancelable and reports the unified
// Stats.
func (s *LaplacianSolver) Solve(b []float64, eps float64) ([]float64, LaplacianSolveStats, error) {
	return s.inner.Solve(b, eps)
}

// LPProblem is the linear program min cᵀx s.t. Aᵀx = b, l ≤ x ≤ u.
type LPProblem = lp.Problem

// LPParams tunes the interior-point method.
type LPParams = lp.Params

// LPSolution is the solver output.
type LPSolution = lp.Solution

// SolveLP runs the Lee–Sidford-style solver of Theorem 1.4 from the given
// strictly feasible x0.
//
// Deprecated: use NewLPSolver(prob, ...).Solve(ctx, x0, eps), which is
// cancelable, amortizes the backend across repeated solves and reports the
// unified Stats. This wrapper remains a one-shot session.
func SolveLP(prob *LPProblem, x0 []float64, eps float64, par LPParams) (*LPSolution, error) {
	return lp.Solve(prob, x0, eps, par)
}

// FlowOptions configures MinCostMaxFlow.
//
// Deprecated: use NewFlowSolver with functional options (WithBackend,
// WithSeed, WithNetwork).
type FlowOptions struct {
	// Backend selects the AᵀDA linear-solve strategy by registry name:
	// "dense" (assemble + factorize, the reference), "gremban" (Lemma 5.1's
	// reduction to Laplacian systems), "csr-cg" (matrix-free CG over
	// composed operators) or "csr-pcg" (csr-cg with the spanner-built
	// combinatorial preconditioner). Empty auto-selects — csr-pcg on sparse
	// graphs, dense otherwise — or "gremban" when UseGremban is set.
	// FlowBackends lists the registered names.
	Backend string
	// UseGremban routes the LP's linear-system solves through the Gremban
	// reduction to Laplacian systems (Lemma 5.1).
	//
	// Deprecated: set Backend to "gremban" instead. Ignored when Backend is
	// non-empty.
	UseGremban bool
	// Seed drives the Daitch–Spielman perturbations.
	Seed int64
	// Net, if non-nil, receives round accounting.
	Net *Network
}

// options folds the deprecated UseGremban knob into the session option
// set — the single place the legacy FlowOptions surface is translated.
func (o FlowOptions) options() []Option {
	backend := o.Backend
	if backend == "" && o.UseGremban {
		backend = "gremban"
	}
	return []Option{WithBackend(backend), WithSeed(o.Seed), WithNetwork(o.Net)}
}

// FlowBackends returns the names of all registered AᵀDA solve backends
// accepted by WithBackend and FlowOptions.Backend.
func FlowBackends() []string { return lp.Backends() }

// FlowResult is an exact minimum-cost maximum flow.
type FlowResult struct {
	// Value is the maximum flow value and Cost its minimum cost.
	Value, Cost int64
	// Flows gives the integral flow per arc (indexed like d.Arcs()).
	Flows []int64
	// PathSteps is the interior-point iteration count (the Õ(√n) of
	// Theorem 1.1).
	PathSteps int
	// Rounds is the simulated round cost of this solve (0 without Net).
	Rounds int
	// Stats is the unified per-solve observability record.
	Stats Stats
}

// MinCostMaxFlow computes an exact minimum-cost maximum s-t flow with the
// paper's LP pipeline (Theorem 1.1). The result is certified internally
// (feasibility, maximality, cost optimality) before being returned.
//
// Deprecated: use NewFlowSolver(d, ...).Solve(ctx, s, t), which amortizes
// the LP formulation across queries, is cancelable and supports batches.
// This wrapper builds a single-use session and produces identical results.
func MinCostMaxFlow(d *Digraph, s, t int, opts FlowOptions) (*FlowResult, error) {
	fs, err := NewFlowSolver(d, opts.options()...)
	if err != nil {
		return nil, err
	}
	return fs.Solve(context.Background(), s, t)
}

// MinCostMaxFlowBaseline runs the combinatorial successive-shortest-paths
// baseline (exact, centralized) used by the experiments for verification.
func MinCostMaxFlowBaseline(d *Digraph, s, t int) (value, cost int64, flows []int64, err error) {
	return flow.MinCostMaxFlowSSP(d, s, t)
}

// MaxFlow computes a maximum s-t flow with Dinic's algorithm.
func MaxFlow(d *Digraph, s, t int) (int64, []int64, error) {
	return flow.MaxFlow(d, s, t)
}
