// Package bcclap is a Go implementation of "The Laplacian Paradigm in the
// Broadcast Congested Clique" (Forster, de Vos; PODC 2022): spectral
// sparsification and Laplacian solving in broadcast models, a Lee–Sidford
// style linear program solver built on those primitives, and an exact
// minimum-cost maximum-flow algorithm running in Õ(√n) simulated rounds.
//
// The package re-exports the pipeline end-to-end:
//
//	Sparsify        — (1±ε) spectral sparsifiers in Broadcast CONGEST (Thm 1.2)
//	NewLaplacianSolver — high-precision Laplacian solving in the BCC (Thm 1.3)
//	SolveLP         — LPs with Õ(√n·log(U/ε)) path steps (Thm 1.4)
//	MinCostMaxFlow  — exact min-cost max-flow (Thm 1.1)
//
// Every entry point optionally runs against the round-accounting simulator
// in internal/sim so that the paper's round-complexity claims can be
// measured; see EXPERIMENTS.md for the measured-vs-claimed record.
//
// # Linear-solve backends
//
// The interior-point pipeline reduces to repeated solves (AᵀDA)x = y. The
// strategy is pluggable through a backend registry shared by SolveLP
// (LPProblem.Backend) and MinCostMaxFlow (FlowOptions.Backend):
//
//	dense   — assemble AᵀDA and factorize it; exact reference, O(n³)/solve
//	gremban — Gremban reduction to a Laplacian + preconditioned CG (Lemma 5.1)
//	csr-cg  — matrix-free CG applying A, D, Aᵀ as composed operators;
//	          never materializes AᵀDA and scales to large instances
//
//	res, err := bcclap.MinCostMaxFlow(d, s, t, bcclap.FlowOptions{Backend: "csr-cg"})
//
// FlowBackends lists the registered names; EXPERIMENTS.md records the
// backend comparison measurements. All matrix-vector products ride on a
// row-sharded parallel sparse kernel whose output is bit-for-bit identical
// to the serial product.
package bcclap

import (
	"fmt"
	"math/rand"

	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/lapsolver"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
	"bcclap/internal/sparsify"
)

// Graph is a weighted undirected multigraph (re-exported from the graph
// substrate).
type Graph = graph.Graph

// Digraph is a directed graph with integer capacities and costs.
type Digraph = graph.Digraph

// NewGraph returns an empty graph on n vertices.
func NewGraph(n int) *Graph { return graph.New(n) }

// NewDigraph returns an empty directed graph on n vertices.
func NewDigraph(n int) *Digraph { return graph.NewDigraph(n) }

// Network is the synchronous broadcast-round simulator.
type Network = sim.Network

// NewBCCNetwork returns a Broadcast Congested Clique network on n vertices
// with the standard Θ(log n) bandwidth.
func NewBCCNetwork(n int) (*Network, error) {
	return sim.NewNetwork(sim.Config{N: n, Mode: sim.ModeBCC})
}

// NewBroadcastCONGESTNetwork returns a Broadcast CONGEST network over the
// topology of g.
func NewBroadcastCONGESTNetwork(g *Graph) (*Network, error) {
	adj := make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		adj[v] = g.Neighbors(v)
	}
	return sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
}

// SparsifyParams re-exports the sparsifier parameters (bundle size t,
// stretch parameter k, iteration count).
type SparsifyParams = sparsify.Params

// PaperSparsifyParams returns the constants of Algorithm 5 verbatim
// (t = 400·log²n/ε² — astronomically conservative; see EXPERIMENTS.md).
func PaperSparsifyParams(n, m int, eps float64) SparsifyParams {
	return sparsify.PaperParams(n, m, eps)
}

// PracticalSparsifyParams keeps the paper's parameter shapes with a
// constant that compresses at experiment scale.
func PracticalSparsifyParams(n, m int, eps float64) SparsifyParams {
	return sparsify.PracticalParams(n, m, eps)
}

// SparsifyOptions configures Sparsify.
type SparsifyOptions struct {
	// Params overrides the sparsifier parameters (zero selects
	// PracticalParams; use sparsify.PaperParams for the proof constants).
	Params sparsify.Params
	// Seed drives all randomness.
	Seed int64
	// Net, if non-nil, receives Broadcast CONGEST round accounting.
	Net *Network
}

// SparsifyResult is a computed spectral sparsifier.
type SparsifyResult struct {
	// H is the reweighted sparsifier.
	H *Graph
	// KeptEdges maps H's edges to indices in the input graph.
	KeptEdges []int
	// MaxOutDegree is the orientation bound of Theorem 1.2.
	MaxOutDegree int
	// Rounds is the simulated round cost (0 without Net).
	Rounds int
}

// Sparsify computes a spectral sparsifier of g with the paper's ad-hoc
// sampling algorithm (Algorithm 5 / Theorem 1.2).
func Sparsify(g *Graph, eps float64, opts SparsifyOptions) (*SparsifyResult, error) {
	if g.N() == 0 {
		return nil, fmt.Errorf("bcclap: empty graph")
	}
	if eps <= 0 {
		return nil, fmt.Errorf("bcclap: eps must be positive, got %g", eps)
	}
	par := opts.Params
	if par.K == 0 {
		par = sparsify.PracticalParams(g.N(), g.M(), eps)
	}
	rnd := rand.New(rand.NewSource(opts.Seed + 1))
	res := sparsify.Adhoc(g, par, rnd, opts.Net)
	return &SparsifyResult{
		H:            res.H,
		KeptEdges:    res.KeptEdges,
		MaxOutDegree: res.MaxOutDegree(),
		Rounds:       res.Rounds,
	}, nil
}

// SparsifierQuality estimates the spectral band (lo, hi) with
// lo·L_H ≼ L_G ≼ hi·L_H over probed directions.
func SparsifierQuality(g, h *Graph, seed int64) (lo, hi float64) {
	return sparsify.Quality(g, h, 6, rand.New(rand.NewSource(seed+7)))
}

// LaplacianSolver answers systems L_G x = b after a one-time sparsifier
// preprocessing (Theorem 1.3).
type LaplacianSolver struct {
	inner *lapsolver.Solver
}

// LaplacianSolveStats mirrors the per-instance costs of Theorem 1.3.
type LaplacianSolveStats = lapsolver.Stats

// NewLaplacianSolver preprocesses g (connected) for repeated solving.
func NewLaplacianSolver(g *Graph, seed int64, net *Network) (*LaplacianSolver, error) {
	s, err := lapsolver.New(g, lapsolver.Config{
		Rand: rand.New(rand.NewSource(seed + 3)),
		Net:  net,
	})
	if err != nil {
		return nil, err
	}
	return &LaplacianSolver{inner: s}, nil
}

// PreprocessRounds returns the rounds consumed by preprocessing.
func (s *LaplacianSolver) PreprocessRounds() int { return s.inner.PreprocessRounds }

// Sparsifier returns the sparsifier used for preconditioning.
func (s *LaplacianSolver) Sparsifier() *Graph { return s.inner.Sparsifier() }

// Solve returns y with ‖x − y‖_{L_G} ≤ ε‖x‖_{L_G} for L_G x = b.
func (s *LaplacianSolver) Solve(b []float64, eps float64) ([]float64, LaplacianSolveStats, error) {
	return s.inner.Solve(b, eps)
}

// LPProblem is the linear program min cᵀx s.t. Aᵀx = b, l ≤ x ≤ u.
type LPProblem = lp.Problem

// LPParams tunes the interior-point method.
type LPParams = lp.Params

// LPSolution is the solver output.
type LPSolution = lp.Solution

// SolveLP runs the Lee–Sidford-style solver of Theorem 1.4 from the given
// strictly feasible x0.
func SolveLP(prob *LPProblem, x0 []float64, eps float64, par LPParams) (*LPSolution, error) {
	return lp.Solve(prob, x0, eps, par)
}

// FlowOptions configures MinCostMaxFlow.
type FlowOptions struct {
	// Backend selects the AᵀDA linear-solve strategy by registry name:
	// "dense" (assemble + factorize, the reference), "gremban" (Lemma 5.1's
	// reduction to Laplacian systems) or "csr-cg" (matrix-free CG over
	// composed operators, the scalable default for large graphs). Empty
	// selects "dense", or "gremban" when UseGremban is set. FlowBackends
	// lists the registered names.
	Backend string
	// UseGremban routes the LP's linear-system solves through the Gremban
	// reduction to Laplacian systems (Lemma 5.1).
	//
	// Deprecated: set Backend to "gremban" instead. Ignored when Backend is
	// non-empty.
	UseGremban bool
	// Seed drives the Daitch–Spielman perturbations.
	Seed int64
	// Net, if non-nil, receives round accounting.
	Net *Network
}

// FlowBackends returns the names of all registered AᵀDA solve backends
// accepted by FlowOptions.Backend.
func FlowBackends() []string { return lp.Backends() }

// FlowResult is an exact minimum-cost maximum flow.
type FlowResult struct {
	// Value is the maximum flow value and Cost its minimum cost.
	Value, Cost int64
	// Flows gives the integral flow per arc (indexed like d.Arcs()).
	Flows []int64
	// PathSteps is the interior-point iteration count (the Õ(√n) of
	// Theorem 1.1).
	PathSteps int
	// Rounds is the simulated round cost (0 without Net).
	Rounds int
}

// MinCostMaxFlow computes an exact minimum-cost maximum s-t flow with the
// paper's LP pipeline (Theorem 1.1). The result is certified internally
// (feasibility, maximality, cost optimality) before being returned.
func MinCostMaxFlow(d *Digraph, s, t int, opts FlowOptions) (*FlowResult, error) {
	backend := opts.Backend
	if backend == "" && opts.UseGremban {
		backend = "gremban"
	}
	res, err := flow.MinCostMaxFlow(d, s, t, flow.Options{
		Backend: backend,
		Rand:    rand.New(rand.NewSource(opts.Seed + 11)),
		Net:     opts.Net,
	})
	if err != nil {
		return nil, err
	}
	return &FlowResult{
		Value:     res.Value,
		Cost:      res.Cost,
		Flows:     res.Flows,
		PathSteps: res.LPStats.PathSteps,
		Rounds:    res.Rounds,
	}, nil
}

// MinCostMaxFlowBaseline runs the combinatorial successive-shortest-paths
// baseline (exact, centralized) used by the experiments for verification.
func MinCostMaxFlowBaseline(d *Digraph, s, t int) (value, cost int64, flows []int64, err error) {
	return flow.MinCostMaxFlowSSP(d, s, t)
}

// MaxFlow computes a maximum s-t flow with Dinic's algorithm.
func MaxFlow(d *Digraph, s, t int) (int64, []int64, error) {
	return flow.MaxFlow(d, s, t)
}
