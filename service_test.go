package bcclap

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
)

// Lifecycle vocabulary: Register/Get/Names/Deregister with the sentinel
// errors of the service layer.
func TestServiceLifecycle(t *testing.T) {
	svc := NewService(WithSeed(9))
	dA, dB := testFlowNetwork(5, 41), testFlowNetwork(6, 42)

	a, err := svc.Register("tenant-a", dA)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "tenant-a" || a.Version() != 1 {
		t.Fatalf("handle %q v%d, want tenant-a v1", a.Name(), a.Version())
	}
	if _, err := svc.Register("tenant-a", dB); !errors.Is(err, ErrNetworkExists) {
		t.Fatalf("duplicate register: %v, want ErrNetworkExists", err)
	}
	if _, err := svc.Register("", dB); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := svc.Register("a/b", dB); err == nil {
		t.Fatal("name with '/' accepted")
	}
	if _, err := svc.Register("bad-backend", dB, WithBackend("nope")); !errors.Is(err, ErrBackendUnknown) {
		t.Fatalf("unknown backend: %v, want ErrBackendUnknown", err)
	}

	// The pool floor must survive an explicit non-positive override:
	// handles are always pooled (concurrency-safe), never fs.inner mode.
	if b, err := svc.Register("tenant-b", dB, WithPoolSize(0)); err != nil {
		t.Fatal(err)
	} else if got := b.Stats().PoolSize; got < 1 {
		t.Fatalf("WithPoolSize(0) tenant got pool size %d, want the clamped floor 1", got)
	}
	if got := svc.Names(); !reflect.DeepEqual(got, []string{"tenant-a", "tenant-b"}) {
		t.Fatalf("Names() = %v", got)
	}
	if h, err := svc.Get("tenant-b"); err != nil || h.Name() != "tenant-b" {
		t.Fatalf("Get(tenant-b) = %v, %v", h, err)
	}
	if _, err := svc.Get("nobody"); !errors.Is(err, ErrNetworkUnknown) {
		t.Fatalf("Get(nobody): %v, want ErrNetworkUnknown", err)
	}

	if err := svc.Deregister("tenant-b"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deregister("tenant-b"); !errors.Is(err, ErrNetworkUnknown) {
		t.Fatalf("double deregister: %v, want ErrNetworkUnknown", err)
	}
	if got := svc.Names(); !reflect.DeepEqual(got, []string{"tenant-a"}) {
		t.Fatalf("Names() after deregister = %v", got)
	}

	st := svc.ServiceStats()
	if st.Networks != 1 || st.Registered != 2 || st.Deregistered != 1 {
		t.Fatalf("service stats %+v", st)
	}
}

// Acceptance: a cached answer must be bit-identical to the fresh solve —
// value, cost and flow vector — and must be marked CacheHit without
// touching the solver pool.
func TestServiceCacheBitIdentical(t *testing.T) {
	d := testFlowNetwork(5, 43)
	s, tt := 0, d.N()-1
	svc := NewService(WithSeed(9))
	h, err := svc.Register("prod", d)
	if err != nil {
		t.Fatal(err)
	}

	fresh, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Stats.CacheHit {
		t.Fatal("first solve marked CacheHit")
	}
	before := h.Stats()
	cached, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !cached.Stats.CacheHit {
		t.Fatal("repeat solve not served from cache")
	}
	if cached.Value != fresh.Value || cached.Cost != fresh.Cost ||
		!reflect.DeepEqual(cached.Flows, fresh.Flows) {
		t.Fatalf("cached (%d, %d, %v) differs from fresh (%d, %d, %v)",
			cached.Value, cached.Cost, cached.Flows, fresh.Value, fresh.Cost, fresh.Flows)
	}
	after := h.Stats()
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("cache hits %d → %d, want +1", before.Cache.Hits, after.Cache.Hits)
	}
	if after.Pool.Submitted != before.Pool.Submitted {
		t.Fatal("cache hit reached the solver pool")
	}

	// A direct pooled solver with the same seed must agree (the cache
	// serves exactly what the session machinery certifies).
	direct, err := NewFlowSolver(d, WithSeed(9), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	want, err := direct.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Value != want.Value || cached.Cost != want.Cost ||
		!reflect.DeepEqual(cached.Flows, want.Flows) {
		t.Fatal("cached result differs from a direct solver with the same seed")
	}

	// Mutating a returned flow vector must not corrupt the cache.
	cached.Flows[0] += 99
	again, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Flows, fresh.Flows) {
		t.Fatal("caller mutation leaked into the cache")
	}
}

// SolveBatch must serve hits from the cache and only fan the misses out.
func TestServiceBatchCache(t *testing.T) {
	d := testFlowNetwork(5, 44)
	s, tt := 0, d.N()-1
	svc := NewService(WithSeed(9))
	h, err := svc.Register("prod", d)
	if err != nil {
		t.Fatal(err)
	}
	warmup, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := h.SolveBatch(context.Background(), []FlowQuery{{s, tt}, {s, tt}})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range batch {
		if !r.Stats.CacheHit {
			t.Fatalf("batch result %d not cached", i)
		}
		if r.Value != warmup.Value || r.Cost != warmup.Cost || !reflect.DeepEqual(r.Flows, warmup.Flows) {
			t.Fatalf("batch result %d differs from the certified original", i)
		}
	}
	// A malformed miss must fail the batch exactly like FlowSolver.
	if _, err := h.SolveBatch(context.Background(), []FlowQuery{{s, s}}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("malformed batch: %v, want ErrBadQuery", err)
	}
}

// Acceptance: Swap must bump the version, invalidate exactly its own
// tenant's entries, serve the new network afterwards, and leave the other
// tenant's cache hot.
func TestServiceSwapInvalidatesExactlyItsTenant(t *testing.T) {
	dOld, dNew := testFlowNetwork(5, 45), testFlowNetwork(6, 46)
	dOther := testFlowNetwork(5, 47)
	svc := NewService(WithSeed(9))
	a, err := svc.Register("swapped", dOld)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Register("bystander", dOther)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := a.Solve(context.Background(), 0, dOld.N()-1); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Solve(context.Background(), 0, dOther.N()-1); err != nil {
		t.Fatal(err)
	}

	// An invalid replacement must leave the tenant serving unchanged.
	if err := a.Swap(NewDigraph(0)); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("swap to empty digraph: %v, want ErrBadQuery", err)
	}
	if a.Version() != 1 {
		t.Fatal("failed swap bumped the version")
	}
	still, err := a.Solve(context.Background(), 0, dOld.N()-1)
	if err != nil || !still.Stats.CacheHit {
		t.Fatalf("tenant not serving old network after failed swap: %v", err)
	}

	if err := a.Swap(dNew); err != nil {
		t.Fatal(err)
	}
	if a.Version() != 2 {
		t.Fatalf("version %d after swap, want 2", a.Version())
	}
	if inv := a.Stats().Cache.Invalidations; inv == 0 {
		t.Fatal("swap did not invalidate the tenant's cache")
	}
	newRes, err := a.Solve(context.Background(), 0, dNew.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if newRes.Stats.CacheHit {
		t.Fatal("post-swap solve served a pre-swap entry")
	}
	wantV, wantC, _, err := MinCostMaxFlowBaseline(dNew, 0, dNew.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if newRes.Value != wantV || newRes.Cost != wantC {
		t.Fatalf("post-swap (%d, %d), baseline (%d, %d)", newRes.Value, newRes.Cost, wantV, wantC)
	}

	// The bystander's cache must still be hot.
	bRes, err := b.Solve(context.Background(), 0, dOther.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if !bRes.Stats.CacheHit {
		t.Fatal("swap of one tenant flushed another tenant's cache")
	}
	if st := svc.ServiceStats(); st.Swaps != 1 {
		t.Fatalf("service swaps %d, want 1", st.Swaps)
	}
}

// Queries racing a Swap must never observe a spurious shutdown error:
// a solve that pinned the retiring solver transparently retries on the
// new one (run under -race).
func TestServiceSwapUnderLoad(t *testing.T) {
	dA, dB := testFlowNetwork(5, 52), testFlowNetwork(6, 53)
	wantAV, wantAC, _, err := MinCostMaxFlowBaseline(dA, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantBV, wantBC, _, err := MinCostMaxFlowBaseline(dB, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("hot", dA)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Terminal pair (0, 4) is valid on both networks; the
				// answer must match whichever network is being served.
				res, err := h.Solve(context.Background(), 0, 4)
				if err != nil {
					t.Errorf("solve during swap: %v", err)
					return
				}
				okA := res.Value == wantAV && res.Cost == wantAC
				okB := res.Value == wantBV && res.Cost == wantBC
				if !okA && !okB {
					t.Errorf("solve during swap: (%d, %d) matches neither network", res.Value, res.Cost)
					return
				}
			}
		}()
	}
	for i, d := range []*Digraph{dB, dA, dB} {
		if err := h.Swap(d); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	if v := h.Version(); v != 4 {
		t.Fatalf("version %d after 3 swaps, want 4", v)
	}
}

// WithCacheSize(0) must disable caching for that tenant only.
func TestServiceCacheDisabled(t *testing.T) {
	d := testFlowNetwork(5, 48)
	s, tt := 0, d.N()-1
	svc := NewService(WithSeed(9))
	h, err := svc.Register("uncached", d, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	first, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := h.Solve(context.Background(), s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats.CacheHit {
		t.Fatal("disabled cache served a hit")
	}
	if second.Value != first.Value || second.Cost != first.Cost ||
		!reflect.DeepEqual(second.Flows, first.Flows) {
		t.Fatal("repeated uncached solves not deterministic")
	}
	if st := h.Stats(); st.Cache.Capacity != 0 || st.Cache.Hits != 0 {
		t.Fatalf("disabled cache stats %+v", st.Cache)
	}
}

// Two tenants hammered concurrently: every answer must match that
// tenant's baseline, and mixed hit/miss traffic must stay race-free
// (run under -race).
func TestServiceConcurrentTenants(t *testing.T) {
	dA, dB := testFlowNetwork(5, 49), testFlowNetwork(6, 50)
	svc := NewService(WithSeed(9), WithPoolSize(2))
	a, err := svc.Register("a", dA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Register("b", dB)
	if err != nil {
		t.Fatal(err)
	}
	wantAV, wantAC, _, err := MinCostMaxFlowBaseline(dA, 0, dA.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	wantBV, wantBC, _, err := MinCostMaxFlowBaseline(dB, 0, dB.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, wantV, wantC, tt := a, wantAV, wantAC, dA.N()-1
			if g%2 == 1 {
				h, wantV, wantC, tt = b, wantBV, wantBC, dB.N()-1
			}
			for i := 0; i < 3; i++ {
				res, err := h.Solve(context.Background(), 0, tt)
				if err != nil {
					t.Error(err)
					return
				}
				if res.Value != wantV || res.Cost != wantC {
					t.Errorf("tenant %s: (%d, %d), want (%d, %d)", h.Name(), res.Value, res.Cost, wantV, wantC)
				}
			}
		}(g)
	}
	wg.Wait()
	st := svc.ServiceStats()
	if st.Cache.Hits == 0 {
		t.Fatal("concurrent repeats produced no cache hits")
	}
	if len(st.PerNetwork) != 2 || st.PerNetwork[0].Name != "a" || st.PerNetwork[1].Name != "b" {
		t.Fatalf("per-network stats %+v", st.PerNetwork)
	}
}

// Drain/Close must retire every tenant: handles reject new queries with
// ErrSolverClosed, as do Register and Get on the service itself.
func TestServiceDrainClose(t *testing.T) {
	d := testFlowNetwork(5, 51)
	svc := NewService(WithSeed(9))
	h, err := svc.Register("x", d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Solve(context.Background(), 0, d.N()-1); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Solve(context.Background(), 0, d.N()-1); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("post-drain solve: %v, want ErrSolverClosed", err)
	}
	if err := h.Swap(d); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("post-drain swap: %v, want ErrSolverClosed", err)
	}
	if _, err := svc.Register("y", d); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("post-drain register: %v, want ErrSolverClosed", err)
	}
	if _, err := svc.Get("x"); !errors.Is(err, ErrSolverClosed) {
		t.Fatalf("post-drain get: %v, want ErrSolverClosed", err)
	}
	svc.Close() // idempotent after Drain
}
