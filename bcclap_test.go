package bcclap

import (
	"math"
	"math/rand"
	"testing"

	"bcclap/internal/graph"
	"bcclap/internal/linalg"
	"bcclap/internal/sparsify"
)

var sparsifyParamsForTest = sparsify.Params{K: 4, T: 2, Iterations: 6}

func TestPublicSparsify(t *testing.T) {
	g := graph.Complete(24)
	net, err := NewBroadcastCONGESTNetwork(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, 0.5, SparsifyOptions{
		Seed: 1,
		Net:  net,
		// K24 is small enough that the default practical bundle covers the
		// whole graph; force compression for this test.
		Params: sparsifyParamsForTest,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.M() >= g.M() {
		t.Fatalf("no compression: %d of %d", res.H.M(), g.M())
	}
	if res.Rounds == 0 {
		t.Fatal("no rounds recorded")
	}
	lo, hi := SparsifierQuality(g, res.H, 2)
	if lo <= 0 || hi <= 0 || hi < lo {
		t.Fatalf("nonsensical quality band [%v, %v]", lo, hi)
	}
}

func TestPublicSparsifyValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := Sparsify(g, 0, SparsifyOptions{}); err == nil {
		t.Fatal("eps = 0 accepted")
	}
}

func TestPublicLaplacianSolver(t *testing.T) {
	g := graph.Grid(4, 5)
	net, err := NewBCCNetwork(g.N())
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewLaplacianSolver(g, 5, net)
	if err != nil {
		t.Fatal(err)
	}
	if s.PreprocessRounds() == 0 {
		t.Fatal("no preprocessing rounds")
	}
	rnd := rand.New(rand.NewSource(2))
	b := make([]float64, g.N())
	for i := range b {
		b[i] = rnd.NormFloat64()
	}
	b = linalg.ProjectOutOnes(b)
	y, st, err := s.Solve(b, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	l := g.Laplacian()
	if r := linalg.Norm2(linalg.Sub(l.MulVec(y), b)) / linalg.Norm2(b); r > 1e-4 {
		t.Fatalf("relative residual %g", r)
	}
	if st.Iterations == 0 || st.Rounds == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
}

func TestPublicSolveLP(t *testing.T) {
	// min 2x₁ + x₂ s.t. x₁ + x₂ = 1, 0 ≤ x ≤ 1 → OPT = 1 at (0, 1).
	prob := &LPProblem{
		A: linalg.NewCSR(2, 1, []linalg.Triple{{Row: 0, Col: 0, Val: 1}, {Row: 1, Col: 0, Val: 1}}),
		B: []float64{1},
		C: []float64{2, 1},
		L: []float64{0, 0},
		U: []float64{1, 1},
	}
	sol, err := SolveLP(prob, []float64{0.5, 0.5}, 0.02, LPParams{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > 0.05 {
		t.Fatalf("objective %v, want 1", sol.Objective)
	}
}

func TestPublicMinCostMaxFlow(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	d := graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd)
	want, wantCost, _, err := MinCostMaxFlowBaseline(d, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCostMaxFlow(d, 0, d.N()-1, FlowOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want || res.Cost != wantCost {
		t.Fatalf("LP pipeline (%d, %d) vs baseline (%d, %d)", res.Value, res.Cost, want, wantCost)
	}
	if res.PathSteps == 0 {
		t.Fatal("no path steps recorded")
	}
	vMax, _, err := MaxFlow(d, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if vMax != res.Value {
		t.Fatalf("Dinic %d vs LP %d", vMax, res.Value)
	}
}
