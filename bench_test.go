package bcclap

// One benchmark per experiment in DESIGN.md's index (E1–E12). The paper is
// a theory contribution without empirical tables, so each benchmark
// measures the quantity a theorem bounds and reports it via ReportMetric
// next to the bound; cmd/bcclap-experiments runs the full parameter sweeps
// and prints the comparison tables recorded in EXPERIMENTS.md.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bcclap/internal/flow"
	"bcclap/internal/graph"
	"bcclap/internal/jl"
	"bcclap/internal/lapsolver"
	"bcclap/internal/linalg"
	"bcclap/internal/lp"
	"bcclap/internal/sim"
	"bcclap/internal/spanner"
	"bcclap/internal/sparsify"
	"bcclap/internal/store"
)

// E1 — Lemma 3.1: spanner size O(k·n^{1+1/k}).
func BenchmarkE1Spanner(b *testing.B) {
	g := graph.Complete(48)
	k := 3
	var edges float64
	for i := 0; i < b.N; i++ {
		res := spanner.Run(g, nil, nil, k, spanner.Options{
			MarkRand: rand.New(rand.NewSource(int64(i))),
			EdgeRand: rand.New(rand.NewSource(int64(i) + 999)),
		})
		edges += float64(len(res.FPlus))
	}
	n := float64(g.N())
	b.ReportMetric(edges/float64(b.N), "edges")
	b.ReportMetric(float64(k)*math.Pow(n, 1+1/float64(k)), "bound_kn^(1+1/k)")
}

// E2 — Lemma 3.2: spanner rounds O(k·n^{1/k}(log n + log W)).
func BenchmarkE2SpannerRounds(b *testing.B) {
	g := graph.Complete(48)
	adj := make([][]int, g.N())
	for v := range adj {
		adj[v] = g.Neighbors(v)
	}
	k := 3
	var rounds float64
	for i := 0; i < b.N; i++ {
		net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
		if err != nil {
			b.Fatal(err)
		}
		spanner.Run(g, nil, nil, k, spanner.Options{
			MarkRand: rand.New(rand.NewSource(int64(i))),
			EdgeRand: rand.New(rand.NewSource(int64(i) + 7)),
			Net:      net,
		})
		rounds += float64(net.Rounds())
	}
	n := float64(g.N())
	b.ReportMetric(rounds/float64(b.N), "rounds")
	b.ReportMetric(float64(k)*math.Pow(n, 1/float64(k))*math.Log2(n), "bound")
}

// E3 — Theorem 1.2: sparsifier size and Broadcast CONGEST rounds.
func BenchmarkE3Sparsify(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	g := graph.RandomConnected(48, 0.6, 4, rnd)
	adj := make([][]int, g.N())
	for v := range adj {
		adj[v] = g.Neighbors(v)
	}
	par := sparsify.Params{K: 4, T: 2, Iterations: 6}
	var size, rounds float64
	for i := 0; i < b.N; i++ {
		net, err := sim.NewNetwork(sim.Config{N: g.N(), Mode: sim.ModeBroadcastCONGEST, Adjacency: adj})
		if err != nil {
			b.Fatal(err)
		}
		res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(i))), net)
		size += float64(res.H.M())
		rounds += float64(res.Rounds)
	}
	b.ReportMetric(size/float64(b.N), "sparsifier_edges")
	b.ReportMetric(float64(g.M()), "input_edges")
	b.ReportMetric(rounds/float64(b.N), "rounds")
}

// E4 — Lemma 3.3: ad-hoc vs a-priori sampling cost parity.
func BenchmarkE4AdhocVsApriori(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	g := graph.RandomConnected(32, 0.5, 3, rnd)
	par := sparsify.Params{K: 3, T: 1, Iterations: 5}
	b.Run("adhoc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(i))), nil)
		}
	})
	b.Run("apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsify.Apriori(g, par, rand.New(rand.NewSource(int64(i))))
		}
	})
}

// E5 — Theorem 1.3: Laplacian solve iterations O(log(1/ε)) and rounds.
func BenchmarkE5LaplacianSolve(b *testing.B) {
	g := graph.Grid(6, 6)
	net, err := NewBCCNetwork(g.N())
	if err != nil {
		b.Fatal(err)
	}
	s, err := lapsolver.New(g, lapsolver.Config{Rand: rand.New(rand.NewSource(5)), Net: net})
	if err != nil {
		b.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(6))
	bb := make([]float64, g.N())
	for i := range bb {
		bb[i] = rnd.NormFloat64()
	}
	bb = linalg.ProjectOutOnes(bb)
	b.ResetTimer()
	var iters, rounds float64
	for i := 0; i < b.N; i++ {
		_, st, err := s.Solve(bb, 1e-8)
		if err != nil {
			b.Fatal(err)
		}
		iters += float64(st.Iterations)
		rounds += float64(st.Rounds)
	}
	b.ReportMetric(iters/float64(b.N), "cheb_iters")
	b.ReportMetric(rounds/float64(b.N), "rounds")
	b.ReportMetric(float64(s.PreprocessRounds), "preprocess_rounds")
}

// E6 — Lemma 4.5: leverage-score approximation, exact vs Kane–Nelson JL.
func BenchmarkE6LeverageScores(b *testing.B) {
	rnd := rand.New(rand.NewSource(7))
	m, n := 80, 8
	var ts []linalg.Triple
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			ts = append(ts, linalg.Triple{Row: i, Col: j, Val: rnd.NormFloat64()})
		}
	}
	a := linalg.NewCSR(m, n, ts)
	d := linalg.Ones(m)
	mul, mulT := jl.DiagScaledOps(a, d)
	solve, err := jl.DenseGramSolver(a, d)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := jl.LeverageScoresExact(mul, mulT, m, n, solve); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kanenelson", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sk, err := jl.NewKaneNelson(24, m, 0, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := jl.LeverageScoresApprox(mul, mulT, m, n, solve, sk); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7 — Lemma 4.10: mixed-norm-ball projection at scale.
func BenchmarkE7MixedBall(b *testing.B) {
	rnd := rand.New(rand.NewSource(8))
	m := 4096
	a := make([]float64, m)
	l := make([]float64, m)
	for i := range a {
		a[i] = rnd.NormFloat64()
		l[i] = 0.5 + rnd.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp.ProjectMixedBall(a, l, nil)
	}
}

// E8 — Theorem 1.4: LP path steps ∝ √n.
func BenchmarkE8LPSolve(b *testing.B) {
	nBlocks := 4
	m := 3 * nBlocks
	var ts []linalg.Triple
	c := make([]float64, m)
	for blk := 0; blk < nBlocks; blk++ {
		for j := 0; j < 3; j++ {
			row := 3*blk + j
			ts = append(ts, linalg.Triple{Row: row, Col: blk, Val: 1})
			c[row] = float64(j + 1)
		}
	}
	prob := &lp.Problem{
		A: linalg.NewCSR(m, nBlocks, ts),
		B: linalg.Ones(nBlocks),
		C: c,
		L: make([]float64, m),
		U: linalg.Ones(m),
	}
	x0 := linalg.Constant(m, 1.0/3)
	b.ResetTimer()
	var steps float64
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(prob, x0, 0.1, lp.Params{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		steps += float64(sol.PathSteps)
	}
	b.ReportMetric(steps/float64(b.N), "path_steps")
	b.ReportMetric(math.Sqrt(float64(nBlocks)), "sqrt_n")
}

// E9 — Theorem 1.1: exact min-cost max-flow, LP pipeline vs SSP baseline.
func BenchmarkE9MinCostFlow(b *testing.B) {
	rnd := rand.New(rand.NewSource(9))
	d := graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd)
	b.Run("lp-pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := flow.MinCostMaxFlow(d, 0, d.N()-1, flow.Options{
				Rand: rand.New(rand.NewSource(int64(i + 1))),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ssp-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, err := flow.MinCostMaxFlowSSP(d, 0, d.N()-1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E10 — Lemma 5.1: SDD solving through the Gremban reduction vs dense.
func BenchmarkE10Gremban(b *testing.B) {
	rnd := rand.New(rand.NewSource(10))
	g := graph.RandomConnected(24, 0.3, 4, rnd)
	m := g.Laplacian().Dense()
	for i := 0; i < g.N(); i++ {
		m.Inc(i, i, 0.5+rnd.Float64())
	}
	y := make([]float64, g.N())
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	b.Run("gremban-cg", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := lapsolver.SDDSolve(context.Background(), m, y, lapsolver.CGLapSolve); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := m.Solve(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E11 — ablation: bundle size t vs sparsifier size (Kyng et al.'s fixed t).
func BenchmarkE11BundleAblation(b *testing.B) {
	rnd := rand.New(rand.NewSource(11))
	g := graph.RandomConnected(40, 0.6, 2, rnd)
	for _, tBundle := range []int{1, 2, 4} {
		par := sparsify.Params{K: 4, T: tBundle, Iterations: 6}
		b.Run(map[int]string{1: "t1", 2: "t2", 4: "t4"}[tBundle], func(b *testing.B) {
			var size float64
			for i := 0; i < b.N; i++ {
				res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(i))), nil)
				size += float64(res.H.M())
			}
			b.ReportMetric(size/float64(b.N), "edges")
		})
	}
}

// E13 — footnote 4 extension: shared-seed a-priori sampling in the BCC vs
// the ad-hoc Broadcast CONGEST algorithm.
func BenchmarkE13SeededSparsify(b *testing.B) {
	rnd := rand.New(rand.NewSource(13))
	g := graph.RandomConnected(32, 0.5, 3, rnd)
	par := sparsify.Params{K: 3, T: 2, Iterations: 5}
	b.Run("seeded-bcc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsify.SeededBCC(g, par, int64(i+1), nil)
		}
	})
	b.Run("adhoc-bc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(i+1))), nil)
		}
	})
}

// E14 — SSSP as a special case of min-cost flow (the introduction's
// motivating reduction), verified against Dijkstra.
func BenchmarkE14ShortestPathViaFlow(b *testing.B) {
	rnd := rand.New(rand.NewSource(14))
	d := graph.RandomFlowNetwork(5, 0.3, 2, 4, rnd)
	want, err := flow.DijkstraCost(d, 0, d.N()-1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		got, err := flow.ShortestPathViaFlow(d, 0, d.N()-1, flow.Options{
			Rand: rand.New(rand.NewSource(int64(i + 3))),
		})
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatalf("flow-based %d vs Dijkstra %d", got, want)
		}
	}
	b.ReportMetric(float64(want), "shortest_path_cost")
}

// benchATDAInstance builds the flow LP of a random network with n ≥ 256
// vertices plus a representative barrier diagonal and right-hand side — the
// workload both the backend benchmarks and the committed snapshot measure.
func benchATDAInstance(tb testing.TB, n int) (a *linalg.CSR, dvec, y []float64) {
	tb.Helper()
	rnd := rand.New(rand.NewSource(16))
	d := graph.RandomFlowNetwork(n, 0.05, 3, 3, rnd)
	form, err := flow.NewLPForm(d, 0, d.N()-1, rnd)
	if err != nil {
		tb.Fatal(err)
	}
	a = form.Prob.A
	dvec = make([]float64, a.Rows())
	for i := range dvec {
		dvec[i] = 0.05 + rnd.Float64()
	}
	y = make([]float64, a.Cols())
	for i := range y {
		y[i] = rnd.NormFloat64()
	}
	return a, dvec, y
}

// benchSpMVInstance builds the large random CSR and input vector shared by
// the SpMV benchmark and the snapshot.
func benchSpMVInstance() (*linalg.CSR, []float64) {
	rnd := rand.New(rand.NewSource(17))
	n := 3000
	var ts []linalg.Triple
	for r := 0; r < n; r++ {
		for k := 0; k < 60; k++ {
			ts = append(ts, linalg.Triple{Row: r, Col: rnd.Intn(n), Val: rnd.NormFloat64()})
		}
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = rnd.NormFloat64()
	}
	return linalg.NewCSR(n, n, ts), x
}

// E15 — LinOp refactor: per-solve latency of the registered AᵀDA backends
// on a flow LP with n ≥ 256 (acceptance: csr-cg beats dense here).
func BenchmarkE15BackendSolve(b *testing.B) {
	a, dvec, y := benchATDAInstance(b, 384)
	for _, name := range lp.Backends() {
		b.Run(name, func(b *testing.B) {
			solve, err := lp.NewBackendSolver(name, a)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := solve(context.Background(), dvec, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E16 — row-sharded parallel SpMV vs the serial kernel on the same matrix
// (the product every solver iteration pays for).
func BenchmarkE16SpMV(b *testing.B) {
	m, x := benchSpMVInstance()
	dst := make([]float64, m.Rows())
	b.ReportMetric(float64(m.NNZ()), "nnz")
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecToShards(dst, x, 1)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		shards := runtime.NumCPU()
		for i := 0; i < b.N; i++ {
			m.MulVecToShards(dst, x, shards)
		}
	})
}

// benchMedian times f over five repetitions and returns the median — the
// shared timing methodology of both committed snapshots.
func benchMedian(f func()) time.Duration {
	const reps = 5
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	for i := range times {
		for j := i + 1; j < reps; j++ {
			if times[j] < times[i] {
				times[i], times[j] = times[j], times[i]
			}
		}
	}
	return times[reps/2]
}

// TestBenchBackendsSnapshot regenerates BENCH_backends.json, the committed
// snapshot of the backend and SpMV comparison (set BENCH_SNAPSHOT=1 to
// refresh; skipped otherwise so regular test runs stay fast). The SpMV
// entry records the auto path next to the pinned serial/parallel kernels
// and gates the shard heuristic: the auto path must either fall back to
// serial or beat it.
func TestBenchBackendsSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_backends.json")
	}
	n := 384
	a, dvec, y := benchATDAInstance(t, n)
	solveNS := map[string]int64{}
	for _, name := range lp.Backends() {
		solve, err := lp.NewBackendSolver(name, a)
		if err != nil {
			t.Fatal(err)
		}
		solve(context.Background(), dvec, y) // warm up factory state
		solveNS[name] = benchMedian(func() {
			if _, _, err := solve(context.Background(), dvec, y); err != nil {
				t.Fatal(err)
			}
		}).Nanoseconds()
	}
	if solveNS["csr-cg"] >= solveNS["dense"] {
		t.Errorf("csr-cg (%d ns) does not beat dense (%d ns) at n = %d", solveNS["csr-cg"], solveNS["dense"], n)
	}
	// SpMV serial vs pinned-parallel vs the auto heuristic on the same
	// matrix BenchmarkE16SpMV uses.
	m, x := benchSpMVInstance()
	nn := m.Rows()
	dst := make([]float64, nn)
	const spmvReps = 50
	timeShards := func(run func()) int64 {
		return benchMedian(func() {
			for i := 0; i < spmvReps; i++ {
				run()
			}
		}).Nanoseconds() / spmvReps
	}
	serialNS := timeShards(func() { m.MulVecToShards(dst, x, 1) })
	parallelNS := timeShards(func() { m.MulVecToShards(dst, x, runtime.NumCPU()) })
	autoNS := timeShards(func() { m.MulVecTo(dst, x) })
	autoShards := m.AutoShards()
	// The shard-heuristic gate: the auto path either stays serial (1 CPU,
	// or nnz below the threshold) or must not lose to serial beyond timing
	// noise.
	if autoShards > 1 && autoNS > serialNS+serialNS/10 {
		t.Errorf("auto SpMV picked %d shards but runs at %d ns vs %d ns serial", autoShards, autoNS, serialNS)
	}
	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchBackendsSnapshot .",
		"atda": map[string]any{
			"graph_n": n, "lp_rows": a.Rows(), "lp_cols": a.Cols(), "nnz": a.NNZ(),
			"solve_ns": solveNS,
		},
		"spmv": map[string]any{
			"n": nn, "nnz": m.NNZ(), "num_cpu": runtime.NumCPU(),
			"serial_ns": serialNS, "parallel_ns": parallelNS,
			"auto_ns": autoNS, "auto_shards": autoShards,
		},
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_backends.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// E12 — Theorem 1.2's orientation: globalizing the sparsifier costs
// max-out-degree rounds in the BCC, far below broadcasting all edges.
func BenchmarkE12Orientation(b *testing.B) {
	g := graph.Complete(40)
	par := sparsify.Params{K: 4, T: 2, Iterations: 6}
	var outdeg, edges float64
	for i := 0; i < b.N; i++ {
		res := sparsify.Adhoc(g, par, rand.New(rand.NewSource(int64(i))), nil)
		outdeg += float64(res.MaxOutDegree())
		edges += float64(res.H.M())
	}
	b.ReportMetric(outdeg/float64(b.N), "max_out_degree")
	b.ReportMetric(edges/float64(b.N), "edges_naive_rounds")
}

// benchSessionInstance is the fixed flow instance shared by the session
// benchmarks and the BENCH_session.json snapshot.
func benchSessionInstance() (*graph.Digraph, int, int) {
	rnd := rand.New(rand.NewSource(18))
	d := graph.RandomFlowNetwork(6, 0.3, 3, 3, rnd)
	return d, 0, d.N() - 1
}

// E17 — session API: one-shot MinCostMaxFlow vs a FlowSolver serving the
// same query repeatedly. The session amortizes the LP formulation and
// backend workspaces; warm-started batch queries additionally skip path
// following (the acceptance lever for BENCH_session.json).
func BenchmarkFlowSolverReuse(b *testing.B) {
	d, s, t := benchSessionInstance()
	ctx := context.Background()
	b.Run("one-shot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MinCostMaxFlow(d, s, t, FlowOptions{Seed: 7}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-cold", func(b *testing.B) {
		fs, err := NewFlowSolver(d, WithSeed(7))
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fs.Solve(ctx, s, t); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("session-batch-warm", func(b *testing.B) {
		fs, err := NewFlowSolver(d, WithSeed(7))
		if err != nil {
			b.Fatal(err)
		}
		// Prime the warm state; every timed query then re-centers it.
		if _, err := fs.SolveBatch(ctx, []FlowQuery{{S: s, T: t}}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := fs.SolveBatch(ctx, []FlowQuery{{S: s, T: t}})
			if err != nil {
				b.Fatal(err)
			}
			if !res[0].Stats.WarmStarted {
				b.Fatal("batch query did not warm-start")
			}
		}
	})
}

// TestBenchSessionSnapshot regenerates BENCH_session.json, the committed
// snapshot comparing one-shot MinCostMaxFlow against session batch solves
// per backend (set BENCH_SNAPSHOT=1 to refresh; skipped otherwise). The
// acceptance gate lives here: batch per-query time must come in below
// one-shot on every backend, with identical certified (value, cost).
func TestBenchSessionSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_session.json")
	}
	d, s, tt := benchSessionInstance()
	ctx := context.Background()
	wantV, wantC, _, err := MinCostMaxFlowBaseline(d, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	const batchLen = 6
	backends := map[string]any{}
	for _, backend := range FlowBackends() {
		oneShotNS := benchMedian(func() {
			res, err := MinCostMaxFlow(d, s, tt, FlowOptions{Seed: 7, Backend: backend})
			if err != nil {
				t.Fatal(err)
			}
			if res.Value != wantV || res.Cost != wantC {
				t.Fatalf("%s one-shot: (%d, %d) vs baseline (%d, %d)", backend, res.Value, res.Cost, wantV, wantC)
			}
		}).Nanoseconds()
		fs, err := NewFlowSolver(d, WithSeed(7), WithBackend(backend))
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]FlowQuery, batchLen)
		for i := range queries {
			queries[i] = FlowQuery{S: s, T: tt}
		}
		var warm int
		batchPerQueryNS := benchMedian(func() {
			results, err := fs.SolveBatch(ctx, queries)
			if err != nil {
				t.Fatal(err)
			}
			warm = 0
			for i, r := range results {
				if r.Value != wantV || r.Cost != wantC {
					t.Fatalf("%s batch query %d: (%d, %d) vs baseline (%d, %d)", backend, i, r.Value, r.Cost, wantV, wantC)
				}
				if r.Stats.WarmStarted {
					warm++
				}
			}
		}).Nanoseconds() / batchLen
		if batchPerQueryNS >= oneShotNS {
			t.Errorf("%s: batch per-query %d ns does not beat one-shot %d ns", backend, batchPerQueryNS, oneShotNS)
		}
		backends[backend] = map[string]any{
			"one_shot_ns":           oneShotNS,
			"batch_per_query_ns":    batchPerQueryNS,
			"batch_len":             batchLen,
			"warm_started_in_batch": warm,
			"speedup":               float64(oneShotNS) / float64(max(batchPerQueryNS, 1)),
		}
	}
	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchSessionSnapshot .",
		"instance": map[string]any{
			"graph_n": d.N(), "graph_m": d.M(), "s": s, "t": tt,
			"value": wantV, "cost": wantC,
		},
		"backends": backends,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_session.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchPrecondInstances returns the two fixed sparse flow networks of the
// e19 preconditioner comparison. The sizes are chosen so a full certified
// query finishes in seconds while the interior-point barrier weights still
// spread far enough that the combinatorial preconditioner has conditioning
// to win back.
func benchPrecondInstances() []*graph.Digraph {
	var out []*graph.Digraph
	for _, n := range []int{8, 12} {
		rnd := rand.New(rand.NewSource(int64(n)))
		out = append(out, graph.RandomFlowNetwork(n, 0.1, 3, 3, rnd))
	}
	return out
}

// E19 — combinatorial preconditioning: full certified queries through
// csr-cg (Jacobi only) vs csr-pcg (spanner-built spanning-forest incomplete
// Cholesky, symbolic structure reused across every IPM step). The metric a
// preconditioner exists for is the inner CG iteration total; wall clock
// follows it (see BENCH_precond.json for the gated snapshot).
func BenchmarkE19Precond(b *testing.B) {
	ctx := context.Background()
	for _, d := range benchPrecondInstances() {
		for _, backend := range []string{"csr-cg", "csr-pcg"} {
			b.Run(fmt.Sprintf("n%d-%s", d.N(), backend), func(b *testing.B) {
				fs, err := NewFlowSolver(d, WithSeed(7), WithBackend(backend))
				if err != nil {
					b.Fatal(err)
				}
				var iters, refreshes float64
				for i := 0; i < b.N; i++ {
					res, err := fs.Solve(ctx, 0, d.N()-1)
					if err != nil {
						b.Fatal(err)
					}
					iters = float64(res.Stats.CGIterations)
					refreshes = float64(res.Stats.PrecondRefreshes)
				}
				b.ReportMetric(iters, "cg_iters")
				if backend == "csr-pcg" {
					b.ReportMetric(refreshes, "precond_refreshes")
				}
			})
		}
	}
}

// TestBenchPrecondSnapshot regenerates BENCH_precond.json, the committed
// snapshot of the csr-pcg preconditioner against csr-cg (set
// BENCH_SNAPSHOT=1 to refresh). Following the e18 convention the gates
// adapt to the host: correctness (certified value/cost equal to the SSP
// baseline) and the inner-iteration reduction — strictly fewer total CG
// iterations per query — are gated unconditionally on every host, while
// the wall-clock win is gated only on multi-core hosts where timing is not
// at the mercy of a shared single CPU. The committed snapshot must still
// *show* lower solve_ns; it simply is not what fails the run on a noisy
// container.
func TestBenchPrecondSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_precond.json")
	}
	ctx := context.Background()
	backends := []string{"csr-cg", "csr-pcg"}

	// Full certified queries at two sizes: total inner CG iterations and
	// per-query latency, identical certified (value, cost) required.
	queries := map[string]any{}
	for _, d := range benchPrecondInstances() {
		s, tt := 0, d.N()-1
		wantV, wantC, _, err := MinCostMaxFlowBaseline(d, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		perBackend := map[string]any{}
		iters := map[string]int{}
		solveNS := map[string]int64{}
		for _, backend := range backends {
			fs, err := NewFlowSolver(d, WithSeed(7), WithBackend(backend))
			if err != nil {
				t.Fatal(err)
			}
			var st Stats
			ns := benchMedian(func() {
				res, err := fs.Solve(ctx, s, tt)
				if err != nil {
					t.Fatal(err)
				}
				if res.Value != wantV || res.Cost != wantC {
					t.Fatalf("n=%d %s: (%d, %d) vs baseline (%d, %d)", d.N(), backend, res.Value, res.Cost, wantV, wantC)
				}
				st = res.Stats
			}).Nanoseconds()
			iters[backend] = st.CGIterations
			solveNS[backend] = ns
			perBackend[backend] = map[string]any{
				"solve_ns":          ns,
				"cg_iters":          st.CGIterations,
				"path_steps":        st.PathSteps,
				"precond_builds":    st.PrecondBuilds,
				"precond_refreshes": st.PrecondRefreshes,
			}
		}
		// Iteration gate, every host: the preconditioner must strictly cut
		// the inner-iteration total per query.
		if iters["csr-pcg"] >= iters["csr-cg"] {
			t.Errorf("n=%d: csr-pcg used %d CG iterations, csr-cg %d — no reduction",
				d.N(), iters["csr-pcg"], iters["csr-cg"])
		}
		// Wall-clock gate, multi-core hosts only (e18 convention).
		if runtime.NumCPU() > 1 && solveNS["csr-pcg"] >= solveNS["csr-cg"] {
			t.Errorf("n=%d: csr-pcg %d ns per query does not beat csr-cg %d ns on %d CPUs",
				d.N(), solveNS["csr-pcg"], solveNS["csr-cg"], runtime.NumCPU())
		}
		queries[fmt.Sprintf("n%d", d.N())] = map[string]any{
			"graph_n": d.N(), "graph_m": d.M(), "s": s, "t": tt,
			"value": wantV, "cost": wantC,
			"per_backend": perBackend,
		}
	}
	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchPrecondSnapshot .",
		"num_cpu":      runtime.NumCPU(),
		"note": "csr-pcg = csr-cg + spanner-built spanning-forest incomplete Cholesky, symbolic " +
			"structure built once per session and numerically refreshed per distinct barrier diagonal; " +
			"the iteration gate holds on every host, the per-query wall-clock gate on multi-core hosts " +
			"(the committed snapshot machine has 1 CPU; its per-query times still show the win because " +
			"it comes from the iteration reduction, not from parallelism)",
		"queries": queries,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_precond.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchPoolInstance is the fixed instance and query mix shared by the
// pool benchmark and the BENCH_pool.json snapshot: a handful of distinct
// terminal pairs (cold solves, which fan out) each queried twice (the
// repeat warm-starts inside its worker).
func benchPoolInstance(tb testing.TB) (*graph.Digraph, []FlowQuery) {
	tb.Helper()
	rnd := rand.New(rand.NewSource(19))
	d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rnd)
	var pairs []FlowQuery
	for s := 0; s < d.N() && len(pairs) < 3; s++ {
		for t := d.N() - 1; t > s && len(pairs) < 3; t-- {
			if v, _, _, err := flow.MinCostMaxFlowSSP(d, s, t); err == nil && v > 0 {
				pairs = append(pairs, FlowQuery{S: s, T: t})
			}
		}
	}
	if len(pairs) < 2 {
		tb.Fatalf("instance too sparse: %d usable pairs", len(pairs))
	}
	var queries []FlowQuery
	for _, p := range pairs {
		queries = append(queries, p, p)
	}
	return d, queries
}

// E18 — concurrent serving: batch throughput through the session pool vs
// pool size. Distinct terminal pairs solve concurrently on independent
// worker sessions; on a multi-core host the batch wall time drops with
// the pool size until GOMAXPROCS saturates (see BENCH_pool.json).
func BenchmarkE18PoolBatch(b *testing.B) {
	d, queries := benchPoolInstance(b)
	ctx := context.Background()
	for _, size := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("pool-%d", size), func(b *testing.B) {
			opts := []Option{WithSeed(7)}
			if size > 1 {
				opts = append(opts, WithPoolSize(size))
			}
			fs, err := NewFlowSolver(d, opts...)
			if err != nil {
				b.Fatal(err)
			}
			defer fs.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fs.SolveBatch(ctx, queries); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchPoolSnapshot regenerates BENCH_pool.json, the committed
// snapshot of batch throughput through the session pool vs the sequential
// SolveBatch baseline (set BENCH_SNAPSHOT=1 to refresh). Correctness is
// gated unconditionally — pooled (value, cost) must equal sequential on
// every query. The throughput gate adapts to the host: with more than one
// CPU the widest pool must beat the sequential baseline; on a single-CPU
// host (like the committed snapshot's) pooling cannot help, so the gate
// only rejects pathological overhead (< 0.5× sequential throughput).
func TestBenchPoolSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_pool.json")
	}
	d, queries := benchPoolInstance(t)
	ctx := context.Background()

	seq, err := NewFlowSolver(d, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	want, err := seq.SolveBatch(ctx, queries)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(fs *FlowSolver) (nsPerBatch int64) {
		return benchMedian(func() {
			got, err := fs.SolveBatch(ctx, queries)
			if err != nil {
				t.Fatal(err)
			}
			for i := range got {
				if got[i].Value != want[i].Value || got[i].Cost != want[i].Cost {
					t.Fatalf("query %d: pooled (%d, %d) vs sequential (%d, %d)",
						i, got[i].Value, got[i].Cost, want[i].Value, want[i].Cost)
				}
			}
		}).Nanoseconds()
	}

	sizes := []int{1, 2, 4}
	perSize := map[string]any{}
	qps := map[int]float64{}
	for _, size := range sizes {
		opts := []Option{WithSeed(7)}
		if size > 1 {
			opts = append(opts, WithPoolSize(size))
		}
		fs, err := NewFlowSolver(d, opts...)
		if err != nil {
			t.Fatal(err)
		}
		ns := measure(fs)
		fs.Close()
		qps[size] = float64(len(queries)) / (float64(ns) / 1e9)
		perSize[fmt.Sprintf("pool_%d", size)] = map[string]any{
			"batch_ns":          ns,
			"queries_per_sec":   qps[size],
			"speedup_vs_pool_1": float64(0), // filled below
		}
	}
	for _, size := range sizes {
		perSize[fmt.Sprintf("pool_%d", size)].(map[string]any)["speedup_vs_pool_1"] = qps[size] / qps[1]
	}
	widest := sizes[len(sizes)-1]
	if runtime.NumCPU() > 1 {
		if qps[widest] <= qps[1] {
			t.Errorf("pool-%d throughput %.2f q/s does not beat sequential %.2f q/s on %d CPUs",
				widest, qps[widest], qps[1], runtime.NumCPU())
		}
	} else if qps[widest] < 0.5*qps[1] {
		t.Errorf("pool-%d throughput %.2f q/s collapsed vs sequential %.2f q/s",
			widest, qps[widest], qps[1])
	}
	note := "throughput scales with pool size up to GOMAXPROCS; regenerate locally to measure your host"
	if runtime.NumCPU() == 1 {
		note = "snapshot host has 1 CPU, so pooled ≈ sequential here (solves are CPU-bound); " +
			"on multi-core hosts distinct-pair solves run in parallel and the gate requires " +
			"pool-4 to beat sequential — regenerate locally to measure yours"
	}
	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchPoolSnapshot .",
		"instance": map[string]any{
			"graph_n": d.N(), "graph_m": d.M(),
			"batch_len": len(queries), "distinct_pairs": len(queries) / 2,
		},
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"note":       note,
		"throughput": perSize,
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_pool.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchServiceInstance is the fixed two-tenant workload shared by the e20
// benchmark and the BENCH_service.json snapshot: each tenant serves its
// own small network, and the production query stream repeats each usable
// terminal pair `repeats` times — the repeat-heavy shape whose tail the
// certified-result cache turns into O(1) lookups.
func benchServiceInstance(tb testing.TB, repeats int) (nets map[string]*graph.Digraph, streams map[string][]FlowQuery) {
	tb.Helper()
	nets = map[string]*graph.Digraph{}
	streams = map[string][]FlowQuery{}
	for i, name := range []string{"tenant-a", "tenant-b"} {
		rnd := rand.New(rand.NewSource(19 + int64(i)))
		d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rnd)
		var pairs []FlowQuery
		for s := 0; s < d.N() && len(pairs) < 3; s++ {
			for t := d.N() - 1; t > s && len(pairs) < 3; t-- {
				if v, _, _, err := flow.MinCostMaxFlowSSP(d, s, t); err == nil && v > 0 {
					pairs = append(pairs, FlowQuery{S: s, T: t})
				}
			}
		}
		if len(pairs) < 2 {
			tb.Fatalf("tenant %s: instance too sparse (%d usable pairs)", name, len(pairs))
		}
		var stream []FlowQuery
		for r := 0; r < repeats; r++ {
			stream = append(stream, pairs...)
		}
		nets[name] = d
		streams[name] = stream
	}
	return nets, streams
}

// E20 — multi-tenant service layer: the same repeat-heavy query stream
// through (a) a bare pooled FlowSolver (the PR-3 single-tenant baseline),
// (b) a Service tenant with the cache disabled, and (c) a Service tenant
// with the certified-result cache — whose hits skip the solver entirely
// (see BENCH_service.json).
func BenchmarkE20Service(b *testing.B) {
	nets, streams := benchServiceInstance(b, 4)
	d, stream := nets["tenant-a"], streams["tenant-a"]
	ctx := context.Background()

	b.Run("baseline-pool", func(b *testing.B) {
		fs, err := NewFlowSolver(d, WithSeed(7), WithPoolSize(2))
		if err != nil {
			b.Fatal(err)
		}
		defer fs.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fs.SolveBatch(ctx, stream); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, cacheSize := range []int{0, DefaultCacheSize} {
		name := "service-cached"
		if cacheSize == 0 {
			name = "service-uncached"
		}
		b.Run(name, func(b *testing.B) {
			svc := NewService(WithSeed(7), WithPoolSize(2), WithCacheSize(cacheSize))
			defer svc.Close()
			h, err := svc.Register("bench", d)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.SolveBatch(ctx, stream); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := h.Stats().Cache
			if st.Hits+st.Misses > 0 {
				b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit_rate")
			}
		})
	}
}

// TestBenchServiceSnapshot regenerates BENCH_service.json, the committed
// snapshot of the e20 service-layer experiment (set BENCH_SNAPSHOT=1 to
// refresh). Three properties are gated on every host, because none
// depends on parallelism: (1) every service answer — cached or fresh, on
// both tenants — is bit-identical to the PR-3 single-tenant pooled
// baseline in value, cost and flow vector; (2) the repeat-heavy stream
// reaches its predicted cache hit-rate exactly ((repeats-1)/repeats of
// queries after the cold round); (3) the cached stream beats both the
// uncached service and the bare-pool baseline on throughput — a cache hit
// is a hash lookup, orders of magnitude under any certified solve, so
// timing noise cannot flip the gate even on a 1-CPU snapshot host.
func TestBenchServiceSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_service.json")
	}
	const repeats = 4
	nets, streams := benchServiceInstance(t, repeats)
	ctx := context.Background()

	// PR-3 single-tenant baselines: one pooled FlowSolver per network.
	baseline := map[string][]*FlowResult{}
	baselineNS := map[string]int64{}
	for name, d := range nets {
		fs, err := NewFlowSolver(d, WithSeed(7), WithPoolSize(2))
		if err != nil {
			t.Fatal(err)
		}
		want, err := fs.SolveBatch(ctx, streams[name])
		if err != nil {
			t.Fatal(err)
		}
		baseline[name] = want
		baselineNS[name] = benchMedian(func() {
			if _, err := fs.SolveBatch(ctx, streams[name]); err != nil {
				t.Fatal(err)
			}
		}).Nanoseconds()
		fs.Close()
	}

	measure := func(cacheSize int) (perTenant map[string]int64, hitRate float64, stats ServiceStats) {
		svc := NewService(WithSeed(7), WithPoolSize(2), WithCacheSize(cacheSize))
		defer svc.Close()
		handles := map[string]*NetworkHandle{}
		for name, d := range nets {
			h, err := svc.Register(name, d)
			if err != nil {
				t.Fatal(err)
			}
			handles[name] = h
		}
		perTenant = map[string]int64{}
		for name, h := range handles {
			// Correctness gate (unconditional): every answer equals the
			// single-tenant baseline bit for bit.
			check := func() {
				got, err := h.SolveBatch(ctx, streams[name])
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					want := baseline[name][i]
					if got[i].Value != want.Value || got[i].Cost != want.Cost ||
						!reflect.DeepEqual(got[i].Flows, want.Flows) {
						t.Fatalf("tenant %s query %d (cache=%d): service (%d, %d, %v) vs baseline (%d, %d, %v)",
							name, i, cacheSize, got[i].Value, got[i].Cost, got[i].Flows,
							want.Value, want.Cost, want.Flows)
					}
				}
			}
			check() // cold round populates the cache
			perTenant[name] = benchMedian(check).Nanoseconds()
		}
		st := svc.ServiceStats()
		if st.Cache.Hits+st.Cache.Misses > 0 {
			hitRate = float64(st.Cache.Hits) / float64(st.Cache.Hits+st.Cache.Misses)
		}
		return perTenant, hitRate, st
	}

	uncachedNS, _, _ := measure(0)
	cachedNS, hitRate, st := measure(DefaultCacheSize)

	queries := 0
	for _, s := range streams {
		queries += len(s)
	}
	qps := func(per map[string]int64) float64 {
		var total int64
		for _, ns := range per {
			total += ns
		}
		return float64(queries) / (float64(total) / 1e9)
	}
	var baseQPS float64
	{
		var total int64
		for _, ns := range baselineNS {
			total += ns
		}
		baseQPS = float64(queries) / (float64(total) / 1e9)
	}
	uncachedQPS, cachedQPS := qps(uncachedNS), qps(cachedNS)

	// Hit-rate gate: after the cold round, every measured round hits on
	// every query, so the service-wide rate must be at least the stream's
	// repeat fraction (the distinct pairs of the cold round are the only
	// misses).
	wantRate := float64(repeats-1) / float64(repeats)
	if hitRate < wantRate {
		t.Errorf("cache hit rate %.3f below the stream's repeat fraction %.3f", hitRate, wantRate)
	}
	// Throughput gates (host-independent: hits are hash lookups).
	if cachedQPS <= uncachedQPS {
		t.Errorf("cached throughput %.1f q/s does not beat uncached %.1f q/s", cachedQPS, uncachedQPS)
	}
	if cachedQPS <= baseQPS {
		t.Errorf("cached service %.1f q/s does not beat the single-tenant pool baseline %.1f q/s", cachedQPS, baseQPS)
	}

	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchServiceSnapshot .",
		"instance": map[string]any{
			"tenants": len(nets), "stream_len_total": queries,
			"repeats_per_pair": repeats,
		},
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"cache": map[string]any{
			"hit_rate": hitRate,
			"hits":     st.Cache.Hits,
			"misses":   st.Cache.Misses,
			"budget":   st.Cache.Capacity,
		},
		"throughput": map[string]any{
			"baseline_pool_qps":          baseQPS,
			"service_uncached_qps":       uncachedQPS,
			"service_cached_qps":         cachedQPS,
			"cached_speedup_vs_baseline": cachedQPS / baseQPS,
		},
		"note": "cached vs fresh results are gated bit-identical (value, cost, flow vector) on both " +
			"tenants; the cached stream must beat both the uncached service and the PR-3 " +
			"single-tenant pool on every host — hits are O(1) lookups, not solves",
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_service.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchStoreTenant is the fixed instance behind the e21 durability
// experiment: one tenant on a small random network plus the delta set its
// patch benchmarks apply (cost/capacity changes on the first and last
// arc, so cached flows through them are invalidated).
func benchStoreTenant(tb testing.TB) (*graph.Digraph, []ArcDelta) {
	tb.Helper()
	d := graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(23)))
	return d, []ArcDelta{
		{Arc: 0, CapDelta: 1, CostDelta: 1},
		{Arc: d.M() - 1, CostDelta: 1},
	}
}

// storeRegisterRecord encodes one tenant registration for the WAL append
// benchmarks.
func storeRegisterRecord(name string, d *graph.Digraph) store.Record {
	return store.Record{
		Type: store.RecRegister, Name: name, Version: 1,
		Opts: store.TenantOpts{Backend: "dense", Seed: 7, Tol: 1e-6},
		N:    d.N(), Arcs: d.Arcs(),
	}
}

// E21 — durable tenant state: the WAL append tax per mutation record
// (fsync'd and not), recovery wall-clock against tenant count, and the
// incremental patch path against the full re-register it replaces (see
// BENCH_store.json).
func BenchmarkE21Store(b *testing.B) {
	d, deltas := benchStoreTenant(b)
	for _, sync := range []bool{true, false} {
		name := "wal-append-sync"
		pol := store.SyncAlways
		if !sync {
			name, pol = "wal-append-nosync", store.SyncNever
		}
		b.Run(name, func(b *testing.B) {
			lg, err := store.Open(b.TempDir(), store.Options{Sync: pol, SnapshotEvery: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer lg.Close()
			if err := lg.Append(storeRegisterRecord("bench", d)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec := store.Record{
					Type: store.RecPatch, Name: "bench",
					Version: uint64(i) + 2, Deltas: deltas,
				}
				if err := lg.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("recovery-8-tenants", func(b *testing.B) {
		dir := b.TempDir()
		svc, err := OpenService(WithStore(dir), WithSeed(7), WithPoolSize(1))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			dt := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(60+int64(i))))
			if _, err := svc.Register(fmt.Sprintf("t%d", i), dt); err != nil {
				b.Fatal(err)
			}
		}
		if err := svc.Drain(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			re, err := OpenService(WithStore(dir), WithSeed(7), WithPoolSize(1))
			if err != nil {
				b.Fatal(err)
			}
			if got := len(re.Names()); got != 8 {
				b.Fatalf("recovered %d tenants, want 8", got)
			}
			re.Close()
		}
	})
	// Incremental patch vs the full swap it replaces, resolve included.
	// Each iteration applies the same deltas forward and backward so the
	// tenant state is identical at every step.
	inverse := make([]ArcDelta, len(deltas))
	for i, dl := range deltas {
		inverse[i] = ArcDelta{Arc: dl.Arc, CapDelta: -dl.CapDelta, CostDelta: -dl.CostDelta}
	}
	ctx := context.Background()
	b.Run("patch-resolve", func(b *testing.B) {
		svc := NewService(WithSeed(7), WithPoolSize(1))
		defer svc.Close()
		h, err := svc.Register("bench", d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ds := deltas
			if i%2 == 1 {
				ds = inverse
			}
			if err := h.PatchArcs(ds); err != nil {
				b.Fatal(err)
			}
			if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("swap-resolve", func(b *testing.B) {
		svc := NewService(WithSeed(7), WithPoolSize(1))
		defer svc.Close()
		h, err := svc.Register("bench", d)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
			b.Fatal(err)
		}
		patched := d.Clone()
		if err := patched.ApplyDeltas(deltas); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nd := patched
			if i%2 == 1 {
				nd = d
			}
			if err := h.Swap(nd); err != nil {
				b.Fatal(err)
			}
			if _, err := h.Solve(ctx, 0, d.N()-1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchStoreSnapshot regenerates BENCH_store.json, the committed
// snapshot of the e21 durability experiment (set BENCH_SNAPSHOT=1 to
// refresh). Four properties are gated on every host because none depends
// on timing: (1) restart fidelity — a service reopened from its data
// directory serves each tenant at its exact pre-shutdown version with a
// bit-identical flow vector; (2) the post-patch resolve of an affected
// pair warm-starts (no path following) and still matches the exact SSP
// baseline on the patched network; (3) patches invalidate selectively —
// the untouched tenant pair survives as a cache hit, only the touched
// pair re-solves; (4) the patch-resolve path beats swap-resolve, which
// pays full solver construction for the same state change.
func TestBenchStoreSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_store.json")
	}
	ctx := context.Background()
	d, deltas := benchStoreTenant(t)
	patched := d.Clone()
	if err := patched.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}

	// WAL append tax: median ns/record over a fixed batch, per policy.
	appendNS := map[string]float64{}
	for name, pol := range map[string]store.SyncPolicy{"sync": store.SyncAlways, "nosync": store.SyncNever} {
		const recs = 256
		lg, err := store.Open(t.TempDir(), store.Options{Sync: pol, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		if err := lg.Append(storeRegisterRecord("bench", d)); err != nil {
			t.Fatal(err)
		}
		ver := uint64(1)
		ns := benchMedian(func() {
			for i := 0; i < recs; i++ {
				ver++
				if err := lg.Append(store.Record{Type: store.RecPatch, Name: "bench", Version: ver, Deltas: deltas}); err != nil {
					t.Fatal(err)
				}
			}
		}).Nanoseconds()
		appendNS[name] = float64(ns) / recs
		lg.Close()
	}

	// Recovery wall-clock vs tenant count, with the fidelity gate on the
	// largest instance: every tenant at its journaled version, flows
	// bit-identical across the restart.
	recoveryNS := map[string]int64{}
	for _, n := range []int{1, 4, 8} {
		dir := t.TempDir()
		svc, err := OpenService(WithStore(dir), WithSeed(7), WithPoolSize(1))
		if err != nil {
			t.Fatal(err)
		}
		nets := map[string]*graph.Digraph{}
		flows := map[string][]int64{}
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("t%d", i)
			dt := graph.RandomFlowNetwork(5, 0.35, 3, 3, rand.New(rand.NewSource(60+int64(i))))
			h, err := svc.Register(name, dt)
			if err != nil {
				t.Fatal(err)
			}
			res, err := h.Solve(ctx, 0, dt.N()-1)
			if err != nil {
				t.Fatal(err)
			}
			nets[name], flows[name] = dt, res.Flows
		}
		if err := svc.Drain(ctx); err != nil {
			t.Fatal(err)
		}
		recoveryNS[fmt.Sprintf("tenants_%d", n)] = benchMedian(func() {
			re, err := OpenService(WithStore(dir), WithSeed(7), WithPoolSize(1))
			if err != nil {
				t.Fatal(err)
			}
			if got := len(re.Names()); got != n {
				t.Fatalf("recovered %d tenants, want %d", got, n)
			}
			re.Close()
		}).Nanoseconds()
		if n == 8 {
			re, err := OpenService(WithStore(dir), WithSeed(7), WithPoolSize(1))
			if err != nil {
				t.Fatal(err)
			}
			for name, dt := range nets {
				h, err := re.Get(name)
				if err != nil {
					t.Fatal(err)
				}
				if h.Version() != 1 {
					t.Fatalf("tenant %s recovered at v%d, want v1", name, h.Version())
				}
				res, err := h.Solve(ctx, 0, dt.N()-1)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Flows, flows[name]) {
					t.Fatalf("tenant %s: post-restart flows %v, pre-shutdown %v", name, res.Flows, flows[name])
				}
			}
			re.Close()
		}
	}

	// Patch semantics gates on the two-island instance: warm restart of
	// the touched pair, exactness vs SSP, selective invalidation of the
	// untouched pair.
	svc := NewService(WithSeed(7), WithPoolSize(1))
	defer svc.Close()
	hp, err := svc.Register("islands", benchTwoIslandNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hp.Solve(ctx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := hp.Solve(ctx, 3, 5); err != nil {
		t.Fatal(err)
	}
	islandDeltas := []ArcDelta{{Arc: 3, CostDelta: 2}, {Arc: 4, CapDelta: 1}}
	if err := hp.PatchArcs(islandDeltas); err != nil {
		t.Fatal(err)
	}
	islands := benchTwoIslandNetwork(t)
	if err := islands.ApplyDeltas(islandDeltas); err != nil {
		t.Fatal(err)
	}
	kept, err := hp.Solve(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !kept.Stats.CacheHit {
		t.Error("selective invalidation gate: untouched pair did not survive the patch")
	}
	touched, err := hp.Solve(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if touched.Stats.CacheHit {
		t.Error("selective invalidation gate: touched pair served stale from cache")
	}
	if !touched.Stats.WarmStarted || touched.PathSteps != 0 {
		t.Errorf("warm gate: post-patch resolve warm=%v path_steps=%d, want a warm start with no path following",
			touched.Stats.WarmStarted, touched.PathSteps)
	}
	wantV, wantC, _, err := flow.MinCostMaxFlowSSP(islands, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if touched.Value != wantV || touched.Cost != wantC {
		t.Errorf("exactness gate: post-patch (%d, %d), SSP baseline (%d, %d)", touched.Value, touched.Cost, wantV, wantC)
	}
	invalidations := hp.Stats().Cache.Invalidations

	// Patch-resolve vs swap-resolve medians (see BenchmarkE21Store for the
	// forward/backward alternation that keeps state fixed).
	inverse := make([]ArcDelta, len(deltas))
	for i, dl := range deltas {
		inverse[i] = ArcDelta{Arc: dl.Arc, CapDelta: -dl.CapDelta, CostDelta: -dl.CostDelta}
	}
	measure := func(step func(i int)) int64 {
		i := 0
		return benchMedian(func() {
			step(i)
			i++
		}).Nanoseconds()
	}
	psvc := NewService(WithSeed(7), WithPoolSize(1))
	defer psvc.Close()
	hPatch, err := psvc.Register("patch", d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hPatch.Solve(ctx, 0, d.N()-1); err != nil {
		t.Fatal(err)
	}
	patchNS := measure(func(i int) {
		ds := deltas
		if i%2 == 1 {
			ds = inverse
		}
		if err := hPatch.PatchArcs(ds); err != nil {
			t.Fatal(err)
		}
		if _, err := hPatch.Solve(ctx, 0, d.N()-1); err != nil {
			t.Fatal(err)
		}
	})
	hSwap, err := psvc.Register("swap", d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hSwap.Solve(ctx, 0, d.N()-1); err != nil {
		t.Fatal(err)
	}
	swapNS := measure(func(i int) {
		nd := patched
		if i%2 == 1 {
			nd = d
		}
		if err := hSwap.Swap(nd); err != nil {
			t.Fatal(err)
		}
		if _, err := hSwap.Solve(ctx, 0, d.N()-1); err != nil {
			t.Fatal(err)
		}
	})
	// Host-independent by construction: swap pays full solver construction
	// plus a cold resolve for the same state change the patch folds into
	// live sessions with a warm resolve.
	if patchNS >= swapNS {
		t.Errorf("patch-resolve %dns does not beat swap-resolve %dns", patchNS, swapNS)
	}

	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchStoreSnapshot .",
		"instance": map[string]any{
			"graph_n": d.N(), "graph_m": d.M(), "patch_deltas": len(deltas),
		},
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"wal_append_ns_per_record": map[string]any{
			"sync":       appendNS["sync"],
			"nosync":     appendNS["nosync"],
			"fsync_cost": appendNS["sync"] / appendNS["nosync"],
		},
		"recovery_wall_ns": recoveryNS,
		"patch_vs_swap": map[string]any{
			"patch_resolve_ns": patchNS,
			"swap_resolve_ns":  swapNS,
			"patch_speedup":    float64(swapNS) / float64(patchNS),
		},
		"selective_invalidation": map[string]any{
			"invalidations":  invalidations,
			"untouched_hit":  kept.Stats.CacheHit,
			"touched_missed": !touched.Stats.CacheHit,
		},
		"note": "gates are timing-free except patch vs swap (structural: swap rebuilds the solver pool, " +
			"patch folds deltas into live sessions): restart fidelity is bit-identical flows, the " +
			"post-patch resolve must warm-start with zero path steps and match the exact SSP baseline, " +
			"and patches drop only cache entries whose flows touch a modified arc",
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// benchTwoIslandNetwork mirrors the two disconnected islands of the
// service tests: pairs (0,2) and (3,5) have disjoint arc supports, so a
// patch on one island provably cannot touch the other's cached flow.
func benchTwoIslandNetwork(tb testing.TB) *graph.Digraph {
	tb.Helper()
	d := graph.NewDigraph(6)
	for _, a := range [][4]int64{
		{0, 1, 4, 1}, {1, 2, 4, 1}, {0, 2, 3, 5},
		{3, 4, 4, 1}, {4, 5, 4, 1}, {3, 5, 3, 5},
	} {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			tb.Fatal(err)
		}
	}
	return d
}

// benchQoSTenants is the fixed instance behind the e22 QoS experiment:
// a well-behaved "quiet" tenant and a "noisy" one whose clients flood
// it. Both run with the cache disabled so every admitted query costs a
// real solve — the point is pool isolation, not cache hits.
func benchQoSTenants(tb testing.TB) (dQuiet, dNoisy *graph.Digraph) {
	tb.Helper()
	dQuiet = graph.RandomFlowNetwork(6, 0.35, 3, 3, rand.New(rand.NewSource(29)))
	dNoisy = graph.RandomFlowNetwork(4, 0.5, 3, 3, rand.New(rand.NewSource(30)))
	return dQuiet, dNoisy
}

// benchQoSLimits is the gate the noisy tenant runs behind in e22: a
// tight rate with a small burst, one solve at a time, and a two-deep
// queue, so a flood turns into fast 429s instead of queued work. The
// rate keeps the noisy tenant's CPU duty cycle in the low percent even
// on a single-core host, where admitted solves timeshare with the
// quiet tenant's.
func benchQoSLimits() Limits {
	return Limits{RatePerSec: 5, Burst: 1, MaxInFlight: 1, QueueDepth: 2}
}

// benchQoSWarm brings a tenant's pool to steady state: enough sequential
// solves to warm-start every worker session, so the measured rounds see
// production behavior, not one-time preprocessing (a cold solve is an
// order of magnitude over a warm one and would read as a QoS violation
// on a single-core host).
func benchQoSWarm(tb testing.TB, h *NetworkHandle, n int) {
	tb.Helper()
	for i := 0; i < 6; i++ {
		if _, err := h.Solve(context.Background(), 0, n-1); err != nil {
			tb.Fatal(err)
		}
	}
}

// benchPercentile returns the p-quantile (0 ≤ p ≤ 1) of ds by sorting a
// copy; nearest-rank, so p=1 is the maximum.
func benchPercentile(ds []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(p * float64(len(s)-1))
	return s[i]
}

// benchFlood hammers the noisy tenant from eight goroutines until stop
// is closed. Rejected clients back off briefly, as a real 429-respecting
// client would; any non-admission error is reported. It returns a
// function that stops the flood and yields (completed, rejected).
//
// It does not return until the flood has recorded its first rejection:
// on a single-P runtime the caller's channel ping-pong with the pool
// workers can otherwise keep the flood goroutines parked for the whole
// measurement window, making "the flood saw rejections" gates flaky.
func benchFlood(tb testing.TB, h *NetworkHandle, n int) func() (int64, int64) {
	tb.Helper()
	ctx := context.Background()
	var completed, rejected atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := h.Solve(ctx, 0, n-1); err != nil {
					if !errors.Is(err, ErrOverloaded) {
						tb.Errorf("flood got a non-admission error: %v", err)
						return
					}
					rejected.Add(1)
					time.Sleep(2 * time.Millisecond)
				} else {
					completed.Add(1)
				}
			}
		}()
	}
	for deadline := time.Now().Add(10 * time.Second); rejected.Load() == 0; {
		if time.Now().After(deadline) {
			tb.Fatalf("flood produced no rejection within 10s; the gate is not limiting")
		}
		time.Sleep(time.Millisecond)
	}
	return func() (int64, int64) {
		close(stop)
		wg.Wait()
		return completed.Load(), rejected.Load()
	}
}

// E22 — per-tenant QoS: the quiet tenant's solve latency with and
// without a flooded, rate-limited neighbor on the same service, and the
// telemetry tax on the cached hot path (see BENCH_qos.json).
func BenchmarkE22QoS(b *testing.B) {
	dQ, dN := benchQoSTenants(b)
	ctx := context.Background()
	for _, flood := range []bool{false, true} {
		name := "quiet-solo"
		if flood {
			name = "quiet-under-flood"
		}
		b.Run(name, func(b *testing.B) {
			svc := NewService(WithSeed(7), WithPoolSize(2))
			defer svc.Close()
			quiet, err := svc.Register("quiet", dQ, WithCacheSize(0))
			if err != nil {
				b.Fatal(err)
			}
			noisy, err := svc.Register("noisy", dN, WithCacheSize(0))
			if err != nil {
				b.Fatal(err)
			}
			benchQoSWarm(b, quiet, dQ.N())
			if flood {
				benchQoSWarm(b, noisy, dN.N())
				if err := noisy.SetLimits(benchQoSLimits()); err != nil {
					b.Fatal(err)
				}
				stopFlood := benchFlood(b, noisy, dN.N())
				defer func() {
					_, rejected := stopFlood()
					b.ReportMetric(float64(rejected), "rejections")
				}()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := quiet.Solve(ctx, 0, dQ.N()-1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, on := range []bool{true, false} {
		name := "cached-hit-telemetry-on"
		if !on {
			name = "cached-hit-telemetry-off"
		}
		b.Run(name, func(b *testing.B) {
			svc := NewService(WithSeed(7), WithPoolSize(1), WithTelemetry(on))
			defer svc.Close()
			h, err := svc.Register("bench", dQ)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := h.Solve(ctx, 0, dQ.N()-1); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.Solve(ctx, 0, dQ.N()-1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchQoSSnapshot regenerates BENCH_qos.json, the committed
// snapshot of the e22 QoS experiment (set BENCH_SNAPSHOT=1 to refresh).
// Gated on every host: (1) the quiet tenant's answers under flood are
// bit-identical to its unloaded ones; (2) its p99 under flood stays
// within 2x the unloaded baseline (1ms noise floor) — the admission
// gate, not luck, keeps the noisy tenant's queue off the shared pool;
// (3) the flood actually rejected work and the noisy tenant still got
// admitted solves through (goodput, not a blackout); (4) telemetry keeps
// at least 95% of the cached hot path's throughput (interleaved
// min-of-rounds, so GC and scheduler noise cannot fake a regression).
func TestBenchQoSSnapshot(t *testing.T) {
	if os.Getenv("BENCH_SNAPSHOT") == "" {
		t.Skip("set BENCH_SNAPSHOT=1 to regenerate BENCH_qos.json")
	}
	dQ, dN := benchQoSTenants(t)
	ctx := context.Background()
	const quietSolves = 200

	svc := NewService(WithSeed(7), WithPoolSize(2))
	defer svc.Close()
	quiet, err := svc.Register("quiet", dQ, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := svc.Register("noisy", dN, WithCacheSize(0))
	if err != nil {
		t.Fatal(err)
	}

	// Steady state first, limits second: both pools are warmed while the
	// noisy tenant is still unlimited, then the gate is applied through
	// the runtime-retune path a production operator would use.
	benchQoSWarm(t, quiet, dQ.N())
	benchQoSWarm(t, noisy, dN.N())
	if err := noisy.SetLimits(benchQoSLimits()); err != nil {
		t.Fatal(err)
	}

	runQuiet := func() (lat []time.Duration, results []*FlowResult) {
		lat = make([]time.Duration, quietSolves)
		results = make([]*FlowResult, quietSolves)
		for i := range lat {
			start := time.Now()
			res, err := quiet.Solve(ctx, 0, dQ.N()-1)
			if err != nil {
				t.Fatalf("quiet tenant starved at solve %d: %v", i, err)
			}
			lat[i] = time.Since(start)
			results[i] = res
		}
		return lat, results
	}

	baseLat, baseRes := runQuiet()
	stopFlood := benchFlood(t, noisy, dN.N())
	floodStart := time.Now()
	floodLat, floodRes := runQuiet()
	floodWindow := time.Since(floodStart)
	completed, rejected := stopFlood()

	// Gate 1: flood cannot change the quiet tenant's answers.
	for i := range floodRes {
		if floodRes[i].Value != baseRes[i].Value || floodRes[i].Cost != baseRes[i].Cost ||
			!reflect.DeepEqual(floodRes[i].Flows, baseRes[i].Flows) {
			t.Fatalf("quiet answer %d diverged under flood", i)
		}
	}
	// Gate 2: p99 under flood within 2x the unloaded baseline.
	baseP99 := benchPercentile(baseLat, 0.99)
	floodP99 := benchPercentile(floodLat, 0.99)
	allowed := 2 * max(baseP99, time.Millisecond)
	if floodP99 > allowed {
		t.Errorf("quiet p99 under flood %v exceeds 2x unloaded baseline %v", floodP99, baseP99)
	}
	// Gate 3: the gate rejected flood work, yet the noisy tenant kept
	// real goodput (it is throttled, not blacked out).
	if rejected == 0 {
		t.Error("flood saw no rejections; the admission gate is not limiting")
	}
	if completed == 0 {
		t.Error("noisy tenant had zero goodput under its own flood")
	}
	ad := noisy.Stats().Admission
	if ad.RejectedQueueFull+ad.RejectedDeadline == 0 {
		t.Errorf("admission stats recorded no rejections: %+v", ad)
	}

	// Telemetry tax on the cached hot path: interleaved min-of-rounds of
	// pure cache hits, telemetry on vs off.
	const hitRounds, hitsPerRound = 7, 20000
	hitRound := func(h *NetworkHandle) time.Duration {
		start := time.Now()
		for i := 0; i < hitsPerRound; i++ {
			if _, err := h.Solve(ctx, 0, dQ.N()-1); err != nil {
				t.Fatal(err)
			}
		}
		return time.Since(start)
	}
	handles := map[bool]*NetworkHandle{}
	for _, on := range []bool{true, false} {
		s := NewService(WithSeed(7), WithPoolSize(1), WithTelemetry(on))
		defer s.Close()
		h, err := s.Register("bench", dQ)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.Solve(ctx, 0, dQ.N()-1); err != nil {
			t.Fatal(err)
		}
		handles[on] = h
	}
	// Drain the flood phase's GC debt, then alternate which config runs
	// first per round — otherwise whichever config consistently runs
	// earlier inherits more of the decaying collector work and the ratio
	// reads as instrumentation cost.
	runtime.GC()
	minDur := map[bool]time.Duration{true: time.Hour, false: time.Hour}
	for r := 0; r < hitRounds; r++ {
		order := []bool{true, false}
		if r%2 == 1 {
			order = []bool{false, true}
		}
		for _, on := range order {
			if d := hitRound(handles[on]); d < minDur[on] {
				minDur[on] = d
			}
		}
	}
	for on, h := range handles {
		if hits := h.Stats().Cache.Hits; hits < hitRounds*hitsPerRound {
			t.Fatalf("telemetry=%v hot path missed the cache: %d hits", on, hits)
		}
	}
	overheadRatio := float64(minDur[false]) / float64(minDur[true]) // on-throughput / off-throughput
	if overheadRatio < 0.95 {
		t.Errorf("telemetry keeps only %.1f%% of cached hot-path throughput, want >= 95%%", 100*overheadRatio)
	}

	snap := map[string]any{
		"generated_by": "BENCH_SNAPSHOT=1 go test -run TestBenchQoSSnapshot .",
		"instance": map[string]any{
			"quiet_n": dQ.N(), "quiet_m": dQ.M(),
			"noisy_n": dN.N(), "noisy_m": dN.M(),
			"noisy_limits":     fmt.Sprintf("%+v", benchQoSLimits()),
			"quiet_solves":     quietSolves,
			"flood_goroutines": 8,
		},
		"num_cpu":    runtime.NumCPU(),
		"gomaxprocs": runtime.GOMAXPROCS(0),
		"isolation": map[string]any{
			"quiet_p50_unloaded_us": benchPercentile(baseLat, 0.50).Microseconds(),
			"quiet_p99_unloaded_us": baseP99.Microseconds(),
			"quiet_p50_flood_us":    benchPercentile(floodLat, 0.50).Microseconds(),
			"quiet_p99_flood_us":    floodP99.Microseconds(),
			"p99_ratio":             float64(floodP99) / float64(max(baseP99, time.Millisecond)),
		},
		"noisy_under_flood": map[string]any{
			"goodput_per_sec":     float64(completed) / floodWindow.Seconds(),
			"completed":           completed,
			"rejected":            rejected,
			"rejected_queue_full": ad.RejectedQueueFull,
			"rejected_deadline":   ad.RejectedDeadline,
		},
		"telemetry": map[string]any{
			"cached_hit_qps_on":  float64(hitsPerRound) / minDur[true].Seconds(),
			"cached_hit_qps_off": float64(hitsPerRound) / minDur[false].Seconds(),
			"throughput_ratio":   overheadRatio,
		},
		"note": "quiet answers under flood are gated bit-identical to unloaded ones, quiet p99 within 2x " +
			"the unloaded baseline (1ms floor), the flood must see rejections while the noisy tenant keeps " +
			"goodput, and telemetry must keep >=95% of cached hot-path throughput (interleaved min-of-rounds)",
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_qos.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
