package bcclap

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// twoIslandNetwork builds two disconnected two-path islands in one
// digraph, so terminal pairs (0,2) and (3,5) have provably disjoint arc
// supports: a patch on one island can never touch a flow on the other.
//
//	island A: 0→1→2 plus shortcut 0→2   (arcs 0,1,2)
//	island B: 3→4→5 plus shortcut 3→5   (arcs 3,4,5)
func twoIslandNetwork(t *testing.T) *Digraph {
	t.Helper()
	d := NewDigraph(6)
	for _, a := range [][4]int64{
		{0, 1, 4, 1}, {1, 2, 4, 1}, {0, 2, 3, 5},
		{3, 4, 4, 1}, {4, 5, 4, 1}, {3, 5, 3, 5},
	} {
		if _, err := d.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

// Acceptance: a durable service restarted from its data directory serves
// every tenant at its exact pre-shutdown version — including patches —
// with bit-identical solve results and no re-registration.
func TestServiceRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	dA, dB := testFlowNetwork(5, 41), testFlowNetwork(6, 42)
	deltas := []ArcDelta{{Arc: 0, CapDelta: 2, CostDelta: 1}, {Arc: 2, CostDelta: -1}}

	svc, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	a, err := svc.Register("tenant-a", dA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("tenant-b", dB, WithBackend("dense"), WithCacheSize(32)); err != nil {
		t.Fatal(err)
	}
	if err := a.PatchArcs(deltas); err != nil {
		t.Fatal(err)
	}
	before, err := a.Solve(ctx, 0, dA.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(ctx); err != nil {
		t.Fatal(err)
	}

	svc2, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Names(); !reflect.DeepEqual(got, []string{"tenant-a", "tenant-b"}) {
		t.Fatalf("recovered tenants = %v", got)
	}
	a2, err := svc2.Get("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	st := a2.Stats()
	if st.Version != 2 || st.Patches != 1 {
		t.Fatalf("tenant-a recovered at v%d with %d patches, want v2 with 1", st.Version, st.Patches)
	}
	if b2, err := svc2.Get("tenant-b"); err != nil {
		t.Fatal(err)
	} else if bst := b2.Stats(); bst.Version != 1 || bst.Backend != "dense" || bst.Cache.Capacity != 32 {
		t.Fatalf("tenant-b recovered as %+v, want v1 dense cache 32", bst)
	}
	after, err := a2.Solve(ctx, 0, dA.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if after.Stats.CacheHit {
		t.Fatal("cache contents are not persisted; first post-restart solve cannot be a hit")
	}
	if after.Value != before.Value || after.Cost != before.Cost || !reflect.DeepEqual(after.Flows, before.Flows) {
		t.Fatalf("post-restart solve diverged: (value %d cost %d flows %v) vs (value %d cost %d flows %v)",
			after.Value, after.Cost, after.Flows, before.Value, before.Cost, before.Flows)
	}

	// Lifecycle counters survive: both tenants count as registered, the
	// patch count is restored, and the store stats are exposed.
	ss := svc2.ServiceStats()
	if ss.Networks != 2 || ss.Registered != 2 {
		t.Fatalf("replayed service stats %+v", ss)
	}
	if ss.Store == nil || ss.Store.Tenants != 2 {
		t.Fatalf("ServiceStats.Store = %+v, want 2 tenants", ss.Store)
	}

	// The replayed tenant keeps evolving durably: patch again, restart
	// again, and the version chain continues.
	if err := a2.PatchArcs([]ArcDelta{{Arc: 1, CapDelta: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	svc3, err := OpenService(WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	a3, err := svc3.Get("tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	if st := a3.Stats(); st.Version != 3 || st.Patches != 2 {
		t.Fatalf("tenant-a after second restart: v%d patches %d, want v3 patches 2", st.Version, st.Patches)
	}
}

// A deregistered tenant must stay gone across a restart.
func TestServiceRestartDeregister(t *testing.T) {
	dir := t.TempDir()
	svc, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("keep", testFlowNetwork(5, 41)); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Register("gone", testFlowNetwork(5, 42)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Deregister("gone"); err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	svc2, err := OpenService(WithStore(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if got := svc2.Names(); !reflect.DeepEqual(got, []string{"keep"}) {
		t.Fatalf("recovered tenants = %v, want [keep]", got)
	}
}

// PatchArcs must invalidate exactly the cache entries whose flow routes
// through a modified arc: the untouched island's entry survives as a
// certified hit at the new version, the touched island's entry is
// dropped and re-solved.
func TestServicePatchSelectiveInvalidation(t *testing.T) {
	ctx := context.Background()
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("islands", twoIslandNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	// Prime the cache with one pair per island.
	coldA, err := h.Solve(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Solve(ctx, 3, 5); err != nil {
		t.Fatal(err)
	}
	// Reprice island B's backbone (arcs 3 and 4 carry flow for (3,5);
	// island A's flow has zero on them).
	if err := h.PatchArcs([]ArcDelta{{Arc: 3, CostDelta: 2}, {Arc: 4, CapDelta: 1}}); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Version != 2 || st.Patches != 1 {
		t.Fatalf("post-patch stats v%d patches %d, want v2 patches 1", st.Version, st.Patches)
	}

	resA, err := h.Solve(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !resA.Stats.CacheHit {
		t.Fatal("untouched island's entry was invalidated by the patch")
	}
	if resA.Value != coldA.Value || resA.Cost != coldA.Cost || !reflect.DeepEqual(resA.Flows, coldA.Flows) {
		t.Fatal("surviving cache entry is not bit-identical to the pre-patch answer")
	}
	resB, err := h.Solve(ctx, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if resB.Stats.CacheHit {
		t.Fatal("touched island's entry survived the patch")
	}
	// The re-solve reflects the patch: backbone repriced +2 per unit on
	// arcs 3 (cap 4) and widened arc 4. Max flow 3+4=7 pre-patch vs new
	// caps: arcs 3,4 now cap 4,5 and shortcut 3. Just verify against an
	// independently patched graph via the exact baseline in Solve's own
	// certification — value must not regress below the pre-patch max.
	if resB.Value < 7 {
		t.Fatalf("post-patch (3,5) value = %d, want ≥ 7", resB.Value)
	}
	if st := h.Stats(); st.Cache.Invalidations != 1 {
		t.Fatalf("Cache.Invalidations = %d, want exactly 1 (the touched pair)", st.Cache.Invalidations)
	}
}

// Malformed patches fail with ErrBadPatch before any state changes.
func TestServicePatchValidation(t *testing.T) {
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("net", twoIslandNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range [][]ArcDelta{
		nil,
		{},
		{{Arc: -1}},
		{{Arc: 6}},
		{{Arc: 0, CapDelta: -4}},
	} {
		if err := h.PatchArcs(ds); !errors.Is(err, ErrBadPatch) {
			t.Fatalf("deltas %v: err = %v, want ErrBadPatch", ds, err)
		}
	}
	if st := h.Stats(); st.Version != 1 || st.Patches != 0 {
		t.Fatalf("rejected patches mutated the tenant: %+v", st)
	}
}

// A tenant mid-mutation rejects further mutations with ErrNetworkBusy
// instead of queueing them.
func TestServiceMutationBusy(t *testing.T) {
	svc := NewService(WithSeed(9))
	defer svc.Close()
	h, err := svc.Register("net", twoIslandNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	h.mutating.Store(true)
	if err := h.PatchArcs([]ArcDelta{{Arc: 0, CapDelta: 1}}); !errors.Is(err, ErrNetworkBusy) {
		t.Fatalf("PatchArcs during mutation: %v, want ErrNetworkBusy", err)
	}
	if err := h.Swap(twoIslandNetwork(t)); !errors.Is(err, ErrNetworkBusy) {
		t.Fatalf("Swap during mutation: %v, want ErrNetworkBusy", err)
	}
	h.mutating.Store(false)
	if err := h.PatchArcs([]ArcDelta{{Arc: 0, CapDelta: 1}}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a failed Swap — solver construction or journal append —
// must leave the tenant fully intact: same version, same network, cache
// still warm.
func TestServiceSwapAtomicUnderFailure(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	svc, err := OpenService(WithStore(dir), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	h, err := svc.Register("prod", twoIslandNetwork(t))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := h.Solve(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Failure mode 1: the replacement solver cannot be built.
	if err := h.Swap(testFlowNetwork(5, 50), WithBackend("nope")); !errors.Is(err, ErrBackendUnknown) {
		t.Fatalf("swap with bad backend: %v, want ErrBackendUnknown", err)
	}
	// Failure mode 2: the journal append fails (log already closed).
	if err := svc.log.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Swap(testFlowNetwork(5, 50)); err == nil {
		t.Fatal("swap with a broken journal succeeded")
	}
	if err := h.PatchArcs([]ArcDelta{{Arc: 0, CapDelta: 1}}); err == nil {
		t.Fatal("patch with a broken journal succeeded")
	}
	if _, err := svc.Register("late", testFlowNetwork(5, 51)); err == nil {
		t.Fatal("register with a broken journal succeeded")
	}

	// The tenant still serves its original state, cache intact.
	st := h.Stats()
	if st.Version != 1 || st.Patches != 0 || st.Vertices != 6 {
		t.Fatalf("failed mutations moved the tenant: %+v", st)
	}
	res, err := h.Solve(ctx, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.CacheHit || res.Value != warm.Value || res.Cost != warm.Cost {
		t.Fatalf("cache lost after failed swap: hit=%v value=%d cost=%d", res.Stats.CacheHit, res.Value, res.Cost)
	}
	if got := svc.Names(); !reflect.DeepEqual(got, []string{"prod"}) {
		t.Fatalf("failed register leaked a tenant: %v", got)
	}
}

// A patched tenant's answers must match a tenant registered directly on
// the patched network — the incremental path changes no semantics.
func TestServicePatchEquivalentToSwap(t *testing.T) {
	ctx := context.Background()
	d := testFlowNetwork(6, 44)
	deltas := []ArcDelta{{Arc: 0, CapDelta: 3}, {Arc: d.M() - 1, CostDelta: 1}}
	patched := d.Clone()
	if err := patched.ApplyDeltas(deltas); err != nil {
		t.Fatal(err)
	}

	svc := NewService(WithSeed(9))
	defer svc.Close()
	inc, err := svc.Register("incremental", d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Solve(ctx, 0, d.N()-1); err != nil { // warm the sessions
		t.Fatal(err)
	}
	if err := inc.PatchArcs(deltas); err != nil {
		t.Fatal(err)
	}
	ref, err := svc.Register("reference", patched)
	if err != nil {
		t.Fatal(err)
	}
	got, err := inc.Solve(ctx, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Solve(ctx, 0, d.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value || got.Cost != want.Cost {
		t.Fatalf("patched tenant (value %d cost %d) vs direct registration (value %d cost %d)",
			got.Value, got.Cost, want.Value, want.Cost)
	}
}
